"""Property-based tests for the DPA hysteresis state machine."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.dpa import hysteresis_update

counters = st.integers(min_value=0, max_value=100)
deltas = st.floats(min_value=0.0, max_value=0.9, allow_nan=False)
states = st.booleans()


@given(states, counters, counters, deltas)
def test_output_is_boolean(state, n, f, delta):
    assert hysteresis_update(state, n, f, delta) in (True, False)


@given(counters, counters, deltas)
def test_outside_band_state_independent(n, f, delta):
    """Far outside the hysteresis band both prior states agree."""
    if n == 0:
        return
    r = f / n
    if r > 1 + delta or r < 1 - delta:
        assert hysteresis_update(True, n, f, delta) == hysteresis_update(False, n, f, delta)


@given(states, counters, counters, deltas)
def test_inside_band_state_is_sticky(state, n, f, delta):
    if n == 0:
        return
    r = f / n
    if 1 - delta < r < 1 + delta:
        assert hysteresis_update(state, n, f, delta) == state


@given(states, counters, counters, deltas)
def test_idempotent_under_constant_input(state, n, f, delta):
    """Reapplying the update with unchanged counters reaches a fixed point."""
    once = hysteresis_update(state, n, f, delta)
    twice = hysteresis_update(once, n, f, delta)
    assert once == twice


@given(states, counters, deltas)
def test_monotone_in_foreign_occupancy(state, n, delta):
    """More foreign occupancy never *lowers* native priority."""
    results = [hysteresis_update(state, n, f, delta) for f in range(0, 60)]
    # Once native goes high it stays high as f grows further.
    if True in results:
        first_true = results.index(True)
        assert all(results[first_true:])


@given(states, counters, deltas)
@settings(max_examples=50)
def test_monotone_in_native_occupancy(state, f, delta):
    """More native occupancy never *raises* native priority."""
    results = [hysteresis_update(state, n, f, delta) for n in range(1, 60)]
    if False in results:
        first_false = results.index(False)
        assert not any(results[first_false:])


@given(states, deltas)
def test_idle_keeps_state(state, delta):
    assert hysteresis_update(state, 0, 0, delta) == state


@given(states, counters, deltas)
def test_foreign_only_always_native_high(state, f, delta):
    if f > 0:
        assert hysteresis_update(state, 0, f, delta)
