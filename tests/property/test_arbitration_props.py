"""Property-based tests for arbitration fairness and policy keys."""

from collections import Counter

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.arbitration.base import rotating_pick
from repro.core.dpa import DpaConfig
from repro.core.rair import RairPolicy
from repro.noc.config import VcClass


class FakeVC:
    def __init__(self, native):
        self.is_native = native


class FakeRouter:
    def __init__(self, native_high):
        self.native_high = native_high


ids = st.lists(st.integers(min_value=0, max_value=15), min_size=1, max_size=8, unique=True)


@given(ids, st.integers(min_value=0, max_value=15))
def test_winner_is_always_a_candidate(candidate_ids, ptr):
    winner, new_ptr = rotating_pick(candidate_ids, lambda x: x, ptr, 16)
    assert winner in candidate_ids
    assert 0 <= new_ptr < 16


@given(ids)
@settings(max_examples=50)
def test_long_run_fairness(candidate_ids):
    """With a fixed candidate set, rotating pick serves all equally."""
    ptr = 0
    wins = Counter()
    rounds = 40 * len(candidate_ids)
    for _ in range(rounds):
        winner, ptr = rotating_pick(candidate_ids, lambda x: x, ptr, 16)
        wins[winner] += 1
    counts = [wins[c] for c in candidate_ids]
    assert max(counts) - min(counts) <= max(2, rounds // len(candidate_ids) // 4)


@given(ids, st.integers(min_value=0, max_value=15))
def test_priority_class_never_loses_to_lower_class(candidate_ids, ptr):
    if len(candidate_ids) < 2:
        return
    privileged = set(candidate_ids[: len(candidate_ids) // 2])
    winner, _ = rotating_pick(
        candidate_ids, lambda x: x, ptr, 16,
        priority_of=lambda c: 0 if c in privileged else 1,
    )
    assert winner in privileged


@given(st.booleans(), st.booleans(), st.booleans())
def test_rair_va_keys_total_order(native_a, native_b, native_high):
    """RAIR's VA keys are consistent: on global VCs foreign <= native, on
    regional VCs the DPA-favoured side <= the other, regardless of inputs."""
    policy = RairPolicy()
    router = FakeRouter(native_high)
    ka = policy.va_out_priority(router, VcClass.GLOBAL, FakeVC(native_a))
    kb = policy.va_out_priority(router, VcClass.GLOBAL, FakeVC(native_b))
    if native_a == native_b:
        assert ka == kb
    elif native_a:
        assert ka > kb
    else:
        assert ka < kb
    kra = policy.va_out_priority(router, VcClass.REGIONAL, FakeVC(native_a))
    if native_a == native_high:
        assert kra == 0
    else:
        assert kra == 1


@given(st.integers(min_value=0, max_value=40), st.integers(min_value=0, max_value=40))
def test_dpa_static_modes_ignore_counters(n, f):
    router = FakeRouter(native_high=True)
    router.ovc_n, router.ovc_f = n, f
    RairPolicy(dpa=DpaConfig(mode="native")).end_router_cycle(router, 1)
    assert router.native_high
    router = FakeRouter(native_high=False)
    router.ovc_n, router.ovc_f = n, f
    RairPolicy(dpa=DpaConfig(mode="foreign")).end_router_cycle(router, 1)
    assert not router.native_high
