"""Property-based tests shared by every topology.

For arbitrary fabric sizes: the opposite-port map is an involution, the
neighbour table is symmetric, the link graph is connected, and the escape
(dimension-order) walk reaches every destination minimally while its
dateline VC classes only ever step downward — the invariants the Duato
deadlock-freedom argument rests on (see repro.noc.topology's docstring).
"""

from collections import deque

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.topology import LOCAL, MeshTopology, RingTopology, TorusTopology

dims = st.integers(min_value=2, max_value=9)
ring_sizes = st.integers(min_value=4, max_value=40)


def topologies():
    """Strategy yielding arbitrary instances of every fabric kind."""
    grids = st.tuples(st.sampled_from([MeshTopology, TorusTopology]), dims, dims).map(
        lambda t: t[0](t[1], t[2])
    )
    rings = ring_sizes.map(RingTopology)
    return st.one_of(grids, rings)


@given(topologies())
@settings(max_examples=60)
def test_opposite_is_an_involution(topo):
    for port in range(topo.num_ports):
        assert topo.opposite[topo.opposite[port]] == port
    assert topo.opposite[LOCAL] == LOCAL


@given(topologies())
@settings(max_examples=60)
def test_neighbor_table_is_symmetric(topo):
    for node in range(topo.num_nodes):
        assert topo.neighbor[node][LOCAL] == -1
        for port in range(1, topo.num_ports):
            nbr = topo.neighbor[node][port]
            if nbr >= 0:
                assert topo.neighbor[nbr][topo.opposite[port]] == node


@given(topologies())
@settings(max_examples=60)
def test_link_graph_is_connected(topo):
    seen = {0}
    frontier = deque([0])
    while frontier:
        node = frontier.popleft()
        for nbr in topo.neighbor[node]:
            if nbr >= 0 and nbr not in seen:
                seen.add(nbr)
                frontier.append(nbr)
    assert len(seen) == topo.num_nodes


@given(topologies())
@settings(max_examples=30)
def test_escape_routing_reaches_every_destination_minimally(topo):
    for src in range(topo.num_nodes):
        for dst in range(0, topo.num_nodes, max(1, topo.num_nodes // 9)):
            cur, hops = src, 0
            while cur != dst:
                port = topo.dimension_order_port(cur, dst)
                assert port != LOCAL
                cur = topo.neighbor[cur][port]
                hops += 1
                assert hops <= topo.num_nodes, "escape walk must terminate"
            assert hops == topo.hop_distance(src, dst)
            assert topo.dimension_order_port(dst, dst) == LOCAL


@given(topologies())
@settings(max_examples=30)
def test_escape_classes_never_step_upward_within_a_dimension(topo):
    # Along any escape walk, the dateline class may only drop (1 -> 0 at
    # the wrap edge) while the output port stays the same; a class increase
    # without a dimension change would close a channel-dependency cycle.
    for src in range(topo.num_nodes):
        for dst in range(0, topo.num_nodes, max(1, topo.num_nodes // 9)):
            cur = src
            prev_port = None
            prev_cls = None
            while cur != dst:
                port = topo.dimension_order_port(cur, dst)
                cls = topo.escape_class(cur, dst)
                assert 0 <= cls < topo.num_escape_classes
                if port == prev_port:
                    assert cls <= prev_cls
                prev_port, prev_cls = port, cls
                cur = topo.neighbor[cur][port]


@given(topologies())
@settings(max_examples=40)
def test_minimal_ports_make_progress(topo):
    for node in range(topo.num_nodes):
        for dst in range(0, topo.num_nodes, max(1, topo.num_nodes // 9)):
            ports = topo.minimal_ports(node, dst)
            if node == dst:
                assert ports == (LOCAL,)
                continue
            assert ports
            for port in ports:
                nbr = topo.neighbor[node][port]
                assert nbr >= 0
                assert topo.hop_distance(nbr, dst) == topo.hop_distance(node, dst) - 1
