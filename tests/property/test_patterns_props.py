"""Property-based tests for traffic patterns and region maps."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import RegionMap
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import (
    BitComplementPattern,
    HotspotPattern,
    OutOfRegionPattern,
    TransposePattern,
    UniformPattern,
)

dims = st.integers(min_value=2, max_value=10)
seeds = st.integers(min_value=0, max_value=2**31)


@given(dims, dims, seeds)
@settings(max_examples=40)
def test_uniform_always_valid_destination(w, h, seed):
    topo = MeshTopology(w, h)
    rng = np.random.default_rng(seed)
    pattern = UniformPattern(topo)
    for src in range(0, topo.num_nodes, max(1, topo.num_nodes // 7)):
        dst = pattern(rng, src)
        assert 0 <= dst < topo.num_nodes
        assert dst != src


@given(st.integers(min_value=2, max_value=10), seeds)
@settings(max_examples=30)
def test_transpose_is_permutation(n, seed):
    topo = MeshTopology(n, n)
    rng = np.random.default_rng(seed)
    pattern = TransposePattern(topo)
    images = {pattern(rng, src) for src in range(topo.num_nodes)}
    assert images == set(range(topo.num_nodes))


@given(dims, dims, seeds)
@settings(max_examples=30)
def test_bit_complement_is_permutation(w, h, seed):
    topo = MeshTopology(w, h)
    rng = np.random.default_rng(seed)
    pattern = BitComplementPattern(topo)
    images = {pattern(rng, src) for src in range(topo.num_nodes)}
    assert images == set(range(topo.num_nodes))


@given(dims, dims, seeds, st.floats(min_value=0, max_value=1))
@settings(max_examples=30)
def test_hotspot_destinations_in_mesh(w, h, seed, prob):
    topo = MeshTopology(w, h)
    rng = np.random.default_rng(seed)
    pattern = HotspotPattern(topo, hot_prob=prob)
    for src in range(0, topo.num_nodes, max(1, topo.num_nodes // 5)):
        dst = pattern(rng, src)
        assert 0 <= dst < topo.num_nodes and dst != src


@given(
    st.integers(min_value=2, max_value=4),
    st.integers(min_value=1, max_value=3),
    seeds,
)
@settings(max_examples=30)
def test_out_of_region_never_stays_home(cols, rows, seed):
    topo = MeshTopology(8, 8)
    if cols * rows < 2:
        return
    rm = RegionMap.grid(topo, cols, rows)
    rng = np.random.default_rng(seed)
    pattern = OutOfRegionPattern(UniformPattern(topo), rm)
    for src in range(0, 64, 7):
        dst = pattern(rng, src)
        assert rm.app_of(dst) != rm.app_of(src)


@given(
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=2, max_value=12),
    st.integers(min_value=1, max_value=4),
    st.integers(min_value=1, max_value=4),
)
@settings(max_examples=60)
def test_grid_partition_properties(w, h, cols, rows):
    """RegionMap.grid is a partition with near-equal rectangular bands."""
    if cols > w or rows > h:
        return
    topo = MeshTopology(w, h)
    rm = RegionMap.grid(topo, cols, rows)
    # Partition: every node assigned, ids dense.
    assert rm.num_apps == cols * rows
    total = sum(len(rm.nodes_of(a)) for a in rm.apps)
    assert total == topo.num_nodes
    # Near-equal: region sizes differ at most by (band imbalance) factor.
    sizes = [len(rm.nodes_of(a)) for a in rm.apps]
    assert max(sizes) - min(sizes) <= (w // cols + 1) * (h // rows + 1)
