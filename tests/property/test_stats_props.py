"""Property-based tests for statistics filtering and trace round-trips."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.noc.flit import Packet
from repro.noc.stats import NetworkStats
from repro.traffic.trace import Trace, TraceTrafficSource

packet_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=500),   # inject
        st.integers(min_value=1, max_value=400),   # latency
        st.integers(min_value=0, max_value=5),     # app
        st.booleans(),                              # is_global
        st.booleans(),                              # adversarial
    ),
    min_size=0,
    max_size=60,
)


def fill_stats(rows):
    stats = NetworkStats()
    for inject, latency, app, is_global, adversarial in rows:
        pkt = Packet(
            src=0, dst=1, length=1, inject_cycle=inject, app_id=app,
            is_global=is_global, is_adversarial=adversarial,
        )
        stats.record_ejection(pkt, inject + latency)
    return stats


@given(packet_rows)
def test_filters_partition_the_log(rows):
    """global + non-global = all; adversarial excluded subset <= all."""
    stats = fill_stats(rows)
    all_lat = stats.latencies(include_adversarial=True)
    glob = stats.latencies(include_adversarial=True, only_global=True)
    regional = stats.latencies(include_adversarial=True, only_global=False)
    assert len(glob) + len(regional) == len(all_lat)
    assert len(stats.latencies()) <= len(all_lat)


@given(packet_rows, st.integers(min_value=0, max_value=500), st.integers(min_value=1, max_value=200))
def test_window_filter_matches_manual_count(rows, t0, span):
    stats = fill_stats(rows)
    window = (t0, t0 + span)
    expected = sum(
        1 for inject, _, _, _, adv in rows if t0 <= inject < t0 + span and not adv
    )
    assert len(stats.latencies(window=window)) == expected


@given(packet_rows)
def test_per_app_apl_consistent_with_filtered_mean(rows):
    stats = fill_stats(rows)
    per_app = stats.per_app_apl()
    for app, apl in per_app.items():
        manual = [
            lat for inject, lat, a, _, adv in rows if a == app and not adv
        ]
        if manual:
            assert apl == np.mean(manual)


@given(packet_rows)
def test_latencies_always_positive(rows):
    stats = fill_stats(rows)
    lat = stats.latencies(include_adversarial=True)
    assert (lat > 0).all()


trace_rows = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=200),  # cycle
        st.integers(min_value=0, max_value=15),   # src
        st.integers(min_value=0, max_value=15),   # dst
        st.integers(min_value=1, max_value=5),    # length
        st.integers(min_value=0, max_value=3),    # app
        st.integers(min_value=0, max_value=1),    # vnet
        st.booleans(),
        st.booleans(),
    ),
    min_size=1,
    max_size=40,
)


class _Collector:
    def __init__(self):
        self.packets = []

    def inject(self, pkt):
        self.packets.append(pkt)


@given(trace_rows)
@settings(max_examples=40)
def test_trace_save_load_replay_roundtrip(tmp_path_factory, rows):
    trace = Trace.from_rows(rows)
    path = tmp_path_factory.mktemp("traces") / "t.npz"
    trace.save(path)
    loaded = Trace.load(path)
    assert np.array_equal(loaded.records, trace.records)
    sink = _Collector()
    src = TraceTrafficSource(loaded)
    for cycle in range(max(r[0] for r in rows) + 2):
        src.tick(cycle, sink)
    assert len(sink.packets) == len(rows)
    replayed = sorted((p.inject_cycle, p.src, p.dst, p.length) for p in sink.packets)
    original = sorted((c, s, d, ln) for c, s, d, ln, *_ in rows)
    assert replayed == original
