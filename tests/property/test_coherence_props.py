"""Property-based tests for the coherence workload's protocol invariants."""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.regions import RegionMap
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.coherence import CoherenceConfig, CoherenceWorkload


class FakeNetwork:
    def __init__(self):
        self.packets = []
        self.eject_callbacks = []
        self.config = NocConfig(num_vnets=3)

    def inject(self, pkt):
        self.packets.append(pkt)


grids = st.tuples(st.integers(2, 4), st.integers(1, 3)).filter(lambda g: g[0] * g[1] >= 2)
seeds = st.integers(0, 2**31)


@given(grids, seeds)
@settings(max_examples=25, deadline=None)
def test_dynamic_homes_always_in_data_region(grid, seed):
    rm = RegionMap.grid(MeshTopology(8, 8), *grid)
    wl = CoherenceWorkload(rm, CoherenceConfig(home_policy="dynamic"), seed=seed)
    for app in rm.apps:
        for _ in range(5):
            assert rm.app_of(wl.home_of(app)) == app
            assert rm.app_of(wl.owner_of(app)) == app


@given(grids, seeds, st.floats(0.0, 1.0), st.floats(0.0, 1.0))
@settings(max_examples=20, deadline=None)
def test_protocol_conservation_under_instant_network(grid, seed, remote, fwd):
    """With an instant-delivery network every started transaction completes,
    packet counts stay consistent, and no continuation leaks."""
    rm = RegionMap.grid(MeshTopology(8, 8), *grid)
    wl = CoherenceWorkload(
        rm,
        CoherenceConfig(req_rate=0.1, remote_share=remote, forward_prob=fwd),
        seed=seed,
    )
    net = FakeNetwork()
    for cycle in range(250):
        wl.tick(cycle, net)
        for p in list(net.packets):
            net.packets.remove(p)
            net.eject_callbacks[0](p, cycle + 1)
    # Quiesce: stop issuing new requests, then flush the reply scheduler
    # and any in-flight continuations.
    wl.config = CoherenceConfig(req_rate=0.0, remote_share=remote, forward_prob=fwd)
    for cycle in range(250, 600):
        wl.tick(cycle, net)
        for p in list(net.packets):
            net.packets.remove(p)
            net.eject_callbacks[0](p, cycle + 1)
    assert wl.transactions_completed == wl.transactions_started
    assert not wl._continuations
    report = wl.regionalization_report()
    assert report["packets"] == wl.intra_packets + wl.inter_packets
    if wl.transactions_completed:
        assert report["avg_transaction_cycles"] >= 0


@given(grids, seeds)
@settings(max_examples=15, deadline=None)
def test_vnet_ordering_request_forward_response(grid, seed):
    """Messages may only trigger messages on strictly higher vnets.

    Generation is quiesced before dispatching, so every packet appearing
    after an ejection is a protocol continuation of that ejection.
    """
    rm = RegionMap.grid(MeshTopology(8, 8), *grid)
    wl = CoherenceWorkload(
        rm, CoherenceConfig(req_rate=0.15, forward_prob=0.7, remote_share=0.5),
        seed=seed,
    )
    net = FakeNetwork()
    for cycle in range(60):
        wl.tick(cycle, net)
    wl.config = CoherenceConfig(req_rate=0.0, forward_prob=0.7, remote_share=0.5)
    cycle = 60
    checked = 0
    while net.packets and cycle < 5000:
        p = net.packets.pop(0)
        before = {q.pid for q in net.packets}
        net.eject_callbacks[0](p, cycle)
        # Advance far enough for any scheduled continuation to inject.
        for t in range(cycle, cycle + 10):
            wl.tick(t, net)
        # Only packets that appeared because of *this* ejection count.
        for q in net.packets:
            if q.pid not in before:
                assert q.vnet > p.vnet, (p.vnet, q.vnet)
                checked += 1
        cycle += 10
    assert checked > 0 or wl.transactions_started == 0
