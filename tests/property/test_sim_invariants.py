"""Property-based whole-simulation invariants.

Random small configurations and workloads are simulated to completion and
the global invariants checked:

* conservation — every injected packet ejects exactly once,
* clean final state — buffers empty, credits restored, counters zero,
* latency lower bound — no packet beats the zero-load pipeline,
* monotone occupancy bookkeeping throughout the run.

These are the closest thing to a model-checking pass the simulator gets;
they run on 3x3..5x5 meshes to keep hypothesis example budgets sane.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro import build_simulation
from repro.core.regions import RegionMap
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import BimodalLengths, SyntheticTrafficSource

schemes = st.sampled_from(["ro_rr", "age", "stc", "rair", "qos", "rair_qos"])
routings = st.sampled_from(["xy", "local", "dbar", "west_first", "odd_even"])
dims = st.integers(min_value=3, max_value=5)
rates = st.floats(min_value=0.01, max_value=0.25)
seeds = st.integers(min_value=0, max_value=2**31)


def simulate(w, h, scheme, routing, rate, seed, cycles=300, regions=False):
    cfg = NocConfig(width=w, height=h)
    topo = MeshTopology(w, h)
    rm = RegionMap.halves(topo) if regions else None
    sim, net = build_simulation(cfg, region_map=rm, scheme=scheme, routing=routing)
    src = SyntheticTrafficSource(
        nodes=range(cfg.num_nodes),
        rate=rate,
        pattern=UniformPattern(topo),
        app_id=0,
        seed=seed,
        lengths=BimodalLengths(),
        region_map=rm,
        stop=cycles,
    )
    sim.add_traffic(src)
    sim.run(cycles)
    drained = sim.run_until_drained(30_000)
    return sim, net, src, drained


@given(dims, dims, schemes, routings, rates, seeds, st.booleans())
@settings(max_examples=25, deadline=None)
def test_conservation_and_clean_final_state(w, h, scheme, routing, rate, seed, regions):
    sim, net, src, drained = simulate(w, h, scheme, routing, rate, seed, regions=regions)
    assert drained
    # Conservation: everything injected was ejected exactly once.
    assert net.stats.packets_ejected == src.packets_injected
    assert net.packets_in_flight == 0
    # Clean state.
    assert net.total_buffered_flits() == 0
    for router in net.routers:
        assert router.busy_vcs == 0
        assert (router.ovc_n, router.ovc_f) == (0, 0)
        for port in range(1, 5):
            for vc in range(net.config.total_vcs):
                assert router.out_credits[port][vc] == net.config.vc_depth
                assert router.out_owner[port][vc] is None


@given(dims, dims, schemes, routings, seeds)
@settings(max_examples=15, deadline=None)
def test_latency_lower_bound(w, h, scheme, routing, seed):
    """No packet is faster than pipeline depth x hops plus serialization."""
    sim, net, src, drained = simulate(w, h, scheme, routing, rate=0.1, seed=seed)
    assert drained
    a = net.stats._as_arrays()
    topo = net.topology
    for i in range(len(a["inject"])):
        hops = topo.hop_distance(int(a["src"][i]), int(a["dst"][i]))
        min_lat = 3 * (hops + 1) + (int(a["length"][i]) - 1)
        lat = int(a["eject"][i] - a["inject"][i])
        assert lat >= min_lat


@given(dims, schemes, rates, seeds)
@settings(max_examples=10, deadline=None)
def test_occupancy_never_negative_during_run(w, scheme, rate, seed):
    cfg = NocConfig(width=w, height=w)
    sim, net = build_simulation(cfg, scheme=scheme, routing="local")
    src = SyntheticTrafficSource(
        nodes=range(cfg.num_nodes), rate=rate,
        pattern=UniformPattern(net.topology), app_id=0, seed=seed,
    )
    sim.add_traffic(src)
    for _ in range(150):
        sim.step()
        assert min(net.occupancy) >= 0
        assert sum(net.occupancy) == sum(r.buffered_flits() for r in net.routers)
