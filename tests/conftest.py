"""Shared fixtures and helpers for the test suite.

Most integration tests run tiny meshes (4x4) and short windows so the whole
suite stays fast; the experiment harness itself is exercised at reduced
scale through dedicated integration tests.
"""

from __future__ import annotations

import pytest

from repro import build_simulation
from repro.core.regions import RegionMap
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource


@pytest.fixture
def small_config() -> NocConfig:
    """A 4x4 mesh with the default VC layout."""
    return NocConfig(width=4, height=4)


@pytest.fixture
def small_topology() -> MeshTopology:
    return MeshTopology(4, 4)


@pytest.fixture
def halves_map(small_topology) -> RegionMap:
    return RegionMap.halves(small_topology)


def run_uniform(
    scheme: str = "ro_rr",
    routing: str = "xy",
    rate: float = 0.05,
    width: int = 4,
    height: int = 4,
    warmup: int = 100,
    measure: int = 500,
    seed: int = 7,
    region_map: RegionMap | None = None,
    length=None,
    policy_kwargs: dict | None = None,
):
    """Run a small uniform-random simulation; returns (sim, net, result)."""
    cfg = NocConfig(width=width, height=height)
    sim, net = build_simulation(
        cfg, region_map=region_map, scheme=scheme, routing=routing,
        policy_kwargs=policy_kwargs,
    )
    src = SyntheticTrafficSource(
        nodes=range(cfg.num_nodes),
        rate=rate,
        pattern=UniformPattern(net.topology),
        app_id=0,
        seed=seed,
        lengths=length or FixedLength(1),
        region_map=region_map,
    )
    sim.add_traffic(src)
    result = sim.run_measurement(warmup=warmup, measure=measure, drain_limit=20_000)
    return sim, net, result
