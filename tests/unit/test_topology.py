"""Unit tests for the mesh topology."""

import pytest

from repro.noc.topology import (
    EAST,
    LOCAL,
    NORTH,
    NUM_PORTS,
    OPPOSITE,
    SOUTH,
    WEST,
    MeshTopology,
)
from repro.util.errors import ConfigError


class TestConstruction:
    def test_node_count(self):
        assert MeshTopology(8, 8).num_nodes == 64
        assert MeshTopology(3, 5).num_nodes == 15

    def test_rejects_degenerate_meshes(self):
        with pytest.raises(ConfigError):
            MeshTopology(1, 8)
        with pytest.raises(ConfigError):
            MeshTopology(8, 0)

    def test_coords_roundtrip(self):
        topo = MeshTopology(5, 3)
        for node in range(topo.num_nodes):
            x, y = topo.coords(node)
            assert topo.node_at(x, y) == node

    def test_node_at_bounds_checked(self):
        topo = MeshTopology(4, 4)
        with pytest.raises(ConfigError):
            topo.node_at(4, 0)
        with pytest.raises(ConfigError):
            topo.node_at(0, -1)


class TestNeighbors:
    def test_interior_node_has_four_neighbors(self):
        topo = MeshTopology(4, 4)
        node = topo.node_at(1, 1)
        nbrs = topo.neighbor[node]
        assert nbrs[NORTH] == topo.node_at(1, 0)
        assert nbrs[SOUTH] == topo.node_at(1, 2)
        assert nbrs[EAST] == topo.node_at(2, 1)
        assert nbrs[WEST] == topo.node_at(0, 1)
        assert nbrs[LOCAL] == -1

    def test_corner_edges(self):
        topo = MeshTopology(4, 4)
        nw = topo.node_at(0, 0)
        assert topo.neighbor[nw][NORTH] == -1
        assert topo.neighbor[nw][WEST] == -1
        assert topo.neighbor[nw][EAST] == topo.node_at(1, 0)
        assert topo.neighbor[nw][SOUTH] == topo.node_at(0, 1)

    def test_opposite_is_involution_on_directions(self):
        for port in (NORTH, EAST, SOUTH, WEST):
            assert OPPOSITE[OPPOSITE[port]] == port

    def test_links_are_symmetric(self):
        topo = MeshTopology(5, 4)
        for node in range(topo.num_nodes):
            for port in (NORTH, EAST, SOUTH, WEST):
                nbr = topo.neighbor[node][port]
                if nbr >= 0:
                    assert topo.neighbor[nbr][OPPOSITE[port]] == node


class TestRoutingHelpers:
    def test_hop_distance(self):
        topo = MeshTopology(8, 8)
        assert topo.hop_distance(0, 0) == 0
        assert topo.hop_distance(topo.node_at(0, 0), topo.node_at(7, 7)) == 14
        assert topo.hop_distance(topo.node_at(2, 3), topo.node_at(5, 1)) == 5

    def test_minimal_ports_local_at_destination(self):
        topo = MeshTopology(4, 4)
        assert topo.minimal_ports(5, 5) == (LOCAL,)

    def test_minimal_ports_single_dimension(self):
        topo = MeshTopology(4, 4)
        src = topo.node_at(0, 2)
        dst = topo.node_at(3, 2)
        assert topo.minimal_ports(src, dst) == (EAST,)

    def test_minimal_ports_two_dimensions(self):
        topo = MeshTopology(4, 4)
        src = topo.node_at(1, 1)
        dst = topo.node_at(3, 3)
        assert set(topo.minimal_ports(src, dst)) == {EAST, SOUTH}

    def test_xy_port_goes_x_first(self):
        topo = MeshTopology(4, 4)
        src = topo.node_at(1, 1)
        assert topo.xy_port(src, topo.node_at(3, 3)) == EAST
        assert topo.xy_port(src, topo.node_at(1, 3)) == SOUTH
        assert topo.xy_port(src, topo.node_at(0, 0)) == WEST
        assert topo.xy_port(src, src) == LOCAL

    def test_xy_route_reaches_destination(self):
        topo = MeshTopology(6, 5)
        for src in range(topo.num_nodes):
            for dst in (0, 13, topo.num_nodes - 1):
                cur, hops = src, 0
                while cur != dst:
                    port = topo.xy_port(cur, dst)
                    cur = topo.neighbor[cur][port]
                    hops += 1
                    assert hops <= topo.hop_distance(src, dst)
                assert hops == topo.hop_distance(src, dst)

    def test_path_nodes_stops_at_edge(self):
        topo = MeshTopology(4, 4)
        src = topo.node_at(2, 0)
        assert topo.path_nodes(src, EAST, 10) == [topo.node_at(3, 0)]

    def test_path_nodes_counts_steps(self):
        topo = MeshTopology(8, 8)
        src = topo.node_at(1, 4)
        path = topo.path_nodes(src, EAST, 3)
        assert path == [topo.node_at(2, 4), topo.node_at(3, 4), topo.node_at(4, 4)]


class TestExports:
    def test_corner_nodes(self):
        topo = MeshTopology(8, 8)
        assert topo.corner_nodes() == (0, 7, 56, 63)

    def test_networkx_export_is_grid(self):
        nx = pytest.importorskip("networkx")
        topo = MeshTopology(4, 5)
        g = topo.to_networkx()
        assert g.number_of_nodes() == 20
        assert g.number_of_edges() == 4 * 4 + 3 * 5  # vertical + horizontal
        assert nx.is_connected(g)
        # Mesh diameter equals Manhattan diameter.
        assert nx.diameter(g) == (4 - 1) + (5 - 1)

    def test_port_count(self):
        assert NUM_PORTS == 5
