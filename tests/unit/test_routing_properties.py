"""Property-based routing tests over random meshes and random pairs.

Hand-rolled generative testing (no external property-test dependency):
mesh dimensions and src/dst pairs are drawn from ``repro.util.rng``
streams with fixed seeds, so every run checks the same few hundred cases
and a failure reproduces exactly.

Properties:

* XY and Duato admissible ports are always *minimal* (each one strictly
  decreases the hop distance) and *in-bounds* (the port's neighbor
  exists) — on every node of every mesh, for any src/dst pair.
* Duato's escape port always equals the dimension-order (XY) port, i.e.
  the escape channel never leaves the XY turn set that makes the escape
  network deadlock-free.
* Greedily walking any admissible port reaches the destination in
  exactly ``hop_distance`` steps (minimality, end to end).
"""

from __future__ import annotations

import pytest

from repro import build_simulation
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.topology import LOCAL
from repro.util.rng import make_rng

#: (seed, cases) for the generative loops — bump cases for a deeper soak
SEED = 20260808
CASES = 120


def _random_meshes(rng, count):
    """Random (width, height) mesh sizes in 2..9, including the minima."""
    sizes = [(2, 2), (2, 9), (9, 2)]
    while len(sizes) < count:
        sizes.append((int(rng.integers(2, 10)), int(rng.integers(2, 10))))
    return sizes


def _build(routing: str, width: int, height: int):
    cfg = NocConfig(width=width, height=height)
    _sim, net = build_simulation(cfg, scheme="ro_rr", routing=routing)
    return net


def _pkt(src: int, dst: int) -> Packet:
    return Packet(src=src, dst=dst, length=1, inject_cycle=0)


@pytest.mark.parametrize("routing", ["xy", "local"])
def test_admissible_ports_minimal_and_in_bounds(routing):
    rng = make_rng(SEED)
    for width, height in _random_meshes(rng, 10):
        net = _build(routing, width, height)
        topo = net.topology
        n = topo.num_nodes
        for _ in range(CASES):
            src = int(rng.integers(0, n))
            dst = int(rng.integers(0, n))
            pkt = _pkt(src, dst)
            ports = net.routing.admissible_ports(src, pkt)
            assert len(ports) >= 1
            if src == dst:
                assert ports == (LOCAL,)
                continue
            dist = topo.hop_distance(src, dst)
            for port in ports:
                assert port != LOCAL
                neighbor = topo.neighbor[src][port]
                assert neighbor >= 0, (
                    f"{routing} emitted off-mesh port {port} at node {src} "
                    f"on {width}x{height}"
                )
                assert topo.hop_distance(neighbor, dst) == dist - 1, (
                    f"{routing} port {port} at {src}->{dst} is not minimal"
                )


def test_xy_is_deterministic_single_port():
    rng = make_rng(SEED + 1)
    for width, height in _random_meshes(rng, 6):
        net = _build("xy", width, height)
        topo = net.topology
        n = topo.num_nodes
        for _ in range(CASES):
            src = int(rng.integers(0, n))
            dst = int(rng.integers(0, n))
            pkt = _pkt(src, dst)
            ports = net.routing.admissible_ports(src, pkt)
            assert len(ports) == 1
            if src != dst:
                assert ports[0] == topo.xy_port(src, dst)


def test_duato_escape_port_is_always_xy():
    """The escape channel never violates the XY turn set (Duato theory)."""
    rng = make_rng(SEED + 2)
    for width, height in _random_meshes(rng, 8):
        net = _build("local", width, height)
        topo = net.topology
        n = topo.num_nodes
        for _ in range(CASES):
            src = int(rng.integers(0, n))
            dst = int(rng.integers(0, n))
            if src == dst:
                continue
            pkt = _pkt(src, dst)
            escape = net.routing.escape_port(src, pkt)
            assert escape == topo.xy_port(src, dst)
            # The escape direction must itself be admissible: a blocked
            # packet can always fall back onto it.
            assert escape in net.routing.admissible_ports(src, pkt)


@pytest.mark.parametrize("routing", ["xy", "local"])
def test_any_admissible_walk_reaches_destination_minimally(routing):
    """Following admissible ports (any branch) terminates in hop_distance steps."""
    rng = make_rng(SEED + 3)
    for width, height in _random_meshes(rng, 6):
        net = _build(routing, width, height)
        topo = net.topology
        n = topo.num_nodes
        for _ in range(CASES // 2):
            src = int(rng.integers(0, n))
            dst = int(rng.integers(0, n))
            pkt = _pkt(src, dst)
            node = src
            steps = 0
            expected = topo.hop_distance(src, dst)
            while node != dst:
                ports = net.routing.admissible_ports(node, pkt)
                # Random branch choice: adaptive algorithms offer several.
                port = ports[int(rng.integers(0, len(ports)))]
                node = topo.neighbor[node][port]
                steps += 1
                assert steps <= expected, f"{routing} walk overshot {src}->{dst}"
            assert steps == expected
            assert net.routing.admissible_ports(dst, pkt) == (LOCAL,)


@pytest.mark.parametrize("routing", ["xy", "local"])
def test_rank_ports_is_a_permutation(routing):
    """The selection function reorders, never adds/drops/duplicates ports."""
    rng = make_rng(SEED + 4)
    net = _build(routing, 6, 6)
    n = net.topology.num_nodes
    for _ in range(CASES):
        src = int(rng.integers(0, n))
        dst = int(rng.integers(0, n))
        pkt = _pkt(src, dst)
        ports = net.routing.admissible_ports(src, pkt)
        ranked = net.routing.rank_ports(src, pkt, ports)
        assert sorted(ranked) == sorted(ports)
