"""Unit tests for the ASCII visualization helpers."""

import pytest

from repro import RegionMap, build_simulation
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.topology import MeshTopology
from repro.noc.visualize import (
    latency_histogram,
    render_link_utilization,
    render_occupancy,
    render_regions,
)


@pytest.fixture
def small_net():
    cfg = NocConfig(width=4, height=4)
    sim, net = build_simulation(cfg)
    return sim, net


class TestRenderRegions:
    def test_grid_shape(self):
        topo = MeshTopology(4, 4)
        text = render_regions(RegionMap.quadrants(topo))
        lines = text.splitlines()
        assert len(lines) == 4
        assert lines[0].split() == ["0", "0", "1", "1"]
        assert lines[3].split() == ["2", "2", "3", "3"]

    def test_unassigned_rendered_as_dot(self):
        topo = MeshTopology(4, 4)
        rm = RegionMap.from_rects(topo, [(0, 0, 4, 2)], allow_unassigned=True)
        text = render_regions(rm)
        assert "." in text


class TestRenderOccupancy:
    def test_idle_network_renders_blanks(self, small_net):
        _, net = small_net
        text = render_occupancy(net)
        assert "buffer occupancy" in text
        assert "@" not in text

    def test_busy_router_darkens(self, small_net):
        sim, net = small_net
        for _ in range(4):
            net.inject(Packet(src=5, dst=6, length=5, inject_cycle=0))
        sim.run(3)
        assert any(ch in render_occupancy(net) for ch in "#%@=+*")


class TestLinkUtilization:
    def test_counts_flits(self, small_net):
        sim, net = small_net
        net.inject(Packet(src=0, dst=3, length=5, inject_cycle=0))
        sim.run_until_drained(500)
        text = render_link_utilization(net, cycles=sim.cycle)
        assert "link utilization" in text
        # The east links on row 0 carried the 5 flits.
        assert net.link_flits[0, 2] == 5  # node 0, EAST
        assert net.link_flits[1, 2] == 5
        assert net.link_flits[2, 2] == 5

    def test_requires_positive_cycles(self, small_net):
        _, net = small_net
        with pytest.raises(ValueError):
            render_link_utilization(net, cycles=0)


class TestLatencyHistogram:
    def test_empty(self):
        assert latency_histogram([]) == "(no samples)"

    def test_counts_and_stats_line(self):
        text = latency_histogram([10, 20, 20, 30], bins=2, width=10)
        assert "n=4" in text
        assert "mean=20.0" in text
        total = sum(
            int(line.rsplit(" ", 1)[-1]) for line in text.splitlines()[:-1]
        )
        assert total == 4
