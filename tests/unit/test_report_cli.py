"""Unit tests for report helpers, Effort presets and the run_all registry."""

import pytest

from repro.experiments.report import effort_argparser, parse_effort, pct
from repro.experiments.run_all import EXPERIMENTS
from repro.experiments.runner import SCHEMES, Effort, FigureResult, Scheme


class TestPct:
    def test_signs(self):
        assert pct(0.128) == "+12.8%"
        assert pct(-0.034) == "-3.4%"
        assert pct(0.0) == "+0.0%"


class TestEffort:
    def test_presets(self):
        assert Effort.FULL.warmup == 10_000
        assert Effort.FULL.measure == 100_000
        assert Effort.FAST.warmup < Effort.MEDIUM.warmup < Effort.FULL.warmup

    def test_parse_effort(self):
        assert parse_effort("fast") is Effort.FAST
        assert parse_effort("FULL") is Effort.FULL
        with pytest.raises(SystemExit):
            parse_effort("warp")

    def test_argparser_defaults(self):
        args = effort_argparser("x").parse_args([])
        assert args.effort == "medium"
        assert args.seed == 42


class TestSchemes:
    def test_paper_schemes_present(self):
        for key in ("RO_RR", "RO_Rank", "RA_DBAR", "RA_RAIR",
                    "RAIR_VA", "RAIR_VA+SA", "RAIR_NativeH", "RAIR_ForeignH",
                    "RAIR_DPA", "RO_RR_DBAR", "RAIR_DBAR"):
            assert key in SCHEMES

    def test_scheme_describe(self):
        text = SCHEMES["RA_RAIR"].describe()
        assert "rair" in text and "local" in text

    def test_dbar_schemes_use_dbar_routing(self):
        assert SCHEMES["RA_DBAR"].routing == "dbar"
        assert SCHEMES["RAIR_DBAR"].routing == "dbar"
        assert SCHEMES["RA_RAIR"].routing == "local"

    def test_variants_carry_policy_kwargs(self):
        from repro.core.msp import Stage

        assert SCHEMES["RAIR_VA"].policy_kwargs["stages"] is Stage.VA
        assert SCHEMES["RAIR_NativeH"].policy_kwargs["dpa"].mode == "native"
        assert SCHEMES["RAIR_ForeignH"].policy_kwargs["dpa"].mode == "foreign"


class TestRunAllRegistry:
    def test_every_figure_registered(self):
        for name in (
            "table1", "fig09_msp", "fig10_routing", "fig12_dpa",
            "fig14_sixapp", "fig15_patterns", "fig17_parsec",
            "ablation_hysteresis", "ablation_vcsplit", "ablation_routing",
        ):
            assert name in EXPERIMENTS

    def test_registered_modules_have_run_and_main(self):
        for name, module in EXPERIMENTS.items():
            assert callable(getattr(module, "run")), name
            assert callable(getattr(module, "main")), name


class TestFigureResult:
    def test_notes_rendered(self):
        r = FigureResult(
            figure="Fx", title="t", columns=["a"], rows=[{"a": 1}],
            notes=["be careful"],
        )
        assert "note: be careful" in r.format_table()

    def test_missing_cell_renders_empty(self):
        r = FigureResult(figure="F", title="t", columns=["a", "b"], rows=[{"a": 1}])
        assert r.format_table()  # does not raise

    def test_scheme_is_frozen(self):
        s = Scheme("X", "rr", "xy")
        with pytest.raises(AttributeError):
            s.routing = "dbar"
