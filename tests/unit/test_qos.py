"""Unit and end-to-end tests for the QoS policies (Section VI future work)."""

import pytest

from repro import RegionMap, build_simulation
from repro.arbitration.qos import RairQosPolicy, WeightedQosPolicy
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import SyntheticTrafficSource
from repro.util.errors import ConfigError


class FakeVC:
    def __init__(self, app, native=True):
        self.pkt = type("P", (), {"app_id": app})()
        self.is_native = native


class FakeNet:
    def __init__(self):
        self.app_flits_delivered = {}
        self.topology = MeshTopology(4, 4)
        self.routers = []


class TestValidation:
    def test_frame_cycles_positive(self):
        with pytest.raises(ConfigError):
            WeightedQosPolicy(frame_cycles=0)

    def test_negative_weight_rejected(self):
        with pytest.raises(ConfigError):
            WeightedQosPolicy(weights={0: -1})

    def test_negative_default_weight_rejected(self):
        with pytest.raises(ConfigError):
            WeightedQosPolicy(default_weight=-0.5)


class TestBudgetAccounting:
    def make(self, **kw):
        policy = WeightedQosPolicy(**kw)
        net = FakeNet()
        policy.attach(net)
        return policy, net

    def test_in_budget_until_budget_consumed(self):
        policy, net = self.make(weights={0: 1.0, 1: 1.0}, frame_cycles=10,
                                capacity_per_node=0.5)
        # frame capacity = 0.5 * 16 nodes * 10 cycles = 80 flits; 40 each.
        assert policy.budgets[0] == pytest.approx(40)
        net.app_flits_delivered[0] = 39
        assert policy.in_budget(0)
        net.app_flits_delivered[0] = 40
        assert not policy.in_budget(0)

    def test_band_orders_conforming_first(self):
        policy, net = self.make(weights={0: 1.0, 1: 1.0}, frame_cycles=10,
                                capacity_per_node=0.5)
        net.app_flits_delivered = {0: 100, 1: 0}
        over = FakeVC(0)
        under = FakeVC(1)
        assert policy.sa_priority(None, under) < policy.sa_priority(None, over)
        assert policy.va_out_priority(None, None, under) < policy.va_out_priority(
            None, None, over
        )

    def test_frame_reset_restores_budget(self):
        policy, net = self.make(weights={0: 1.0, 1: 1.0}, frame_cycles=10,
                                capacity_per_node=0.5)
        net.app_flits_delivered = {0: 100}
        assert not policy.in_budget(0)
        policy.end_network_cycle(net, cycle=10)
        assert policy.in_budget(0)  # the frame snapshot moved forward
        net.app_flits_delivered[0] = 141
        assert not policy.in_budget(0)

    def test_weights_split_capacity(self):
        policy, net = self.make(weights={0: 3.0, 1: 1.0}, frame_cycles=10,
                                capacity_per_node=0.5)
        assert policy.budgets[0] == pytest.approx(60)
        assert policy.budgets[1] == pytest.approx(20)

    def test_unknown_app_gets_default_weight(self):
        policy, net = self.make(weights={0: 1.0}, default_weight=1.0)
        net.app_flits_delivered = {7: 0}
        policy.end_network_cycle(net, cycle=policy.frame_cycles)
        assert policy.weight_of(7) == 1.0
        assert policy.in_budget(7)


class TestRairQosHybrid:
    def test_keys_compose_band_first(self):
        hybrid = RairQosPolicy()
        net = FakeNet()

        class R:
            native_high = True

        hybrid.attach(net)
        net.app_flits_delivered = {0: 10**9, 1: 0}
        hybrid.qos._rebuild_budgets()
        over_native = FakeVC(0, native=True)
        under_foreign = FakeVC(1, native=False)
        # QoS band dominates RAIR's preference: the conforming foreign
        # packet beats the over-budget native one even with native_high.
        assert hybrid.sa_priority(R(), under_foreign) < hybrid.sa_priority(
            R(), over_native
        )

    def test_rair_breaks_ties_within_band(self):
        hybrid = RairQosPolicy()
        net = FakeNet()
        hybrid.attach(net)

        class R:
            native_high = True

        native = FakeVC(0, native=True)
        foreign = FakeVC(1, native=False)
        # Both in budget: RAIR's DPA-ordered key decides.
        assert hybrid.sa_priority(R(), native) < hybrid.sa_priority(R(), foreign)

    def test_name(self):
        assert RairQosPolicy().name == "rair_qos"


class TestEndToEnd:
    def test_weighted_qos_shifts_bandwidth(self):
        """A 4:1 weighted app pair under overload: the heavy-weight app
        must see clearly better latency than under round-robin."""

        def run(scheme, policy_kwargs=None):
            cfg = NocConfig(width=4, height=4)
            sim, net = build_simulation(
                cfg, scheme=scheme, routing="local", policy_kwargs=policy_kwargs
            )
            for app in (0, 1):
                sim.add_traffic(
                    SyntheticTrafficSource(
                        nodes=range(16), rate=0.22, pattern=UniformPattern(net.topology),
                        app_id=app, seed=app + 5,
                    )
                )
            res = sim.run_measurement(warmup=300, measure=1500, drain_limit=60_000)
            return net.stats.per_app_apl(window=res.window)

        rr = run("rr")
        qos = run("qos", policy_kwargs={"weights": {0: 4.0, 1: 1.0},
                                        "frame_cycles": 200})
        # Under RR the two identical apps tie; under QoS app0 pulls ahead.
        assert abs(rr[0] - rr[1]) / rr[0] < 0.2
        assert qos[0] < qos[1]
        assert qos[0] < rr[0]

    def test_rair_qos_runs_clean_on_regions(self):
        cfg = NocConfig(width=6, height=6)
        topo = MeshTopology(6, 6)
        rm = RegionMap.halves(topo)
        sim, net = build_simulation(cfg, region_map=rm, scheme="rair_qos", routing="local")
        for app in (0, 1):
            sim.add_traffic(
                SyntheticTrafficSource(
                    nodes=rm.nodes_of(app), rate=0.15,
                    pattern=UniformPattern(topo), app_id=app, seed=app,
                    region_map=rm,
                )
            )
        res = sim.run_measurement(warmup=200, measure=1000)
        assert res.drained
        assert set(net.stats.per_app_apl(window=res.window)) == {0, 1}
