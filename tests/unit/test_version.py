"""Unit tests for version single-sourcing (repro._version)."""

from __future__ import annotations

import pathlib
import re

import pytest

import repro
from repro._version import __version__, git_revision, version_blurb


def pyproject_version() -> str | None:
    root = pathlib.Path(repro.__file__).resolve().parents[2]
    try:
        text = (root / "pyproject.toml").read_text(encoding="utf-8")
    except OSError:
        return None
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, flags=re.MULTILINE)
    return match.group(1) if match else None


class TestVersion:
    def test_package_exports_version(self):
        assert repro.__version__ == __version__
        assert __version__ and __version__ != "0+unknown"

    def test_matches_pyproject(self):
        expected = pyproject_version()
        if expected is None:
            pytest.skip("no pyproject.toml in this layout (installed package)")
        assert __version__ == expected

    def test_git_revision_shape(self):
        rev = git_revision()
        # None outside a git checkout; short hex hash inside one.
        if rev is not None:
            assert re.fullmatch(r"[0-9a-f]{7,40}", rev)

    def test_version_blurb(self):
        blurb = version_blurb("prog")
        assert blurb.startswith(f"prog {__version__}")


class TestVersionFlag:
    def test_cli_version_flag(self, capsys):
        from repro.experiments.report import effort_argparser

        parser = effort_argparser("doc")
        with pytest.raises(SystemExit) as exc:
            parser.parse_args(["--version"])
        assert exc.value.code == 0
        out = capsys.readouterr().out
        assert __version__ in out

    def test_stamp_carries_version(self):
        from repro.service.protocol import stamp

        fields = stamp()
        assert fields["repro_version"] == __version__
        assert "git_rev" in fields
