"""Unit tests for the West-First and Odd-Even turn-model routings."""

import itertools

import numpy as np
import pytest

from repro import build_simulation
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.topology import EAST, LOCAL, NORTH, SOUTH, WEST, MeshTopology
from repro.routing import OddEvenRouting, WestFirstRouting, make_routing


def make_net(routing, width=8, height=8):
    cfg = NocConfig(width=width, height=height)
    _, net = build_simulation(cfg, routing=routing)
    return net


def pkt(src, dst):
    return Packet(src=src, dst=dst, length=1, inject_cycle=0)


def walk_all_choices(net, src, dst, max_paths=4096):
    """Enumerate every path the admissible relation permits (minimal only)."""
    topo = net.topology
    paths = [[src]]
    done = []
    while paths:
        if len(done) + len(paths) > max_paths:
            raise AssertionError("path explosion — relation is not minimal")
        path = paths.pop()
        cur = path[-1]
        if cur == dst:
            done.append(path)
            continue
        p = pkt(src, dst)
        ports = net.routing.admissible_ports(cur, p)
        assert ports, f"no admissible port at {cur} for {src}->{dst}"
        for port in ports:
            nxt = topo.neighbor[cur][port]
            assert nxt >= 0, "admissible port points off the mesh"
            paths.append(path + [nxt])
    return done


class TestFactory:
    def test_names(self):
        assert isinstance(make_routing("wf"), WestFirstRouting)
        assert isinstance(make_routing("west_first"), WestFirstRouting)
        assert isinstance(make_routing("oe"), OddEvenRouting)
        assert isinstance(make_routing("odd_even"), OddEvenRouting)


@pytest.mark.parametrize("name", ["wf", "oe"])
class TestMinimalReachability:
    def test_all_pairs_reach_minimally(self, name):
        net = make_net(name, width=5, height=5)
        topo = net.topology
        for src, dst in itertools.product(range(25), repeat=2):
            if src == dst:
                continue
            for path in walk_all_choices(net, src, dst):
                assert len(path) - 1 == topo.hop_distance(src, dst)

    def test_destination_yields_local(self, name):
        net = make_net(name)
        assert net.routing.admissible_ports(9, pkt(9, 9)) == (LOCAL,)

    def test_escape_port_is_admissible(self, name):
        net = make_net(name, width=5, height=5)
        rng = np.random.default_rng(1)
        for _ in range(50):
            src, dst = rng.integers(25, size=2)
            if src == dst:
                continue
            p = pkt(int(src), int(dst))
            assert net.routing.escape_port(p.src, p) in net.routing.admissible_ports(
                p.src, p
            )


class TestWestFirstRules:
    def test_westbound_is_deterministic(self):
        net = make_net("wf")
        topo = net.topology
        src = topo.node_at(5, 2)
        dst = topo.node_at(1, 6)
        assert net.routing.admissible_ports(src, pkt(src, dst)) == (WEST,)

    def test_no_turn_into_west(self):
        """Once x is aligned, the relation never offers WEST again."""
        net = make_net("wf")
        topo = net.topology
        src = topo.node_at(5, 2)
        dst = topo.node_at(1, 6)
        aligned = topo.node_at(1, 3)
        ports = net.routing.admissible_ports(aligned, pkt(src, dst))
        assert WEST not in ports
        assert ports == (SOUTH,)

    def test_eastbound_is_adaptive(self):
        net = make_net("wf")
        topo = net.topology
        src = topo.node_at(1, 1)
        dst = topo.node_at(5, 5)
        assert set(net.routing.admissible_ports(src, pkt(src, dst))) == {EAST, SOUTH}


class TestOddEvenRules:
    def test_no_en_es_turn_possible_in_even_columns(self):
        """Eastbound packets in even non-source columns may not turn vertical."""
        net = make_net("oe")
        topo = net.topology
        src = topo.node_at(1, 1)
        dst = topo.node_at(7, 5)
        cur = topo.node_at(4, 1)  # even column, not the source column
        ports = net.routing.admissible_ports(cur, pkt(src, dst))
        assert NORTH not in ports and SOUTH not in ports

    def test_vertical_allowed_in_odd_columns(self):
        net = make_net("oe")
        topo = net.topology
        src = topo.node_at(1, 1)
        dst = topo.node_at(7, 5)
        cur = topo.node_at(3, 1)
        ports = net.routing.admissible_ports(cur, pkt(src, dst))
        assert SOUTH in ports

    def test_source_column_turn_exception(self):
        # At the source column no turn is taken, so vertical is allowed
        # even when that column is even.
        net = make_net("oe")
        topo = net.topology
        src = topo.node_at(2, 1)
        dst = topo.node_at(7, 5)
        ports = net.routing.admissible_ports(src, pkt(src, dst))
        assert SOUTH in ports

    def test_must_leave_east_before_even_destination_column(self):
        # Immediately west of an even destination column with rows left to
        # cover, continuing east would strand the packet (NW/SW into odd
        # columns only): EAST must be withheld.
        net = make_net("oe")
        topo = net.topology
        src = topo.node_at(0, 0)
        dst = topo.node_at(4, 4)
        cur = topo.node_at(3, 0)
        ports = net.routing.admissible_ports(cur, pkt(src, dst))
        assert EAST not in ports
        assert ports == (SOUTH,)

    def test_westbound_vertical_only_in_even_columns(self):
        net = make_net("oe")
        topo = net.topology
        src = topo.node_at(6, 1)
        dst = topo.node_at(1, 5)
        even_col = topo.node_at(4, 2)
        odd_col = topo.node_at(3, 2)
        assert SOUTH in net.routing.admissible_ports(even_col, pkt(src, dst))
        assert net.routing.admissible_ports(odd_col, pkt(src, dst)) == (WEST,)


@pytest.mark.parametrize("name", ["wf", "oe"])
class TestEndToEnd:
    def test_uniform_traffic_drains(self, name):
        from repro.traffic.patterns import UniformPattern
        from repro.traffic.synthetic import SyntheticTrafficSource

        cfg = NocConfig(width=5, height=5)
        sim, net = build_simulation(cfg, routing=name)
        sim.add_traffic(
            SyntheticTrafficSource(
                nodes=range(25), rate=0.15, pattern=UniformPattern(net.topology),
                app_id=0, seed=4, stop=400,
            )
        )
        sim.run(400)
        assert sim.run_until_drained(20_000)
        assert net.stats.packets_ejected > 100

    def test_composes_with_rair(self, name):
        from repro.core.regions import RegionMap
        from repro.traffic.regional import RegionalAppTraffic

        cfg = NocConfig(width=6, height=6)
        topo = MeshTopology(6, 6)
        rm = RegionMap.halves(topo)
        sim, net = build_simulation(cfg, region_map=rm, scheme="rair", routing=name)
        for app in (0, 1):
            sim.add_traffic(
                RegionalAppTraffic(
                    rm, app, rate=0.1, seed=app + 1,
                    intra_fraction=0.7, inter_fraction=0.3, mc_fraction=0.0,
                    stop=400,
                )
            )
        sim.run(400)
        assert sim.run_until_drained(20_000)
        assert net.stats.packets_ejected > 50
