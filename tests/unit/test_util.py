"""Unit tests for util: errors, rng, validation."""

import numpy as np
import pytest

from repro.util.errors import ConfigError, ReproError, SimulationError, TrafficError
from repro.util.rng import make_rng, spawn_rngs
from repro.util.validate import check_fraction, check_in, check_positive, require


class TestErrors:
    def test_hierarchy(self):
        assert issubclass(ConfigError, ReproError)
        assert issubclass(SimulationError, ReproError)
        assert issubclass(TrafficError, ReproError)

    def test_config_error_is_value_error(self):
        # Callers used to ValueError semantics keep working.
        assert issubclass(ConfigError, ValueError)

    def test_simulation_error_is_runtime_error(self):
        assert issubclass(SimulationError, RuntimeError)


class TestRng:
    def test_int_seed_reproducible(self):
        a, b = make_rng(123), make_rng(123)
        assert a.random() == b.random()

    def test_generator_passthrough(self):
        g = np.random.default_rng(5)
        assert make_rng(g) is g

    def test_spawn_streams_differ(self):
        rngs = spawn_rngs(7, 4)
        firsts = [r.random() for r in rngs]
        assert len(set(firsts)) == 4

    def test_spawn_is_stable(self):
        a = [r.random() for r in spawn_rngs(7, 3)]
        b = [r.random() for r in spawn_rngs(7, 3)]
        assert a == b

    def test_spawn_rejects_negative_count(self):
        with pytest.raises(ValueError):
            spawn_rngs(1, -1)


class TestValidate:
    def test_require(self):
        require(True, "fine")
        with pytest.raises(ConfigError, match="broken"):
            require(False, "broken")

    def test_check_positive(self):
        check_positive(1e-9, "x")
        with pytest.raises(ConfigError):
            check_positive(0, "x")
        with pytest.raises(ConfigError):
            check_positive(-1, "x")

    def test_check_fraction(self):
        check_fraction(0.0, "f")
        check_fraction(1.0, "f")
        with pytest.raises(ConfigError):
            check_fraction(1.01, "f")
        with pytest.raises(ConfigError):
            check_fraction(-0.01, "f")

    def test_check_in(self):
        check_in("a", {"a", "b"}, "opt")
        with pytest.raises(ConfigError):
            check_in("c", {"a", "b"}, "opt")
