"""Unit tests for arbitration: rotating_pick and the policy priority keys."""

import pytest

from repro.arbitration import (
    AgeBasedPolicy,
    ArbitrationPolicy,
    RoundRobinPolicy,
    StcPolicy,
    make_policy,
    rotating_pick,
)
from repro.core.rair import RairPolicy
from repro.util.errors import ConfigError


class TestRotatingPick:
    def test_single_candidate(self):
        winner, ptr = rotating_pick([7], id_of=lambda x: x, ptr=0, modulo=10)
        assert winner == 7
        assert ptr == 8

    def test_round_robin_cycles_fairly(self):
        cands = [0, 1, 2, 3]
        ptr = 0
        winners = []
        for _ in range(8):
            w, ptr = rotating_pick(cands, lambda x: x, ptr, 4)
            winners.append(w)
        assert winners == [0, 1, 2, 3, 0, 1, 2, 3]

    def test_pointer_skips_absent_candidates(self):
        w, ptr = rotating_pick([2, 3], lambda x: x, ptr=0, modulo=4)
        assert w == 2
        w, ptr = rotating_pick([1, 3], lambda x: x, ptr=ptr, modulo=4)
        assert w == 3  # closest at/after pointer 3

    def test_priority_dominates_rotation(self):
        # Candidate 3 has better (lower) priority than 0 even though the
        # pointer favours 0.
        prio = {0: 5, 3: 1}
        w, _ = rotating_pick([0, 3], lambda x: x, ptr=0, modulo=4, priority_of=prio.get)
        assert w == 3

    def test_rotation_breaks_priority_ties(self):
        prio = {1: 0, 2: 0}
        w, ptr = rotating_pick([1, 2], lambda x: x, ptr=2, modulo=4, priority_of=prio.get)
        assert w == 2  # pointer at 2 favours slot 2 among equals
        w, _ = rotating_pick([1, 2], lambda x: x, ptr=ptr, modulo=4, priority_of=prio.get)
        assert w == 1


class TestFactory:
    def test_known_names(self):
        assert isinstance(make_policy("rr"), RoundRobinPolicy)
        assert isinstance(make_policy("ro_rr"), RoundRobinPolicy)
        assert isinstance(make_policy("age"), AgeBasedPolicy)
        assert isinstance(make_policy("stc"), StcPolicy)
        assert isinstance(make_policy("rair"), RairPolicy)

    def test_unknown_name(self):
        with pytest.raises(ValueError):
            make_policy("lottery")


class TestPolicyFlags:
    def test_round_robin_uses_no_priority(self):
        p = RoundRobinPolicy()
        assert not p.uses_va_priority and not p.uses_sa_priority

    def test_age_uses_priority_everywhere(self):
        p = AgeBasedPolicy()
        assert p.uses_va_priority and p.uses_sa_priority

    def test_base_policy_priority_keys_are_constant(self):
        p = ArbitrationPolicy()
        assert p.va_out_priority(None, None, None) == 0
        assert p.sa_priority(None, None) == 0


class TestStc:
    def test_parameters_validated(self):
        with pytest.raises(ConfigError):
            StcPolicy(rank_interval=0)
        with pytest.raises(ConfigError):
            StcPolicy(batch_period=-1)

    def test_batch_dominates_rank(self):
        policy = StcPolicy(batch_period=100)
        policy.ranks = {0: 0, 1: 5}

        class FakeVC:
            def __init__(self, inject, app):
                self.pkt = type("P", (), {"inject_cycle": inject, "app_id": app})()

        old_low_rank = FakeVC(inject=50, app=1)  # batch 0, bad rank
        new_high_rank = FakeVC(inject=150, app=0)  # batch 1, best rank
        assert policy._key(old_low_rank) < policy._key(new_high_rank)

    def test_rank_within_batch(self):
        policy = StcPolicy(batch_period=1000)
        policy.ranks = {0: 0, 1: 5}

        class FakeVC:
            def __init__(self, app):
                self.pkt = type("P", (), {"inject_cycle": 10, "app_id": app})()

        assert policy._key(FakeVC(0)) < policy._key(FakeVC(1))

    def test_unknown_app_ranks_worst(self):
        policy = StcPolicy()
        policy.ranks = {0: 3}

        class FakeVC:
            def __init__(self, app):
                self.pkt = type("P", (), {"inject_cycle": 0, "app_id": app})()

        assert policy._key(FakeVC(0)) < policy._key(FakeVC(42))

    def test_ranking_orders_by_intensity(self):
        policy = StcPolicy(rank_interval=100)

        class FakeNet:
            app_flits_injected = {0: 500, 1: 100, 2: 300}

        policy.end_network_cycle(FakeNet(), cycle=100)
        # Least intensive app gets rank 0 (highest priority).
        assert policy.ranks == {1: 0, 2: 1, 0: 2}

    def test_ranking_uses_interval_delta_not_totals(self):
        policy = StcPolicy(rank_interval=100)

        class FakeNet:
            app_flits_injected = {0: 500, 1: 100}

        policy.end_network_cycle(FakeNet(), cycle=100)
        # Next interval: app0 goes quiet, app1 bursts.
        FakeNet.app_flits_injected = {0: 510, 1: 400}
        policy.end_network_cycle(FakeNet(), cycle=200)
        assert policy.ranks == {0: 0, 1: 1}

    def test_no_rank_update_off_interval(self):
        policy = StcPolicy(rank_interval=100)

        class FakeNet:
            app_flits_injected = {0: 1}

        policy.end_network_cycle(FakeNet(), cycle=50)
        assert policy.ranks == {}


class TestAgePriority:
    def test_older_packet_wins(self):
        p = AgeBasedPolicy()

        class FakeVC:
            def __init__(self, inject):
                self.pkt = type("P", (), {"inject_cycle": inject})()

        old, new = FakeVC(5), FakeVC(50)
        assert p.va_out_priority(None, None, old) < p.va_out_priority(None, None, new)
        assert p.sa_priority(None, old) < p.sa_priority(None, new)
