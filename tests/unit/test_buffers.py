"""Unit tests for the InputVC state machine."""

import pytest

from repro.noc.buffers import VC_ACTIVE, VC_IDLE, VC_VA, InputVC
from repro.noc.config import VcClass
from repro.noc.flit import Packet
from repro.util.errors import SimulationError


def make_vc(**kw):
    defaults = dict(node=0, port=1, vc=0, vnet=0, vc_class=VcClass.GLOBAL, is_escape=True)
    defaults.update(kw)
    return InputVC(**defaults)


def make_pkt(length=3, vnet=0, **kw):
    return Packet(src=0, dst=5, length=length, inject_cycle=0, vnet=vnet, **kw)


class TestHeadArrival:
    def test_head_moves_idle_to_va(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(), cycle=10, native=True)
        assert vc.state == VC_VA
        assert vc.va_ready == 11
        assert vc.occupancy() == 1
        assert vc.is_native

    def test_head_on_busy_vc_rejected(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(), cycle=10, native=True)
        with pytest.raises(SimulationError):
            vc.head_arrive(make_pkt(), cycle=11, native=True)

    def test_wrong_vnet_rejected(self):
        vc = make_vc(vnet=1)
        with pytest.raises(SimulationError):
            vc.head_arrive(make_pkt(vnet=0), cycle=0, native=True)

    def test_foreign_classification_cached(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(), cycle=0, native=False)
        assert not vc.is_native


class TestBodyArrival:
    def test_body_increments_occupancy(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(length=3), cycle=0, native=True)
        vc.body_arrive(1)
        vc.body_arrive(2)
        assert vc.occupancy() == 3
        assert vc.flits_recv == 3

    def test_body_on_empty_vc_rejected(self):
        vc = make_vc()
        with pytest.raises(SimulationError):
            vc.body_arrive(0)

    def test_too_many_flits_rejected(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(length=1), cycle=0, native=True)
        with pytest.raises(SimulationError):
            vc.body_arrive(1)


class TestPipelineGates:
    def test_wants_va_respects_ready_cycle(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(), cycle=5, native=True)
        assert not vc.wants_va(5)  # same cycle as buffer write
        assert vc.wants_va(6)

    def test_grant_requires_va_state(self):
        vc = make_vc()
        with pytest.raises(SimulationError):
            vc.grant_vc(2, 1, cycle=0)

    def test_grant_moves_to_active_with_setup_delay(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(), cycle=0, native=True)
        vc.grant_vc(2, 1, cycle=1)
        assert vc.state == VC_ACTIVE
        assert (vc.out_port, vc.out_vc) == (2, 1)
        assert vc.sa_ready == 2

    def test_wants_sa_gates(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(), cycle=0, native=True)
        vc.grant_vc(2, 1, cycle=1)
        assert not vc.wants_sa(1)  # sa_ready not reached
        assert vc.wants_sa(2)  # flit arrived at 0 < 2, sa_ready == 2

    def test_wants_sa_needs_buffered_flit_from_earlier_cycle(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(length=2), cycle=0, native=True)
        vc.grant_vc(2, 1, cycle=1)
        vc.send_flit(2)
        # Second flit arrives *in* cycle 2 -> not eligible until cycle 3.
        vc.body_arrive(2)
        assert not vc.wants_sa(2)
        assert vc.wants_sa(3)


class TestSendAndRelease:
    def test_tail_releases_vc(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(length=2), cycle=0, native=True)
        vc.body_arrive(1)
        vc.grant_vc(2, 1, cycle=1)
        assert not vc.send_flit(2)
        assert vc.send_flit(3)
        assert vc.state == VC_IDLE
        assert vc.pkt is None
        assert vc.occupancy() == 0
        assert vc.route_ports is None

    def test_send_from_empty_buffer_rejected(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(length=2), cycle=0, native=True)
        vc.grant_vc(2, 1, cycle=1)
        vc.send_flit(2)
        with pytest.raises(SimulationError):
            vc.send_flit(3)  # second flit never arrived

    def test_released_vc_accepts_new_packet(self):
        vc = make_vc()
        vc.head_arrive(make_pkt(length=1), cycle=0, native=True)
        vc.grant_vc(2, 1, cycle=1)
        vc.send_flit(2)
        vc.head_arrive(make_pkt(length=1), cycle=5, native=False)
        assert vc.state == VC_VA
        assert not vc.is_native
