"""Unit tests for the observability JSONL schema validators."""

from __future__ import annotations

import pytest

from repro.obs.schema import (
    LATENCY_CLASSES,
    RECORD_KINDS,
    SCHEMA_VERSION,
    ObsSchemaError,
    load_jsonl,
    validate_record,
    validate_stream,
)


def _header(**over) -> dict:
    rec = {
        "kind": "header",
        "schema": SCHEMA_VERSION,
        "name": "run",
        "width": 4,
        "height": 4,
        "num_nodes": 16,
        "sample_period": 64,
        "start_cycle": 0,
    }
    rec.update(over)
    return rec


def _summary(**over) -> dict:
    rec = {
        "kind": "summary",
        "cycle": 500,
        "samples": 7,
        "events": 12,
        "dpa_flips": 3,
        "link_util": {"mean": 0.1, "max": 0.5, "max_node": 0, "max_port": 1},
    }
    rec.update(over)
    return rec


def _stream() -> list[dict]:
    """A minimal valid stream touching every record kind."""
    return [
        _header(),
        {"kind": "dpa_init", "cycle": 0, "native_high": [False] * 16},
        {
            "kind": "dpa_flip", "cycle": 64, "node": 3,
            "native_high": True, "ovc_n": 1, "ovc_f": 4,
        },
        {
            "kind": "vc_sample", "cycle": 64,
            "occupancy": [0] * 16, "ovc_n": [0] * 16, "ovc_f": [0] * 16,
        },
        {"kind": "link_sample", "cycle": 64, "flits": [[0] * 5] * 16},
        {
            "kind": "latency_class", "cls": "native", "count": 2,
            "mean": 10.0, "p50": 10.0, "p95": 12.0, "p99": 12.0, "max": 12.0,
            "hist": [0, 0, 0, 2],
        },
        {"kind": "latency_class", "cls": "foreign", "count": 0},
        {"kind": "latency_class", "cls": "global", "count": 0},
        _summary(),
    ]


def _guard_header(**over) -> dict:
    rec = {
        "kind": "guard_header",
        "schema": SCHEMA_VERSION,
        "name": "test_bb",
        "mode": "strict",
        "width": 4,
        "height": 4,
        "num_nodes": 16,
        "topology": "mesh",
        "depth": 1024,
        "start_cycle": 0,
    }
    rec.update(over)
    return rec


def _violation(**over) -> dict:
    rec = {
        "kind": "guard_violation",
        "cycle": 120,
        "reason": "deadlock",
        "message": "channel-wait cycle across 2 VCs",
        "ring": [],
        "buffered_total": 8,
        "packets_in_flight": 2,
        "queued": 0,
    }
    rec.update(over)
    return rec


def _blackbox_stream() -> list[dict]:
    """A minimal valid guard-blackbox stream (the second flavour)."""
    return [
        _guard_header(),
        {"kind": "guard_event", "cycle": 100, "event": "wake", "args": [3]},
        {
            "kind": "router_snapshot", "cycle": 120, "node": 3,
            "busy_vcs": 2, "native_high": False, "ovc_n": 1, "ovc_f": 1,
            "vcs": [], "credits": [[5] * 4] * 5, "owners": [[-1] * 4] * 5,
        },
        _violation(),
    ]


class TestValidateRecord:
    def test_every_kind_in_the_minimal_streams_validates(self):
        kinds = [
            validate_record(rec) for rec in _stream() + _blackbox_stream()
        ]
        assert set(kinds) == set(RECORD_KINDS)

    def test_non_object_rejected(self):
        with pytest.raises(ObsSchemaError, match="not an object"):
            validate_record([1, 2, 3])

    def test_unknown_kind_rejected(self):
        with pytest.raises(ObsSchemaError, match="unknown record kind"):
            validate_record({"kind": "telemetry"})
        with pytest.raises(ObsSchemaError, match="unknown record kind"):
            validate_record({"cycle": 5})  # no kind at all

    def test_missing_field_rejected_with_lineno(self):
        rec = _header()
        del rec["sample_period"]
        with pytest.raises(ObsSchemaError, match=r"sample_period.*line 17"):
            validate_record(rec, lineno=17)

    def test_wrong_type_rejected(self):
        with pytest.raises(ObsSchemaError, match="has type str"):
            validate_record(_header(width="4"))

    def test_bool_is_not_an_int(self):
        # bool subclasses int; an int field must still reject it.
        with pytest.raises(ObsSchemaError, match="must be an integer, got bool"):
            validate_record(_header(width=True))

    def test_int_is_not_a_bool(self):
        rec = {
            "kind": "dpa_flip", "cycle": 1, "node": 0,
            "native_high": 1, "ovc_n": 0, "ovc_f": 0,
        }
        with pytest.raises(ObsSchemaError, match="native_high"):
            validate_record(rec)

    def test_extra_fields_are_tolerated(self):
        # Forward compatibility: new optional fields keep the version.
        assert validate_record(_header(comment="added in v1.1")) == "header"

    def test_unknown_latency_class_rejected(self):
        rec = {"kind": "latency_class", "cls": "adversarial", "count": 0}
        with pytest.raises(ObsSchemaError, match="unknown latency class"):
            validate_record(rec)

    def test_nonempty_latency_class_requires_stats(self):
        rec = {"kind": "latency_class", "cls": "native", "count": 3}
        with pytest.raises(ObsSchemaError, match="missing numeric field"):
            validate_record(rec)
        rec.update(mean=1.0, p50=1.0, p95=1.0, p99=1.0, max=1.0)
        with pytest.raises(ObsSchemaError, match="'hist'"):
            validate_record(rec)
        rec["hist"] = [3]
        assert validate_record(rec) == "latency_class"

    def test_empty_latency_class_needs_no_stats(self):
        for cls in LATENCY_CLASSES:
            assert validate_record({"kind": "latency_class", "cls": cls, "count": 0})


class TestValidateStream:
    def test_minimal_stream_counts(self):
        counts = validate_stream(_stream())
        assert counts == {
            "header": 1, "dpa_init": 1, "dpa_flip": 1, "vc_sample": 1,
            "link_sample": 1, "latency_class": 3, "summary": 1,
        }

    def test_empty_stream_rejected(self):
        with pytest.raises(ObsSchemaError, match="empty stream"):
            validate_stream([])

    def test_must_start_with_header(self):
        stream = _stream()[1:]
        with pytest.raises(ObsSchemaError, match="must start with a header"):
            validate_stream(stream)

    def test_future_schema_version_rejected(self):
        stream = _stream()
        stream[0] = _header(schema=SCHEMA_VERSION + 1)
        with pytest.raises(ObsSchemaError, match="unsupported schema version"):
            validate_stream(stream)

    def test_duplicate_header_rejected(self):
        stream = _stream()
        stream.insert(4, _header())
        with pytest.raises(ObsSchemaError, match="duplicate header at line 5"):
            validate_stream(stream)

    def test_time_must_not_go_backwards(self):
        stream = _stream()
        stream.insert(
            5,
            {
                "kind": "dpa_flip", "cycle": 10, "node": 3,
                "native_high": False, "ovc_n": 2, "ovc_f": 1,
            },
        )
        with pytest.raises(ObsSchemaError, match="cycle went backwards at line 6"):
            validate_stream(stream)

    def test_exactly_one_trailing_summary(self):
        no_summary = _stream()[:-1]
        with pytest.raises(ObsSchemaError, match="exactly one summary"):
            validate_stream(no_summary)
        double = _stream() + [_summary()]
        with pytest.raises(ObsSchemaError, match="exactly one summary"):
            validate_stream(double)
        not_last = _stream() + [{"kind": "latency_class", "cls": "native", "count": 0}]
        with pytest.raises(ObsSchemaError, match="exactly one summary"):
            validate_stream(not_last)

    def test_latency_classes_constant_matches_schema(self):
        assert LATENCY_CLASSES == ("native", "foreign", "global")

    def test_minimal_blackbox_stream_counts(self):
        counts = validate_stream(_blackbox_stream())
        assert counts == {
            "guard_header": 1, "guard_event": 1,
            "router_snapshot": 1, "guard_violation": 1,
        }

    def test_blackbox_must_end_with_one_violation(self):
        truncated = _blackbox_stream()[:-1]
        with pytest.raises(ObsSchemaError, match="exactly one guard_violation"):
            validate_stream(truncated)
        double = _blackbox_stream() + [_violation()]
        with pytest.raises(ObsSchemaError, match="exactly one guard_violation"):
            validate_stream(double)

    def test_flavours_do_not_mix(self):
        # a summary cannot terminate a blackbox stream (unknown terminal),
        # and a guard_header cannot appear mid-obs-stream.
        mixed = _stream()
        mixed.insert(3, _guard_header())
        with pytest.raises(ObsSchemaError, match="duplicate header"):
            validate_stream(mixed)

    def test_blackbox_time_ordering_enforced(self):
        stream = _blackbox_stream()
        stream.insert(
            2, {"kind": "guard_event", "cycle": 5, "event": "sleep", "args": [3]}
        )
        with pytest.raises(ObsSchemaError, match="cycle went backwards"):
            validate_stream(stream)


class TestLoadJsonl:
    def test_round_trip_skips_blank_lines(self, tmp_path):
        path = tmp_path / "run.jsonl"
        path.write_text('{"kind":"header"}\n\n{"kind":"summary"}\n')
        assert load_jsonl(path) == [{"kind": "header"}, {"kind": "summary"}]

    def test_invalid_json_names_path_and_line(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text('{"kind":"header"}\n{oops\n')
        with pytest.raises(ObsSchemaError, match=r"bad\.jsonl:2"):
            load_jsonl(path)
