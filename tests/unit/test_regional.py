"""Unit tests for the regionalized per-application traffic source."""

import pytest

from repro.core.regions import RegionMap
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import UniformPattern
from repro.traffic.regional import RegionalAppTraffic
from repro.util.errors import TrafficError


class FakeNetwork:
    def __init__(self):
        self.packets = []

    def inject(self, pkt):
        self.packets.append(pkt)


@pytest.fixture
def quads():
    return RegionMap.quadrants(MeshTopology(8, 8))


def make(quads, app=0, **kw):
    defaults = dict(rate=0.3, seed=7)
    defaults.update(kw)
    return RegionalAppTraffic(quads, app, **defaults)


def generate(source, cycles=600):
    net = FakeNetwork()
    for cycle in range(cycles):
        source.tick(cycle, net)
    return net.packets


class TestValidation:
    def test_fractions_must_sum_to_one(self, quads):
        with pytest.raises(TrafficError, match="sum to 1"):
            make(quads, intra_fraction=0.5, inter_fraction=0.2, mc_fraction=0.0)

    def test_unknown_app_rejected(self, quads):
        with pytest.raises(TrafficError):
            make(quads, app=9)


class TestComposition:
    def test_component_fractions_realized(self, quads):
        src = make(quads, intra_fraction=0.6, inter_fraction=0.3, mc_fraction=0.1)
        packets = generate(src, 1500)
        assert len(packets) > 500
        own = set(quads.nodes_of(0))
        mcs = set(src.mc_nodes.tolist())
        intra = sum(1 for p in packets if p.src in own and p.dst in own)
        frac = intra / len(packets)
        assert 0.5 < frac < 0.7  # ~0.6 minus the occasional resample

    def test_pure_intra_never_leaves_region(self, quads):
        src = make(quads, intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0)
        own = set(quads.nodes_of(0))
        for p in generate(src):
            assert p.src in own and p.dst in own
            assert not p.is_global

    def test_inter_component_always_leaves_region(self, quads):
        src = make(quads, intra_fraction=0.0, inter_fraction=1.0, mc_fraction=0.0)
        own = set(quads.nodes_of(0))
        packets = generate(src)
        assert packets
        for p in packets:
            assert p.src in own
            assert p.dst not in own
            assert p.is_global

    def test_mc_component_touches_corners_both_ways(self, quads):
        src = make(quads, intra_fraction=0.0, inter_fraction=0.0, mc_fraction=1.0)
        corners = set(src.mc_nodes.tolist())
        packets = generate(src, 1200)
        to_mc = [p for p in packets if p.dst in corners]
        from_mc = [p for p in packets if p.src in corners]
        assert to_mc and from_mc  # "to and from the 4 corner nodes"
        # Both directions are attributed to the owning application.
        assert all(p.app_id == 0 for p in packets)

    def test_custom_inter_pattern_respected(self, quads):
        target = UniformPattern(quads.topology, quads.nodes_of(3))
        src = make(
            quads, intra_fraction=0.0, inter_fraction=1.0, mc_fraction=0.0,
            inter_pattern=target,
        )
        region3 = set(quads.nodes_of(3))
        for p in generate(src):
            assert p.dst in region3

    def test_app_tagging(self, quads):
        src = make(quads, app=2)
        assert all(p.app_id == 2 for p in generate(src))

    def test_offered_rate_matches_config(self, quads):
        src = make(quads, rate=0.24)
        generate(src, 3000)
        offered = src.flits_injected / (3000 * len(quads.nodes_of(0)))
        assert offered == pytest.approx(0.24, rel=0.08)
