"""Unit tests for the fault-tolerance primitives of the cell engine:
exception classification, deterministic backoff, policy validation,
failure records, report accounting, and the serial retry loop."""

from __future__ import annotations

from concurrent.futures.process import BrokenProcessPool

import pytest

from repro.experiments.chaos import chaos_cell
from repro.experiments.parallel import (
    CellFailure,
    ExecutionReport,
    FaultPolicy,
    backoff_delay,
    classify_exception,
    run_cells,
    run_cells_detailed,
)
from repro.experiments.runner import SCHEMES, Effort
from repro.util.errors import (
    ConfigError,
    DeadlineError,
    SimulationError,
    TrafficError,
)

SCHEME = SCHEMES["RO_RR"]

#: near-zero backoff so retry tests don't sleep for real
FAST = FaultPolicy(max_attempts=3, backoff_base_s=0.001)


class TestClassification:
    @pytest.mark.parametrize("exc", [
        ConfigError("x"),
        SimulationError("x"),
        TrafficError("x"),
        DeadlineError("x"),
        ValueError("x"),
        TypeError("x"),
        KeyError("x"),
        AssertionError("x"),
        ZeroDivisionError("x"),
    ])
    def test_deterministic_errors_are_not_retryable(self, exc):
        assert classify_exception(exc) is False

    @pytest.mark.parametrize("exc", [
        OSError("io"),
        MemoryError(),
        BrokenProcessPool("worker died"),
    ])
    def test_environmental_errors_are_retryable(self, exc):
        assert classify_exception(exc) is True

    def test_unknown_exceptions_default_to_not_retryable(self):
        assert classify_exception(RuntimeError("novel bug")) is False

    def test_domain_subclasses_beat_oserror(self):
        # TrafficError-style domain errors must stay non-retryable even if
        # a future refactor makes one inherit from a retryable base.
        class DomainIOError(SimulationError, OSError):
            pass

        assert classify_exception(DomainIOError("x")) is False


class TestBackoff:
    POLICY = FaultPolicy(backoff_base_s=0.1, backoff_max_s=1.0)

    def test_deterministic_per_cell_and_attempt(self):
        assert backoff_delay(self.POLICY, 42, 1) == backoff_delay(self.POLICY, 42, 1)
        assert backoff_delay(self.POLICY, 42, 1) != backoff_delay(self.POLICY, 43, 1)
        assert backoff_delay(self.POLICY, 42, 1) != backoff_delay(self.POLICY, 42, 2)

    @pytest.mark.parametrize("attempt", [1, 2, 3, 8])
    def test_jitter_stays_within_half_to_threehalves_of_base(self, attempt):
        base = min(
            self.POLICY.backoff_max_s,
            self.POLICY.backoff_base_s * 2 ** (attempt - 1),
        )
        for seed in range(20):
            delay = backoff_delay(self.POLICY, seed, attempt)
            assert 0.5 * base <= delay < 1.5 * base

    def test_exponential_growth_is_capped(self):
        # attempt 8 would be 0.1 * 2^7 = 12.8s uncapped; the cap holds it
        assert backoff_delay(self.POLICY, 7, 8) < 1.5 * self.POLICY.backoff_max_s


class TestFaultPolicyValidation:
    def test_zero_attempts_rejected(self):
        with pytest.raises(ConfigError, match="max_attempts"):
            FaultPolicy(max_attempts=0)

    def test_nonpositive_timeout_rejected(self):
        with pytest.raises(ConfigError, match="wall_timeout_s"):
            FaultPolicy(wall_timeout_s=0.0)

    def test_defaults_are_valid(self):
        policy = FaultPolicy()
        assert policy.max_attempts == 3
        assert policy.wall_timeout_s is None
        assert policy.retry_timeouts is False


class TestCellFailure:
    def test_summary_is_one_line(self):
        f = CellFailure(
            error_type="OSError", message="disk on fire\ndetails follow",
            traceback="...", attempts=3, wall_time_s=1.0, retryable=True,
        )
        assert f.summary() == "OSError: disk on fire"

    def test_summary_without_message(self):
        f = CellFailure(
            error_type="MemoryError", message="", traceback="",
            attempts=1, wall_time_s=0.1, retryable=True,
        )
        assert f.summary() == "MemoryError"


class TestExecutionReport:
    def test_quiet_counters_stay_out_of_metrics(self):
        m = ExecutionReport(cells=4, jobs=2).to_metrics()
        assert m["cells"] == 4 and m["jobs"] == 2
        assert m["failures"] == 0  # always present: the headline counter
        for absent in ("retries", "timeouts", "resumed", "cache_errors",
                       "cache_hits", "cache_misses"):
            assert absent not in m

    def test_nonzero_counters_appear(self):
        report = ExecutionReport(
            cells=4, jobs=2, cached=True, cache_hits=1, cache_misses=2,
            retries=5, failures=1, timeouts=1, resumed=1, cache_errors=2,
        )
        m = report.to_metrics()
        assert m["cache_hits"] == 1 and m["cache_misses"] == 2
        assert m["retries"] == 5 and m["failures"] == 1
        assert m["timeouts"] == 1 and m["resumed"] == 1
        assert m["cache_errors"] == 2

    def test_cycles_per_sec_guards_zero_wall_time(self):
        assert ExecutionReport(cells=1, jobs=1, sim_cycles=100).cycles_per_sec == 0.0


class TestSerialRetryLoop:
    """jobs=1 path: faults fire in-process, so records are fully observable."""

    def test_flaky_cell_heals_on_retry(self, tmp_path):
        cell = chaos_cell(SCHEME, Effort.SMOKE, seed=1, mode="flaky",
                          marker=str(tmp_path / "m"))
        results, report = run_cells_detailed([cell], jobs=1, policy=FAST)
        assert results[0].ok
        assert results[0].attempts == 2
        assert report.retries == 1
        assert report.failures == 0

    def test_transient_failure_burns_all_attempts(self):
        cell = chaos_cell(SCHEME, Effort.SMOKE, seed=1, mode="raise_transient")
        results, report = run_cells_detailed([cell], jobs=1, policy=FAST)
        failure = results[0].failure
        assert failure is not None
        assert failure.error_type == "OSError"
        assert failure.retryable is True
        assert failure.attempts == FAST.max_attempts
        assert report.retries == FAST.max_attempts - 1
        assert report.failures == 1

    def test_deterministic_failure_fails_fast(self):
        cell = chaos_cell(SCHEME, Effort.SMOKE, seed=1, mode="raise")
        results, report = run_cells_detailed([cell], jobs=1, policy=FAST)
        failure = results[0].failure
        assert failure.error_type == "SimulationError"
        assert failure.retryable is False
        assert failure.attempts == 1
        assert report.retries == 0
        assert "chaos" in failure.traceback  # real traceback text captured

    def test_one_poisoned_cell_does_not_abort_its_neighbours(self):
        cells = [
            chaos_cell(SCHEME, Effort.SMOKE, seed=1, mode="ok", cell_id=0),
            chaos_cell(SCHEME, Effort.SMOKE, seed=2, mode="raise"),
            chaos_cell(SCHEME, Effort.SMOKE, seed=3, mode="ok", cell_id=1),
        ]
        results, report = run_cells_detailed(cells, jobs=1, policy=FAST)
        assert [r.ok for r in results] == [True, False, True]
        assert report.failures == 1

    def test_strict_interface_reraises_the_original_exception(self):
        cell = chaos_cell(SCHEME, Effort.SMOKE, seed=1, mode="raise")
        with pytest.raises(SimulationError, match="injected deterministic"):
            run_cells([cell], jobs=1, policy=FAST)

    def test_cycle_budget_expiry_is_a_deadline_failure(self):
        cell = chaos_cell(SCHEME, Effort.SMOKE, seed=1, mode="ok")
        policy = FaultPolicy(max_attempts=3, cycle_budget=1)
        results, report = run_cells_detailed([cell], jobs=1, policy=policy)
        failure = results[0].failure
        assert failure is not None
        assert failure.error_type == "DeadlineError"
        assert failure.retryable is False  # rerunning cannot beat the budget
        assert failure.attempts == 1
        assert report.retries == 0

    def test_deadline_aborted_run_is_never_cached(self, tmp_path):
        # A generous budget lets warmup+measure finish but cuts the drain
        # short; the truncated run must not poison the cache for budget-free
        # callers.
        cell = chaos_cell(SCHEME, Effort.SMOKE, seed=1, mode="ok", rate=0.3)
        smoke_window = Effort.SMOKE.warmup + Effort.SMOKE.measure
        budget = FaultPolicy(cycle_budget=smoke_window + 1)
        budgeted, _ = run_cells_detailed(
            [cell], jobs=1, cache=tmp_path, policy=budget
        )
        assert budgeted[0].ok
        assert budgeted[0].run.abort == "deadline"
        free, report = run_cells_detailed([cell], jobs=1, cache=tmp_path)
        assert report.cache_misses == 1  # not served the truncated run
        assert free[0].run.abort != "deadline"
