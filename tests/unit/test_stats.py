"""Unit tests for statistics collection."""

import math

import numpy as np
import pytest

from repro.noc.flit import Packet
from repro.noc.stats import LatencyStats, NetworkStats


def eject(stats, src=0, dst=1, app=0, inject=0, eject_cycle=10, length=1,
          is_global=False, adversarial=False):
    pkt = Packet(
        src=src, dst=dst, length=length, inject_cycle=inject, app_id=app,
        is_global=is_global, is_adversarial=adversarial,
    )
    stats.record_ejection(pkt, eject_cycle)


class TestLatencyStats:
    def test_empty_gives_nans(self):
        summary = LatencyStats.from_samples(np.array([]))
        assert summary.count == 0
        assert math.isnan(summary.mean)

    def test_summary_values(self):
        summary = LatencyStats.from_samples(np.arange(1, 101, dtype=float))
        assert summary.count == 100
        assert summary.mean == pytest.approx(50.5)
        assert summary.median == pytest.approx(50.5)
        assert summary.p95 == pytest.approx(95.05)
        assert summary.max == 100


class TestNetworkStats:
    def test_apl(self):
        stats = NetworkStats()
        eject(stats, inject=0, eject_cycle=10)
        eject(stats, inject=5, eject_cycle=25)
        assert stats.apl() == pytest.approx(15.0)
        assert stats.packets_ejected == 2

    def test_window_filters_on_injection_cycle(self):
        stats = NetworkStats()
        eject(stats, inject=5, eject_cycle=100)
        eject(stats, inject=50, eject_cycle=60)
        assert stats.apl(window=(0, 10)) == pytest.approx(95.0)
        assert stats.apl(window=(40, 60)) == pytest.approx(10.0)
        assert stats.packet_count(window=(0, 60)) == 2

    def test_per_app_breakdown(self):
        stats = NetworkStats()
        eject(stats, app=0, inject=0, eject_cycle=10)
        eject(stats, app=1, inject=0, eject_cycle=30)
        assert stats.per_app_apl() == {0: 10.0, 1: 30.0}
        assert stats.apps() == [0, 1]

    def test_adversarial_excluded_by_default(self):
        stats = NetworkStats()
        eject(stats, inject=0, eject_cycle=10)
        eject(stats, inject=0, eject_cycle=1000, adversarial=True)
        assert stats.apl() == pytest.approx(10.0)
        assert stats.apl(include_adversarial=True) == pytest.approx(505.0)

    def test_global_filter(self):
        stats = NetworkStats()
        eject(stats, inject=0, eject_cycle=10, is_global=False)
        eject(stats, inject=0, eject_cycle=40, is_global=True)
        assert stats.apl(only_global=True) == pytest.approx(40.0)
        assert stats.apl(only_global=False) == pytest.approx(10.0)

    def test_apl_of_empty_filter_is_nan(self):
        stats = NetworkStats()
        eject(stats, app=0)
        assert math.isnan(stats.apl(app=3))

    def test_throughput_counts_flits_by_ejection(self):
        stats = NetworkStats()
        eject(stats, inject=0, eject_cycle=10, length=5)
        eject(stats, inject=0, eject_cycle=15, length=1)
        eject(stats, inject=0, eject_cycle=100, length=5)
        assert stats.throughput_flits(window=(0, 20)) == pytest.approx(6 / 20)

    def test_arrays_cache_invalidated_on_record(self):
        stats = NetworkStats()
        eject(stats, inject=0, eject_cycle=10)
        assert stats.apl() == 10.0
        eject(stats, inject=0, eject_cycle=30)
        assert stats.apl() == 20.0

    def test_per_app_excludes_unattributed(self):
        stats = NetworkStats()
        eject(stats, app=-1)
        eject(stats, app=2)
        assert list(stats.per_app_apl()) == [2]
