"""Unit tests for the kernel trace hooks (noc/trace.py).

Named ``test_kernel_trace`` because ``test_trace.py`` already covers
*traffic* traces; this file covers the scheduler-event protocol.
"""

from __future__ import annotations

from repro import RegionMap, build_simulation
from repro.noc.config import NocConfig
from repro.noc.topology import LOCAL, MeshTopology
from repro.noc.trace import KernelTrace, RecordingTrace
from repro.traffic.patterns import UniformPattern
from repro.traffic.regional import RegionalAppTraffic
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource


def _traced_run(trace, seed=9, length=3, measure=300):
    cfg = NocConfig(width=4, height=4)
    sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy", trace=trace)
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(cfg.num_nodes),
            rate=0.1,
            pattern=UniformPattern(net.topology),
            app_id=0,
            seed=seed,
            lengths=FixedLength(length),
        )
    )
    res = sim.run_measurement(warmup=50, measure=measure, drain_limit=20_000)
    assert res.drained
    # run_measurement only drains the measurement window; empty the
    # network completely so event counts balance exactly.
    sim.traffic_sources.clear()
    for _ in range(20_000):
        if net.idle() and not net.busy_routers():
            break
        sim.step()
    assert not net.busy_routers()
    return net


class TestKernelTraceBase:
    def test_all_hooks_are_noops(self):
        tr = KernelTrace()
        assert tr.va_grant(0, 1, 2, 3, 4, 0, 7) is None
        assert tr.sa_win(0, 1, 2, 3, 4, 7) is None
        assert tr.flit_send(0, 1, 4, 0, 7, True) is None
        assert tr.credit_return(0, 1, 2, 3) is None
        assert tr.wake(0, 1) is None
        assert tr.sleep(0, 1) is None
        assert tr.dpa_flip(0, 1, True, 2, 3) is None

    def test_untraced_network_has_no_tracer(self):
        cfg = NocConfig(width=4, height=4)
        _, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
        assert net.trace is None


class TestRecordingTrace:
    def test_records_in_signature_order(self):
        tr = RecordingTrace()
        tr.wake(5, 3)
        tr.va_grant(6, 3, 1, 2, 4, 0, 42)
        tr.flit_send(7, 3, 4, 0, 42, False)
        assert tr.events == [
            ("wake", 5, 3),
            ("va_grant", 6, 3, 1, 2, 4, 0, 42),
            ("flit_send", 7, 3, 4, 0, 42, False),
        ]

    def test_of_kind_counts_clear(self):
        tr = RecordingTrace()
        tr.wake(1, 0)
        tr.sleep(2, 0)
        tr.wake(3, 1)
        assert tr.of_kind("wake") == [("wake", 1, 0), ("wake", 3, 1)]
        assert tr.counts() == {"wake": 2, "sleep": 1}
        tr.clear()
        assert tr.events == []


class TestTracedSimulation:
    def test_event_stream_is_consistent(self):
        tr = RecordingTrace()
        net = _traced_run(tr, length=3)
        counts = tr.counts()
        # Something actually happened on every channel of the protocol.
        for kind in ("va_grant", "sa_win", "flit_send", "credit_return", "wake", "sleep"):
            assert counts[kind] > 0, f"no {kind} events recorded"
        # One packet-hop = one VA grant, and (once drained) ends in
        # exactly one tail flit leaving through the granted output VC.
        tails = [e for e in tr.of_kind("flit_send") if e[6]]
        assert counts["va_grant"] == len(tails)
        # Every switch win moves exactly one flit.
        assert counts["sa_win"] == counts["flit_send"]
        # Every flit sent to a neighbouring router returns one credit;
        # ejected flits (LOCAL port) do not.
        to_links = [e for e in tr.of_kind("flit_send") if e[3] != LOCAL]
        assert counts["credit_return"] == len(to_links)
        # A drained network has slept every router it woke.
        assert counts["wake"] == counts["sleep"]

    def test_flit_send_agrees_with_network_counter(self):
        tr = RecordingTrace()
        net = _traced_run(tr)
        assert len(tr.of_kind("flit_send")) == net.flits_moved

    def test_identical_runs_identical_streams(self):
        # Packet pids come from a process-global counter, so normalize
        # them to first-appearance order before comparing streams.
        _PID_FIELD = {"va_grant": 7, "sa_win": 6, "flit_send": 5}

        def normalized(trace):
            remap = {}
            out = []
            for ev in trace.events:
                idx = _PID_FIELD.get(ev[0])
                if idx is None:
                    out.append(ev)
                else:
                    pid = remap.setdefault(ev[idx], len(remap))
                    out.append(ev[:idx] + (pid,) + ev[idx + 1 :])
            return out

        tr1, tr2 = RecordingTrace(), RecordingTrace()
        _traced_run(tr1, seed=13)
        _traced_run(tr2, seed=13)
        assert normalized(tr1) == normalized(tr2)

    def test_tracing_does_not_perturb_results(self):
        untraced = _traced_run(None)
        traced = _traced_run(RecordingTrace())
        assert traced.flits_moved == untraced.flits_moved
        assert traced.stats.packets_ejected == untraced.stats.packets_ejected


def _rair_flood_run(trace, cycles=800):
    """RAIR mesh under a foreign flood — guaranteed to flip DPA state."""
    cfg = NocConfig(width=6, height=6)
    rm = RegionMap.halves(MeshTopology(6, 6))
    sim, net = build_simulation(
        cfg, region_map=rm, scheme="rair", routing="local", trace=trace
    )
    sim.add_traffic(
        RegionalAppTraffic(rm, 0, rate=0.02, seed=3,
                           intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0)
    )
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(36), rate=0.30, pattern=UniformPattern(net.topology),
            app_id=500, seed=4,
        )
    )
    sim.run(cycles)
    return net


class TestDpaFlipTrace:
    """The dpa_flip kernel event added for the observability subsystem."""

    def test_flips_are_recorded_in_signature_order(self):
        tr = RecordingTrace()
        _rair_flood_run(tr)
        flips = tr.of_kind("dpa_flip")
        assert flips, "foreign flood produced no DPA transitions"
        for kind, cycle, node, native_high, ovc_n, ovc_f in flips:
            assert kind == "dpa_flip"
            assert cycle >= 0
            assert 0 <= node < 36
            assert isinstance(native_high, bool)
            assert ovc_n >= 0 and ovc_f >= 0

    def test_flips_are_transitions_only(self):
        """Per router the flip stream strictly alternates, starting from
        the reset state (foreign-high, i.e. native_high False)."""
        tr = RecordingTrace()
        net = _rair_flood_run(tr)
        state = dict.fromkeys(range(36), False)
        for _, _cycle, node, native_high, _n, _f in tr.of_kind("dpa_flip"):
            assert native_high != state[node], (
                f"dpa_flip on node {node} repeated state {native_high}"
            )
            state[node] = native_high
        # The replayed stream must land on the routers' final live state.
        for router in net.routers:
            assert state[router.node] == router.native_high

    def test_flip_tracing_does_not_perturb_simulation(self):
        untraced = _rair_flood_run(None)
        traced = _rair_flood_run(RecordingTrace())
        assert traced.flits_moved == untraced.flits_moved
        assert traced.stats.packets_ejected == untraced.stats.packets_ejected
        assert [r.native_high for r in traced.routers] == [
            r.native_high for r in untraced.routers
        ]

    def test_hot_path_keeps_one_pointer_check_guard(self):
        """The emit site must stay a single ``tr is not None`` pointer
        check, inside the transition branch — untraced runs pay nothing."""
        import inspect

        from repro.core.rair import RairPolicy

        src = inspect.getsource(RairPolicy.end_router_cycle)
        assert src.count("self.network.trace") == 1
        assert "if tr is not None" in src
