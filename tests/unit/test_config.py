"""Unit tests for NocConfig."""

import pytest

from repro.noc.config import DEFAULT_VC_CLASSES, NocConfig, VcClass
from repro.util.errors import ConfigError


class TestDefaults:
    def test_paper_table1_defaults(self):
        cfg = NocConfig()
        assert cfg.width == cfg.height == 8
        assert cfg.num_nodes == 64
        # 4 data VCs (Table 1) + 1 additional escape VC (Section IV.D).
        assert len(cfg.vc_classes) == 4
        assert cfg.escape_vcs == 1
        assert cfg.vcs_per_vnet == 5
        assert cfg.vc_depth == 5
        assert cfg.link_bits == 128
        assert cfg.max_packet_flits == 5

    def test_default_vc_split_is_even(self):
        glob = sum(1 for c in DEFAULT_VC_CLASSES if c is VcClass.GLOBAL)
        assert glob == len(DEFAULT_VC_CLASSES) - glob

    def test_describe_mentions_key_facts(self):
        text = NocConfig().describe()
        assert "8x8" in text
        assert "2 global / 2 regional" in text


class TestValidation:
    def test_rejects_tiny_mesh(self):
        with pytest.raises(ConfigError):
            NocConfig(width=1)

    def test_rejects_zero_vnets(self):
        with pytest.raises(ConfigError):
            NocConfig(num_vnets=0)

    def test_rejects_empty_vc_classes(self):
        with pytest.raises(ConfigError):
            NocConfig(vc_classes=())

    def test_rejects_non_vcclass_entries(self):
        with pytest.raises(ConfigError):
            NocConfig(vc_classes=(0, 1))

    def test_rejects_packet_longer_than_buffer(self):
        # Atomic VCs: a packet must fit in one VC buffer.
        with pytest.raises(ConfigError):
            NocConfig(vc_depth=3, max_packet_flits=5)

    def test_rejects_nonpositive_latencies(self):
        with pytest.raises(ConfigError):
            NocConfig(link_latency=0)
        with pytest.raises(ConfigError):
            NocConfig(credit_latency=0)


class TestVcIndexing:
    @pytest.fixture
    def cfg(self):
        return NocConfig(num_vnets=2)

    def test_total_vcs(self, cfg):
        assert cfg.total_vcs == 10
        assert cfg.vcs_per_vnet == 5

    def test_vc_vnet_mapping(self, cfg):
        assert [cfg.vc_vnet(v) for v in range(10)] == [0] * 5 + [1] * 5

    def test_vnet_vcs_ranges(self, cfg):
        assert list(cfg.vnet_vcs(0)) == [0, 1, 2, 3, 4]
        assert list(cfg.vnet_vcs(1)) == [5, 6, 7, 8, 9]

    def test_vc_class_repeats_per_vnet(self, cfg):
        for vnet in range(2):
            base = vnet * 5
            assert cfg.vc_class(base + 0) is VcClass.ESCAPE
            assert cfg.vc_class(base + 1) is VcClass.GLOBAL
            assert cfg.vc_class(base + 2) is VcClass.GLOBAL
            assert cfg.vc_class(base + 3) is VcClass.REGIONAL
            assert cfg.vc_class(base + 4) is VcClass.REGIONAL

    def test_escape_vc_is_first_of_each_vnet(self, cfg):
        escapes = [v for v in range(cfg.total_vcs) if cfg.is_escape_vc(v)]
        assert escapes == [0, 5]

    def test_custom_split(self):
        cfg = NocConfig(
            vc_classes=(VcClass.GLOBAL, VcClass.REGIONAL, VcClass.REGIONAL, VcClass.REGIONAL)
        )
        assert cfg.vc_class(0) is VcClass.ESCAPE
        assert cfg.vc_class(1) is VcClass.GLOBAL
        assert sum(cfg.vc_class(v) is VcClass.REGIONAL for v in range(5)) == 3

    def test_escape_not_allowed_in_data_classes(self):
        with pytest.raises(ConfigError):
            NocConfig(vc_classes=(VcClass.ESCAPE, VcClass.GLOBAL))

    def test_at_least_one_escape_required(self):
        with pytest.raises(ConfigError):
            NocConfig(escape_vcs=0)

    def test_frozen(self):
        cfg = NocConfig()
        with pytest.raises(AttributeError):
            cfg.width = 16
