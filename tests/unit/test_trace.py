"""Unit tests for trace capture and replay."""

import numpy as np
import pytest

from repro.noc.topology import MeshTopology
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource
from repro.traffic.trace import Trace, TraceTrafficSource, capture_trace
from repro.util.errors import TrafficError


class FakeNetwork:
    def __init__(self):
        self.packets = []

    def inject(self, pkt):
        self.packets.append(pkt)


def sample_rows():
    return [
        (0, 1, 2, 1, 0, 0, False, False),
        (3, 4, 5, 5, 1, 0, True, False),
        (1, 0, 3, 1, 0, 0, False, True),
    ]


class TestTrace:
    def test_from_rows_sorts_by_cycle(self):
        trace = Trace.from_rows(sample_rows())
        assert list(trace.records["cycle"]) == [0, 1, 3]

    def test_len_and_aggregates(self):
        trace = Trace.from_rows(sample_rows())
        assert len(trace) == 3
        assert trace.total_flits() == 7
        assert trace.duration() == 4

    def test_empty_trace(self):
        trace = Trace(np.empty(0, dtype=Trace.from_rows(sample_rows()).records.dtype))
        assert trace.duration() == 0

    def test_field_validation(self):
        bad = np.zeros(2, dtype=[("cycle", np.int64)])
        with pytest.raises(TrafficError):
            Trace(bad)

    def test_save_load_roundtrip(self, tmp_path):
        trace = Trace.from_rows(sample_rows())
        path = tmp_path / "t.npz"
        trace.save(path)
        loaded = Trace.load(path)
        assert np.array_equal(loaded.records, trace.records)


class TestReplay:
    def test_replay_matches_trace(self):
        trace = Trace.from_rows(sample_rows())
        src = TraceTrafficSource(trace)
        net = FakeNetwork()
        for cycle in range(10):
            src.tick(cycle, net)
        assert len(net.packets) == 3
        assert [(p.src, p.dst, p.length) for p in net.packets] == [
            (1, 2, 1),
            (0, 3, 1),
            (4, 5, 5),
        ]
        assert net.packets[1].is_adversarial
        assert net.packets[2].is_global

    def test_offset_shifts_injection(self):
        trace = Trace.from_rows([(0, 1, 2, 1, 0, 0, False, False)])
        src = TraceTrafficSource(trace, cycle_offset=5)
        net = FakeNetwork()
        for cycle in range(10):
            src.tick(cycle, net)
        assert net.packets[0].inject_cycle == 5

    def test_repeat_wraps_around(self):
        trace = Trace.from_rows([(0, 1, 2, 1, 0, 0, False, False)])
        src = TraceTrafficSource(trace, repeat=True)
        net = FakeNetwork()
        for cycle in range(5):
            src.tick(cycle, net)
        assert len(net.packets) == 5  # period 1, one packet per cycle


class TestCapture:
    def test_capture_then_replay_is_identical(self):
        topo = MeshTopology(4, 4)

        def build():
            return SyntheticTrafficSource(
                nodes=range(16),
                rate=0.3,
                pattern=UniformPattern(topo),
                app_id=0,
                seed=5,
                lengths=FixedLength(1),
            )

        trace = capture_trace([build()], cycles=100)
        # Direct generation must equal replayed generation.
        direct = FakeNetwork()
        src = build()
        for cycle in range(100):
            src.tick(cycle, direct)
        replayed = FakeNetwork()
        replay = TraceTrafficSource(trace)
        for cycle in range(100):
            replay.tick(cycle, replayed)
        key = lambda p: (p.inject_cycle, p.src, p.dst, p.length)  # noqa: E731
        assert sorted(map(key, direct.packets)) == sorted(map(key, replayed.packets))
