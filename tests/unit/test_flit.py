"""Unit tests for Packet and message classes."""

from repro.noc.flit import (
    LONG_PACKET_FLITS,
    SHORT_PACKET_FLITS,
    MessageClass,
    Packet,
)


class TestPacket:
    def test_ids_are_unique_and_increasing(self):
        a = Packet(src=0, dst=1, length=1, inject_cycle=0)
        b = Packet(src=0, dst=1, length=1, inject_cycle=0)
        assert b.pid > a.pid

    def test_defaults(self):
        p = Packet(src=3, dst=9, length=5, inject_cycle=42)
        assert p.app_id == -1
        assert p.vnet == 0
        assert not p.is_global
        assert not p.is_adversarial
        assert p.reply_length == 0

    def test_fields_round_trip(self):
        p = Packet(
            src=1,
            dst=2,
            length=5,
            inject_cycle=7,
            app_id=3,
            vnet=1,
            is_global=True,
            is_adversarial=True,
            reply_length=5,
            reply_latency=128,
        )
        assert (p.src, p.dst, p.length, p.inject_cycle) == (1, 2, 5, 7)
        assert (p.app_id, p.vnet) == (3, 1)
        assert p.is_global and p.is_adversarial
        assert (p.reply_length, p.reply_latency) == (5, 128)

    def test_slots_prevent_stray_attributes(self):
        p = Packet(src=0, dst=1, length=1, inject_cycle=0)
        try:
            p.color = "red"
            assert False, "Packet should use __slots__"
        except AttributeError:
            pass

    def test_repr_contains_endpoints(self):
        p = Packet(src=5, dst=9, length=1, inject_cycle=0, app_id=2)
        text = repr(p)
        assert "5->9" in text and "app2" in text


class TestMessageClass:
    def test_paper_packet_lengths(self):
        # 16B short packet = 1 flit; 64B + head = 5 flits on 128-bit links.
        assert SHORT_PACKET_FLITS == 1
        assert LONG_PACKET_FLITS == 5

    def test_request_and_data_share_vnet_zero(self):
        assert int(MessageClass.REQUEST) == 0
        assert int(MessageClass.DATA) == 0
        assert int(MessageClass.REPLY) == 1
