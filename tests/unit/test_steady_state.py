"""Unit tests for steady-state detection."""

import numpy as np
import pytest

from repro.experiments.scenarios import two_app_msp
from repro.experiments.steady_state import (
    converged_after,
    suggest_warmup,
    window_means,
)
from repro.util.errors import ConfigError


class TestWindowMeans:
    def test_basic_grouping(self):
        inject = [0, 5, 10, 15, 20]
        lat = [10.0, 20.0, 30.0, 40.0, 50.0]
        starts, means = window_means(inject, lat, window=10)
        assert list(starts) == [0, 10, 20]
        assert list(means) == [15.0, 35.0, 50.0]

    def test_empty_input(self):
        starts, means = window_means([], [], window=10)
        assert len(starts) == 0 and len(means) == 0

    def test_skips_empty_windows(self):
        starts, means = window_means([0, 100], [1.0, 2.0], window=10)
        assert list(starts) == [0, 100]

    def test_validation(self):
        with pytest.raises(ConfigError):
            window_means([0], [1.0], window=0)
        with pytest.raises(ConfigError):
            window_means([0, 1], [1.0], window=10)

    def test_unsorted_input_allowed(self):
        starts, means = window_means([15, 0, 5], [40.0, 10.0, 20.0], window=10)
        assert list(starts) == [0, 10]
        assert list(means) == [15.0, 40.0]


class TestConvergedAfter:
    def test_flat_series_converges_immediately(self):
        means = np.full(10, 25.0)
        assert converged_after(means) == 0

    def test_ramp_then_flat(self):
        means = np.concatenate([np.linspace(10, 50, 8), np.full(8, 50.0)])
        idx = converged_after(means, tolerance=0.05)
        assert idx is not None and idx >= 6

    def test_never_converges(self):
        means = np.linspace(10, 1000, 20)  # unstable growth
        assert converged_after(means, tolerance=0.02) is None

    def test_tolerance_validated(self):
        with pytest.raises(ConfigError):
            converged_after(np.ones(5), tolerance=0)

    def test_short_series(self):
        assert converged_after(np.asarray([1.0, 1.0]), lookahead=3) is None


class TestSuggestWarmup:
    def test_light_load_settles_quickly(self):
        scenario = two_app_msp(0.2)
        warmup = suggest_warmup(scenario, probe_cycles=2500, window=250)
        assert 0 < warmup <= 2500

    def test_returns_probe_length_when_unsettled(self):
        # A pathological tolerance that can never be met.
        scenario = two_app_msp(0.2)
        warmup = suggest_warmup(
            scenario, probe_cycles=1500, window=250, tolerance=1e-9
        )
        assert warmup == 1500
