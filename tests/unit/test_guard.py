"""Unit tests for the runtime invariant guard's building blocks.

Covers the pieces that do not need a live simulation: the wait-graph
cycle finder, :class:`~repro.noc.guard.GuardConfig` (mode defaults,
environment arming, validation), and the blackbox's ring-buffer /
tee trace plumbing from :mod:`repro.noc.trace`.
"""

from __future__ import annotations

import pytest

from repro.noc.guard import GuardConfig, RuntimeGuard, find_cycle
from repro.noc.trace import RecordingTrace, RingTrace, TeeTrace
from repro.util.errors import ConfigError


class TestFindCycle:
    def test_simple_two_node_cycle(self):
        cycle = find_cycle({"a": ["b"], "b": ["a"]})
        assert cycle is not None
        assert sorted(cycle) == ["a", "b"]

    def test_self_loop(self):
        assert find_cycle({"x": ["x"]}) == ["x"]

    def test_acyclic_chain_returns_none(self):
        assert find_cycle({"a": ["b"], "b": ["c"], "c": []}) is None

    def test_edge_to_unknown_node_is_not_a_cycle(self):
        # Targets that never appear as keys are terminal (e.g. a VC whose
        # blocker is draining, not itself blocked).
        assert find_cycle({"a": ["b", "c"]}) is None

    def test_cycle_reachable_only_from_a_tail(self):
        cycle = find_cycle({"t": ["a"], "a": ["b"], "b": ["c"], "c": ["a"]})
        assert cycle is not None
        assert sorted(cycle) == ["a", "b", "c"]
        assert "t" not in cycle  # the tail is blocked *on* the cycle, not in it

    def test_diamond_without_cycle(self):
        edges = {"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []}
        assert find_cycle(edges) is None

    def test_returns_cycle_in_order(self):
        cycle = find_cycle({1: [2], 2: [3], 3: [1]})
        # Consecutive entries must actually be wait-graph edges.
        edges = {1: [2], 2: [3], 3: [1]}
        for src, dst in zip(cycle, cycle[1:] + cycle[:1]):
            assert dst in edges[src]

    def test_empty_graph(self):
        assert find_cycle({}) is None


class TestGuardConfig:
    def test_mode_defaults(self):
        sample = GuardConfig(mode="sample")
        strict = GuardConfig(mode="strict")
        # strict checks more often and keeps a deeper blackbox
        assert strict.period < sample.period
        assert strict.depth > sample.depth

    def test_explicit_overrides_win(self):
        cfg = GuardConfig(mode="strict", check_period=7, blackbox_depth=3)
        assert cfg.period == 7
        assert cfg.depth == 3

    def test_rejects_unknown_mode(self):
        with pytest.raises(ConfigError):
            GuardConfig(mode="paranoid")

    def test_rejects_nonpositive_knobs(self):
        with pytest.raises(ConfigError):
            GuardConfig(mode="sample", check_period=0)
        with pytest.raises(ConfigError):
            GuardConfig(mode="strict", stall_cycles=-1)

    def test_named_fills_only_missing_name(self):
        anon = GuardConfig(mode="sample")
        assert anon.named("cell_3").name == "cell_3"
        named = GuardConfig(mode="sample", name="keep")
        assert named.named("cell_3").name == "keep"

    def test_from_env_disarmed(self, monkeypatch):
        monkeypatch.delenv("REPRO_GUARD", raising=False)
        assert GuardConfig.from_env() is None
        monkeypatch.setenv("REPRO_GUARD", "off")
        assert GuardConfig.from_env() is None
        monkeypatch.setenv("REPRO_GUARD", "")
        assert GuardConfig.from_env() is None

    def test_from_env_armed(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "strict")
        monkeypatch.setenv("REPRO_GUARD_DIR", "/tmp/bb")
        monkeypatch.setenv("REPRO_GUARD_AGE", "5000")
        monkeypatch.setenv("REPRO_GUARD_STALL", "1000")
        cfg = GuardConfig.from_env()
        assert cfg is not None
        assert cfg.mode == "strict"
        assert cfg.dir == "/tmp/bb"
        assert cfg.age_watermark == 5000
        assert cfg.stall_cycles == 1000

    def test_from_env_rejects_garbage_mode(self, monkeypatch):
        monkeypatch.setenv("REPRO_GUARD", "bogus")
        with pytest.raises(ConfigError):
            GuardConfig.from_env()

    def test_runtime_guard_refuses_off(self):
        # GuardConfig(mode="off") itself is legal (the disarmed token);
        # building a RuntimeGuard from it is a caller bug.
        with pytest.raises(ConfigError):
            RuntimeGuard(GuardConfig(mode="off"))


class TestRingTrace:
    def test_bounded_eviction(self):
        ring = RingTrace(depth=3)
        for cycle in range(5):
            ring.wake(cycle, node=0)
        assert len(ring.events) == 3
        assert [e[1] for e in ring.events] == [2, 3, 4]

    def test_event_tuples_match_recording_trace_shape(self):
        ring, rec = RingTrace(depth=16), RecordingTrace()
        for sink in (ring, rec):
            sink.va_grant(1, node=0, in_port=2, in_vc=1, out_port=4, out_vc=3, pid=7)
            sink.sa_win(2, node=0, in_port=2, in_vc=1, out_port=4, pid=7)
            sink.flit_send(2, node=0, out_port=4, out_vc=3, pid=7, is_tail=False)
            sink.credit_return(3, node=1, port=2, vc=3)
            sink.wake(4, node=1)
            sink.sleep(5, node=1)
            sink.dpa_flip(6, node=1, native_high=True, ovc_n=2, ovc_f=0)
        assert list(ring.events) == list(rec.events)

    def test_default_depth(self):
        assert RingTrace().events.maxlen == 256


class TestTeeTrace:
    def test_fans_out_to_both_in_order(self):
        first, second = RecordingTrace(), RecordingTrace()
        tee = TeeTrace(first, second)
        tee.wake(1, node=3)
        tee.sleep(2, node=3)
        assert first.events == second.events
        assert [e[0] for e in first.events] == ["wake", "sleep"]

    def test_first_stream_unperturbed(self):
        # The obs collector must see exactly what it would have seen alone.
        alone = RecordingTrace()
        alone.credit_return(9, node=2, port=1, vc=0)
        teed = RecordingTrace()
        TeeTrace(teed, RingTrace(depth=2)).credit_return(9, node=2, port=1, vc=0)
        assert teed.events == alone.events
