"""Unit tests for the analytic timing model, cross-checked vs simulation."""

import pytest

from repro import build_simulation
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.timing import ROUTER_CYCLES, mean_ur_hops, zero_load_latency
from repro.util.errors import ConfigError


class TestZeroLoadLatency:
    def test_closed_form(self):
        assert zero_load_latency(0, 1) == 3
        assert zero_load_latency(1, 1) == 6
        assert zero_load_latency(3, 1) == 12
        assert zero_load_latency(1, 5) == 10

    def test_validation(self):
        with pytest.raises(ConfigError):
            zero_load_latency(-1, 1)
        with pytest.raises(ConfigError):
            zero_load_latency(0, 0)

    def test_link_latency_scales_mesh_hops_only(self):
        cfg = NocConfig(link_latency=3)
        assert zero_load_latency(2, 1, cfg) == 3 * ROUTER_CYCLES + 2 * 2

    @pytest.mark.parametrize("dst,length", [(1, 1), (3, 1), (15, 1), (5, 5), (10, 3)])
    def test_matches_simulation(self, dst, length):
        cfg = NocConfig(width=4, height=4)
        sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
        net.inject(Packet(src=0, dst=dst, length=length, inject_cycle=0))
        assert sim.run_until_drained(1000)
        lat = int(net.stats.latencies(include_adversarial=True)[0])
        hops = net.topology.hop_distance(0, dst)
        assert lat == zero_load_latency(hops, length, cfg)

    def test_matches_simulation_with_slow_links(self):
        cfg = NocConfig(width=4, height=4, link_latency=2)
        sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
        net.inject(Packet(src=0, dst=3, length=1, inject_cycle=0))
        assert sim.run_until_drained(1000)
        lat = int(net.stats.latencies(include_adversarial=True)[0])
        assert lat == zero_load_latency(3, 1, cfg)


class TestMeanUrHops:
    def test_two_node_line(self):
        # 2x1 invalid (min mesh 2x2 for topology, but the formula is pure
        # math): pairs (0,1),(1,0) -> distance 1.
        assert mean_ur_hops(2, 1) == 1.0

    def test_8x8_known_value(self):
        # Mean UR distance on an 8x8 mesh is 16/3 * (1 - 1/n) adjusted for
        # src != dst; verify against brute force.
        import itertools

        def brute(w, h):
            nodes = list(itertools.product(range(w), range(h)))
            d = [
                abs(a[0] - b[0]) + abs(a[1] - b[1])
                for a in nodes
                for b in nodes
                if a != b
            ]
            return sum(d) / len(d)

        assert mean_ur_hops(8, 8) == pytest.approx(brute(8, 8))
        assert mean_ur_hops(4, 6) == pytest.approx(brute(4, 6))

    def test_validation(self):
        with pytest.raises(ConfigError):
            mean_ur_hops(0, 4)
        with pytest.raises(ConfigError):
            mean_ur_hops(1, 1)

    def test_zero_load_apl_prediction_close_to_simulation(self):
        """Measured light-load APL should sit near the analytic prediction."""
        from repro.traffic.patterns import UniformPattern
        from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource

        cfg = NocConfig(width=4, height=4)
        sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
        sim.add_traffic(
            SyntheticTrafficSource(
                nodes=range(16), rate=0.01, pattern=UniformPattern(net.topology),
                app_id=0, seed=2, lengths=FixedLength(1),
            )
        )
        res = sim.run_measurement(warmup=200, measure=2000)
        predicted = zero_load_latency(round(mean_ur_hops(4, 4)), 1, cfg)
        measured = net.stats.apl(window=res.window)
        assert measured == pytest.approx(predicted, rel=0.15)
