"""benchmarks/compare.py: speedup table + regression exit codes."""

from __future__ import annotations

import json

import pytest

from benchmarks.compare import compare, main


def _write(path, speeds):
    path.write_text(json.dumps({"cycles_per_sec": speeds}))
    return str(path)


@pytest.fixture
def files(tmp_path):
    old = _write(tmp_path / "old.json", {"0.05": 100_000.0, "0.4": 50_000.0})

    def new(speeds):
        return _write(tmp_path / "new.json", speeds)

    return old, new


def test_no_regression_exits_zero(files, capsys):
    old, new = files
    rc = main([old, new({"0.05": 210_000.0, "0.4": 60_000.0})])
    assert rc == 0
    out = capsys.readouterr().out
    assert "2.10x" in out and "1.20x" in out and "OK" in out


def test_regression_beyond_threshold_fails(files, capsys):
    old, new = files
    rc = main([old, new({"0.05": 70_000.0, "0.4": 50_000.0}), "--threshold", "0.2"])
    assert rc == 1
    err = capsys.readouterr().err
    assert "0.05" in err and "FAIL" in err


def test_slowdown_within_threshold_passes(files):
    old, new = files
    rc = main([old, new({"0.05": 95_000.0, "0.4": 46_000.0}), "--threshold", "0.1"])
    assert rc == 0


def test_disjoint_rates_is_an_error(files):
    old, new = files
    rc = main([old, new({"0.99": 1.0})])
    assert rc == 2


def test_missing_file_is_an_error(tmp_path, files):
    old, _ = files
    assert main([old, str(tmp_path / "nope.json")]) == 2


def test_bad_threshold_is_an_error(files):
    old, new = files
    assert main([old, new({"0.05": 1.0}), "--threshold", "1.5"]) == 2


def test_compare_rows_cover_shared_rates_only():
    rows, regressions = compare(
        {"0.05": 100.0, "0.2": 100.0}, {"0.2": 85.0, "0.4": 1.0}, threshold=0.1
    )
    assert [r[0] for r in rows] == ["0.2"]
    assert regressions == ["0.2"]
