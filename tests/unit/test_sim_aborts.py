"""Pin the watchdog vs drain-limit abort reporting of run_measurement.

``MeasurementResult.undrained_packets`` alone cannot distinguish "the
drain budget ran out while flits were still crawling forward" from "the
network deadlocked mid-drain"; ``MeasurementResult.abort`` must. These
tests drive the simulator against a minimal fake network so each path is
hit deterministically and cheaply.
"""

from __future__ import annotations

import numpy as np
import pytest

from repro.noc.sim import Simulator
from repro.util.errors import ConfigError, DeadlineError, SimulationError


class _FakePolicy:
    def end_router_cycle(self, router, cycle):
        pass

    def end_network_cycle(self, net, cycle):
        pass


class FakeNet:
    """Just enough network surface for Simulator's loop and watchdog.

    ``move_until`` is the cycle after which flit movement freezes (the
    watchdog then sees no progress); ``eject_at`` is the cycle at which
    all window packets count as ejected (None = never).
    """

    def __init__(self, injected=8, ejected=3, move_until=None, eject_at=None):
        self.window_injected = injected
        self.window_ejected = ejected
        self._move_until = move_until
        self._eject_at = eject_at
        self.flits_moved = 0
        self.routers = ()
        self.policy = _FakePolicy()
        self.occupancy = np.array([True])
        # Nonzero so the watchdog sees buffered flits (its O(1) counter).
        self.buffered_total = 1
        # Ejection-progress mark inputs (the livelock watchdog).
        self.packets_ejected = ejected
        self.packets_in_flight = injected - ejected

    def refresh_congestion(self, cycle):
        if self._move_until is None or cycle < self._move_until:
            self.flits_moved += 1
        if self._eject_at is not None and cycle >= self._eject_at:
            self.window_ejected = self.window_injected
            self.packets_ejected = self.window_injected
            self.packets_in_flight = 0

    def deliver_events(self, cycle):
        pass

    def place_injections(self, cycle):
        pass

    def run_router_phases(self, cycle):
        pass

    def set_measure_window(self, window):
        pass

    def busy_routers(self):
        return []

    def total_buffered_flits(self):
        return self.window_injected - self.window_ejected


class TestAbortReporting:
    def test_clean_run_has_no_abort(self):
        sim = Simulator(FakeNet(injected=8, ejected=3, eject_at=15))
        res = sim.run_measurement(warmup=5, measure=5, drain_limit=100)
        assert res.drained
        assert res.abort is None
        assert res.undrained_packets == 0

    def test_watchdog_abort_during_drain(self):
        # Movement freezes after warmup+measure; the watchdog fires during
        # the drain phase and is reported, not raised.
        sim = Simulator(FakeNet(injected=8, ejected=3, move_until=10))
        sim.WATCHDOG_CYCLES = 30
        res = sim.run_measurement(warmup=5, measure=5, drain_limit=10_000)
        assert res.abort == "watchdog"
        assert not res.drained
        assert res.undrained_packets == 5
        # well before the drain budget: the watchdog cut the run short
        assert res.end_cycle < 10 + 10_000

    def test_drain_limit_abort(self):
        # Flits keep moving (no watchdog) but the window never drains.
        sim = Simulator(FakeNet(injected=8, ejected=3))
        res = sim.run_measurement(warmup=5, measure=5, drain_limit=50)
        assert res.abort == "drain_limit"
        assert not res.drained
        assert res.undrained_packets == 5
        assert res.end_cycle == 10 + 50

    def test_watchdog_still_raises_during_measurement(self):
        # A deadlock before the drain phase invalidates the window; that
        # path must keep raising rather than return a result.
        sim = Simulator(FakeNet(injected=8, ejected=3, move_until=0))
        sim.WATCHDOG_CYCLES = 10
        with pytest.raises(SimulationError):
            sim.run_measurement(warmup=50, measure=50, drain_limit=100)

    def test_livelock_watchdog_abort_during_drain(self):
        # The movement watchdog's blind spot: flits keep moving forever
        # but no packet is ever ejected. The separate ejection mark trips.
        sim = Simulator(FakeNet(injected=8, ejected=3))  # moves, never ejects
        sim.EJECT_WATCHDOG_CYCLES = 30
        res = sim.run_measurement(warmup=5, measure=5, drain_limit=10_000)
        assert res.abort == "watchdog"
        assert not res.drained
        assert res.end_cycle < 10 + 10_000  # the ejection mark cut it short

    def test_livelock_watchdog_raises_during_measurement(self):
        sim = Simulator(FakeNet(injected=8, ejected=3))
        sim.EJECT_WATCHDOG_CYCLES = 30
        with pytest.raises(SimulationError, match="livelock"):
            sim.run_measurement(warmup=500, measure=500, drain_limit=100)


class TestCycleDeadline:
    """Cooperative cycle budget (FaultPolicy.cycle_budget plumbing)."""

    def test_run_stops_exactly_at_the_deadline(self):
        sim = Simulator(FakeNet())
        sim.deadline_cycle = 3
        with pytest.raises(DeadlineError, match="cycle budget"):
            sim.run(10)
        assert sim.cycle == 3  # advanced to the deadline, not past it

    def test_run_without_deadline_is_unbounded(self):
        sim = Simulator(FakeNet())
        sim.run(10)
        assert sim.cycle == 10

    def test_budget_expiry_during_measurement_raises(self):
        # warmup+measure = 10 > budget 6: no usable window, must raise.
        sim = Simulator(FakeNet(injected=8, ejected=3, eject_at=15))
        with pytest.raises(DeadlineError):
            sim.run_measurement(warmup=5, measure=5, cycle_budget=6)
        assert sim.deadline_cycle is None  # cleared even on the raise path

    def test_budget_expiry_during_drain_is_reported(self):
        # The window completed; only the drain is cut short — report it.
        sim = Simulator(FakeNet(injected=8, ejected=3))
        res = sim.run_measurement(
            warmup=5, measure=5, drain_limit=1000, cycle_budget=50
        )
        assert res.abort == "deadline"
        assert not res.drained
        assert res.undrained_packets == 5
        assert res.end_cycle == 50  # stopped at the budget, not drain_limit
        assert sim.deadline_cycle is None

    def test_clean_run_within_budget_has_no_abort(self):
        sim = Simulator(FakeNet(injected=8, ejected=3, eject_at=15))
        res = sim.run_measurement(warmup=5, measure=5, cycle_budget=10_000)
        assert res.drained
        assert res.abort is None
        assert sim.deadline_cycle is None

    def test_nonpositive_budget_rejected(self):
        sim = Simulator(FakeNet())
        with pytest.raises(ConfigError, match="cycle_budget"):
            sim.run_measurement(warmup=5, measure=5, cycle_budget=0)
