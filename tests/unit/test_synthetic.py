"""Unit tests for synthetic traffic sources."""

import numpy as np
import pytest

from repro.core.regions import RegionMap
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import BimodalLengths, FixedLength, SyntheticTrafficSource
from repro.util.errors import TrafficError


class FakeNetwork:
    def __init__(self):
        self.packets = []

    def inject(self, pkt):
        self.packets.append(pkt)


@pytest.fixture
def topo():
    return MeshTopology(4, 4)


def make_source(topo, **kw):
    defaults = dict(
        nodes=range(topo.num_nodes),
        rate=0.3,
        pattern=UniformPattern(topo),
        app_id=0,
        seed=9,
        lengths=FixedLength(1),
    )
    defaults.update(kw)
    return SyntheticTrafficSource(**defaults)


class TestLengthSamplers:
    def test_bimodal_mean(self):
        assert BimodalLengths().mean == pytest.approx(3.0)
        assert BimodalLengths(p_short=1.0).mean == 1.0

    def test_bimodal_values(self):
        rng = np.random.default_rng(0)
        sampler = BimodalLengths()
        values = {sampler(rng) for _ in range(100)}
        assert values == {1, 5}

    def test_bimodal_validation(self):
        with pytest.raises(TrafficError):
            BimodalLengths(short=0)
        with pytest.raises(TrafficError):
            BimodalLengths(p_short=2.0)

    def test_fixed(self):
        rng = np.random.default_rng(0)
        sampler = FixedLength(5)
        assert sampler.mean == 5.0
        assert sampler(rng) == 5
        with pytest.raises(TrafficError):
            FixedLength(0)


class TestSource:
    def test_rate_conversion_uses_mean_length(self, topo):
        src = make_source(topo, rate=0.3, lengths=BimodalLengths())
        assert src.p_packet == pytest.approx(0.1)

    def test_rejects_impossible_rate(self, topo):
        with pytest.raises(TrafficError):
            make_source(topo, rate=1.5, lengths=FixedLength(1))

    def test_rejects_negative_rate(self, topo):
        with pytest.raises(TrafficError):
            make_source(topo, rate=-0.1)

    def test_rejects_empty_nodes(self, topo):
        with pytest.raises(TrafficError):
            make_source(topo, nodes=[])

    def test_offered_load_statistics(self, topo):
        net = FakeNetwork()
        src = make_source(topo, rate=0.25)
        for cycle in range(4000):
            src.tick(cycle, net)
        # 16 nodes * 4000 cycles * 0.25 flits = 16000 expected flits.
        expected = 16 * 4000 * 0.25
        assert src.flits_injected == pytest.approx(expected, rel=0.05)
        assert src.packets_injected == len(net.packets)

    def test_zero_rate_injects_nothing(self, topo):
        net = FakeNetwork()
        src = make_source(topo, rate=0.0)
        for cycle in range(100):
            src.tick(cycle, net)
        assert not net.packets

    def test_start_stop_window(self, topo):
        net = FakeNetwork()
        src = make_source(topo, rate=0.5, start=10, stop=20)
        for cycle in range(40):
            src.tick(cycle, net)
        assert net.packets
        assert all(10 <= p.inject_cycle < 20 for p in net.packets)

    def test_determinism(self, topo):
        a, b = FakeNetwork(), FakeNetwork()
        for net in (a, b):
            src = make_source(topo, seed=77)
            for cycle in range(200):
                src.tick(cycle, net)
        assert [(p.src, p.dst, p.inject_cycle) for p in a.packets] == [
            (p.src, p.dst, p.inject_cycle) for p in b.packets
        ]

    def test_global_flag_from_region_map(self, topo):
        rm = RegionMap.halves(topo)
        net = FakeNetwork()
        src = make_source(topo, region_map=rm, rate=0.5)
        for cycle in range(200):
            src.tick(cycle, net)
        for p in net.packets:
            assert p.is_global == (rm.app_of(p.src) != rm.app_of(p.dst))

    def test_app_and_vnet_tagging(self, topo):
        net = FakeNetwork()
        src = make_source(topo, app_id=4, vnet=0, rate=0.5)
        for cycle in range(50):
            src.tick(cycle, net)
        assert all(p.app_id == 4 and p.vnet == 0 for p in net.packets)

    def test_adversarial_flag(self, topo):
        net = FakeNetwork()
        src = make_source(topo, adversarial=True, rate=0.5)
        for cycle in range(50):
            src.tick(cycle, net)
        assert net.packets and all(p.is_adversarial for p in net.packets)
