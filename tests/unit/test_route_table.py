"""Attach-time route tables must equal the dynamic per-packet queries."""

from __future__ import annotations

import pytest

from repro.arbitration.base import ArbitrationPolicy
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.network import Network
from repro.routing import make_routing

#: algorithms whose admissibility is a pure function of (node, dst)
ALGORITHMS = ["xy", "duato", "dbar", "west_first"]


def _network(routing_name: str) -> Network:
    cfg = NocConfig(width=4, height=4)
    return Network(cfg, make_routing(routing_name), ArbitrationPolicy())


@pytest.mark.parametrize("name", ALGORITHMS)
def test_table_matches_dynamic_queries_for_every_pair(name):
    net = _network(name)
    routing = net.routing
    assert routing._route_table is not None
    n = net.topology.num_nodes
    for node in range(n):
        for dst in range(n):
            pkt = Packet(src=node, dst=dst, length=1, inject_cycle=0)
            entry = routing.route_entry(node, dst)
            assert entry == (
                routing.admissible_ports(node, pkt),
                routing.escape_port(node, pkt),
                routing.escape_vc_class(node, pkt),
            ), f"{name}: table mismatch at node={node} dst={dst}"


@pytest.mark.parametrize("name", ALGORITHMS)
def test_network_caches_table_entry(name):
    net = _network(name)
    assert net._route_entry is not None
    assert net._route_entry(0, 5) == net.routing.route_entry(0, 5)


def test_opt_out_keeps_dynamic_path():
    routing = make_routing("xy")
    routing.route_table_enabled = False
    cfg = NocConfig(width=4, height=4)
    net = Network(cfg, routing, ArbitrationPolicy())
    assert routing._route_table is None
    assert net._route_entry is None


def test_odd_even_opts_out():
    # Chiu's relation reads pkt.src (source-column turn exemption): a
    # (node, dst) table cannot represent it and must not be built.
    net = _network("odd_even")
    assert net.routing._route_table is None
    assert net._route_entry is None


def test_oversized_mesh_skips_table():
    routing = make_routing("xy")
    routing.TABLE_MAX_NODES = 8  # 4x4 = 16 nodes > 8
    cfg = NocConfig(width=4, height=4)
    net = Network(cfg, routing, ArbitrationPolicy())
    assert routing._route_table is None
    assert net._route_entry is None


def test_reattach_rebuilds_table():
    routing = make_routing("xy")
    _network_a = Network(NocConfig(width=4, height=4), routing, ArbitrationPolicy())
    table_a = routing._route_table
    Network(NocConfig(width=8, height=8), routing, ArbitrationPolicy())
    assert routing._route_table is not table_a
    assert len(routing._route_table) == 64 * 64
