"""Unit tests for routing algorithms and selection functions."""

import numpy as np
import pytest

from repro import build_simulation
from repro.core.regions import RegionMap
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.topology import EAST, LOCAL, SOUTH
from repro.routing import DbarRouting, DuatoAdaptiveRouting, XYRouting, make_routing
from repro.routing.selection import credit_rank, dbar_rank


def make_net(width=4, height=4, routing="xy", region_map=None):
    cfg = NocConfig(width=width, height=height)
    sim, net = build_simulation(cfg, region_map=region_map, routing=routing)
    return net


def pkt(src, dst, vnet=0):
    return Packet(src=src, dst=dst, length=1, inject_cycle=0, vnet=vnet)


class TestFactory:
    def test_names(self):
        assert isinstance(make_routing("xy"), XYRouting)
        assert isinstance(make_routing("local"), DuatoAdaptiveRouting)
        assert isinstance(make_routing("duato"), DuatoAdaptiveRouting)
        assert isinstance(make_routing("dbar"), DbarRouting)

    def test_unknown(self):
        with pytest.raises(ValueError):
            make_routing("maze")


class TestXY:
    def test_single_admissible_port(self):
        net = make_net(routing="xy")
        topo = net.topology
        p = pkt(topo.node_at(0, 0), topo.node_at(3, 3))
        assert net.routing.admissible_ports(p.src, p) == (EAST,)
        # After X is done, go south.
        p2 = pkt(topo.node_at(3, 0), topo.node_at(3, 3))
        assert net.routing.admissible_ports(p2.src, p2) == (SOUTH,)

    def test_local_at_destination(self):
        net = make_net(routing="xy")
        p = pkt(5, 5)
        assert net.routing.admissible_ports(5, p) == (LOCAL,)


class TestDuatoAdaptive:
    def test_admissible_is_minimal_set(self):
        net = make_net(routing="local")
        topo = net.topology
        p = pkt(topo.node_at(1, 1), topo.node_at(3, 3))
        assert set(net.routing.admissible_ports(p.src, p)) == {EAST, SOUTH}

    def test_escape_port_is_xy(self):
        net = make_net(routing="local")
        topo = net.topology
        p = pkt(topo.node_at(1, 1), topo.node_at(3, 3))
        assert net.routing.escape_port(p.src, p) == EAST

    def test_rank_prefers_more_credits(self):
        net = make_net(routing="local")
        topo = net.topology
        src = topo.node_at(1, 1)
        p = pkt(src, topo.node_at(3, 3))
        router = net.routers[src]
        # Drain credits on the EAST port: SOUTH should now rank first.
        for vc in range(net.config.total_vcs):
            router.out_credits[EAST][vc] = 0
        ranked = net.routing.rank_ports(src, p, (EAST, SOUTH))
        assert ranked[0] == SOUTH

    def test_rank_is_stable_on_ties(self):
        net = make_net(routing="local")
        topo = net.topology
        src = topo.node_at(1, 1)
        p = pkt(src, topo.node_at(3, 3))
        assert net.routing.rank_ports(src, p, (EAST, SOUTH)) == (EAST, SOUTH)


class TestCreditRank:
    def test_scores_negate_credits(self):
        net = make_net(routing="local")
        src = net.topology.node_at(1, 1)
        p = pkt(src, net.topology.node_at(3, 3))
        scores = credit_rank(net, src, p, (EAST, SOUTH))
        full = net.config.total_vcs // net.config.num_vnets * net.config.vc_depth
        assert scores == [-float(full), -float(full)]


class TestDbarRank:
    def test_prefers_uncongested_direction(self):
        net = make_net(width=8, height=8, routing="dbar")
        topo = net.topology
        src = topo.node_at(1, 1)
        p = pkt(src, topo.node_at(5, 5))
        # Pile congestion (quantized snapshot) along the east path.
        for x in (2, 3, 4, 5):
            net.congestion[topo.node_at(x, 1)] = 3
        scores = dbar_rank(net, src, p, (EAST, SOUTH))
        assert scores[0] > scores[1]
        assert net.routing.rank_ports(src, p, (EAST, SOUTH))[0] == SOUTH

    def test_reads_quantized_snapshot_not_raw_occupancy(self):
        net = make_net(width=8, height=8, routing="dbar")
        topo = net.topology
        src = topo.node_at(1, 1)
        p = pkt(src, topo.node_at(5, 1))
        # Raw occupancy piles up but the snapshot has not refreshed yet:
        # DBAR must not see it (models the propagation delay of the wired
        # congestion network).
        for x in (2, 3, 4, 5):
            net.occupancy[topo.node_at(x, 1)] = 30
        assert dbar_rank(net, src, p, (EAST,))[0] == 0.0
        net.refresh_congestion(0)
        score = dbar_rank(net, src, p, (EAST,))[0]
        assert score == pytest.approx(net.congestion_cap)  # capped levels

    def test_refresh_respects_period(self):
        net = make_net(width=8, height=8, routing="dbar")
        net.occupancy[:] = [30] * len(net.occupancy)
        net.refresh_congestion(1)  # off-period: no update
        assert net.congestion.sum() == 0
        net.refresh_congestion(net.congestion_period)
        assert (net.congestion == net.congestion_cap).all()

    def test_truncates_at_region_boundary(self):
        topo_net = make_net(width=8, height=8, routing="dbar")
        topo = topo_net.topology
        rm = RegionMap.halves(topo)  # boundary between x=3 and x=4
        net = make_net(width=8, height=8, routing="dbar", region_map=rm)
        src = topo.node_at(1, 1)
        p = pkt(src, topo.node_at(7, 1))
        # Congestion only beyond the boundary (other region).
        for x in (5, 6, 7):
            net.congestion[topo.node_at(x, 1)] = 3
        # Without truncation EAST would look congested; with truncation the
        # walk stops at x=4 (first foreign node) and sees little congestion.
        scores = dbar_rank(net, src, p, (EAST,))
        assert scores[0] == 0.0

    def test_includes_first_foreign_node_then_stops(self):
        topo = make_net(width=8, height=8).topology
        rm = RegionMap.halves(topo)
        net = make_net(width=8, height=8, routing="dbar", region_map=rm)
        src = topo.node_at(2, 2)
        p = pkt(src, topo.node_at(6, 2))
        net.congestion[topo.node_at(4, 2)] = 2  # first node across boundary
        net.congestion[topo.node_at(5, 2)] = 3  # must be ignored
        scores = dbar_rank(net, src, p, (EAST,))
        assert scores[0] == pytest.approx((0 + 2) / 2)


class TestDeadlockFreedomStructure:
    def test_escape_vc_structure(self):
        cfg = NocConfig(num_vnets=2)
        escapes = [v for v in range(cfg.total_vcs) if cfg.is_escape_vc(v)]
        assert escapes == [0, 5]

    def test_all_routings_reach_destination(self):
        # Follow each algorithm's first-ranked port greedily; must reach dst
        # within minimal hop count.
        for name in ("xy", "local", "dbar"):
            net = make_net(width=6, height=6, routing=name)
            topo = net.topology
            rng = np.random.default_rng(0)
            for _ in range(30):
                src, dst = rng.integers(36, size=2)
                if src == dst:
                    continue
                p = pkt(int(src), int(dst))
                cur = int(src)
                hops = 0
                while cur != dst:
                    ports = net.routing.admissible_ports(cur, p)
                    ranked = net.routing.rank_ports(cur, p, ports)
                    assert ranked, f"{name}: no admissible port at {cur}"
                    cur = topo.neighbor[cur][ranked[0]]
                    hops += 1
                assert hops == topo.hop_distance(int(src), int(dst))
