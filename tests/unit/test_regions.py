"""Unit tests for region maps."""

import pytest

from repro.core.regions import RegionMap
from repro.noc.topology import MeshTopology
from repro.util.errors import ConfigError


@pytest.fixture
def topo8():
    return MeshTopology(8, 8)


class TestConstruction:
    def test_length_checked(self, topo8):
        with pytest.raises(ConfigError):
            RegionMap(topo8, [0] * 63)

    def test_negative_app_rejected(self, topo8):
        assign = [0] * 64
        assign[5] = -2
        with pytest.raises(ConfigError):
            RegionMap(topo8, assign)

    def test_unassigned_allowed(self, topo8):
        assign = [0] * 64
        assign[5] = -1
        rm = RegionMap(topo8, assign)
        assert rm.app_of(5) == -1
        assert rm.num_apps == 1


class TestBuilders:
    def test_single(self, topo8):
        rm = RegionMap.single(topo8)
        assert rm.num_apps == 1
        assert len(rm.nodes_of(0)) == 64

    def test_halves_vertical(self, topo8):
        rm = RegionMap.halves(topo8)
        assert rm.num_apps == 2
        assert len(rm.nodes_of(0)) == len(rm.nodes_of(1)) == 32
        for node in rm.nodes_of(0):
            assert topo8.coords(node)[0] < 4
        for node in rm.nodes_of(1):
            assert topo8.coords(node)[0] >= 4

    def test_halves_horizontal(self, topo8):
        rm = RegionMap.halves(topo8, vertical=False)
        for node in rm.nodes_of(0):
            assert topo8.coords(node)[1] < 4

    def test_quadrants(self, topo8):
        rm = RegionMap.quadrants(topo8)
        assert rm.num_apps == 4
        assert all(len(rm.nodes_of(a)) == 16 for a in range(4))
        # Numbering: 0 NW, 1 NE, 2 SW, 3 SE.
        assert rm.app_of(topo8.node_at(0, 0)) == 0
        assert rm.app_of(topo8.node_at(7, 0)) == 1
        assert rm.app_of(topo8.node_at(0, 7)) == 2
        assert rm.app_of(topo8.node_at(7, 7)) == 3

    def test_grid_3x2_region_sizes(self, topo8):
        rm = RegionMap.grid(topo8, 3, 2)
        sizes = sorted(len(rm.nodes_of(a)) for a in range(6))
        assert sizes == [8, 8, 12, 12, 12, 12]
        assert rm.num_apps == 6

    def test_grid_regions_are_contiguous_rectangles(self, topo8):
        rm = RegionMap.grid(topo8, 3, 2)
        for app in range(6):
            xs = sorted({topo8.coords(n)[0] for n in rm.nodes_of(app)})
            ys = sorted({topo8.coords(n)[1] for n in rm.nodes_of(app)})
            assert xs == list(range(xs[0], xs[-1] + 1))
            assert ys == list(range(ys[0], ys[-1] + 1))
            assert len(rm.nodes_of(app)) == len(xs) * len(ys)

    def test_grid_rejects_oversplit(self, topo8):
        with pytest.raises(ConfigError):
            RegionMap.grid(topo8, 9, 1)

    def test_from_rects(self, topo8):
        rm = RegionMap.from_rects(topo8, [(0, 0, 8, 4), (0, 4, 8, 4)])
        assert rm == RegionMap.halves(topo8, vertical=False)

    def test_from_rects_overlap_rejected(self, topo8):
        with pytest.raises(ConfigError):
            RegionMap.from_rects(topo8, [(0, 0, 5, 8), (4, 0, 4, 8)])

    def test_from_rects_gap_rejected_unless_allowed(self, topo8):
        rects = [(0, 0, 4, 8)]
        with pytest.raises(ConfigError):
            RegionMap.from_rects(topo8, rects)
        rm = RegionMap.from_rects(topo8, rects, allow_unassigned=True)
        assert rm.app_of(topo8.node_at(7, 7)) == -1

    def test_from_rects_out_of_bounds(self, topo8):
        with pytest.raises(ConfigError):
            RegionMap.from_rects(topo8, [(4, 0, 5, 8)], allow_unassigned=True)


class TestQueries:
    def test_is_global_pair(self, topo8):
        rm = RegionMap.halves(topo8)
        left, right = rm.nodes_of(0)[0], rm.nodes_of(1)[0]
        assert rm.is_global_pair(left, right)
        assert not rm.is_global_pair(left, rm.nodes_of(0)[1])

    def test_region_fraction(self, topo8):
        rm = RegionMap.grid(topo8, 3, 2)
        assert rm.region_fraction(0) == pytest.approx(12 / 64)
        assert rm.region_fraction(2) == pytest.approx(8 / 64)

    def test_equality_and_hash(self, topo8):
        a = RegionMap.halves(topo8)
        b = RegionMap.halves(topo8)
        assert a == b
        assert hash(a) == hash(b)
        assert a != RegionMap.quadrants(topo8)
