"""Unit and integration tests for the coherence workload (Example 3)."""

import pytest

from repro import RegionMap, build_simulation
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.coherence import (
    VNET_FORWARD,
    VNET_REQUEST,
    VNET_RESPONSE,
    CoherenceConfig,
    CoherenceWorkload,
)
from repro.util.errors import TrafficError


class FakeNetwork:
    def __init__(self, num_vnets=3):
        self.packets = []
        self.eject_callbacks = []
        self.config = NocConfig(num_vnets=num_vnets)

    def inject(self, pkt):
        self.packets.append(pkt)


@pytest.fixture
def quads():
    return RegionMap.quadrants(MeshTopology(8, 8))


def make_workload(quads, seed=1, **cfg):
    return CoherenceWorkload(quads, CoherenceConfig(**cfg), seed=seed)


class TestConfigValidation:
    def test_rate_bounds(self):
        with pytest.raises(TrafficError):
            CoherenceConfig(req_rate=1.5)

    def test_fractions(self):
        with pytest.raises(Exception):
            CoherenceConfig(remote_share=-0.1)

    def test_home_policy_names(self):
        with pytest.raises(TrafficError):
            CoherenceConfig(home_policy="roaming")


class TestHomeSelection:
    def test_dynamic_homes_stay_in_region(self, quads):
        wl = make_workload(quads, home_policy="dynamic")
        for app in quads.apps:
            for _ in range(20):
                assert quads.app_of(wl.home_of(app)) == app

    def test_static_homes_span_chip(self, quads):
        wl = make_workload(quads, home_policy="static")
        seen = {quads.app_of(wl.home_of(0)) for _ in range(200)}
        assert len(seen) == 4

    def test_owner_always_in_data_region(self, quads):
        wl = make_workload(quads)
        for app in quads.apps:
            for _ in range(10):
                assert quads.app_of(wl.owner_of(app)) == app


class TestProtocolStructure:
    def test_requires_three_vnets(self, quads):
        wl = make_workload(quads)
        with pytest.raises(TrafficError):
            wl.tick(0, FakeNetwork(num_vnets=2))

    def test_requests_on_vnet0(self, quads):
        wl = make_workload(quads, req_rate=0.2)
        net = FakeNetwork()
        for cycle in range(100):
            wl.tick(cycle, net)
        assert net.packets
        assert all(p.vnet == VNET_REQUEST and p.length == 1 for p in net.packets)

    def test_two_hop_transaction(self, quads):
        wl = make_workload(quads, req_rate=0.2, forward_prob=0.0)
        net = FakeNetwork()
        for cycle in range(50):
            wl.tick(cycle, net)
        req = net.packets[0]
        net.eject_callbacks[0](req, 100)
        # Data response scheduled after directory latency.
        for cycle in range(100, 112):
            wl.tick(cycle, net)
        responses = [p for p in net.packets if p.vnet == VNET_RESPONSE]
        assert len(responses) >= 1
        data = responses[0]
        assert data.src == req.dst and data.dst == req.src
        assert data.length == 5
        # Completing the response finishes the transaction.
        net.eject_callbacks[0](data, 130)
        assert wl.transactions_completed >= 1

    def test_three_hop_transaction_forwards(self, quads):
        wl = make_workload(quads, req_rate=0.2, forward_prob=1.0, remote_share=1.0)
        net = FakeNetwork()
        for cycle in range(60):
            wl.tick(cycle, net)
        req = net.packets[0]
        net.eject_callbacks[0](req, 100)
        for cycle in range(100, 112):
            wl.tick(cycle, net)
        fwds = [p for p in net.packets if p.vnet == VNET_FORWARD]
        # Forward may degenerate to a direct reply when home == owner, so
        # try a few requests; with remote_share=1 and 16-node regions a
        # forward appears with overwhelming probability.
        if fwds:
            fwd = fwds[0]
            net.eject_callbacks[0](fwd, 140)
            for cycle in range(140, 150):
                wl.tick(cycle, net)
            responses = [p for p in net.packets if p.vnet == VNET_RESPONSE]
            assert any(p.dst == req.src for p in responses)

    def test_transaction_accounting(self, quads):
        wl = make_workload(quads, req_rate=0.1)
        net = FakeNetwork()
        for cycle in range(200):
            wl.tick(cycle, net)
            # Eject everything immediately (zero-latency network) to spin
            # the protocol forward.
            for p in list(net.packets):
                net.packets.remove(p)
                net.eject_callbacks[0](p, cycle + 1)
        assert wl.transactions_completed > 0
        report = wl.regionalization_report()
        assert report["transactions_completed"] == wl.transactions_completed
        assert report["avg_transaction_cycles"] > 0


class TestRegionalization:
    @staticmethod
    def intra_fraction(policy: str) -> float:
        quads = RegionMap.quadrants(MeshTopology(8, 8))
        wl = CoherenceWorkload(
            quads,
            CoherenceConfig(req_rate=0.15, remote_share=0.1, home_policy=policy),
            seed=3,
        )
        net = FakeNetwork()
        for cycle in range(300):
            wl.tick(cycle, net)
            for p in list(net.packets):
                net.packets.remove(p)
                net.eject_callbacks[0](p, cycle + 1)
        return wl.regionalization_report()["intra_fraction"]

    def test_dynamic_homes_regionalize_traffic(self):
        """The Example-3 effect: dynamic homes flip the intra/inter split."""
        static = self.intra_fraction("static")
        dynamic = self.intra_fraction("dynamic")
        assert dynamic > 0.75
        assert static < 0.5
        assert dynamic > static + 0.3


class TestEndToEnd:
    def test_runs_on_simulator_and_drains(self, quads):
        cfg = NocConfig(num_vnets=3)
        sim, net = build_simulation(cfg, region_map=quads, scheme="rair", routing="local")
        wl = make_workload(quads, req_rate=0.02)
        sim.add_traffic(wl)
        res = sim.run_measurement(warmup=300, measure=1200)
        assert res.drained
        assert wl.transactions_completed > 50
        report = wl.regionalization_report()
        assert report["intra_fraction"] > 0.6
