"""Unit tests for the torus and ring fabrics.

The mesh has its own suite (test_topology.py); this file covers the wrap
fabrics — wrap links, modular distances, dateline escape classes, region
arcs — plus topology selection through NocConfig and the deprecated
module-level mesh constants.
"""

import pytest

from repro.noc.config import NocConfig
from repro.noc.topology import (
    EAST,
    LOCAL,
    NORTH,
    RING_CCW,
    RING_CW,
    SOUTH,
    WEST,
    MeshTopology,
    RingTopology,
    TorusTopology,
    band_index,
    build_topology,
    make_topology,
    num_escape_classes_for,
)
from repro.util.errors import ConfigError


class TestTorus:
    def test_wrap_neighbors(self):
        topo = TorusTopology(4, 4)
        nw = topo.node_at(0, 0)
        assert topo.neighbor[nw][WEST] == topo.node_at(3, 0)
        assert topo.neighbor[nw][NORTH] == topo.node_at(0, 3)
        se = topo.node_at(3, 3)
        assert topo.neighbor[se][EAST] == topo.node_at(0, 3)
        assert topo.neighbor[se][SOUTH] == topo.node_at(3, 0)

    def test_modular_hop_distance(self):
        topo = TorusTopology(8, 8)
        assert topo.hop_distance(topo.node_at(0, 0), topo.node_at(7, 7)) == 2
        assert topo.hop_distance(topo.node_at(0, 0), topo.node_at(4, 4)) == 8
        assert topo.hop_distance(5, 5) == 0

    def test_minimal_ports_take_the_short_way_around(self):
        topo = TorusTopology(8, 8)
        src = topo.node_at(0, 0)
        assert topo.minimal_ports(src, topo.node_at(2, 0)) == (EAST,)
        assert topo.minimal_ports(src, topo.node_at(6, 0)) == (WEST,)
        assert topo.minimal_ports(src, src) == (LOCAL,)

    def test_minimal_ports_antipodal_gives_both_directions(self):
        topo = TorusTopology(8, 8)
        src = topo.node_at(0, 0)
        assert topo.minimal_ports(src, topo.node_at(4, 0)) == (EAST, WEST)
        assert topo.minimal_ports(src, topo.node_at(0, 4)) == (SOUTH, NORTH)

    def test_dimension_order_is_x_first_minimal(self):
        topo = TorusTopology(8, 8)
        src = topo.node_at(0, 0)
        assert topo.dimension_order_port(src, topo.node_at(7, 7)) == WEST
        assert topo.dimension_order_port(src, topo.node_at(0, 7)) == NORTH
        assert topo.dimension_order_port(src, topo.node_at(2, 2)) == EAST

    def test_escape_class_dateline(self):
        topo = TorusTopology(8, 8)
        # Travelling east 1 -> 3 never needs the wrap link: class 0.
        assert topo.escape_class(topo.node_at(1, 0), topo.node_at(3, 0)) == 0
        # Travelling east 7 -> 1 is on the far side of the dateline until
        # the wrap hop: class 1 at x=7, class 0 once it lands at x=0.
        assert topo.escape_class(topo.node_at(7, 0), topo.node_at(1, 0)) == 1
        assert topo.escape_class(topo.node_at(0, 0), topo.node_at(1, 0)) == 0
        # Symmetric for the Y dimension.
        assert topo.escape_class(topo.node_at(0, 7), topo.node_at(0, 1)) == 1
        assert topo.escape_class(topo.node_at(0, 0), topo.node_at(0, 1)) == 0

    def test_escape_walk_is_minimal_for_every_pair(self):
        topo = TorusTopology(6, 4)
        for src in range(topo.num_nodes):
            for dst in range(topo.num_nodes):
                cur, hops = src, 0
                while cur != dst:
                    cur = topo.neighbor[cur][topo.dimension_order_port(cur, dst)]
                    hops += 1
                assert hops == topo.hop_distance(src, dst)

    def test_steps_to_is_modular(self):
        topo = TorusTopology(8, 8)
        src = topo.node_at(7, 0)
        assert topo.steps_to(src, topo.node_at(1, 0), EAST) == 2
        assert topo.steps_to(src, topo.node_at(1, 0), WEST) == 6

    def test_needs_two_escape_classes(self):
        assert TorusTopology.num_escape_classes == 2
        assert num_escape_classes_for("torus") == 2

    def test_mesh_calibrated_loads_not_derated(self):
        assert TorusTopology(8, 8).saturation_scale == 1.0


class TestRing:
    def test_neighbors_wrap(self):
        topo = RingTopology(8)
        assert topo.neighbor[0] == (-1, 1, 7)
        assert topo.neighbor[7] == (-1, 0, 6)

    def test_is_a_flat_grid(self):
        topo = RingTopology(8)
        assert (topo.width, topo.height) == (8, 1)
        assert topo.coords(5) == (5, 0)
        assert topo.node_at(5, 0) == 5

    def test_rejects_tiny_rings(self):
        with pytest.raises(ConfigError):
            RingTopology(3)

    def test_minimal_ports(self):
        topo = RingTopology(8)
        assert topo.minimal_ports(0, 3) == (RING_CW,)
        assert topo.minimal_ports(0, 6) == (RING_CCW,)
        assert topo.minimal_ports(0, 4) == (RING_CW, RING_CCW)
        assert topo.minimal_ports(2, 2) == (LOCAL,)

    def test_dimension_order_tie_prefers_clockwise(self):
        topo = RingTopology(8)
        assert topo.dimension_order_port(0, 4) == RING_CW
        assert topo.dimension_order_port(0, 5) == RING_CCW

    def test_escape_class_dateline(self):
        topo = RingTopology(8)
        # Clockwise 6 -> 1 crosses the wrap edge at node 7 -> 0: class 1
        # before it, class 0 after.
        assert topo.escape_class(6, 1) == 1
        assert topo.escape_class(0, 1) == 0
        # Clockwise 1 -> 3 never wraps.
        assert topo.escape_class(1, 3) == 0

    def test_escape_walk_is_minimal_for_every_pair(self):
        topo = RingTopology(9)
        for src in range(topo.num_nodes):
            for dst in range(topo.num_nodes):
                cur, hops = src, 0
                while cur != dst:
                    cur = topo.neighbor[cur][topo.dimension_order_port(cur, dst)]
                    hops += 1
                assert hops == topo.hop_distance(src, dst)

    def test_steps_to(self):
        topo = RingTopology(8)
        assert topo.steps_to(0, 5, RING_CW) == 5
        assert topo.steps_to(0, 5, RING_CCW) == 3
        assert topo.steps_to(0, 5, LOCAL) == 0

    def test_region_grid_gives_contiguous_arcs(self):
        topo = RingTopology(8)
        assert topo.region_grid(2, 2) == [0, 0, 1, 1, 2, 2, 3, 3]
        with pytest.raises(ConfigError):
            RingTopology(4).region_grid(5, 1)

    def test_corner_and_center_sites(self):
        topo = RingTopology(8)
        assert topo.corner_nodes() == (0, 2, 4, 6)
        assert topo.center_nodes() == (3, 4, 5, 6)

    def test_saturation_scale_derates_by_bisection(self):
        assert RingTopology(64).saturation_scale == 0.25
        assert RingTopology(4).saturation_scale == 1.0

    def test_networkx_export_is_cycle(self):
        nx = pytest.importorskip("networkx")
        g = RingTopology(8).to_networkx()
        assert g.number_of_nodes() == 8
        assert g.number_of_edges() == 8
        assert nx.is_connected(g)


class TestBandIndex:
    def test_even_split(self):
        assert band_index(8, 2) == [0, 0, 0, 0, 1, 1, 1, 1]

    def test_uneven_split_balances(self):
        bands = band_index(8, 3)
        sizes = [bands.count(b) for b in range(3)]
        assert sorted(sizes) == [2, 3, 3]
        assert bands == sorted(bands)


class TestSelection:
    def test_build_topology_by_kind(self):
        assert isinstance(build_topology("mesh", 4, 4), MeshTopology)
        assert isinstance(build_topology("torus", 4, 4), TorusTopology)
        ring = build_topology("ring", 4, 4)
        assert isinstance(ring, RingTopology)
        assert ring.num_nodes == 16  # extents fold into one loop

    def test_build_topology_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            build_topology("hypercube", 4, 4)
        with pytest.raises(ConfigError):
            num_escape_classes_for("hypercube")

    def test_make_topology_from_config(self):
        assert isinstance(make_topology(NocConfig()), MeshTopology)
        cfg = NocConfig.for_topology("torus", width=4, height=4)
        assert isinstance(make_topology(cfg), TorusTopology)


class TestNocConfigTopology:
    def test_rejects_unknown_kind(self):
        with pytest.raises(ConfigError):
            NocConfig(topology="hypercube")

    def test_wrap_fabrics_need_dateline_escape_vcs(self):
        with pytest.raises(ConfigError):
            NocConfig(topology="torus")  # default escape_vcs=1 < 2 classes
        cfg = NocConfig.for_topology("torus")
        assert cfg.escape_vcs == 2

    def test_for_topology_respects_explicit_escape_vcs(self):
        cfg = NocConfig.for_topology("ring", escape_vcs=3)
        assert cfg.escape_vcs == 3

    def test_for_topology_mesh_is_default_config(self):
        assert NocConfig.for_topology("mesh") == NocConfig()

    def test_describe_names_the_fabric(self):
        assert "8x8 mesh" in NocConfig().describe()
        assert "8x8 torus" in NocConfig.for_topology("torus").describe()
        assert "64-node ring" in NocConfig.for_topology("ring").describe()


class TestDeprecatedModuleConstants:
    def test_num_ports_warns_but_works(self):
        import repro.noc as noc

        with pytest.warns(DeprecationWarning, match="Topology"):
            assert noc.NUM_PORTS == 5

    def test_opposite_warns_but_works(self):
        import repro.noc as noc

        with pytest.warns(DeprecationWarning, match="Topology"):
            assert noc.OPPOSITE[EAST] == WEST

    def test_unknown_attribute_still_raises(self):
        import repro.noc as noc

        with pytest.raises(AttributeError):
            noc.NO_SUCH_CONSTANT
