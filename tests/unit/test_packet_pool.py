"""Packet free-list pool: reuse, re-init semantics, stale-reference guard."""

from __future__ import annotations

import pytest

from repro.arbitration.base import ArbitrationPolicy
from repro.noc.config import NocConfig
from repro.noc.flit import Packet, PacketPool
from repro.noc.network import Network
from repro.noc.sim import Simulator
from repro.noc.topology import MeshTopology
from repro.routing import make_routing
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource
from repro.util.errors import SimulationError


class TestPacketPool:
    def test_alloc_reuses_released_object(self):
        pool = PacketPool()
        a = pool.alloc(src=0, dst=1, length=1, inject_cycle=0)
        assert pool.allocs == 1 and pool.hits == 0
        pool.release(a)
        assert a.in_pool is True
        b = pool.alloc(src=2, dst=3, length=4, inject_cycle=9, app_id=7)
        assert b is a  # the same object, re-initialised in place
        assert pool.hits == 1
        assert (b.src, b.dst, b.length, b.inject_cycle, b.app_id) == (2, 3, 4, 9, 7)
        assert b.in_pool is False
        assert b.hops == 0

    def test_reinit_draws_fresh_monotonic_pid(self):
        pool = PacketPool()
        a = pool.alloc(src=0, dst=1, length=1, inject_cycle=0)
        first_pid = a.pid
        pool.release(a)
        b = pool.alloc(src=0, dst=1, length=1, inject_cycle=1)
        assert b.pid > first_pid

    def test_double_release_is_idempotent(self):
        pool = PacketPool()
        a = pool.alloc(src=0, dst=1, length=1, inject_cycle=0)
        pool.release(a)
        pool.release(a)
        assert len(pool) == 1

    def test_max_size_caps_free_list(self):
        pool = PacketPool(max_size=2)
        pkts = [Packet(src=0, dst=1, length=1, inject_cycle=0) for _ in range(5)]
        for p in pkts:
            pool.release(p)
        assert len(pool) == 2

    def test_directly_constructed_packet_starts_out_of_pool(self):
        assert Packet(src=0, dst=1, length=1, inject_cycle=0).in_pool is False


class TestNetworkIntegration:
    def test_inject_rejects_pooled_packet(self):
        cfg = NocConfig(width=4, height=4)
        net = Network(cfg, make_routing("xy"), ArbitrationPolicy())
        pkt = net.alloc_packet(src=0, dst=5, length=1, inject_cycle=0)
        net.packet_pool.release(pkt)
        with pytest.raises(SimulationError, match="stale"):
            net.inject(pkt)

    def test_ejected_packets_return_to_pool_and_get_reused(self):
        cfg = NocConfig(width=8, height=8, vc_depth=8, max_packet_flits=8)
        net = Network(cfg, make_routing("xy"), ArbitrationPolicy())
        source = SyntheticTrafficSource(
            nodes=[0, 63],
            rate=0.1,
            pattern=UniformPattern(MeshTopology(8, 8)),
            app_id=0,
            seed=5,
            lengths=FixedLength(8),
        )
        sim = Simulator(net, [source])
        result = sim.run_measurement(warmup=200, measure=800)
        pool = net.packet_pool
        assert pool.hits > 0, "steady-state traffic should recycle packets"
        # Lookahead may have allocated packets still buffered for cycles
        # past the end of the run; every pool checkout is one or the other.
        buffered = sum(len(pkts) for _, pkts in source._pending)
        assert pool.hits + pool.allocs == source.packets_injected + buffered
        # Allocations bounded by peak concurrency, not traffic volume.
        assert pool.allocs < source.packets_injected
        assert result.metrics.pool_hits == pool.hits
        assert result.metrics.pool_allocs == pool.allocs
