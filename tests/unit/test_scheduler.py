"""Unit tests for the service scheduler (repro.service.scheduler)."""

from __future__ import annotations

import pytest

from repro.experiments.parallel import Cell
from repro.experiments.runner import SCHEMES, Effort
from repro.experiments.scenarios import ScenarioSpec
from repro.service.protocol import JobRecord, JobSpec
from repro.service.scheduler import PriorityScheduler, QueueFull


def make_job(job_id: str, priority: str = "normal") -> JobRecord:
    cell = Cell(
        scheme=SCHEMES["RO_RR"],
        spec=ScenarioSpec(
            "repro.experiments.chaos:chaos_scenario",
            {"mode": "ok", "marker": None, "cell_id": 0, "rate": 0.05},
        ),
        effort=Effort.SMOKE,
        seed=1,
    )
    return JobRecord.new(job_id, JobSpec(cells=[cell], priority=priority))


class TestDispatchOrder:
    def test_fifo_within_class(self):
        sched = PriorityScheduler()
        for i in range(3):
            sched.submit(make_job(f"j{i}"))
        assert [sched.next_job() for _ in range(3)] == ["j0", "j1", "j2"]

    def test_strict_priority_across_classes(self):
        sched = PriorityScheduler()
        sched.submit(make_job("low1", "low"))
        sched.submit(make_job("norm1", "normal"))
        sched.submit(make_job("high1", "high"))
        sched.submit(make_job("high2", "high"))
        order = [sched.next_job() for _ in range(4)]
        assert order == ["high1", "high2", "norm1", "low1"]

    def test_late_high_jumps_queued_normal(self):
        sched = PriorityScheduler()
        sched.submit(make_job("n1"))
        sched.submit(make_job("n2"))
        assert sched.next_job() == "n1"  # already dispatched: not preempted
        sched.submit(make_job("h1", "high"))
        assert sched.next_job() == "h1"
        assert sched.next_job() == "n2"

    def test_empty_returns_none(self):
        assert PriorityScheduler().next_job() is None

    def test_dispatched_counter_is_start_seq_source(self):
        sched = PriorityScheduler()
        sched.submit(make_job("a"))
        sched.submit(make_job("b"))
        assert sched.dispatched == 0
        sched.next_job()
        assert sched.dispatched == 1
        sched.next_job()
        assert sched.dispatched == 2


class TestAdmissionControl:
    def test_queue_full_raises_with_retry_hint(self):
        sched = PriorityScheduler(max_queued=2, retry_after_s=1.5)
        sched.submit(make_job("a"))
        sched.submit(make_job("b", "high"))
        with pytest.raises(QueueFull) as exc:
            sched.submit(make_job("c"))
        assert exc.value.retry_after_s == 1.5

    def test_bound_is_global_across_classes(self):
        sched = PriorityScheduler(max_queued=1)
        sched.submit(make_job("a", "low"))
        with pytest.raises(QueueFull):
            sched.submit(make_job("b", "high"))

    def test_dispatch_frees_capacity(self):
        sched = PriorityScheduler(max_queued=1)
        sched.submit(make_job("a"))
        sched.next_job()
        sched.submit(make_job("b"))  # no raise: queue drained

    def test_requeue_bypasses_the_bound(self):
        # recovery re-admits already-accepted jobs even past max_queued:
        # the bound gates new work, not a restart
        sched = PriorityScheduler(max_queued=1)
        sched.requeue(make_job("a"))
        sched.requeue(make_job("b", "high"))
        assert sched.queued == 2
        assert sched.next_job() == "b"

    def test_rejects_silly_bound(self):
        with pytest.raises(ValueError):
            PriorityScheduler(max_queued=0)


class TestCancelAndPosition:
    def test_cancel_queued(self):
        sched = PriorityScheduler()
        sched.submit(make_job("a"))
        sched.submit(make_job("b"))
        assert sched.cancel("a") is True
        assert sched.next_job() == "b"

    def test_cancel_running_refused(self):
        sched = PriorityScheduler()
        sched.submit(make_job("a"))
        sched.next_job()
        assert sched.cancel("a") is False

    def test_position_accounts_for_higher_classes(self):
        sched = PriorityScheduler()
        sched.submit(make_job("n1"))
        sched.submit(make_job("h1", "high"))
        assert sched.position("h1") == 0
        assert sched.position("n1") == 1
        assert sched.position("missing") is None

    def test_finish_clears_running(self):
        sched = PriorityScheduler()
        sched.submit(make_job("a"))
        sched.next_job()
        assert "a" in sched.running
        sched.finish("a")
        assert "a" not in sched.running

    def test_snapshot_shape(self):
        sched = PriorityScheduler(max_queued=7)
        sched.submit(make_job("a", "low"))
        snap = sched.snapshot()
        assert snap["queued"] == 1
        assert snap["max_queued"] == 7
        assert snap["by_priority"]["low"] == 1
        assert snap["running"] == 0
