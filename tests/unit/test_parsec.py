"""Unit tests for the PARSEC-like workload generator."""

import pytest

from repro.core.regions import RegionMap
from repro.noc.flit import MessageClass
from repro.noc.topology import MeshTopology
from repro.traffic.parsec import (
    L2_SERVICE_LATENCY,
    MC_SERVICE_LATENCY,
    PARSEC_PROFILES,
    ParsecAppProfile,
    ParsecWorkload,
)
from repro.util.errors import TrafficError


class FakeNetwork:
    def __init__(self):
        self.packets = []
        self.eject_callbacks = []

    def inject(self, pkt):
        self.packets.append(pkt)


@pytest.fixture
def topo():
    return MeshTopology(8, 8)


@pytest.fixture
def quads(topo):
    return RegionMap.quadrants(topo)


def profiles4():
    return [PARSEC_PROFILES[n] for n in ("blackscholes", "swaptions", "fluidanimate", "raytrace")]


class TestProfiles:
    def test_all_thirteen_named_four_present(self):
        # The paper presents this representative subset.
        for name in ("blackscholes", "swaptions", "fluidanimate", "raytrace"):
            assert name in PARSEC_PROFILES

    def test_intensity_ordering_matches_paper(self):
        # "both low and high intensity traffic": raytrace most intensive.
        rates = {n: p.mean_rate for n, p in PARSEC_PROFILES.items()}
        assert rates["raytrace"] > rates["fluidanimate"] > rates["swaptions"]
        assert rates["swaptions"] > rates["blackscholes"]

    def test_profile_validation(self):
        with pytest.raises(TrafficError):
            ParsecAppProfile("bad", rate_on=1.5, rate_off=0, p_on_off=0.1, p_off_on=0.1)
        with pytest.raises(TrafficError):
            ParsecAppProfile(
                "bad", rate_on=0.1, rate_off=0, p_on_off=0.1, p_off_on=0.1,
                local_frac=0.8, mc_frac=0.3,
            )

    def test_mean_rate_between_off_and_on(self):
        for prof in PARSEC_PROFILES.values():
            assert prof.rate_off <= prof.mean_rate <= prof.rate_on


class TestWorkload:
    def test_profile_count_checked(self, quads):
        with pytest.raises(TrafficError):
            ParsecWorkload(quads, profiles4()[:2], seed=1)

    def test_requests_on_vnet0_replies_on_vnet1(self, quads):
        wl = ParsecWorkload(quads, profiles4(), seed=1)
        net = FakeNetwork()
        for cycle in range(300):
            wl.tick(cycle, net)
        requests = [p for p in net.packets if p.vnet == int(MessageClass.REQUEST)]
        assert requests
        assert all(p.length == 1 for p in requests)
        assert all(p.reply_length == 5 for p in requests)

    def test_reply_generated_after_service_latency(self, quads):
        wl = ParsecWorkload(quads, profiles4(), seed=1)
        net = FakeNetwork()
        wl.tick(0, net)  # attaches the callback
        assert net.eject_callbacks
        # Simulate an ejected L2 request.
        req = None
        for cycle in range(1, 400):
            wl.tick(cycle, net)
            reqs = [p for p in net.packets if p.vnet == 0 and p.dst not in wl.mc_nodes]
            if reqs:
                req = reqs[0]
                break
        assert req is not None
        net.eject_callbacks[0](req, 500)
        count_replies = lambda: sum(1 for p in net.packets if p.vnet == 1)  # noqa: E731
        for cycle in range(500, 500 + L2_SERVICE_LATENCY):
            wl.tick(cycle, net)
        assert count_replies() == 0  # not due yet
        wl.tick(500 + L2_SERVICE_LATENCY, net)
        replies = [p for p in net.packets if p.vnet == 1]
        assert len(replies) == 1
        reply = replies[0]
        assert (reply.src, reply.dst) == (req.dst, req.src)
        assert reply.length == 5
        assert reply.app_id == req.app_id

    def test_mc_requests_have_memory_latency(self, quads):
        wl = ParsecWorkload(quads, profiles4(), seed=3)
        net = FakeNetwork()
        for cycle in range(3000):
            wl.tick(cycle, net)
        mc_reqs = [p for p in net.packets if p.vnet == 0 and p.dst in wl.mc_nodes]
        other = [p for p in net.packets if p.vnet == 0 and p.dst not in wl.mc_nodes]
        assert mc_reqs and other
        assert all(p.reply_latency == MC_SERVICE_LATENCY for p in mc_reqs)
        assert all(p.reply_latency == L2_SERVICE_LATENCY for p in other)

    def test_locality_dominates(self, quads):
        wl = ParsecWorkload(quads, profiles4(), seed=5)
        net = FakeNetwork()
        for cycle in range(4000):
            wl.tick(cycle, net)
        local = sum(1 for p in net.packets if not p.is_global)
        assert local / len(net.packets) > 0.55

    def test_app_attribution_matches_source_region(self, quads):
        wl = ParsecWorkload(quads, profiles4(), seed=5)
        net = FakeNetwork()
        for cycle in range(500):
            wl.tick(cycle, net)
        for p in net.packets:
            if p.vnet == 0:
                assert quads.app_of(p.src) == p.app_id

    def test_determinism(self, quads):
        def run():
            wl = ParsecWorkload(quads, profiles4(), seed=9)
            net = FakeNetwork()
            for cycle in range(400):
                wl.tick(cycle, net)
            return [(p.src, p.dst, p.inject_cycle) for p in net.packets]

        assert run() == run()

    def test_offered_rates(self, quads):
        wl = ParsecWorkload(quads, profiles4(), seed=1)
        rates = wl.offered_rates()
        assert set(rates) == {0, 1, 2, 3}
        assert rates[3] > rates[0]
