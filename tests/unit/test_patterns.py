"""Unit tests for traffic patterns."""

import numpy as np
import pytest

from repro.core.regions import RegionMap
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import (
    BitComplementPattern,
    HotspotPattern,
    OutOfRegionPattern,
    TransposePattern,
    UniformPattern,
    make_pattern,
)
from repro.util.errors import TrafficError


@pytest.fixture
def topo():
    return MeshTopology(8, 8)


@pytest.fixture
def rng():
    return np.random.default_rng(3)


class TestUniform:
    def test_never_returns_src(self, topo, rng):
        pattern = UniformPattern(topo)
        for src in (0, 27, 63):
            for _ in range(50):
                assert pattern(rng, src) != src

    def test_restricted_node_set(self, topo, rng):
        allowed = [1, 2, 3]
        pattern = UniformPattern(topo, nodes=allowed)
        seen = {pattern(rng, 0) for _ in range(100)}
        assert seen == set(allowed)

    def test_empty_set_rejected(self, topo):
        with pytest.raises(TrafficError):
            UniformPattern(topo, nodes=[])

    def test_single_node_with_exclusion_rejected(self, topo):
        with pytest.raises(TrafficError):
            UniformPattern(topo, nodes=[5])

    def test_covers_whole_set(self, topo, rng):
        pattern = UniformPattern(topo, nodes=range(8))
        seen = {pattern(rng, 63) for _ in range(400)}
        assert seen == set(range(8))


class TestTranspose:
    def test_transpose_mapping(self, topo, rng):
        pattern = TransposePattern(topo)
        src = topo.node_at(2, 5)
        assert pattern(rng, src) == topo.node_at(5, 2)

    def test_diagonal_maps_to_self(self, topo, rng):
        pattern = TransposePattern(topo)
        src = topo.node_at(3, 3)
        assert pattern(rng, src) == src

    def test_requires_square_mesh(self):
        with pytest.raises(TrafficError):
            TransposePattern(MeshTopology(4, 8))

    def test_is_involution(self, topo, rng):
        pattern = TransposePattern(topo)
        for src in range(topo.num_nodes):
            assert pattern(rng, pattern(rng, src)) == src


class TestBitComplement:
    def test_mapping(self, topo, rng):
        pattern = BitComplementPattern(topo)
        assert pattern(rng, topo.node_at(0, 0)) == topo.node_at(7, 7)
        assert pattern(rng, topo.node_at(2, 5)) == topo.node_at(5, 2)

    def test_is_involution_and_fixed_point_free(self, topo, rng):
        pattern = BitComplementPattern(topo)
        for src in range(topo.num_nodes):
            dst = pattern(rng, src)
            assert dst != src  # even-sized mesh has no fixed point
            assert pattern(rng, dst) == src


class TestHotspot:
    def test_defaults_to_corners(self, topo, rng):
        pattern = HotspotPattern(topo, hot_prob=1.0)
        seen = {pattern(rng, 30) for _ in range(200)}
        assert seen <= set(topo.corner_nodes())

    def test_zero_prob_is_background(self, topo, rng):
        pattern = HotspotPattern(topo, hot_prob=0.0)
        seen = {pattern(rng, 0) for _ in range(300)}
        assert len(seen) > 10  # spread out, not only corners

    def test_validates_prob(self, topo):
        with pytest.raises(TrafficError):
            HotspotPattern(topo, hot_prob=1.5)

    def test_requires_hotspots(self, topo):
        with pytest.raises(TrafficError):
            HotspotPattern(topo, hotspots=[])

    def test_hotspot_equal_to_src_falls_back(self, topo, rng):
        pattern = HotspotPattern(topo, hotspots=[5], hot_prob=1.0)
        for _ in range(50):
            assert pattern(rng, 5) != 5


class TestOutOfRegion:
    def test_destinations_leave_region(self, topo, rng):
        rm = RegionMap.halves(topo)
        pattern = OutOfRegionPattern(UniformPattern(topo), rm)
        for src in rm.nodes_of(0):
            for _ in range(10):
                dst = pattern(rng, src)
                assert rm.app_of(dst) != 0

    def test_deterministic_base_fallback(self, topo, rng):
        # Transpose keeps diagonal nodes in their own quadrant; wrapper
        # must still emit an external destination.
        rm = RegionMap.quadrants(topo)
        pattern = OutOfRegionPattern(TransposePattern(topo), rm)
        src = topo.node_at(1, 1)  # diagonal, maps to itself
        for _ in range(20):
            assert rm.app_of(pattern(rng, src)) != rm.app_of(src)

    def test_whole_chip_region_rejected(self, topo):
        rm = RegionMap.single(topo)
        with pytest.raises(TrafficError):
            OutOfRegionPattern(UniformPattern(topo), rm)


class TestFactory:
    def test_names(self, topo):
        assert isinstance(make_pattern("ur", topo), UniformPattern)
        assert isinstance(make_pattern("tp", topo), TransposePattern)
        assert isinstance(make_pattern("bc", topo), BitComplementPattern)
        assert isinstance(make_pattern("hs", topo), HotspotPattern)

    def test_unknown(self, topo):
        with pytest.raises(TrafficError):
            make_pattern("zigzag", topo)
