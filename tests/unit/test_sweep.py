"""Unit tests for seed-replicated sweeps and confidence intervals."""

import numpy as np
import pytest

from repro.experiments.runner import SCHEMES, Effort
from repro.experiments.scenarios import two_app_msp
from repro.experiments.sweep import SweepResult, compare_schemes, replicate
from repro.util.errors import ConfigError


class TestSweepResult:
    def test_basic_stats(self):
        r = SweepResult("x", [10.0, 12.0, 14.0])
        assert r.n == 3
        assert r.mean == pytest.approx(12.0)
        assert r.std_error == pytest.approx(2.0 / np.sqrt(3))

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            SweepResult("x", [])

    def test_ci_contains_mean_and_widens_with_level(self):
        r = SweepResult("x", [10.0, 12.0, 14.0, 16.0])
        lo95, hi95 = r.confidence_interval(0.95)
        lo99, hi99 = r.confidence_interval(0.99)
        assert lo95 < r.mean < hi95
        assert lo99 < lo95 and hi99 > hi95

    def test_single_sample_ci_degenerates(self):
        r = SweepResult("x", [5.0])
        assert r.confidence_interval() == (5.0, 5.0)
        assert np.isnan(r.std_error)

    def test_level_validated(self):
        r = SweepResult("x", [1.0, 2.0])
        with pytest.raises(ConfigError):
            r.confidence_interval(1.5)

    def test_excludes_zero(self):
        assert SweepResult("x", [5.0, 5.1, 4.9]).excludes_zero()
        assert not SweepResult("x", [-1.0, 1.0, -0.5, 0.5]).excludes_zero()


class TestReplicate:
    def test_needs_seeds(self):
        with pytest.raises(ConfigError):
            replicate(SCHEMES["RO_RR"], two_app_msp(0.5), seeds=[])

    def test_samples_per_app(self):
        result = replicate(
            SCHEMES["RO_RR"], two_app_msp(0.5), seeds=[1, 2], effort=Effort.SMOKE
        )
        assert set(result) == {-1, 0, 1}
        assert result[0].n == 2
        # Different seeds give different APLs.
        assert result[0].samples[0] != result[0].samples[1]


class TestCompareSchemes:
    def test_paired_comparison(self):
        fig = compare_schemes(
            two_app_msp(1.0),
            schemes=[SCHEMES["RA_RAIR"]],
            baseline=SCHEMES["RO_RR"],
            seeds=[1, 2],
            effort=Effort.SMOKE,
        )
        row = fig.row_by(scheme="RA_RAIR")
        assert row["n"] == 2
        assert row["ci_lo"] <= row["red_mean"] <= row["ci_hi"]
        assert "Sweep" in fig.format_table()
