"""Property tests for the result-cache key and on-disk entry integrity."""

from __future__ import annotations

import dataclasses
import json
import os
import subprocess
import sys

import pytest

from repro.core.dpa import DpaConfig
from repro.experiments.cache import (
    CACHE_VERSION,
    ResultCache,
    SweepJournal,
    cache_key,
    canonicalize,
)
from repro.experiments.cache import main as cache_cli
from repro.experiments.parallel import Cell
from repro.experiments.runner import SCHEMES, Effort, ScenarioRun, Scheme
from repro.experiments.scenarios import ScenarioSpec
from repro.noc.config import NocConfig, VcClass
from repro.noc.stats import RunMetrics

G, R = VcClass.GLOBAL, VcClass.REGIONAL


def make_cell(**overrides) -> Cell:
    base = dict(
        scheme=SCHEMES["RA_RAIR"],
        spec=ScenarioSpec("two_app_msp", {"p_inter": 0.5, "config": NocConfig()}),
        effort=Effort.SMOKE,
        seed=42,
        config=None,
        policy_overrides=None,
    )
    base.update(overrides)
    return Cell(**base)


def make_run() -> ScenarioRun:
    return ScenarioRun(
        scheme="RA_RAIR",
        scenario="two_app_p50",
        window=(200, 1000),
        drained=True,
        undrained_packets=0,
        apl=25.296050332051730,
        per_app_apl={0: 24.125, 1: 26.875000000000004},
        end_cycle=1060,
        packets_measured=321,
        abort=None,
        metrics=RunMetrics(
            wall_time_s=1.5,
            cycles=1060,
            phase_cycles={"warmup": 200, "measure": 800, "drain": 60},
            phase_seconds={"warmup": 0.3, "measure": 1.1, "drain": 0.1},
        ),
    )


class TestKeyStability:
    def test_stable_across_dict_ordering(self):
        a = make_cell(policy_overrides={"dpa": DpaConfig(delta=0.3), "x": 1})
        b = make_cell(policy_overrides={"x": 1, "dpa": DpaConfig(delta=0.3)})
        assert cache_key(a) == cache_key(b)

        s1 = ScenarioSpec("six_app", {"global_pattern": "tp", "loads": {0: 0.1, 1: 0.9}})
        s2 = ScenarioSpec("six_app", {"loads": {1: 0.9, 0: 0.1}, "global_pattern": "tp"})
        assert cache_key(make_cell(spec=s1)) == cache_key(make_cell(spec=s2))

    def test_stable_across_process_restarts(self):
        # str/bytes hashing is salted per process (PYTHONHASHSEED); the key
        # must not depend on it.
        here = cache_key(make_cell())
        code = (
            "from repro.experiments.cache import cache_key\n"
            "from tests.unit.test_cache import make_cell\n"
            "print(cache_key(make_cell()))\n"
        )
        for seed in ("0", "12345"):
            env = dict(os.environ, PYTHONHASHSEED=seed)
            env["PYTHONPATH"] = "src" + os.pathsep + env.get("PYTHONPATH", "")
            out = subprocess.run(
                [sys.executable, "-c", code],
                capture_output=True,
                text=True,
                env=env,
                cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
                check=True,
            )
            assert out.stdout.strip() == here

    @pytest.mark.parametrize(
        "field,value",
        [
            ("width", 9),
            ("height", 9),
            ("num_vnets", 2),
            ("vc_classes", (G, R)),
            ("escape_vcs", 2),
            ("vc_depth", 6),
            ("link_latency", 2),
            ("credit_latency", 2),
            ("max_packet_flits", 4),
            ("link_bits", 64),
            ("extra", {"note": "x"}),
        ],
    )
    def test_distinct_for_any_noc_config_field(self, field, value):
        base = make_cell(config=NocConfig())
        changed = make_cell(config=dataclasses.replace(NocConfig(), **{field: value}))
        assert cache_key(base) != cache_key(changed)

    @pytest.mark.parametrize("field,value", [("delta", 0.3), ("mode", "native")])
    def test_distinct_for_any_dpa_config_field(self, field, value):
        base = make_cell(policy_overrides={"dpa": DpaConfig()})
        changed = make_cell(
            policy_overrides={"dpa": dataclasses.replace(DpaConfig(), **{field: value})}
        )
        assert cache_key(base) != cache_key(changed)

    def test_distinct_for_scheme_effort_seed_and_spec(self):
        base = make_cell()
        assert cache_key(base) != cache_key(make_cell(scheme=SCHEMES["RO_RR"]))
        assert cache_key(base) != cache_key(
            make_cell(scheme=Scheme("RA_RAIR", "rair", "dbar"))
        )
        assert cache_key(base) != cache_key(make_cell(effort=Effort.FAST))
        assert cache_key(base) != cache_key(make_cell(seed=43))
        assert cache_key(base) != cache_key(
            make_cell(spec=ScenarioSpec("two_app_msp", {"p_inter": 0.6}))
        )

    def test_unhashable_input_rejected(self):
        with pytest.raises(TypeError, match="canonicalize"):
            canonicalize(object())


class TestOnDiskEntries:
    def test_round_trip(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(make_cell())
        run = make_run()
        cache.put(key, run)
        back = cache.get(key)
        assert back == run  # metrics excluded from ==
        assert back.metrics == run.metrics
        assert back.apl == run.apl  # bit-identical float
        assert cache.hits == 1

    def test_miss_on_empty_cache(self, tmp_path):
        cache = ResultCache(tmp_path)
        assert cache.get("0" * 64) is None
        assert cache.misses == 1

    def test_truncated_entry_is_a_miss_and_removed(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(make_cell())
        cache.put(key, make_run())
        path = cache.path_for(key)
        path.write_text(path.read_text()[: len(path.read_text()) // 2])
        assert cache.get(key) is None
        assert not path.exists()
        # recompute-and-put path works again afterwards
        cache.put(key, make_run())
        assert cache.get(key) == make_run()

    def test_tampered_payload_fails_checksum(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(make_cell())
        cache.put(key, make_run())
        path = cache.path_for(key)
        entry = json.loads(path.read_text())
        entry["payload"]["apl"] = 1.0  # valid JSON, wrong content
        path.write_text(json.dumps(entry))
        assert cache.get(key) is None

    def test_version_or_key_mismatch_is_a_miss(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(make_cell())
        cache.put(key, make_run())
        other = "f" * 64
        target = cache.path_for(other)
        target.parent.mkdir(parents=True, exist_ok=True)
        os.replace(cache.path_for(key), target)
        assert cache.get(other) is None  # embedded key disagrees with name


class TestSweepJournal:
    KEYS = ["a" * 64, "b" * 64, "c" * 64]

    def test_sweep_key_depends_on_cell_order(self):
        assert SweepJournal.key_for(self.KEYS) == SweepJournal.key_for(self.KEYS)
        assert (SweepJournal.key_for(self.KEYS)
                != SweepJournal.key_for(list(reversed(self.KEYS))))
        assert SweepJournal.key_for(self.KEYS) != SweepJournal.key_for(self.KEYS[:2])

    def test_record_load_round_trip(self, tmp_path):
        journal = SweepJournal(tmp_path, SweepJournal.key_for(self.KEYS))
        assert journal.load() == set()  # no file yet: empty, not an error
        journal.record(self.KEYS[0])
        journal.record(self.KEYS[1])
        assert journal.load() == {self.KEYS[0], self.KEYS[1]}
        # a fresh instance reads the same file (cross-invocation resume)
        again = SweepJournal(tmp_path, SweepJournal.key_for(self.KEYS))
        assert again.load() == {self.KEYS[0], self.KEYS[1]}

    def test_torn_tail_loses_at_most_the_last_record(self, tmp_path):
        journal = SweepJournal(tmp_path, "deadbeef")
        journal.record(self.KEYS[0])
        journal.record(self.KEYS[1])
        with open(journal.path, "a") as fh:
            fh.write('{"key": "ccc')  # interrupted mid-append
        assert journal.load() == {self.KEYS[0], self.KEYS[1]}
        journal.record(self.KEYS[2])  # appending after a torn tail still works
        assert self.KEYS[2] in journal.load()

    def test_truncated_mid_record_discards_partial_line_only(self, tmp_path):
        # A crash can also *shorten* the file (lost tail of a page write):
        # resume must keep every whole record and silently drop the one
        # the truncation bisected.
        journal = SweepJournal(tmp_path, "deadbeef")
        for key in self.KEYS:
            journal.record(key)
        size = journal.path.stat().st_size
        # cut=1 would only shave the trailing newline — the record content
        # survives whole and is rightly kept; cut>=2 bisects the JSON
        for cut in (2, 7, 25):  # various mid-final-record truncation points
            with open(journal.path, "r+b") as fh:
                fh.truncate(size - cut)
            loaded = journal.load()
            assert self.KEYS[0] in loaded and self.KEYS[1] in loaded
            assert self.KEYS[2] not in loaded  # bisected record dropped
        # and the journal remains appendable afterwards
        journal.record(self.KEYS[2])
        assert journal.load() == set(self.KEYS)

    def test_non_ok_and_malformed_records_are_ignored(self, tmp_path):
        journal = SweepJournal(tmp_path, "deadbeef")
        journal.record(self.KEYS[0], status="failed")
        journal.record(self.KEYS[1])
        with open(journal.path, "a") as fh:
            fh.write('"just a string"\n{"status": "ok"}\n')
        assert journal.load() == {self.KEYS[1]}

    def test_journals_never_collide_with_result_entries(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(make_cell())
        cache.put(key, make_run())
        journal = SweepJournal(tmp_path, "deadbeef")
        journal.record(key)
        assert len(cache) == 1  # *.jsonl journals invisible to the entry glob
        assert cache.get(key) is not None


class TestMaintenanceCli:
    def fill(self, tmp_path):
        cache = ResultCache(tmp_path)
        key = cache_key(make_cell())
        cache.put(key, make_run())
        stale_key = "e" * 64
        stale = cache.path_for(stale_key)
        stale.parent.mkdir(parents=True, exist_ok=True)
        stale.write_text(json.dumps({"version": 0, "key": stale_key}))
        SweepJournal(tmp_path, "deadbeef").record(key)
        return cache, key, stale

    def test_stats_reports_entries_versions_and_journals(self, tmp_path, capsys):
        self.fill(tmp_path)
        assert cache_cli(["--cache", str(tmp_path), "stats"]) == 0
        out = capsys.readouterr().out
        assert "entries: 2" in out
        assert f"version {CACHE_VERSION}: 1 (current)" in out
        assert "version 0: 1" in out
        assert "journals: 1" in out

    def test_prune_drops_stale_versions_only(self, tmp_path):
        cache, key, stale = self.fill(tmp_path)
        assert cache_cli(["--cache", str(tmp_path), "prune"]) == 0
        assert not stale.exists()
        assert cache.get(key) is not None  # current entry untouched

    def test_prune_dry_run_deletes_nothing(self, tmp_path, capsys):
        _, _, stale = self.fill(tmp_path)
        assert cache_cli(["--cache", str(tmp_path), "prune", "--dry-run"]) == 0
        assert stale.exists()
        assert "would drop 1" in capsys.readouterr().out

    def test_prune_max_age_expires_current_entries(self, tmp_path):
        cache, key, _ = self.fill(tmp_path)
        old = cache.path_for(key)
        os.utime(old, (0, 0))  # mtime: the epoch
        assert cache_cli(["--cache", str(tmp_path), "prune", "--max-age", "30"]) == 0
        assert not old.exists()

    def test_missing_cache_root_is_an_error(self, tmp_path):
        assert cache_cli(["--cache", str(tmp_path / "nope"), "stats"]) == 1
