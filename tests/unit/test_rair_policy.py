"""Unit tests for the RAIR policy's priority rules (no network needed)."""

import pytest

from repro.core.dpa import DpaConfig
from repro.core.rair import RairPolicy
from repro.noc.config import VcClass


class FakeRouter:
    def __init__(self, native_high=False):
        self.native_high = native_high
        self.ovc_n = 0
        self.ovc_f = 0


class FakeVC:
    def __init__(self, native):
        self.is_native = native


class TestConstruction:
    def test_default_is_full_rair(self):
        p = RairPolicy()
        assert p.uses_va_priority and p.uses_sa_priority
        assert p.name == "ra_rair"
        assert p.dpa.mode == "dynamic"

    def test_va_only_variant(self):
        p = RairPolicy.va_only()
        assert p.uses_va_priority and not p.uses_sa_priority
        assert p.name == "rair_va"

    def test_static_variants_named(self):
        assert "nativeH" in RairPolicy.native_high().name
        assert "foreignH" in RairPolicy.foreign_high().name

    def test_stage_type_checked(self):
        with pytest.raises(TypeError):
            RairPolicy(stages="va")


class TestVaOutPriority:
    def test_global_vc_always_prefers_foreign(self):
        p = RairPolicy()
        for nh in (True, False):
            router = FakeRouter(native_high=nh)
            kf = p.va_out_priority(router, VcClass.GLOBAL, FakeVC(native=False))
            kn = p.va_out_priority(router, VcClass.GLOBAL, FakeVC(native=True))
            assert kf < kn

    def test_regional_vc_follows_dpa(self):
        p = RairPolicy()
        router = FakeRouter(native_high=True)
        assert p.va_out_priority(router, VcClass.REGIONAL, FakeVC(True)) < p.va_out_priority(
            router, VcClass.REGIONAL, FakeVC(False)
        )
        router = FakeRouter(native_high=False)
        assert p.va_out_priority(router, VcClass.REGIONAL, FakeVC(False)) < p.va_out_priority(
            router, VcClass.REGIONAL, FakeVC(True)
        )


class TestSaPriority:
    def test_sa_follows_dpa(self):
        p = RairPolicy()
        router = FakeRouter(native_high=True)
        assert p.sa_priority(router, FakeVC(True)) < p.sa_priority(router, FakeVC(False))
        router = FakeRouter(native_high=False)
        assert p.sa_priority(router, FakeVC(False)) < p.sa_priority(router, FakeVC(True))


class TestDpaUpdate:
    def test_dynamic_mode_updates_state(self):
        p = RairPolicy()
        router = FakeRouter(native_high=False)
        router.ovc_n, router.ovc_f = 2, 10
        p.end_router_cycle(router, cycle=1)
        assert router.native_high

    def test_static_native_never_updates(self):
        p = RairPolicy(dpa=DpaConfig(mode="native"))
        router = FakeRouter(native_high=True)
        router.ovc_n, router.ovc_f = 10, 0  # would flip under dynamic mode
        p.end_router_cycle(router, cycle=1)
        assert router.native_high

    def test_static_foreign_never_updates(self):
        p = RairPolicy(dpa=DpaConfig(mode="foreign"))
        router = FakeRouter(native_high=False)
        router.ovc_n, router.ovc_f = 0, 10
        p.end_router_cycle(router, cycle=1)
        assert not router.native_high

    def test_attach_initializes_routers(self):
        class FakeNet:
            routers = [FakeRouter(), FakeRouter()]

        p = RairPolicy(dpa=DpaConfig(mode="native"))
        p.attach(FakeNet())
        assert all(r.native_high for r in FakeNet.routers)

        p2 = RairPolicy()  # dynamic: starts foreign-high (paper default)
        p2.attach(FakeNet())
        assert not any(r.native_high for r in FakeNet.routers)
