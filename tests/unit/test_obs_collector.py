"""Unit tests for the metrics collector (repro.obs.collector)."""

from __future__ import annotations

import json

import pytest

from repro import RegionMap, build_simulation
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.noc.trace import RecordingTrace
from repro.obs.collector import (
    MetricsCollector,
    ObsConfig,
    ObsSummary,
    _latency_stats,
    dumps_record,
    sanitize_name,
)
from repro.obs.schema import SCHEMA_VERSION, load_jsonl, validate_stream
from repro.traffic.regional import RegionalAppTraffic
from repro.util.errors import ConfigError


def _rair_sim(width=6, height=6):
    cfg = NocConfig(width=width, height=height)
    rm = RegionMap.halves(MeshTopology(width, height))
    sim, net = build_simulation(cfg, region_map=rm, scheme="rair", routing="local")
    for app, rate in ((0, 0.05), (1, 0.25)):
        sim.add_traffic(
            RegionalAppTraffic(rm, app, rate=rate, seed=app + 1,
                               intra_fraction=0.6, inter_fraction=0.4,
                               mc_fraction=0.0)
        )
    return sim, net


class TestSanitizeName:
    def test_passthrough_and_collapse(self):
        assert sanitize_name("RA_RAIR_two-app.s42") == "RA_RAIR_two-app.s42"
        assert sanitize_name("a b/c\\d:e") == "a-b-c-d-e"
        assert sanitize_name("///") == "run"
        assert sanitize_name("-x-") == "x"


class TestObsConfig:
    def test_sample_period_must_be_positive(self):
        with pytest.raises(ConfigError, match="sample_period"):
            ObsConfig(dir=None, sample_period=0)

    def test_named_fills_only_when_unset(self):
        cfg = ObsConfig(dir="/tmp/x")
        assert cfg.named("cell one").name == "cell-one"
        explicit = ObsConfig(dir="/tmp/x", name="keep me")
        assert explicit.named("other").name == "keep-me"

    def test_frozen_and_picklable(self):
        import pickle

        cfg = ObsConfig(dir="d", sample_period=32, name="n")
        assert pickle.loads(pickle.dumps(cfg)) == cfg
        with pytest.raises(Exception):
            cfg.sample_period = 1


class TestInstall:
    def test_claims_trace_and_obs_slots(self):
        sim, net = _rair_sim()
        col = MetricsCollector(ObsConfig(dir=None)).install(sim)
        assert net.trace is col
        assert sim.obs is col
        assert col.next_sample == col.config.sample_period

    def test_refuses_occupied_trace_slot(self):
        cfg = NocConfig(width=4, height=4)
        sim, _ = build_simulation(cfg, scheme="ro_rr", trace=RecordingTrace())
        with pytest.raises(ConfigError, match="already has a trace"):
            MetricsCollector(ObsConfig(dir=None)).install(sim)

    def test_refuses_double_install(self):
        sim1, _ = _rair_sim()
        sim2, _ = _rair_sim()
        col = MetricsCollector(ObsConfig(dir=None)).install(sim1)
        with pytest.raises(ConfigError, match="already installed"):
            col.install(sim2)

    def test_finalize_before_install_fails(self):
        with pytest.raises(ConfigError, match="never installed"):
            MetricsCollector(ObsConfig(dir=None)).finalize(0)


class TestCollectedStream:
    def _run(self, obs_dir=None, period=50):
        sim, net = _rair_sim()
        col = MetricsCollector(
            ObsConfig(dir=obs_dir, sample_period=period, name="t")
        ).install(sim)
        res = sim.run_measurement(warmup=100, measure=400, drain_limit=20_000)
        return sim, col, res

    def test_sampling_cadence_and_counts(self):
        _sim, col, res = self._run(period=50)
        # One sample per period boundary over warmup+measure+drain.
        assert col.samples_taken == res.end_cycle // 50
        assert res.obs.samples == col.samples_taken
        assert res.obs.sample_period == 50
        assert res.obs.end_cycle == res.end_cycle

    def test_in_memory_records_validate_as_a_stream(self):
        _sim, col, res = self._run()
        records = col.records()
        # records() excludes the finalize tail — rebuild the full stream
        # through a real finalize-to-disk pass instead.
        assert records[0]["kind"] == "header"
        assert records[0]["schema"] == SCHEMA_VERSION
        assert records[1]["kind"] == "dpa_init"
        assert res.obs.dpa_flips == sum(res.obs.dpa_flips_by_node.values())
        assert res.obs.latency["native"]["count"] > 0
        assert res.obs.latency["foreign"]["count"] > 0

    def test_jsonl_file_written_and_valid(self, tmp_path):
        _sim, col, res = self._run(obs_dir=str(tmp_path))
        path = tmp_path / "t.jsonl"
        assert res.obs.jsonl_path == str(path)
        records = load_jsonl(path)
        counts = validate_stream(records)
        assert counts["latency_class"] == 3
        assert counts["vc_sample"] == counts["link_sample"] == res.obs.samples
        # Canonical encoding: byte-for-byte reproducible lines.
        first = path.read_text().splitlines()[0]
        assert first == dumps_record(records[0])
        assert ": " not in first and ", " not in first

    def test_finalize_is_idempotent(self):
        _sim, col, res = self._run()
        again = col.finalize(res.end_cycle)
        assert again == res.obs

    def test_summary_dict_round_trip(self):
        _sim, _col, res = self._run()
        back = ObsSummary.from_dict(json.loads(json.dumps(res.obs.to_dict())))
        assert back == res.obs

    def test_jsonl_path_not_compared(self):
        _sim, _col, res = self._run()
        d = res.obs.to_dict()
        d["jsonl_path"] = "/somewhere/else.jsonl"
        assert ObsSummary.from_dict(d) == res.obs

    def test_collection_does_not_perturb_simulation(self):
        sim_plain, net_plain = _rair_sim()
        res_plain = sim_plain.run_measurement(
            warmup=100, measure=400, drain_limit=20_000
        )
        sim_obs, _col, res_obs = self._run()
        assert res_obs.end_cycle == res_plain.end_cycle
        assert res_obs.drained == res_plain.drained
        assert res_obs.undrained_packets == res_plain.undrained_packets
        assert sim_obs.network.flits_moved == net_plain.flits_moved
        assert (
            sim_obs.network.stats.packets_ejected == net_plain.stats.packets_ejected
        )


class TestLatencyStats:
    def test_log2_histogram_is_exact_at_powers_of_two(self):
        stats = _latency_stats([1, 2, 3, 4, 8, 1024])
        # [2^0,2^1): {1}; [2^1,2^2): {2,3}; [2^2,2^3): {4}; [2^3,2^4): {8};
        # [2^10,2^11): {1024}
        assert stats["hist"][0] == 1
        assert stats["hist"][1] == 2
        assert stats["hist"][2] == 1
        assert stats["hist"][3] == 1
        assert stats["hist"][10] == 1
        assert sum(stats["hist"]) == stats["count"] == 6
        assert stats["max"] == 1024.0

    def test_percentiles(self):
        stats = _latency_stats(list(range(1, 101)))
        assert stats["p50"] == pytest.approx(50.5)
        assert stats["p95"] == pytest.approx(95.05)
        assert stats["p99"] == pytest.approx(99.01)
        assert stats["mean"] == pytest.approx(50.5)
