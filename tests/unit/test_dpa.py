"""Unit tests for dynamic priority adaptation (hysteresis logic)."""

import pytest

from repro.core.dpa import DpaConfig, hysteresis_update
from repro.util.errors import ConfigError


class TestDpaConfig:
    def test_defaults_match_paper(self):
        cfg = DpaConfig()
        assert cfg.delta == pytest.approx(0.2)
        assert cfg.mode == "dynamic"

    def test_delta_validated(self):
        with pytest.raises(ConfigError):
            DpaConfig(delta=1.5)
        with pytest.raises(ConfigError):
            DpaConfig(delta=-0.1)

    def test_mode_validated(self):
        DpaConfig(mode="native")
        DpaConfig(mode="foreign")
        with pytest.raises(ValueError):
            DpaConfig(mode="sometimes")


class TestHysteresis:
    DELTA = 0.2

    def test_low_to_high_requires_ratio_above_upper(self):
        # r = f/n must exceed 1 + delta to flip native to high priority.
        assert not hysteresis_update(False, ovc_n=10, ovc_f=11, delta=self.DELTA)
        assert not hysteresis_update(False, ovc_n=10, ovc_f=12, delta=self.DELTA)
        assert hysteresis_update(False, ovc_n=10, ovc_f=13, delta=self.DELTA)

    def test_high_to_low_requires_ratio_below_lower(self):
        assert hysteresis_update(True, ovc_n=10, ovc_f=9, delta=self.DELTA)
        assert hysteresis_update(True, ovc_n=10, ovc_f=8, delta=self.DELTA)
        assert not hysteresis_update(True, ovc_n=10, ovc_f=7, delta=self.DELTA)

    def test_dead_band_keeps_state(self):
        # Inside (1-delta, 1+delta) both states persist — the hysteresis of Fig. 7.
        for ovc_f in (9, 10, 11):
            assert hysteresis_update(True, 10, ovc_f, self.DELTA)
            assert not hysteresis_update(False, 10, ovc_f, self.DELTA)

    def test_no_native_occupancy_gives_native_high(self):
        # Native absent and foreign present: ratio is infinite.
        assert hysteresis_update(False, ovc_n=0, ovc_f=1, delta=self.DELTA)
        assert hysteresis_update(True, ovc_n=0, ovc_f=1, delta=self.DELTA)

    def test_idle_router_keeps_state(self):
        assert hysteresis_update(True, 0, 0, self.DELTA)
        assert not hysteresis_update(False, 0, 0, self.DELTA)

    def test_no_foreign_occupancy_gives_foreign_high(self):
        # r = 0 < 1 - delta: native loses priority (it hoards all VCs).
        assert not hysteresis_update(True, ovc_n=3, ovc_f=0, delta=self.DELTA)
        assert not hysteresis_update(False, ovc_n=3, ovc_f=0, delta=self.DELTA)

    def test_zero_delta_is_plain_threshold(self):
        assert hysteresis_update(False, 10, 11, 0.0)
        assert not hysteresis_update(True, 10, 9, 0.0)
        # Exactly r == 1 keeps state in both directions (strict inequalities).
        assert hysteresis_update(True, 10, 10, 0.0)
        assert not hysteresis_update(False, 10, 10, 0.0)

    def test_negative_feedback_self_throttles(self):
        """Section IV.D: priority and occupancy form a negative feedback loop.

        Simulate a toy loop: whichever side has priority grows its
        occupancy; the state must oscillate rather than lock in.
        """
        native_high = False
        n, f = 5, 5
        states = []
        for _ in range(40):
            native_high = hysteresis_update(native_high, n, f, 0.2)
            if native_high:
                n = min(20, n + 2)
                f = max(1, f - 2)
            else:
                f = min(20, f + 2)
                n = max(1, n - 2)
            states.append(native_high)
        assert True in states and False in states
