"""Unit tests for the run-metrics counters (RunMetrics + wiring)."""

from __future__ import annotations

import json

from repro import build_simulation
from repro.experiments.runner import FigureResult
from repro.noc.config import NocConfig
from repro.noc.stats import RunMetrics
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource


def _small_run(warmup=100, measure=400):
    cfg = NocConfig(width=4, height=4)
    sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(cfg.num_nodes),
            rate=0.05,
            pattern=UniformPattern(net.topology),
            app_id=0,
            seed=7,
            lengths=FixedLength(1),
        )
    )
    res = sim.run_measurement(warmup=warmup, measure=measure, drain_limit=20_000)
    return sim, res


class TestRunMetricsCounters:
    def test_populated_after_run_measurement(self):
        sim, res = _small_run()
        m = res.metrics
        # The result carries an independent snapshot: later runs on the
        # same simulator must not retroactively mutate an earlier result.
        assert m is not sim.metrics
        assert m == sim.metrics
        assert m.cycles == res.end_cycle
        assert m.wall_time_s > 0.0
        assert m.cycles_per_sec > 0.0
        assert set(m.phase_cycles) == {"warmup", "measure", "drain"}
        assert m.phase_cycles["warmup"] == 100
        assert m.phase_cycles["measure"] == 400
        assert sum(m.phase_cycles.values()) == res.end_cycle
        assert set(m.phase_seconds) == {"warmup", "measure", "drain"}
        assert all(s >= 0.0 for s in m.phase_seconds.values())

    def test_zeroed_on_reset(self):
        sim, _ = _small_run()
        sim.reset_metrics()
        m = sim.metrics
        assert m.cycles == 0
        assert m.wall_time_s == 0.0
        assert m.cycles_per_sec == 0.0
        assert m.phase_cycles == {} and m.phase_seconds == {}
        assert not m.cache_hit

    def test_accumulates_across_runs_until_reset(self):
        sim, res1 = _small_run(warmup=50, measure=100)
        before = sim.metrics.phase_cycles["warmup"]
        sim.run_measurement(warmup=50, measure=100, drain_limit=20_000)
        assert sim.metrics.phase_cycles["warmup"] == before + 50

    def test_result_snapshot_unaffected_by_later_runs(self):
        sim, res1 = _small_run(warmup=50, measure=100)
        frozen_cycles = res1.metrics.cycles
        frozen_warmup = res1.metrics.phase_cycles["warmup"]
        res2 = sim.run_measurement(warmup=50, measure=100, drain_limit=20_000)
        assert res1.metrics.cycles == frozen_cycles
        assert res1.metrics.phase_cycles["warmup"] == frozen_warmup
        assert res2.metrics.cycles > res1.metrics.cycles

    def test_dict_round_trip(self):
        _, res = _small_run()
        d = res.metrics.to_dict()
        back = RunMetrics.from_dict(d)
        assert back == res.metrics
        assert d["cycles_per_sec"] == res.metrics.cycles_per_sec


class TestFigureResultMetricsOutput:
    def test_metrics_rendered_and_serialized(self):
        fig = FigureResult(
            figure="F",
            title="t",
            columns=["a"],
            rows=[{"a": 1.0}],
            metrics={"cells": 4, "cache_hits": 3, "wall_time_s": 1.25},
        )
        text = fig.format_table()
        assert "metrics:" in text
        assert "cache_hits=3" in text
        blob = json.dumps(fig.to_json_dict())
        assert json.loads(blob)["metrics"]["cells"] == 4

    def test_no_metrics_line_when_empty(self):
        fig = FigureResult(figure="F", title="t", columns=["a"], rows=[{"a": 1}])
        assert "metrics:" not in fig.format_table()
