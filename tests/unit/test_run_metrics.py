"""Unit tests for the run-metrics counters (RunMetrics + wiring)."""

from __future__ import annotations

import json

from repro import build_simulation
from repro.experiments.runner import FigureResult
from repro.noc.config import NocConfig
from repro.noc.stats import RunMetrics
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource


def _small_run(warmup=100, measure=400):
    cfg = NocConfig(width=4, height=4)
    sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(cfg.num_nodes),
            rate=0.05,
            pattern=UniformPattern(net.topology),
            app_id=0,
            seed=7,
            lengths=FixedLength(1),
        )
    )
    res = sim.run_measurement(warmup=warmup, measure=measure, drain_limit=20_000)
    return sim, res


class TestRunMetricsCounters:
    def test_populated_after_run_measurement(self):
        sim, res = _small_run()
        m = res.metrics
        # The result carries an independent snapshot: later runs on the
        # same simulator must not retroactively mutate an earlier result.
        assert m is not sim.metrics
        assert m == sim.metrics
        assert m.cycles == res.end_cycle
        assert m.wall_time_s > 0.0
        assert m.cycles_per_sec > 0.0
        assert set(m.phase_cycles) == {"warmup", "measure", "drain"}
        assert m.phase_cycles["warmup"] == 100
        assert m.phase_cycles["measure"] == 400
        assert sum(m.phase_cycles.values()) == res.end_cycle
        assert set(m.phase_seconds) == {"warmup", "measure", "drain"}
        assert all(s >= 0.0 for s in m.phase_seconds.values())

    def test_zeroed_on_reset(self):
        sim, _ = _small_run()
        sim.reset_metrics()
        m = sim.metrics
        assert m.cycles == 0
        assert m.wall_time_s == 0.0
        assert m.cycles_per_sec == 0.0
        assert m.phase_cycles == {} and m.phase_seconds == {}
        assert not m.cache_hit

    def test_accumulates_across_runs_until_reset(self):
        sim, res1 = _small_run(warmup=50, measure=100)
        before = sim.metrics.phase_cycles["warmup"]
        sim.run_measurement(warmup=50, measure=100, drain_limit=20_000)
        assert sim.metrics.phase_cycles["warmup"] == before + 50

    def test_result_snapshot_unaffected_by_later_runs(self):
        sim, res1 = _small_run(warmup=50, measure=100)
        frozen_cycles = res1.metrics.cycles
        frozen_warmup = res1.metrics.phase_cycles["warmup"]
        res2 = sim.run_measurement(warmup=50, measure=100, drain_limit=20_000)
        assert res1.metrics.cycles == frozen_cycles
        assert res1.metrics.phase_cycles["warmup"] == frozen_warmup
        assert res2.metrics.cycles > res1.metrics.cycles

    def test_dict_round_trip(self):
        _, res = _small_run()
        d = res.metrics.to_dict()
        back = RunMetrics.from_dict(d)
        assert back == res.metrics
        assert d["cycles_per_sec"] == res.metrics.cycles_per_sec


class TestCyclesPerSecEdgeCases:
    """cycles_per_sec must be 0.0 — never a crash or an absurd rate —
    whenever the run cannot meaningfully be rated."""

    def test_fresh_metrics_rate_is_zero(self):
        assert RunMetrics().cycles_per_sec == 0.0

    def test_cycles_without_wall_time(self):
        # A cache-restored or sub-clock-resolution run: cycles > 0 but a
        # measured wall time of exactly 0.0 must not divide by zero.
        m = RunMetrics(cycles=10_000, wall_time_s=0.0)
        assert m.cycles_per_sec == 0.0

    def test_wall_time_without_cycles(self):
        m = RunMetrics(cycles=0, wall_time_s=2.5)
        assert m.cycles_per_sec == 0.0

    def test_negative_wall_time_is_not_rated(self):
        m = RunMetrics(cycles=100, wall_time_s=-1.0)
        assert m.cycles_per_sec == 0.0

    def test_non_finite_wall_time_is_not_rated(self):
        for bad in (float("inf"), float("nan")):
            m = RunMetrics(cycles=100, wall_time_s=bad)
            assert m.cycles_per_sec == 0.0

    def test_normal_rate(self):
        m = RunMetrics(cycles=500, wall_time_s=2.0)
        assert m.cycles_per_sec == 250.0

    def test_round_trip_preserves_zero_rate_payload(self):
        m = RunMetrics(cycles=10, wall_time_s=0.0)
        d = m.to_dict()
        assert d["cycles_per_sec"] == 0.0
        assert RunMetrics.from_dict(d) == m


class TestObsCounters:
    """obs_samples / obs_events ride along with the other counters."""

    def test_default_zero_and_reset(self):
        m = RunMetrics(cycles=5, obs_samples=3, obs_events=11)
        assert m.obs_samples == 3 and m.obs_events == 11
        m.reset()
        assert m.obs_samples == 0 and m.obs_events == 0

    def test_snapshot_copies_obs_counters(self):
        m = RunMetrics(obs_samples=7, obs_events=42)
        snap = m.snapshot()
        m.obs_samples = 0
        m.obs_events = 0
        assert snap.obs_samples == 7 and snap.obs_events == 42

    def test_dict_round_trip_with_and_without_keys(self):
        m = RunMetrics(obs_samples=2, obs_events=9)
        d = m.to_dict()
        assert d["obs_samples"] == 2 and d["obs_events"] == 9
        assert RunMetrics.from_dict(d) == m
        # Payloads written before the obs subsystem existed lack the keys.
        legacy = {k: v for k, v in d.items() if not k.startswith("obs_")}
        back = RunMetrics.from_dict(legacy)
        assert back.obs_samples == 0 and back.obs_events == 0

    def test_populated_by_an_obs_enabled_run(self):
        from repro.obs import MetricsCollector, ObsConfig

        cfg = NocConfig(width=4, height=4)
        sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
        sim.add_traffic(
            SyntheticTrafficSource(
                nodes=range(cfg.num_nodes),
                rate=0.05,
                pattern=UniformPattern(net.topology),
                app_id=0,
                seed=7,
                lengths=FixedLength(1),
            )
        )
        collector = MetricsCollector(ObsConfig(dir=None, sample_period=32))
        collector.install(sim)
        res = sim.run_measurement(warmup=100, measure=400, drain_limit=20_000)
        assert res.metrics.obs_samples == collector.samples_taken > 0
        assert res.metrics.obs_events == collector.events_recorded > 0
        assert res.obs is not None
        assert res.obs.samples == res.metrics.obs_samples


class TestFigureResultMetricsOutput:
    def test_metrics_rendered_and_serialized(self):
        fig = FigureResult(
            figure="F",
            title="t",
            columns=["a"],
            rows=[{"a": 1.0}],
            metrics={"cells": 4, "cache_hits": 3, "wall_time_s": 1.25},
        )
        text = fig.format_table()
        assert "metrics:" in text
        assert "cache_hits=3" in text
        blob = json.dumps(fig.to_json_dict())
        assert json.loads(blob)["metrics"]["cells"] == 4

    def test_no_metrics_line_when_empty(self):
        fig = FigureResult(figure="F", title="t", columns=["a"], rows=[{"a": 1}])
        assert "metrics:" not in fig.format_table()
