"""Unit tests for the durable job store (repro.service.jobstore)."""

from __future__ import annotations

from repro.experiments.parallel import Cell
from repro.experiments.runner import SCHEMES, Effort
from repro.experiments.scenarios import ScenarioSpec
from repro.service.jobstore import JobStore
from repro.service.protocol import JobRecord, JobSpec


def make_job(job_id: str, priority: str = "normal", n_cells: int = 1) -> JobRecord:
    cells = [
        Cell(
            scheme=SCHEMES["RO_RR"],
            spec=ScenarioSpec(
                "repro.experiments.chaos:chaos_scenario",
                {"mode": "ok", "marker": None, "cell_id": i, "rate": 0.05},
            ),
            effort=Effort.SMOKE,
            seed=1,
        )
        for i in range(n_cells)
    ]
    return JobRecord.new(job_id, JobSpec(cells=cells, priority=priority))


class TestJournalReplay:
    def test_recover_empty_store(self, tmp_path):
        store = JobStore(tmp_path / "store")
        assert store.recover() == {}
        assert store.next_job_number() == 1

    def test_submit_then_recover(self, tmp_path):
        store = JobStore(tmp_path / "store")
        job = make_job("j000001", priority="high", n_cells=2)
        store.append_submit(job)
        jobs = JobStore(tmp_path / "store").recover()
        assert set(jobs) == {"j000001"}
        out = jobs["j000001"]
        assert out.spec == job.spec
        assert out.state == "queued"
        assert out.priority == "high"

    def test_state_events_fold_over_submit(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.append_submit(make_job("j000001"))
        store.append_state("j000001", "running", started_at=1.0, start_seq=1)
        store.append_state("j000001", "done", finished_at=2.0)
        job = store.recover()["j000001"]
        assert job.state == "done"
        assert job.started_at == 1.0
        assert job.finished_at == 2.0
        assert job.start_seq == 1
        assert job.terminal

    def test_state_for_unknown_job_ignored(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.append_state("jghost", "done")
        assert store.recover() == {}

    def test_torn_tail_does_not_break_replay(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.append_submit(make_job("j000001"))
        with open(store.journal_path, "a", encoding="utf-8") as fh:
            fh.write('\n{"event": "state", "id": "j000001", "sta')  # torn
        jobs = JobStore(tmp_path / "store").recover()
        assert jobs["j000001"].state == "queued"

    def test_undecodable_submit_collected_not_fatal(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.append_submit(make_job("j000001"))
        import json

        with open(store.journal_path, "a", encoding="utf-8") as fh:
            fh.write(
                "\n"
                + json.dumps(
                    {"event": "submit", "v": 1, "job": {"id": "j000002", "spec": {}}}
                )
                + "\n"
            )
        fresh = JobStore(tmp_path / "store")
        jobs = fresh.recover()
        assert set(jobs) == {"j000001"}
        assert fresh.undecodable == ["j000002"]

    def test_next_job_number_skips_ids(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.append_submit(make_job("j000005"))
        store.append_submit(make_job("j000002"))
        assert store.next_job_number() == 6


class TestResultStreams:
    def test_append_and_replay(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.append_result("j1", {"kind": "cell", "seq": 0, "index": 2})
        store.append_result("j1", {"kind": "cell", "seq": 1, "index": 0})
        recs = store.result_records("j1")
        assert [r["seq"] for r in recs] == [0, 1]
        assert store.result_records("j-missing") == []

    def test_completed_indices(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.append_result("j1", {"kind": "cell", "seq": 0, "index": 2})
        store.append_result("j1", {"kind": "cell", "seq": 1, "index": 0})
        store.append_result("j1", {"kind": "job_end", "state": "done"})
        assert store.completed_indices("j1") == {0, 2}

    def test_recover_counts_completed_from_streams(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.append_submit(make_job("j000001", n_cells=3))
        store.append_state("j000001", "running")
        store.append_result("j000001", {"kind": "cell", "seq": 0, "index": 1})
        job = JobStore(tmp_path / "store").recover()["j000001"]
        assert job.completed == 1
        assert job.state == "running"  # the daemon's recovery set

    def test_torn_result_line_skipped(self, tmp_path):
        store = JobStore(tmp_path / "store")
        store.append_result("j1", {"kind": "cell", "seq": 0, "index": 0})
        with open(store.result_path("j1"), "a", encoding="utf-8") as fh:
            fh.write('\n{"kind": "cell", "seq": 1, "ind')  # torn mid-append
        assert store.completed_indices("j1") == {0}


class TestEndpointFile:
    def test_write_and_read(self, tmp_path):
        store = JobStore(tmp_path / "store")
        assert store.read_endpoint() is None
        store.write_endpoint("http://127.0.0.1:12345")
        assert store.read_endpoint() == "http://127.0.0.1:12345"
        assert JobStore(tmp_path / "store").read_endpoint() == "http://127.0.0.1:12345"
