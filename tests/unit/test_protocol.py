"""Unit tests for the service wire protocol (repro.service.protocol)."""

from __future__ import annotations

import json
from dataclasses import replace

import pytest

from repro.experiments.cache import cache_key
from repro.experiments.parallel import Cell, CellFailure, CellResult, ExecutionReport, FaultPolicy
from repro.experiments.runner import SCHEMES, Effort
from repro.experiments.scenarios import ScenarioSpec
from repro.noc.config import NocConfig, VcClass
from repro.service.protocol import (
    JobRecord,
    JobSpec,
    ProtocolError,
    cell_result_from_wire,
    cell_result_to_wire,
    decode_cells,
    decode_value,
    encode_cells,
    encode_value,
    report_from_wire,
    report_to_wire,
    stamp,
)


def roundtrip(obj):
    """Encode -> JSON text -> decode, exactly what the wire does."""
    return decode_value(json.loads(json.dumps(encode_value(obj))))


def make_cell(scheme="RAIR", seed=7, cell_id=0) -> Cell:
    return Cell(
        scheme=SCHEMES["RAIR_Local"] if scheme == "RAIR" else SCHEMES[scheme],
        spec=ScenarioSpec(
            "repro.experiments.chaos:chaos_scenario",
            {"mode": "ok", "marker": None, "cell_id": cell_id, "rate": 0.05},
        ),
        effort=Effort.SMOKE,
        seed=seed,
    )


class TestValueCodec:
    def test_scalars_pass_through(self):
        for value in (None, True, False, 0, -3, 1.5, "x", ""):
            assert roundtrip(value) == value

    def test_containers(self):
        assert roundtrip([1, [2, 3], "a"]) == [1, [2, 3], "a"]
        assert roundtrip((1, 2)) == (1, 2)
        assert roundtrip({"a": (1,), "b": {"c": None}}) == {"a": (1,), "b": {"c": None}}

    def test_non_string_dict_keys(self):
        assert roundtrip({1: "a", (2, 3): "b"}) == {1: "a", (2, 3): "b"}

    def test_plain_enum_by_name(self):
        assert roundtrip(Effort.SMOKE) is Effort.SMOKE

    def test_int_enum_keeps_type(self):
        # VcClass is an IntEnum: it must NOT collapse to a bare int,
        # because NocConfig.__post_init__ type-checks the members.
        out = roundtrip(VcClass.GLOBAL)
        assert out is VcClass.GLOBAL
        assert isinstance(out, VcClass)

    def test_flag_combination_roundtrips(self):
        from repro.core.msp import Stage

        combo = Stage.VA | Stage.SA
        assert roundtrip(combo) == combo

    def test_dataclass_roundtrip_preserves_equality(self):
        cfg = NocConfig(width=4, height=4)
        assert roundtrip(cfg) == cfg

    def test_rejects_unencodable(self):
        with pytest.raises(ProtocolError):
            encode_value(object())

    def test_decode_rejects_non_repro_types(self):
        evil = {"__repro__": "dataclass", "type": "os:environ", "fields": {}}
        with pytest.raises(ProtocolError):
            decode_value(evil)
        evil = {"__repro__": "enum", "type": "pickle:Pickler", "name": "x"}
        with pytest.raises(ProtocolError):
            decode_value(evil)

    def test_decode_rejects_unknown_tag(self):
        with pytest.raises(ProtocolError):
            decode_value({"__repro__": "mystery"})

    def test_decode_rejects_unknown_enum_member(self):
        wire = json.loads(json.dumps(encode_value(Effort.SMOKE)))
        wire["name"] = "NOPE"
        with pytest.raises(ProtocolError):
            decode_value(wire)


class TestCellCodec:
    def test_cell_roundtrip_equal_and_same_cache_key(self):
        cell = make_cell()
        out = roundtrip(cell)
        assert out == cell
        assert cache_key(out) == cache_key(cell)

    def test_scheme_with_flag_and_policy_kwargs(self):
        # RAIR_VA carries a Stage flag; RAIR_DPA carries a DpaConfig —
        # the two hardest schemes to move invertibly.
        for name in ("RAIR_VA", "RAIR_DPA", "RAIR_VA+SA"):
            cell = replace(make_cell(), scheme=SCHEMES[name])
            out = roundtrip(cell)
            assert out == cell, name
            assert cache_key(out) == cache_key(cell), name

    def test_cell_with_config_override(self):
        cell = replace(make_cell(), config=NocConfig(width=4, height=4))
        out = roundtrip(cell)
        assert out == cell
        assert cache_key(out) == cache_key(cell)

    def test_encode_decode_cells_typechecks(self):
        cells = [make_cell(cell_id=i) for i in range(3)]
        assert decode_cells(encode_cells(cells)) == cells
        with pytest.raises(ProtocolError):
            decode_cells([encode_value("not a cell")])


class TestResultCodec:
    def test_failure_result_roundtrip(self):
        cell = make_cell()
        failure = CellFailure(
            error_type="SimulationError",
            message="boom",
            traceback="tb",
            attempts=3,
            wall_time_s=0.5,
            retryable=False,
        )
        res = CellResult(cell=cell, index=4, failure=failure, attempts=3)
        rec = json.loads(json.dumps(cell_result_to_wire(res, seq=9)))
        assert rec["kind"] == "cell" and rec["seq"] == 9
        out = cell_result_from_wire(rec)
        assert out.cell == cell
        assert out.index == 4
        assert out.run is None
        assert out.failure == failure
        assert not out.ok

    def test_report_roundtrip(self):
        rep = ExecutionReport(
            cells=5, jobs=2, cache_hits=1, cache_misses=4, failures=1,
            wall_time_s=1.25, sim_cycles=1000, cached=True, retries=2,
        )
        out = report_from_wire(json.loads(json.dumps(report_to_wire(rep))))
        assert out == rep

    def test_report_from_wire_ignores_unknown_fields(self):
        payload = report_to_wire(ExecutionReport(cells=1, jobs=1))
        payload["from_the_future"] = 1
        assert report_from_wire(payload).cells == 1


class TestJobSpec:
    def test_roundtrip(self):
        spec = JobSpec(
            cells=[make_cell(cell_id=i) for i in range(2)],
            priority="high",
            jobs=2,
            cache="/tmp/cache",
            policy=FaultPolicy(max_attempts=2, wall_timeout_s=30.0),
        )
        out = JobSpec.from_wire(json.loads(json.dumps(spec.to_wire())))
        assert out == spec
        assert out.cell_keys() == spec.cell_keys()

    def test_validation(self):
        with pytest.raises(ProtocolError):
            JobSpec(cells=[make_cell()], priority="urgent")
        with pytest.raises(ProtocolError):
            JobSpec(cells=[make_cell()], jobs=0)
        with pytest.raises(ProtocolError):
            JobSpec(cells=[])
        with pytest.raises(ProtocolError):
            JobSpec.from_wire({"priority": "high"})
        with pytest.raises(ProtocolError):
            JobSpec.from_wire("nope")


class TestJobRecord:
    def test_new_stamps_provenance(self):
        job = JobRecord.new("j000001", JobSpec(cells=[make_cell()]))
        assert job.meta["repro_version"] == stamp()["repro_version"]
        assert "git_rev" in job.meta
        assert job.state == "queued" and not job.terminal

    def test_submit_wire_roundtrip(self):
        job = JobRecord.new("j000002", JobSpec(cells=[make_cell()], priority="low"))
        job.state = "running"
        job.start_seq = 3
        out = JobRecord.from_submit_wire(json.loads(json.dumps(job.submit_wire())))
        assert out.id == job.id
        assert out.spec == job.spec
        assert out.state == "running"
        assert out.start_seq == 3
        assert out.priority == "low"

    def test_status_wire_has_no_spec(self):
        job = JobRecord.new("j000003", JobSpec(cells=[make_cell()]))
        assert "spec" not in job.status_wire()

    def test_bad_state_rejected(self):
        job = JobRecord.new("j000004", JobSpec(cells=[make_cell()]))
        wire = job.submit_wire()
        wire["state"] = "exploded"
        with pytest.raises(ProtocolError):
            JobRecord.from_submit_wire(wire)
