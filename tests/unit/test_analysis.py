"""Unit tests for the analytical reproductions (Section III.B and Fig. 1)."""

import pytest

from repro.analysis import (
    OverlapModel,
    lbdr_valid_fraction,
    lbdr_valid_fraction_montecarlo,
    mapping_is_lbdr_valid,
    stall_cycles,
)
from repro.util.errors import ConfigError


class TestLbdrClosedForm:
    def test_paper_number(self):
        """16 cores, 4 MCs, 4 apps -> ~14% (paper Section III.B)."""
        assert lbdr_valid_fraction(16, 4, 4) == pytest.approx(0.1407, abs=0.0005)

    def test_more_regions_than_mcs_is_impossible(self):
        # "the number of regions ... is at most the number of MCs".
        assert lbdr_valid_fraction(16, 2, 4) == 0.0

    def test_fewer_regions_than_mcs_not_covered_by_closed_form(self):
        with pytest.raises(ConfigError):
            lbdr_valid_fraction(16, 8, 4)

    def test_uneven_tiling_rejected(self):
        with pytest.raises(ConfigError):
            lbdr_valid_fraction(16, 4, 3)

    def test_trivial_cases(self):
        # One app, one MC: the app always contains the MC.
        assert lbdr_valid_fraction(8, 1, 1) == 1.0
        # Two apps of size 1 on 2 cores with 2 MCs: both mappings valid.
        assert lbdr_valid_fraction(2, 2, 2) == 1.0

    def test_fraction_shrinks_with_app_size_imbalance(self):
        # Larger chips with the same 4 MCs/4 apps stay near-similar but the
        # value is always a proper fraction.
        for cores in (16, 32, 64):
            frac = lbdr_valid_fraction(cores, 4, 4)
            assert 0.0 < frac < 1.0


class TestLbdrPredicate:
    def test_valid_mapping(self):
        node_app = [0, 1, 2, 3, 0, 1, 2, 3]
        assert mapping_is_lbdr_valid(node_app, mc_nodes=[0, 1, 2, 3])

    def test_invalid_mapping(self):
        node_app = [0, 0, 1, 1, 2, 2, 3, 3]
        # MCs all land in apps 0 and 1: apps 2/3 cannot reach memory.
        assert not mapping_is_lbdr_valid(node_app, mc_nodes=[0, 1, 2, 3])

    def test_unassigned_nodes_ignored(self):
        node_app = [0, -1, 0, -1]
        assert mapping_is_lbdr_valid(node_app, mc_nodes=[0])
        assert not mapping_is_lbdr_valid(node_app, mc_nodes=[1])


class TestLbdrMonteCarlo:
    def test_agrees_with_closed_form(self):
        exact = lbdr_valid_fraction(16, 4, 4)
        empirical = lbdr_valid_fraction_montecarlo(16, 4, 4, trials=20_000, seed=1)
        assert empirical == pytest.approx(exact, abs=0.01)

    def test_deterministic_under_seed(self):
        a = lbdr_valid_fraction_montecarlo(trials=2000, seed=3)
        b = lbdr_valid_fraction_montecarlo(trials=2000, seed=3)
        assert a == b


class TestOverlapModel:
    def test_stall_is_max_not_sum(self):
        assert stall_cycles([20, 25, 22]) == 25.0

    def test_compute_overlap_hides_latency(self):
        assert stall_cycles([20], compute_overlap=30) == 0.0
        assert stall_cycles([50], compute_overlap=30) == 20.0

    def test_empty_batch_no_stall(self):
        assert stall_cycles([]) == 0.0

    def test_negative_latency_rejected(self):
        with pytest.raises(ConfigError):
            stall_cycles([-1.0])

    def test_fig1_story(self):
        """Regional P2 hides under P1; global P2' is exposed (Fig. 1)."""
        model = OverlapModel(regional_latency=20, global_latency=60)
        example = model.fig1_example()
        assert example["p2_regional_extra_stall"] == 0.0
        assert example["p2_global_extra_stall"] == 40.0

    def test_acceleration_payoff_only_above_companions(self):
        model = OverlapModel()
        # Accelerating the longest request pays off fully...
        assert model.speedup_from_acceleration(60, 40, others=[20]) == 20.0
        # ...but accelerating below the companion saturates.
        assert model.speedup_from_acceleration(60, 10, others=[20]) == 40.0
        # Accelerating an already-hidden request saves nothing.
        assert model.speedup_from_acceleration(15, 5, others=[20]) == 0.0

    def test_validation(self):
        with pytest.raises(ConfigError):
            OverlapModel(regional_latency=0)
        with pytest.raises(ConfigError):
            OverlapModel().speedup_from_acceleration(10, 20, others=[])
