"""Unit tests for the VC-regionalization priority rules."""

from repro.core.vc_regionalization import (
    global_vc_priority,
    preferred_class,
    regional_vc_priority,
    vc_class_counts,
)
from repro.noc.config import NocConfig, VcClass


class TestGlobalVcRule:
    def test_foreign_always_beats_native(self):
        # Lower key = higher priority.
        assert global_vc_priority(is_native=False) < global_vc_priority(is_native=True)


class TestRegionalVcRule:
    def test_follows_dpa_state(self):
        # native_high=True: native wins.
        assert regional_vc_priority(True, native_high=True) < regional_vc_priority(
            False, native_high=True
        )
        # native_high=False: foreign wins.
        assert regional_vc_priority(False, native_high=False) < regional_vc_priority(
            True, native_high=False
        )

    def test_keys_are_binary(self):
        for native in (True, False):
            for nh in (True, False):
                assert regional_vc_priority(native, nh) in (0, 1)


class TestPreferredClass:
    def test_foreign_prefers_global(self):
        assert preferred_class(is_native=False) is VcClass.GLOBAL

    def test_native_prefers_regional(self):
        assert preferred_class(is_native=True) is VcClass.REGIONAL


class TestCounts:
    def test_default_split(self):
        assert vc_class_counts(NocConfig()) == (2, 2)

    def test_skewed_split(self):
        cfg = NocConfig(
            vc_classes=(VcClass.GLOBAL, VcClass.GLOBAL, VcClass.GLOBAL, VcClass.REGIONAL)
        )
        assert vc_class_counts(cfg) == (3, 1)
