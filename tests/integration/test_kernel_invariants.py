"""Cross-check the event-driven kernel against the brute-force scan.

The wake-list kernel (``Router.va_pending`` / ``va_parked`` /
``sa_pending`` and the network's active-router set) is an optimization
over the old poll-every-VC kernel and must be *sound*: no VC that the
brute-force eligibility scan would schedule may ever be missing from the
wake lists. These tests step real simulations under random regional
traffic and re-derive every router's schedulable state from scratch at a
fixed cadence, comparing it to the incrementally maintained lists.

Invariants checked between cycles (``cycle`` = the next cycle to run):

1. VA partition — the keys in ``va_pending`` and ``va_parked`` are
   disjoint and their union is exactly the set of VCs in VA state.
2. Parked means stuck — every parked VC has an empty ``va_options`` set
   (nothing allocatable until a credit returns or an owner releases).
3. SA soundness — every VC the old kernel's eligibility test
   (``wants_sa`` + credit check) would schedule next cycle is armed in
   ``sa_pending``. The converse need not hold: the list may lazily carry
   drained or credit-starved VCs until the next walk drops them.
4. SA liveness of entries — everything in ``sa_pending`` is an ACTIVE VC
   (owns a downstream VC); retired VCs never linger.
5. Active set — the network's active-router set is exactly the routers
   holding at least one packet, and ``busy_vcs`` agrees with a recount.
"""

from __future__ import annotations

import pytest

from repro import build_simulation
from repro.core.regions import RegionMap
from repro.noc.buffers import VC_ACTIVE
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.regional import RegionalAppTraffic

CHECK_EVERY = 7  # co-prime with the congestion period so phases interleave


def _check_router_invariants(net, cycle):
    """Assert invariants 1-4 for every router, 5 for the network."""
    for router in net.routers:
        pending = set(router.pending_va_keys())
        parked = set(router.parked_va_keys())
        # 1. pending/parked partition the VA-state VCs
        assert not (pending & parked), f"node {router.node}: VA key in both lists"
        assert pending | parked == router.scan_va_state(), (
            f"node {router.node} cycle {cycle}: wake lists disagree with VA scan"
        )
        # 2. parked VCs really have nothing to request
        for key in parked:
            invc = router.vcs[key]
            assert router.va_options(invc) == [], (
                f"node {router.node} key {key}: parked with live options"
            )
        # 3. the lists never miss an SA-schedulable VC
        sa_pending = set(router.pending_sa_keys())
        eligible = router.scan_sa_eligible(cycle)
        assert eligible <= sa_pending, (
            f"node {router.node} cycle {cycle}: "
            f"SA-eligible {sorted(eligible - sa_pending)} not armed"
        )
        # 4. armed SA entries are ACTIVE VCs
        for key in sa_pending:
            assert router.vcs[key].state == VC_ACTIVE, (
                f"node {router.node} key {key}: retired VC still armed for SA"
            )
    # 5. the active set is exactly the busy routers
    busy = [r.node for r in net.routers if r.busy_vcs]
    assert net.active_nodes() == busy
    for router in net.routers:
        n, f = router.occupied_vcs()
        assert router.busy_vcs == n + f


def _regional_sim(scheme, routing, rate, seed):
    cfg = NocConfig(width=8, height=8)
    regions = RegionMap.quadrants(MeshTopology(8, 8))
    sim, net = build_simulation(cfg, region_map=regions, scheme=scheme, routing=routing)
    for app in range(regions.num_apps):
        sim.add_traffic(RegionalAppTraffic(regions, app, rate=rate, seed=seed + app))
    return sim, net


@pytest.mark.parametrize(
    "scheme, routing, rate",
    [
        ("ro_rr", "xy", 0.10),
        ("rair", "local", 0.15),
        ("rair", "dbar", 0.25),
        ("stc", "local", 0.30),
    ],
)
def test_wake_lists_match_brute_force_scan(scheme, routing, rate):
    sim, net = _regional_sim(scheme, routing, rate, seed=11)
    for _ in range(400):
        sim.step()
        if sim.cycle % CHECK_EVERY == 0:
            _check_router_invariants(net, sim.cycle)
    # The workload must actually have exercised the kernel.
    assert net.flits_moved > 0
    assert net.stats.packets_ejected > 0


def test_invariants_hold_through_drain():
    # Stop injecting and let the network empty: retirements and sleeps
    # dominate, the opposite regime from the steady-state test above.
    sim, net = _regional_sim("rair", "local", rate=0.3, seed=23)
    for _ in range(200):
        sim.step()
    sim.traffic_sources.clear()
    drained_at = None
    for _ in range(3000):
        sim.step()
        if sim.cycle % CHECK_EVERY == 0:
            _check_router_invariants(net, sim.cycle)
        if net.idle() and not net.busy_routers():
            drained_at = sim.cycle
            break
    assert drained_at is not None, "network failed to drain"
    assert net.active_nodes() == []
    for router in net.routers:
        assert router.va_pending == 0
        assert router.va_parked == 0
        assert router.sa_pending == 0
