"""Live-network DPA behaviour: the hysteresis state machine must actually
flip under the traffic conditions the paper describes."""

from repro import RegionMap, build_simulation
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import UniformPattern
from repro.traffic.regional import RegionalAppTraffic
from repro.traffic.synthetic import SyntheticTrafficSource


def build_halves(scheme="rair"):
    cfg = NocConfig(width=6, height=6)
    topo = MeshTopology(6, 6)
    rm = RegionMap.halves(topo)
    sim, net = build_simulation(cfg, region_map=rm, scheme=scheme, routing="local")
    return sim, net, rm


class TestDpaStateInLiveRuns:
    def test_initial_state_is_foreign_high(self):
        _, net, _ = build_halves()
        assert not any(r.native_high for r in net.routers)

    def test_heavy_native_region_keeps_foreign_high(self):
        """Paper case (1)/(2): intense native + light foreign -> foreign
        keeps priority (native_high stays False)."""
        sim, net, rm = build_halves()
        sim.add_traffic(
            RegionalAppTraffic(rm, 1, rate=0.30, seed=1,
                               intra_fraction=0.9, inter_fraction=0.1, mc_fraction=0.0)
        )
        sim.add_traffic(
            RegionalAppTraffic(rm, 0, rate=0.02, seed=2,
                               intra_fraction=0.5, inter_fraction=0.5, mc_fraction=0.0)
        )
        sim.run(800)
        region1 = [net.routers[n] for n in rm.nodes_of(1)]
        # Majority of busy region-1 routers must still favour foreign.
        busy = [r for r in region1 if r.ovc_n + r.ovc_f > 0]
        assert busy
        foreign_high = sum(1 for r in busy if not r.native_high)
        assert foreign_high >= len(busy) * 0.6

    def test_foreign_flood_flips_native_high(self):
        """Paper case (3)/adversarial: foreign occupancy exceeding native
        flips priority to protect the light native traffic."""
        sim, net, rm = build_halves()
        topo = net.topology
        # Light native traffic in region 0, heavy chip-wide foreign flood
        # from an unplaced app id (foreign everywhere).
        sim.add_traffic(
            RegionalAppTraffic(rm, 0, rate=0.02, seed=3,
                               intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0)
        )
        sim.add_traffic(
            SyntheticTrafficSource(
                nodes=range(36), rate=0.30, pattern=UniformPattern(topo),
                app_id=500, seed=4,
            )
        )
        sim.run(800)
        region0 = [net.routers[n] for n in rm.nodes_of(0)]
        busy = [r for r in region0 if r.ovc_f > 0]
        assert busy
        native_high = sum(1 for r in busy if r.native_high)
        assert native_high >= len(busy) * 0.6

    def test_dpa_state_changes_over_time_with_phased_traffic(self):
        """Alternating load phases must move the DPA state both ways."""
        sim, net, rm = build_halves()
        topo = net.topology
        # Phase 1: foreign flood (cycles 0-600). Phase 2: native heavy
        # (cycles 600-1200).
        sim.add_traffic(
            SyntheticTrafficSource(
                nodes=range(36), rate=0.25, pattern=UniformPattern(topo),
                app_id=500, seed=5, stop=600,
            )
        )
        sim.add_traffic(
            RegionalAppTraffic(rm, 0, rate=0.30, seed=6,
                               intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0,
                               start=600, stop=1200)
        )
        region0 = [net.routers[n] for n in rm.nodes_of(0)]
        sim.run(550)
        snapshot_flood = sum(1 for r in region0 if r.native_high)
        sim.run(600)  # deep into the native-heavy phase
        snapshot_native = sum(1 for r in region0 if r.native_high)
        # During the flood most busy routers protect native; afterwards the
        # balance shifts back toward foreign-high.
        assert snapshot_flood > snapshot_native
