"""Integration tests for the Simulator driver: measurement protocol,
determinism, watchdog, traffic plumbing."""

import pytest

from repro import build_simulation
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.topology import EAST
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource
from repro.util.errors import SimulationError

from tests.conftest import run_uniform


class TestMeasurementProtocol:
    def test_window_is_after_warmup(self):
        sim, net, res = run_uniform(warmup=100, measure=300)
        assert res.window == (100, 400)
        assert res.end_cycle >= 400

    def test_window_packets_all_drain(self):
        sim, net, res = run_uniform(rate=0.1)
        assert res.drained
        assert res.undrained_packets == 0
        assert net.window_ejected == net.window_injected

    def test_apl_measured_only_in_window(self):
        sim, net, res = run_uniform(rate=0.1, warmup=200, measure=400)
        lat = net.stats.latencies(window=res.window)
        assert len(lat) == net.window_injected
        assert (lat > 0).all()

    def test_measurement_counts_match_stats(self):
        sim, net, res = run_uniform(rate=0.1)
        assert net.stats.packet_count(window=res.window, include_adversarial=True) == (
            net.window_injected
        )

    def test_drain_limit_reports_undrained(self):
        # Saturating load with a tiny drain budget cannot drain.
        sim, net, res = run_uniform(rate=0.9, warmup=50, measure=300)
        cfg = NocConfig(width=4, height=4)
        sim2, net2 = build_simulation(cfg, scheme="ro_rr", routing="xy")
        src = SyntheticTrafficSource(
            nodes=range(16), rate=0.95, pattern=UniformPattern(net2.topology),
            app_id=0, seed=3, lengths=FixedLength(5),
        )
        sim2.add_traffic(src)
        res2 = sim2.run_measurement(warmup=50, measure=500, drain_limit=50)
        assert not res2.drained
        assert res2.undrained_packets > 0


class TestDeterminism:
    def test_identical_seeds_identical_results(self):
        results = []
        for _ in range(2):
            sim, net, res = run_uniform(scheme="rair", routing="local", rate=0.2, seed=5)
            results.append(
                (
                    net.stats.packets_ejected,
                    net.stats.apl(window=res.window),
                    net.flits_moved,
                    res.end_cycle,
                )
            )
        assert results[0] == results[1]

    def test_different_seeds_differ(self):
        _, net1, r1 = run_uniform(rate=0.2, seed=5)
        _, net2, r2 = run_uniform(rate=0.2, seed=6)
        assert net1.stats.apl(window=r1.window) != net2.stats.apl(window=r2.window)

    def test_determinism_across_policies(self):
        # Same traffic seed, different policies: same offered packets.
        _, net1, _ = run_uniform(scheme="ro_rr", rate=0.2, seed=5)
        _, net2, _ = run_uniform(scheme="rair", rate=0.2, seed=5)
        assert net1.stats.packets_ejected == net2.stats.packets_ejected


class TestWatchdog:
    def test_watchdog_fires_on_artificial_stall(self):
        cfg = NocConfig(width=4, height=4)
        sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
        net.inject(Packet(src=0, dst=3, length=1, inject_cycle=0))
        sim.step()  # head is buffered now
        # Sabotage: drain all credits at router 0's east port so the flit
        # can never move.
        router = net.routers[0]
        for vc in range(net.config.total_vcs):
            router.out_credits[EAST][vc] = 0
        sim.WATCHDOG_CYCLES = 200
        with pytest.raises(SimulationError, match="no flit moved"):
            sim.run(1000)

    def test_no_watchdog_on_long_idle(self):
        cfg = NocConfig(width=4, height=4)
        sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
        sim.WATCHDOG_CYCLES = 100
        sim.run(500)  # idle network must never trip the watchdog
        assert sim.cycle == 500


class TestTrafficPlumbing:
    def test_add_traffic_after_construction(self):
        cfg = NocConfig(width=4, height=4)
        sim, net = build_simulation(cfg)
        src = SyntheticTrafficSource(
            nodes=range(16), rate=0.1, pattern=UniformPattern(net.topology),
            app_id=0, seed=1,
        )
        sim.add_traffic(src)
        sim.run(100)
        assert src.packets_injected > 0

    def test_multiple_sources_compose(self):
        cfg = NocConfig(width=4, height=4)
        sim, net = build_simulation(cfg)
        for app in range(3):
            sim.add_traffic(
                SyntheticTrafficSource(
                    nodes=range(16), rate=0.05, pattern=UniformPattern(net.topology),
                    app_id=app, seed=app,
                )
            )
        res = sim.run_measurement(warmup=100, measure=400)
        assert res.drained
        assert set(net.stats.apps()) == {0, 1, 2}
