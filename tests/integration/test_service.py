"""Integration tests for the sweep service (daemon + client, end to end).

Each test spawns a real daemon subprocess with ``--port 0`` (ephemeral)
and talks to it over HTTP, exactly like production. The core assertions
mirror the subsystem's contract:

* service-submitted sweeps are **bit-identical** to direct
  :func:`~repro.experiments.parallel.run_cells_detailed` execution —
  same determinism signatures, byte-identical obs JSONL, cache entries
  shared in both directions;
* priority classes dispatch strictly (high before normal before low),
  proven via ``start_seq`` with the daemon started ``--paused``;
* a full queue answers 429 + Retry-After (backpressure, not failure);
* a daemon SIGKILLed mid-job recovers on restart: queued and incomplete
  jobs resume, completed cells are never re-run or duplicated;
* a killed *worker* (chaos ``kill_once``) is healed by the engine and
  the daemon stays up.
"""

from __future__ import annotations

import json
import os
import pathlib
import signal
import subprocess
import sys
import time

import pytest

import repro
from repro.experiments.chaos import chaos_cell
from repro.experiments.parallel import Cell, run_cells_detailed
from repro.experiments.runner import SCHEMES, Effort
from repro.experiments.scenarios import two_app_msp
from repro.obs.collector import ObsConfig
from repro.service.client import ServiceClient, ServiceError
from repro.service.jobstore import JobStore
from repro.service.protocol import JobSpec

SRC_DIR = str(pathlib.Path(repro.__file__).resolve().parents[1])


def ok_cell(cell_id: int = 0, seed: int = 1) -> Cell:
    """A cheap, healthy cell (tiny 4x4 uniform sweep)."""
    return chaos_cell(SCHEMES["RO_RR"], Effort.SMOKE, seed, mode="ok", cell_id=cell_id)


def msp_cells(seeds=(1,)) -> list[Cell]:
    """Small fig10-shaped cells: the two-app MSP scenario, two schemes."""
    scenario = two_app_msp(p_inter=1.0)
    return [
        Cell.for_scenario(SCHEMES[s], scenario, Effort.SMOKE, seed=seed)
        for seed in seeds
        for s in ("RO_RR_Local", "RAIR_Local")
    ]


class Daemon:
    """A daemon subprocess plus the client pointed at it."""

    def __init__(self, store: pathlib.Path, *extra_args: str):
        self.store = pathlib.Path(store)
        endpoint = self.store / "endpoint"
        endpoint.unlink(missing_ok=True)  # never trust a stale URL
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        self.proc = subprocess.Popen(
            [
                sys.executable,
                "-m",
                "repro.service.daemon",
                "--store",
                str(self.store),
                "--port",
                "0",
                *extra_args,
            ],
            env=env,
            stdout=subprocess.PIPE,
            stderr=subprocess.STDOUT,
            text=True,
        )
        deadline = time.monotonic() + 30.0
        url = None
        while time.monotonic() < deadline:
            if self.proc.poll() is not None:
                raise AssertionError(
                    f"daemon exited {self.proc.returncode}: {self.proc.stdout.read()}"
                )
            url = JobStore(self.store).read_endpoint()
            if url:
                break
            time.sleep(0.05)
        assert url, "daemon never advertised an endpoint"
        self.url = url
        self.client = ServiceClient(url)
        assert self.client.health()["status"] == "ok"

    def kill(self) -> None:
        if self.proc.poll() is None:
            self.proc.kill()
            self.proc.wait(10)

    def terminate(self) -> None:
        if self.proc.poll() is None:
            self.proc.send_signal(signal.SIGTERM)
            try:
                self.proc.wait(10)
            except subprocess.TimeoutExpired:
                self.proc.kill()
                self.proc.wait(10)

    def __enter__(self) -> "Daemon":
        return self

    def __exit__(self, *exc) -> None:
        self.terminate()


class TestBitIdentity:
    def test_service_matches_direct_and_shares_cache(self, tmp_path):
        cells = msp_cells()
        cache = str(tmp_path / "cache")
        direct, direct_report = run_cells_detailed(cells, jobs=1)
        with Daemon(tmp_path / "store") as daemon:
            via, via_report = run_cells_detailed(
                cells, jobs=1, cache=cache, service=daemon.url
            )
            assert [r.ok for r in via] == [True] * len(cells)
            assert via_report.cells == len(cells) == direct_report.cells
            for d, s in zip(direct, via):
                assert s.cell == d.cell
                assert (
                    s.run.determinism_signature() == d.run.determinism_signature()
                )
            # direct run against the cache the *service* populated: all hits
            _, local_report = run_cells_detailed(cells, jobs=1, cache=cache)
            assert local_report.cache_hits == len(cells)
            # and a second service run hits the same entries back
            _, again_report = run_cells_detailed(
                cells, jobs=1, cache=cache, service=daemon.url
            )
            assert again_report.cache_hits == len(cells)

    def test_obs_jsonl_byte_identical(self, tmp_path):
        cells = [ok_cell(cell_id=i) for i in range(2)]
        direct_dir = tmp_path / "obs-direct"
        service_dir = tmp_path / "obs-service"
        run_cells_detailed(cells, jobs=1, obs=ObsConfig(dir=str(direct_dir)))
        with Daemon(tmp_path / "store") as daemon:
            run_cells_detailed(
                cells, jobs=1, obs=ObsConfig(dir=str(service_dir)), service=daemon.url
            )
        direct_files = sorted(p.name for p in direct_dir.glob("*.jsonl"))
        service_files = sorted(p.name for p in service_dir.glob("*.jsonl"))
        assert direct_files == service_files and direct_files
        for name in direct_files:
            assert (direct_dir / name).read_bytes() == (
                service_dir / name
            ).read_bytes(), name

    def test_streamed_records_match_submitted_cells(self, tmp_path):
        cells = [ok_cell(cell_id=i) for i in range(3)]
        with Daemon(tmp_path / "store") as daemon:
            submitted = daemon.client.submit(JobSpec(cells=cells))
            records = list(daemon.client.stream_results(submitted["id"]))
        kinds = [r["kind"] for r in records]
        assert kinds.count("cell") == 3
        assert kinds[-1] == "job_end"
        assert records[-1]["state"] == "done"
        assert sorted(r["index"] for r in records if r["kind"] == "cell") == [0, 1, 2]


class TestSchedulingAndBackpressure:
    def test_priority_classes_dispatch_in_order(self, tmp_path):
        with Daemon(tmp_path / "store", "--paused") as daemon:
            ids = {}
            for i, priority in enumerate(("low", "normal", "high")):
                spec = JobSpec(cells=[ok_cell(cell_id=i)], priority=priority)
                ids[priority] = daemon.client.submit(spec)["id"]
            # held: nothing dispatched yet
            assert daemon.client.health()["queued"] == 3
            daemon.client.resume()
            seqs = {
                p: daemon.client.wait(job_id, timeout=120)["start_seq"]
                for p, job_id in ids.items()
            }
            assert seqs["high"] < seqs["normal"] < seqs["low"]

    def test_full_queue_rejects_with_429(self, tmp_path):
        with Daemon(tmp_path / "store", "--paused", "--max-queued", "1") as daemon:
            first = daemon.client.submit(JobSpec(cells=[ok_cell(0)]))
            assert first["state"] == "queued"
            status, headers, payload = daemon.client._request(
                "POST", "/v1/jobs", body=JobSpec(cells=[ok_cell(1)]).to_wire()
            )
            assert status == 429
            assert float(headers.get("Retry-After", 0)) > 0
            assert "full" in payload["error"]
            with pytest.raises(ServiceError) as exc:
                daemon.client.submit(
                    JobSpec(cells=[ok_cell(2)]), retries=1, max_sleep_s=0.1
                )
            assert exc.value.status == 429
            # draining the queue restores admission
            daemon.client.cancel(first["id"])
            accepted = daemon.client.submit(JobSpec(cells=[ok_cell(3)]))
            assert accepted["state"] == "queued"

    def test_cancel_queued_job_terminates_stream(self, tmp_path):
        with Daemon(tmp_path / "store", "--paused") as daemon:
            job_id = daemon.client.submit(JobSpec(cells=[ok_cell()]))["id"]
            cancelled = daemon.client.cancel(job_id)
            assert cancelled["state"] == "cancelled"
            records = list(daemon.client.stream_results(job_id))
            assert [r["kind"] for r in records] == ["job_end"]
            assert records[-1]["state"] == "cancelled"
            # cancelling again is a conflict, not a success
            with pytest.raises(ServiceError) as exc:
                daemon.client.cancel(job_id)
            assert exc.value.status == 409

    def test_unknown_job_and_bad_spec(self, tmp_path):
        with Daemon(tmp_path / "store") as daemon:
            with pytest.raises(ServiceError) as exc:
                daemon.client.job("j999999")
            assert exc.value.status == 404
            status, _, payload = daemon.client._request(
                "POST", "/v1/jobs", body={"cells": ["garbage"]}
            )
            assert status == 400
            assert "bad job spec" in payload["error"]


@pytest.mark.chaos
class TestCrashRecovery:
    def test_killed_daemon_resumes_without_duplicating_cells(self, tmp_path):
        marker = str(tmp_path / "release.marker")
        cells = [
            ok_cell(cell_id=0),
            chaos_cell(
                SCHEMES["RO_RR"],
                Effort.SMOKE,
                seed=1,
                mode="wait_marker",
                marker=marker,
                cell_id=1,
            ),
        ]
        store = tmp_path / "store"
        daemon = Daemon(store)
        try:
            job_id = daemon.client.submit(JobSpec(cells=cells))["id"]
            deadline = time.monotonic() + 60.0
            while time.monotonic() < deadline:
                if daemon.client.job(job_id)["completed"] >= 1:
                    break
                time.sleep(0.05)
            else:
                raise AssertionError("first cell never completed")
            # cell 0 is durable; cell 1 is blocked on the marker. Pull the
            # plug mid-job.
            daemon.kill()
        finally:
            daemon.kill()

        open(marker, "w").close()  # release the blocked cell for the revival
        with Daemon(store) as revived:
            status = revived.client.wait(job_id, timeout=120)
            assert status["state"] == "done"
            records = list(revived.client.stream_results(job_id))
            cell_records = [r for r in records if r["kind"] == "cell"]
            indices = [r["index"] for r in cell_records]
            # every cell exactly once: the completed cell was not re-run
            assert sorted(indices) == [0, 1]
            assert len(indices) == len(set(indices))
            assert records[-1]["kind"] == "job_end"
            assert records[-1]["report"]["resumed"] >= 1

    def test_queued_jobs_survive_restart(self, tmp_path):
        store = tmp_path / "store"
        daemon = Daemon(store, "--paused")
        try:
            job_id = daemon.client.submit(JobSpec(cells=[ok_cell()]))["id"]
            daemon.kill()
        finally:
            daemon.kill()
        with Daemon(store) as revived:  # not paused: dispatch resumes
            status = revived.client.wait(job_id, timeout=120)
            assert status["state"] == "done"
            assert status["completed"] == 1

    def test_daemon_survives_killed_worker(self, tmp_path):
        # kill_once SIGKILLs the *executing* process. jobs=2 puts cells in
        # pool workers, so the casualty is a worker — never the daemon —
        # and the engine's pool rebuild + retry heals the cell.
        marker = str(tmp_path / "kill.marker")
        cells = [
            chaos_cell(
                SCHEMES["RO_RR"],
                Effort.SMOKE,
                seed=1,
                mode="kill_once",
                marker=marker,
                cell_id=0,
            ),
            ok_cell(cell_id=1),
        ]
        with Daemon(tmp_path / "store") as daemon:
            results, report = run_cells_detailed(cells, jobs=2, service=daemon.url)
            assert [r.ok for r in results] == [True, True]
            assert report.retries >= 1
            health = daemon.client.health()
            assert health["status"] == "ok"
            assert daemon.proc.poll() is None


class TestSubmitCli:
    def run_cli(self, *args: str) -> subprocess.CompletedProcess:
        env = dict(os.environ)
        env["PYTHONPATH"] = SRC_DIR + os.pathsep + env.get("PYTHONPATH", "")
        return subprocess.run(
            [sys.executable, "-m", "repro.service.submit", *args],
            env=env,
            capture_output=True,
            text=True,
            timeout=300,
        )

    def test_health_list_show_watch(self, tmp_path):
        with Daemon(tmp_path / "store") as daemon:
            job_id = daemon.client.submit(JobSpec(cells=[ok_cell()]))["id"]
            daemon.client.wait(job_id, timeout=120)

            health = self.run_cli("--service", daemon.url, "health")
            assert health.returncode == 0
            assert json.loads(health.stdout)["status"] == "ok"

            # store-directory form of --service resolves via the endpoint file
            listing = self.run_cli("--service", str(tmp_path / "store"), "list")
            assert listing.returncode == 0
            assert [j["id"] for j in json.loads(listing.stdout)] == [job_id]

            shown = self.run_cli("--service", daemon.url, "show", job_id)
            assert json.loads(shown.stdout)["state"] == "done"

            watched = self.run_cli("--service", daemon.url, "watch", job_id)
            assert watched.returncode == 0
            assert f"job {job_id}: done" in watched.stdout

    def test_unreachable_service_is_a_clean_error(self, tmp_path):
        result = self.run_cli("--service", "http://127.0.0.1:9", "health")
        assert result.returncode == 1
        assert "error:" in result.stderr
