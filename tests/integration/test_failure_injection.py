"""Failure-injection tests: the simulator must *detect* corrupted state,
not silently produce wrong results."""

import pytest

pytestmark = pytest.mark.chaos

from repro import build_simulation
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.topology import EAST
from repro.util.errors import SimulationError


def build(**kw):
    return build_simulation(NocConfig(width=4, height=4, **kw))


class TestCreditCorruption:
    def test_extra_credit_detected(self):
        sim, net = build()
        net._push(net._credits, 2, (5, EAST, 1))
        with pytest.raises(SimulationError, match="credit overflow"):
            sim.run(5)

    def test_stolen_credits_trip_watchdog(self):
        sim, net = build()
        sim.WATCHDOG_CYCLES = 150
        net.inject(Packet(src=0, dst=3, length=1, inject_cycle=0))
        sim.step()
        for vc in range(net.config.total_vcs):
            net.routers[0].out_credits[EAST][vc] = 0
        with pytest.raises(SimulationError, match="no flit moved"):
            sim.run(1000)


class TestBufferMisuse:
    def test_phantom_body_flit_detected(self):
        sim, net = build()
        net._push(net._arrivals, 2, (5, EAST, 1, None))  # body with no packet
        with pytest.raises(SimulationError, match="body flit arrived at empty VC"):
            sim.run(5)

    def test_head_into_busy_vc_detected(self):
        sim, net = build()
        p1 = Packet(src=5, dst=6, length=5, inject_cycle=0)
        p2 = Packet(src=9, dst=6, length=1, inject_cycle=0)
        # Force both heads into the same VC via raw events.
        net._push(net._arrivals, 1, (6, EAST, 1, p1))
        net._push(net._arrivals, 2, (6, EAST, 1, p2))
        with pytest.raises(SimulationError, match="busy VC"):
            sim.run(5)

    def test_vnet_mismatch_detected(self):
        sim, net = build(num_vnets=2)
        pkt = Packet(src=5, dst=6, length=1, inject_cycle=0, vnet=1)
        # Deliver a vnet-1 packet into a vnet-0 VC.
        net._push(net._arrivals, 1, (6, EAST, 0, pkt))
        with pytest.raises(SimulationError, match="vnet"):
            sim.run(3)


class TestInjectionValidation:
    def test_all_invalid_packet_shapes_rejected(self):
        sim, net = build()
        bad = [
            Packet(src=-1, dst=0, length=1, inject_cycle=0),
            Packet(src=0, dst=16, length=1, inject_cycle=0),
            Packet(src=0, dst=1, length=9, inject_cycle=0),
            Packet(src=0, dst=1, length=1, inject_cycle=0, vnet=3),
        ]
        for pkt in bad:
            with pytest.raises(SimulationError):
                net.inject(pkt)
        # Nothing leaked into the queues.
        assert net.queued_packets() == 0
        assert net.packets_in_flight == 0

    def test_region_map_mismatch_rejected(self):
        from repro.core.regions import RegionMap
        from repro.noc.topology import MeshTopology
        from repro.routing import make_routing
        from repro.arbitration import make_policy
        from repro.noc.network import Network

        rm = RegionMap.halves(MeshTopology(8, 8))
        with pytest.raises(SimulationError, match="region map"):
            Network(NocConfig(width=4, height=4), make_routing("xy"),
                    make_policy("rr"), region_map=rm)


class TestRecoveryAbsence:
    def test_errors_are_not_swallowed_by_drain(self):
        """run_until_drained must propagate internal errors, not mask them."""
        sim, net = build()
        sim.WATCHDOG_CYCLES = 100
        net.inject(Packet(src=0, dst=3, length=1, inject_cycle=0))
        sim.step()
        for vc in range(net.config.total_vcs):
            net.routers[0].out_credits[EAST][vc] = 0
        with pytest.raises(SimulationError):
            sim.run_until_drained(5000)
