"""Integration tests for the experiment harness (smoke-scale runs)."""

import math

import pytest

from repro.experiments import (
    Effort,
    SCHEMES,
    run_scenario,
    saturation_load,
)
from repro.experiments import (
    ablation_hysteresis,
    ablation_vcsplit,
    fig09_msp,
    fig10_routing,
    fig12_dpa,
    fig14_sixapp,
    fig15_patterns,
    fig17_parsec,
    table1,
)
from repro.experiments.calibrate import probe_apl
from repro.experiments.scenarios import (
    four_app_dpa,
    parsec_quadrants,
    six_app,
    two_app_msp,
)
from repro.util.errors import ConfigError


class TestSaturationTable:
    def test_known_keys_resolve(self):
        assert 0 < saturation_load("ur_chip_8x8") < 1

    def test_unknown_key_raises_helpfully(self):
        with pytest.raises(ConfigError, match="calibrate"):
            saturation_load("ur_moon_base")


class TestScenarios:
    def test_two_app_meta(self):
        s = two_app_msp(0.4)
        assert s.meta["p_inter"] == 0.4
        assert s.region_map.num_apps == 2
        sources = s.traffic_factory(7)
        assert len(sources) == 2
        assert sources[1].intra_fraction == 1.0

    def test_two_app_rates_track_saturation(self):
        s = two_app_msp(0.0)
        sat = saturation_load("ur_half_4x8")
        assert s.meta["low_rate"] == pytest.approx(0.10 * sat)
        # High app runs at 0.80 of the solo knee (in-context calibration,
        # see the scenario docstring).
        assert s.meta["high_rate"] == pytest.approx(0.80 * sat)

    def test_four_app_variants(self):
        for variant in ("a", "b"):
            s = four_app_dpa(variant)
            sources = s.traffic_factory(3)
            assert len(sources) == 4
        with pytest.raises(ValueError):
            four_app_dpa("c")

    def test_four_app_a_routes_inter_traffic_to_app3(self):
        s = four_app_dpa("a")
        src0 = s.traffic_factory(3)[0]
        rm = s.region_map
        import numpy as np

        rng = np.random.default_rng(0)
        dsts = {src0._inter(rng, rm.nodes_of(0)[0]) for _ in range(60)}
        assert dsts <= set(rm.nodes_of(3))

    def test_six_app_load_mix(self):
        s = six_app()
        sources = s.traffic_factory(3)
        assert len(sources) == 6
        for src in sources:
            assert src.intra_fraction == pytest.approx(0.75)
            assert src.inter_fraction == pytest.approx(0.20)
            assert src.mc_fraction == pytest.approx(0.05)
        # high-load apps offered more than low-load ones
        assert sources[1].rate > sources[0].rate

    def test_six_app_patterns(self):
        for pattern in ("ur", "tp", "bc", "hs"):
            s = six_app(global_pattern=pattern)
            assert s.name.endswith(pattern)
            s.traffic_factory(1)

    def test_parsec_scenario_uses_two_vnets(self):
        s = parsec_quadrants()
        assert s.config.num_vnets == 2
        assert len(s.traffic_factory(1)) == 1
        s_adv = parsec_quadrants(adversarial=True)
        assert len(s_adv.traffic_factory(1)) == 2


class TestRunScenario:
    def test_basic_run(self):
        res = run_scenario(SCHEMES["RO_RR"], two_app_msp(0.5), effort=Effort.SMOKE)
        assert res.drained
        assert set(res.per_app_apl) == {0, 1}
        assert res.packets_measured > 50
        assert not math.isnan(res.apl)

    def test_reduction_vs(self):
        scenario = two_app_msp(1.0)
        base = run_scenario(SCHEMES["RO_RR"], scenario, effort=Effort.SMOKE)
        rair = run_scenario(SCHEMES["RA_RAIR"], scenario, effort=Effort.SMOKE)
        red = rair.reduction_vs(base, app=0)
        assert -1.0 < red < 1.0

    def test_policy_overrides_apply(self):
        from repro.core.dpa import DpaConfig

        res = run_scenario(
            SCHEMES["RA_RAIR"],
            two_app_msp(0.5),
            effort=Effort.SMOKE,
            policy_overrides={"dpa": DpaConfig(delta=0.3)},
        )
        assert res.drained


class TestFigureModules:
    def test_table1_renders(self):
        result = table1.run()
        text = result.format_table()
        assert "Virtual channels" in text
        assert "128" in text

    def test_fig09_smoke(self):
        res = fig09_msp.run(effort=Effort.SMOKE, p_values=(1.0,), schemes=("RO_RR", "RAIR_VA+SA"))
        assert len(res.rows) == 2
        rr = res.row_by(scheme="RO_RR")
        rair = res.row_by(scheme="RAIR_VA+SA")
        assert rair["apl_app0"] < rr["apl_app0"]
        assert "Figure 9" in res.format_table()

    def test_fig10_smoke(self):
        res = fig10_routing.run(
            effort=Effort.SMOKE, p_values=(1.0,), schemes=("RO_RR_Local", "RAIR_DBAR")
        )
        assert len(res.rows) == 2

    def test_fig12_smoke(self):
        res = fig12_dpa.run(effort=Effort.SMOKE, variants=("a",), schemes=("RAIR_DPA",))
        row = res.rows[0]
        assert "red_avg" in row

    def test_fig14_smoke(self):
        res = fig14_sixapp.run(effort=Effort.SMOKE, schemes=("RA_RAIR",))
        assert res.rows[0]["scheme"] == "RA_RAIR"

    def test_fig15_smoke(self):
        res = fig15_patterns.run(effort=Effort.SMOKE, patterns=("tp",), schemes=("RA_RAIR",))
        assert res.rows[0]["pattern"] == "TP"

    def test_fig17_smoke(self):
        res = fig17_parsec.run(effort=Effort.SMOKE, schemes=("RO_RR",))
        row = res.rows[0]
        assert row["slow_avg"] > 0.8  # a slowdown factor, not a reduction

    def test_ablation_hysteresis_smoke(self):
        res = ablation_hysteresis.run(effort=Effort.SMOKE, deltas=(0.2,))
        assert res.rows[0]["delta"] == 0.2

    def test_ablation_vcsplit_smoke(self):
        res = ablation_vcsplit.run(effort=Effort.SMOKE, splits=ablation_vcsplit.SPLITS[1:2])
        assert res.rows[0]["split"] == "2G:2R"


class TestFigureResultFormatting:
    def test_row_by_raises_on_miss(self):
        res = table1.run()
        with pytest.raises(KeyError):
            res.row_by(item="GPU")

    def test_format_handles_floats_and_strings(self):
        from repro.experiments.runner import FigureResult

        r = FigureResult(
            figure="F", title="t", columns=["a", "b"], rows=[{"a": 1.23456, "b": "x"}]
        )
        text = r.format_table()
        assert "1.235" in text and "x" in text


class TestCalibrationHelpers:
    def test_probe_apl_runs(self):
        from repro.experiments.calibrate import _chip_ur
        from repro.noc.topology import MeshTopology

        make, rm = _chip_ur(MeshTopology(8, 8))
        apl, drained = probe_apl(make, 0.05, region_map=rm, warmup=100, measure=300)
        assert drained and 10 < apl < 100
