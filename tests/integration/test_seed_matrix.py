"""Seed-matrix determinism: serial × parallel × cache-hit, three seeds.

The engine's core guarantee is that a cell's result is a function of the
cell alone. This test runs the same scenario at three seeds through every
execution path — serial in-process, two worker processes, and a
cache-hit restore — and asserts:

* every simulation-determined field is bit-identical across paths
  (``ScenarioRun.__eq__`` plus ``determinism_signature``),
* the observability summaries are equal across paths (including the one
  restored from the result cache), and
* the obs JSONL *files* from the serial and parallel runs are
  byte-identical — the stream, not just its digest, is deterministic.
"""

from __future__ import annotations

import pathlib

from repro.experiments.parallel import Cell, cell_obs_name, run_cells
from repro.experiments.runner import SCHEMES, Effort
from repro.experiments.scenarios import two_app_msp
from repro.obs import ObsConfig

SEEDS = (11, 12, 13)


def _cells():
    return [
        Cell.for_scenario(SCHEMES["RA_RAIR"], two_app_msp(0.4), Effort.SMOKE, seed=s)
        for s in SEEDS
    ]


def _obs(tmp_path: pathlib.Path, sub: str) -> ObsConfig:
    return ObsConfig(dir=str(tmp_path / sub), sample_period=50)


def test_seed_matrix_serial_parallel_cache_identical(tmp_path):
    cells = _cells()

    runs_serial, _ = run_cells(cells, jobs=1, obs=_obs(tmp_path, "serial"))
    runs_par, _ = run_cells(cells, jobs=2, obs=_obs(tmp_path, "par"))

    cache = str(tmp_path / "cache")
    runs_cold, report_cold = run_cells(
        cells, jobs=1, cache=cache, obs=_obs(tmp_path, "cold")
    )
    runs_hit, report_hit = run_cells(cells, jobs=1, cache=cache)
    assert report_cold.cache_misses == len(SEEDS)
    assert report_hit.cache_hits == len(SEEDS)
    assert report_hit.sim_cycles == 0  # nothing was re-simulated

    for serial, par, cold, hit in zip(runs_serial, runs_par, runs_cold, runs_hit):
        sig = serial.determinism_signature()
        assert par.determinism_signature() == sig
        assert cold.determinism_signature() == sig
        assert hit.determinism_signature() == sig
        # Dataclass equality covers every compared field at once.
        assert serial == par == cold == hit
        # Obs summaries: equal across execution paths, including the one
        # the cache-hit path restored from the stored payload.
        assert serial.obs is not None
        assert serial.obs == par.obs == cold.obs == hit.obs
        assert serial.obs.samples > 0
        assert serial.obs.latency["native"]["count"] > 0

    # Seeds must actually differ from each other (the matrix is 3 distinct
    # simulations, not one repeated).
    signatures = {run.determinism_signature() for run in runs_serial}
    assert len(signatures) == len(SEEDS)


def test_obs_jsonl_streams_byte_identical_across_jobs(tmp_path):
    cells = _cells()
    run_cells(cells, jobs=1, obs=_obs(tmp_path, "serial"))
    run_cells(cells, jobs=2, obs=_obs(tmp_path, "par"))

    serial_dir = tmp_path / "serial"
    par_dir = tmp_path / "par"
    names = sorted(p.name for p in serial_dir.iterdir())
    assert names == sorted(p.name for p in par_dir.iterdir())
    assert len(names) == len(SEEDS)
    # File names are the deterministic per-cell slugs.
    assert set(names) == {f"{cell_obs_name(c)}.jsonl" for c in cells}
    for name in names:
        assert (serial_dir / name).read_bytes() == (par_dir / name).read_bytes(), (
            f"obs stream {name} differs between jobs=1 and jobs=2"
        )
