"""Tests for network-internal mechanics: injection rotation, vnet
fairness, ejection callbacks, and bookkeeping counters."""


from repro import build_simulation
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.topology import LOCAL


def build(**kw):
    return build_simulation(NocConfig(width=4, height=4, **kw))


class TestInjectionRotation:
    def test_local_vcs_are_rotated(self):
        """Consecutive single-flit packets from one node should spread over
        the local input VCs rather than reusing VC 0."""
        sim, net = build()
        for _ in range(4):
            net.inject(Packet(src=5, dst=6, length=1, inject_cycle=0))
        used = set()
        for _ in range(4):
            sim.step()
            for vc, invc in enumerate(net.routers[5].in_vcs[LOCAL]):
                if invc.pkt is not None:
                    used.add(vc)
        assert len(used) >= 2

    def test_vnets_share_injection_link(self):
        """With both vnets backlogged, neither monopolizes the NI."""
        sim, net = build(num_vnets=2)
        for vnet in (0, 1):
            for i in range(6):
                net.inject(
                    Packet(src=5, dst=10, length=5, inject_cycle=0,
                           vnet=vnet, app_id=vnet)
                )
        assert sim.run_until_drained(20_000)
        a = net.stats._as_arrays()
        assert len(a["eject"]) == 12
        # Interleaving check: with a shared 1-flit/cycle NI, strict
        # serialization would finish one vnet (app) entirely before the
        # other starts ejecting; rotation must prevent that.
        eject0 = sorted(a["eject"][a["app"] == 0])
        eject1 = sorted(a["eject"][a["app"] == 1])
        assert eject0[0] < eject1[-1] and eject1[0] < eject0[-1]

    def test_injection_respects_packet_order_within_vnet(self):
        sim, net = build()
        first = Packet(src=5, dst=6, length=1, inject_cycle=0)
        second = Packet(src=5, dst=6, length=1, inject_cycle=0)
        net.inject(first)
        net.inject(second)
        assert sim.run_until_drained(1000)
        a = net.stats._as_arrays()
        assert net.stats.packets_ejected == 2


class TestEjectionCallbacks:
    def test_callback_sees_packet_and_cycle(self):
        sim, net = build()
        seen = []
        net.eject_callbacks.append(lambda pkt, cycle: seen.append((pkt.pid, cycle)))
        p = Packet(src=0, dst=5, length=1, inject_cycle=0)
        net.inject(p)
        sim.run_until_drained(500)
        assert len(seen) == 1
        assert seen[0][0] == p.pid
        assert seen[0][1] > 0

    def test_multiple_callbacks_all_fire(self):
        sim, net = build()
        hits = [0, 0]
        net.eject_callbacks.append(lambda *_: hits.__setitem__(0, hits[0] + 1))
        net.eject_callbacks.append(lambda *_: hits.__setitem__(1, hits[1] + 1))
        net.inject(Packet(src=0, dst=5, length=1, inject_cycle=0))
        sim.run_until_drained(500)
        assert hits == [1, 1]


class TestCounters:
    def test_app_flit_counters(self):
        sim, net = build()
        net.inject(Packet(src=0, dst=5, length=5, inject_cycle=0, app_id=3))
        assert net.app_flits_injected[3] == 5
        sim.run_until_drained(500)
        # Delivered counts switch traversals: 5 flits x (hops+1) routers.
        hops = net.topology.hop_distance(0, 5)
        assert net.app_flits_delivered[3] == 5 * (hops + 1)

    def test_packets_in_flight_tracks_lifecycle(self):
        sim, net = build()
        assert net.packets_in_flight == 0
        net.inject(Packet(src=0, dst=5, length=1, inject_cycle=0))
        assert net.packets_in_flight == 1
        sim.run_until_drained(500)
        assert net.packets_in_flight == 0

    def test_flits_moved_counts_all_traversals(self):
        sim, net = build()
        net.inject(Packet(src=0, dst=1, length=5, inject_cycle=0))
        sim.run_until_drained(500)
        assert net.flits_moved == 5 * 2  # 2 routers on a 1-hop path

    def test_idle_reflects_complete_quiescence(self):
        sim, net = build()
        assert net.idle()
        net.inject(Packet(src=0, dst=5, length=1, inject_cycle=0))
        assert not net.idle()
        sim.run_until_drained(500)
        assert net.idle()
