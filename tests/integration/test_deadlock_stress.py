"""Deadlock/livelock stress tests.

Duato escape VCs must keep every configuration deadlock-free even under
loads past saturation and with adversarial packet mixes. The watchdog
inside the simulator raises on 5000 progress-free cycles, so simply
finishing these runs is the assertion.
"""

import pytest

from repro import build_simulation
from repro.core.regions import RegionMap
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.adversarial import AdversarialTrafficSource
from repro.traffic.parsec import PARSEC_PROFILES, ParsecWorkload
from repro.traffic.patterns import BitComplementPattern, TransposePattern, UniformPattern
from repro.traffic.synthetic import BimodalLengths, SyntheticTrafficSource


def saturating_run(routing, scheme, pattern_cls, cycles=1500, rate=0.6):
    cfg = NocConfig(width=6, height=6)
    topo = MeshTopology(6, 6)
    rm = RegionMap.quadrants(topo) if scheme == "rair" else None
    sim, net = build_simulation(cfg, region_map=rm, scheme=scheme, routing=routing)
    pattern = pattern_cls(topo)
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(36), rate=rate, pattern=pattern, app_id=0, seed=13,
            lengths=BimodalLengths(), stop=cycles,
        )
    )
    sim.run(cycles)
    # Drain with a generous cap; success = no watchdog SimulationError and
    # meaningful forward progress.
    sim.run_until_drained(60_000)
    return net


@pytest.mark.parametrize("routing", ["xy", "local", "dbar"])
def test_oversaturated_uniform_does_not_deadlock(routing):
    net = saturating_run(routing, "ro_rr", UniformPattern)
    assert net.stats.packets_ejected > 500


@pytest.mark.parametrize("pattern_cls", [TransposePattern, BitComplementPattern])
def test_adversarial_permutations_do_not_deadlock(pattern_cls):
    net = saturating_run("local", "ro_rr", pattern_cls)
    assert net.stats.packets_ejected > 500


def test_rair_under_oversaturation_does_not_deadlock():
    net = saturating_run("local", "rair", UniformPattern)
    assert net.stats.packets_ejected > 500


def test_parsec_with_flood_does_not_deadlock():
    cfg = NocConfig(width=6, height=6, num_vnets=2)
    topo = MeshTopology(6, 6)
    rm = RegionMap.quadrants(topo)
    sim, net = build_simulation(cfg, region_map=rm, scheme="rair", routing="local")
    profiles = [
        PARSEC_PROFILES[n]
        for n in ("blackscholes", "swaptions", "fluidanimate", "raytrace")
    ]
    sim.add_traffic(ParsecWorkload(rm, profiles, seed=5))
    sim.add_traffic(
        AdversarialTrafficSource(topo, seed=6, rate=0.35, region_map=rm, stop=1200)
    )
    sim.run(1500)
    assert net.stats.packets_ejected > 200
    # Replies were generated and delivered on vnet 1.
    assert any(v == 1 for v in net.stats._as_arrays()["length"] == 5) or True
    lengths = net.stats._as_arrays()["length"]
    assert (lengths == 5).any()
