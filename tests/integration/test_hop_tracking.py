"""Hop-count tracking: minimal routings must traverse exactly the
Manhattan distance; the mean-hop statistic must match theory."""

import pytest

from repro import build_simulation
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.noc.timing import mean_ur_hops
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource


@pytest.mark.parametrize("routing", ["xy", "local", "dbar", "wf", "oe"])
def test_all_routings_are_minimal_in_hops(routing):
    cfg = NocConfig(width=5, height=5)
    sim, net = build_simulation(cfg, scheme="ro_rr", routing=routing)
    pairs = [(0, 24), (3, 20), (7, 15), (12, 12), (24, 0), (6, 8)]
    for src, dst in pairs:
        net.inject(Packet(src=src, dst=dst, length=1, inject_cycle=sim.cycle))
    assert sim.run_until_drained(5000)
    a = net.stats._as_arrays()
    for i in range(len(a["src"])):
        expected = net.topology.hop_distance(int(a["src"][i]), int(a["dst"][i]))
        assert int(a["hops"][i]) == expected


def test_mean_hops_statistic_matches_theory():
    cfg = NocConfig(width=4, height=4)
    sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(16), rate=0.05, pattern=UniformPattern(net.topology),
            app_id=0, seed=8, lengths=FixedLength(1),
        )
    )
    res = sim.run_measurement(warmup=200, measure=3000)
    measured = net.stats.mean_hops(window=res.window)
    assert measured == pytest.approx(mean_ur_hops(4, 4), rel=0.06)


def test_adaptive_routing_stays_minimal_under_load():
    cfg = NocConfig(width=4, height=4)
    sim, net = build_simulation(cfg, scheme="ro_rr", routing="local")
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(16), rate=0.3, pattern=UniformPattern(net.topology),
            app_id=0, seed=9, stop=500,
        )
    )
    sim.run(500)
    assert sim.run_until_drained(20_000)
    a = net.stats._as_arrays()
    for i in range(len(a["src"])):
        expected = net.topology.hop_distance(int(a["src"][i]), int(a["dst"][i]))
        assert int(a["hops"][i]) == expected  # minimal adaptive: no detours
