"""Integration tests: single packets through the network, timing, credits."""

import pytest

from repro import build_simulation
from repro.noc.config import NocConfig
from repro.noc.flit import Packet
from repro.util.errors import SimulationError


def build(width=4, height=4, routing="xy", scheme="ro_rr", **cfg_kw):
    cfg = NocConfig(width=width, height=height, **cfg_kw)
    return build_simulation(cfg, scheme=scheme, routing=routing)


def send_one(sim, net, src, dst, length=1, vnet=0, limit=500):
    pkt = Packet(src=src, dst=dst, length=length, inject_cycle=sim.cycle, vnet=vnet)
    net.inject(pkt)
    assert sim.run_until_drained(limit)
    return pkt


class TestSinglePacket:
    def test_packet_is_delivered(self):
        sim, net = build()
        send_one(sim, net, src=0, dst=15)
        assert net.stats.packets_ejected == 1
        assert net.stats._dst[0] == 15

    def test_zero_load_latency_formula(self):
        """Zero-load single-flit latency is exactly 3 * (hops + 1).

        Each router traversal costs 3 cycles (buffer write, VA, SA+ST) and
        each of those traversals is followed by one link cycle (mesh link
        or NI ejection link), giving 3 cycles per hop plus 3 for the
        ejection router. Pinning the exact pipeline catches timing
        regressions.
        """
        topo = build()[1].topology
        for src, dst in [(0, 0), (0, 1), (0, 3), (0, 15)]:
            s, n = build()
            send_one(s, n, src=src, dst=dst)
            hops = topo.hop_distance(src, dst)
            lat = n.stats.latencies(include_adversarial=True)[-1]
            assert lat == 3 * (hops + 1), (src, dst, lat)

    def test_long_packet_serialization_adds_length(self):
        sim1, net1 = build()
        p1 = send_one(sim1, net1, src=0, dst=5, length=1)
        sim5, net5 = build()
        p5 = send_one(sim5, net5, src=0, dst=5, length=5)
        l1 = net1.stats.latencies(include_adversarial=True)[-1]
        l5 = net5.stats.latencies(include_adversarial=True)[-1]
        assert l5 == l1 + 4  # 4 extra flits stream 1/cycle behind the head

    def test_self_destination_rejected_by_pattern_layer_but_network_tolerates(self):
        # The network itself delivers src==dst packets via the LOCAL port.
        sim, net = build()
        send_one(sim, net, src=6, dst=6)
        assert net.stats.packets_ejected == 1

    def test_invalid_packets_rejected(self):
        sim, net = build()
        with pytest.raises(SimulationError):
            net.inject(Packet(src=0, dst=99, length=1, inject_cycle=0))
        with pytest.raises(SimulationError):
            net.inject(Packet(src=-1, dst=3, length=1, inject_cycle=0))
        with pytest.raises(SimulationError):
            net.inject(Packet(src=0, dst=3, length=50, inject_cycle=0))
        with pytest.raises(SimulationError):
            net.inject(Packet(src=0, dst=3, length=1, inject_cycle=0, vnet=2))


class TestConservation:
    def test_all_packets_delivered_and_state_clean(self):
        sim, net = build(routing="local")
        rng_pairs = [(0, 15), (3, 12), (5, 10), (15, 0), (9, 2), (7, 8)]
        for src, dst in rng_pairs:
            net.inject(Packet(src=src, dst=dst, length=5, inject_cycle=sim.cycle))
        assert sim.run_until_drained(2000)
        assert net.stats.packets_ejected == len(rng_pairs)
        # Network fully idle: occupancy zero, credits restored everywhere.
        assert net.total_buffered_flits() == 0
        for router in net.routers:
            assert router.busy_vcs == 0
            assert router.ovc_n == 0 and router.ovc_f == 0
            for port in range(1, 5):
                for vc in range(net.config.total_vcs):
                    assert router.out_credits[port][vc] == net.config.vc_depth
                    assert router.out_owner[port][vc] is None

    def test_occupancy_matches_recount(self):
        sim, net = build(routing="local")
        for i in range(10):
            net.inject(Packet(src=i, dst=15 - i, length=5, inject_cycle=0))
        for _ in range(20):
            sim.step()
            recount = sum(r.buffered_flits() for r in net.routers)
            assert recount == net.total_buffered_flits()

    def test_dpa_counters_match_recount(self):
        sim, net = build(routing="local", scheme="rair")
        for i in range(8):
            net.inject(Packet(src=i, dst=15 - i, length=5, inject_cycle=0, app_id=0))
        for _ in range(30):
            sim.step()
            for r in net.routers:
                n, f = r.occupied_vcs()
                assert (r.ovc_n, r.ovc_f) == (n, f)


class TestVirtualNetworks:
    def test_vnets_do_not_share_vcs(self):
        sim, net = build(num_vnets=2)
        send_one(sim, net, src=0, dst=5, vnet=1)
        assert net.stats.packets_ejected == 1

    def test_both_vnets_deliver_concurrently(self):
        sim, net = build(num_vnets=2)
        for vnet in (0, 1):
            for i in range(4):
                net.inject(Packet(src=i, dst=15 - i, length=5, inject_cycle=0, vnet=vnet))
        assert sim.run_until_drained(2000)
        assert net.stats.packets_ejected == 8


class TestInjectionLink:
    def test_injection_serializes_one_flit_per_cycle(self):
        # Two 5-flit packets from the same node: the second head cannot
        # enter before the first packet's 5 flits have streamed in.
        sim, net = build()
        net.inject(Packet(src=0, dst=5, length=5, inject_cycle=0))
        net.inject(Packet(src=0, dst=10, length=5, inject_cycle=0))
        assert sim.run_until_drained(1000)
        lat = sorted(net.stats.latencies(include_adversarial=True))
        assert lat[1] >= lat[0] + 5

    def test_queued_packets_counted(self):
        sim, net = build()
        for _ in range(10):
            net.inject(Packet(src=0, dst=5, length=5, inject_cycle=0))
        assert net.queued_packets() == 10
        sim.step()
        assert net.queued_packets() < 10
