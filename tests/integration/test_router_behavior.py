"""White-box router behaviour tests: arbitration fairness, atomic VC reuse,
escape-VC admissibility and wormhole integrity on a live network."""

import pytest

from repro import build_simulation
from repro.noc.buffers import VC_ACTIVE, VC_VA
from repro.noc.config import NocConfig, VcClass
from repro.noc.flit import Packet
from repro.noc.topology import EAST, LOCAL
from repro.util.errors import SimulationError


def build(width=4, height=4, routing="xy", scheme="ro_rr"):
    return build_simulation(NocConfig(width=width, height=height), scheme=scheme, routing=routing)


class TestVaContention:
    def test_two_senders_share_one_column_fairly(self):
        """Nodes 0 and 8 both stream packets through node 1's east port;
        round-robin must interleave their service so neither starves."""
        sim, net = build(width=4, height=4, routing="xy")
        # Saturating streams from two sources crossing router 1.
        for i in range(12):
            net.inject(Packet(src=0, dst=3, length=5, inject_cycle=0, app_id=0))
            net.inject(Packet(src=1, dst=3, length=5, inject_cycle=0, app_id=1))
        assert sim.run_until_drained(20_000)
        a = net.stats._as_arrays()
        # Both apps' packets finished, and their completion times overlap
        # (no starvation: neither app finishes entirely before the other
        # gets service).
        eject0 = sorted(a["eject"][a["app"] == 0])
        eject1 = sorted(a["eject"][a["app"] == 1])
        assert len(eject0) == len(eject1) == 12
        assert eject0[0] < eject1[-1] and eject1[0] < eject0[-1]


class TestAtomicVcReuse:
    def test_vc_not_reallocated_until_drained(self):
        """With a single data VC, back-to-back packets on one path must be
        separated by at least the drain bubble of the atomic VC."""
        cfg = NocConfig(
            width=4, height=4,
            vc_classes=(VcClass.GLOBAL,),  # 1 data VC + 1 escape
        )
        sim, net = build_simulation(cfg, scheme="ro_rr", routing="xy")
        net.inject(Packet(src=0, dst=2, length=5, inject_cycle=0))
        net.inject(Packet(src=0, dst=2, length=5, inject_cycle=0))
        assert sim.run_until_drained(5000)
        assert net.stats.packets_ejected == 2

    def test_state_clean_after_single_vc_stress(self):
        cfg = NocConfig(width=4, height=4, vc_classes=(VcClass.REGIONAL,))
        sim, net = build_simulation(cfg, scheme="ro_rr", routing="local")
        for i in range(16):
            net.inject(Packet(src=i % 16, dst=(i * 7 + 3) % 16, length=5, inject_cycle=0))
        assert sim.run_until_drained(30_000)
        for router in net.routers:
            assert router.busy_vcs == 0
            for port in range(1, 5):
                for vc in range(net.config.total_vcs):
                    assert router.out_credits[port][vc] == cfg.vc_depth


class TestEscapeVcAdmissibility:
    def test_escape_vc_unused_off_the_xy_port(self):
        """Fill the adaptive VCs of the non-XY direction; the packet must
        not take the escape VC there (it would break Duato's condition)."""
        sim, net = build(width=4, height=4, routing="local")
        topo = net.topology
        src = topo.node_at(1, 1)
        dst = topo.node_at(2, 2)
        router = net.routers[src]
        p = Packet(src=src, dst=dst, length=1, inject_cycle=0)
        # Deliver the head into a local VC by injecting normally.
        net.inject(p)
        sim.step()  # head arrives in LOCAL VC
        # Occupy every data VC on both minimal ports (EAST=2, SOUTH=3) by
        # faking owners; leave only the escape VCs free.
        cfg = net.config
        blocker = object()
        for port in (2, 3):
            for vc in cfg.vnet_vcs(0):
                if not cfg.is_escape_vc(vc):
                    router.out_owner[port][vc] = blocker
        sim.step()  # VA round with only escape VCs free
        local_vcs = router.in_vcs[LOCAL]
        holder = next(v for v in local_vcs if v.pkt is p)
        if holder.state == VC_ACTIVE:
            # If granted, it must be the escape VC on the XY port (EAST).
            assert holder.out_port == net.routing.escape_port(src, p)
            assert cfg.is_escape_vc(holder.out_vc)
        else:
            assert holder.state == VC_VA  # still waiting is also legal


class TestWormholeIntegrity:
    def test_flits_of_a_packet_never_interleave(self):
        """Atomic VCs + per-VC accounting make interleaving impossible; the
        InputVC raises if a foreign flit sneaks in. Stress a hot column and
        rely on the internal checks."""
        sim, net = build(width=4, height=4, routing="local")
        for i in range(30):
            net.inject(Packet(src=i % 4, dst=12 + (i % 4), length=5, inject_cycle=0))
        assert sim.run_until_drained(30_000)  # SimulationError would fail this
        assert net.stats.packets_ejected == 30

    def test_single_flit_and_long_packets_mix(self):
        sim, net = build(routing="local")
        for i in range(20):
            net.inject(
                Packet(src=i % 16, dst=(i + 5) % 16, length=1 if i % 2 else 5,
                       inject_cycle=0)
            )
        assert sim.run_until_drained(20_000)
        assert net.stats.packets_ejected == 20


class TestEjectionBandwidth:
    def test_one_flit_per_cycle_into_each_ni(self):
        """Four senders to one sink: ejection is serialized by SA_out, so
        total drain time is bounded below by total flits."""
        sim, net = build(routing="local")
        flits = 0
        for src in (0, 3, 12, 15):
            for _ in range(3):
                net.inject(Packet(src=src, dst=5, length=5, inject_cycle=0))
                flits += 5
        start = sim.cycle
        assert sim.run_until_drained(20_000)
        # The sink received `flits` flits at <= 1/cycle.
        assert sim.cycle - start >= flits

    def test_ejection_counts_in_link_stats(self):
        sim, net = build()
        net.inject(Packet(src=0, dst=5, length=5, inject_cycle=0))
        sim.run_until_drained(1000)
        assert net.link_flits[5, LOCAL] == 5


class TestCreditLoop:
    def test_credits_bounded_by_depth_always(self):
        sim, net = build(routing="local")
        for i in range(40):
            net.inject(Packet(src=i % 16, dst=15 - i % 16, length=5, inject_cycle=0))
        for _ in range(200):
            sim.step()
            for router in net.routers:
                for port in range(1, 5):
                    for vc in range(net.config.total_vcs):
                        assert 0 <= router.out_credits[port][vc] <= net.config.vc_depth

    def test_credit_overflow_detected(self):
        sim, net = build()
        net._push(net._credits, 1, (0, EAST, 0))  # bogus credit
        net.inject(Packet(src=3, dst=0, length=1, inject_cycle=0))
        with pytest.raises(SimulationError, match="credit overflow"):
            sim.run(3)
