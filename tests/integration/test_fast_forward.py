"""Idle-cycle fast-forward: bit-identity against naive per-cycle ticking.

The fast-forward optimisation must be *invisible* in every observable:
``MeasurementResult`` fields, per-packet statistics, policy state after
idle-gap boundary replay, and the observability JSONL byte stream. Each
test runs the same workload twice — fast-forward on (the default) and
naive (via the ``REPRO_DISABLE_FAST_FORWARD`` escape hatch or the
constructor flag) — and asserts equality, plus that the fast path
actually engaged where the workload has idle gaps (otherwise these tests
would vacuously compare naive against naive).
"""

from __future__ import annotations

import pathlib

import pytest

from repro.arbitration.base import ArbitrationPolicy
from repro.arbitration.qos import RairQosPolicy, WeightedQosPolicy
from repro.arbitration.stc import StcPolicy
from repro.experiments.parallel import Cell, cell_obs_name, run_cells
from repro.experiments.runner import SCHEMES, Effort
from repro.experiments.scenarios import two_app_msp
from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.sim import Simulator
from repro.noc.topology import MeshTopology
from repro.obs import ObsConfig
from repro.routing import make_routing
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource
from repro.traffic.trace import TraceTrafficSource, capture_trace
from repro.util.errors import DeadlineError

SEEDS = (11, 12, 13)


def _trickle_sim(fast_forward, policy=None, routing="xy", rate=0.05, seed=11):
    """Two corner sources on an 8x8 mesh — mostly idle at low rates."""
    cfg = NocConfig(width=8, height=8, vc_depth=8, max_packet_flits=8)
    net = Network(cfg, make_routing(routing), policy or ArbitrationPolicy())
    topo = MeshTopology(8, 8)
    source = SyntheticTrafficSource(
        nodes=[0, 63],
        rate=rate,
        pattern=UniformPattern(topo),
        app_id=0,
        seed=seed,
        lengths=FixedLength(8),
    )
    return Simulator(net, [source], fast_forward=fast_forward), net, source


def _observables(sim, net, source, result):
    return {
        "window": result.window,
        "end_cycle": result.end_cycle,
        "drained": result.drained,
        "abort": result.abort,
        "latencies": tuple(net.stats.latencies(window=result.window).tolist()),
        "hops": tuple(net.stats._hops),
        "ejected": net.stats.packets_ejected,
        "injected": source.packets_injected,
        "flits": source.flits_injected,
        "flits_moved": net.flits_moved,
        "app_flits": dict(net.app_flits_injected),
    }


class TestBitIdentity:
    def test_trickle_identical_and_ff_engages(self):
        runs = {}
        for ff in (True, False):
            sim, net, source = _trickle_sim(ff)
            result = sim.run_measurement(warmup=300, measure=1500)
            runs[ff] = (_observables(sim, net, source, result), result.metrics)
        assert runs[True][0] == runs[False][0]
        # The optimisation must actually fire on this workload...
        assert runs[True][1].ff_jumps > 0
        assert runs[True][1].ff_cycles_skipped > 0
        # ...and never in the naive arm.
        assert runs[False][1].ff_jumps == 0
        assert runs[False][1].ff_cycles_skipped == 0

    @pytest.mark.parametrize("routing", ["xy", "duato", "dbar"])
    def test_identical_across_routing_algorithms(self, routing):
        obs = {}
        for ff in (True, False):
            sim, net, source = _trickle_sim(ff, routing=routing)
            result = sim.run_measurement(warmup=200, measure=800)
            obs[ff] = _observables(sim, net, source, result)
        assert obs[True] == obs[False]

    def test_env_var_disables_fast_forward(self, monkeypatch):
        monkeypatch.setenv("REPRO_DISABLE_FAST_FORWARD", "1")
        sim, _, _ = _trickle_sim(fast_forward=None)
        assert sim.fast_forward is False
        monkeypatch.delenv("REPRO_DISABLE_FAST_FORWARD")
        sim, _, _ = _trickle_sim(fast_forward=None)
        assert sim.fast_forward is True

    def test_trace_replay_identical(self):
        topo = MeshTopology(8, 8)
        gen = SyntheticTrafficSource(
            nodes=[0, 63],
            rate=0.05,
            pattern=UniformPattern(topo),
            app_id=0,
            seed=7,
            lengths=FixedLength(5),
        )
        trace = capture_trace([gen], cycles=600)
        assert len(trace) > 0
        obs = {}
        for ff in (True, False):
            cfg = NocConfig(width=8, height=8, vc_depth=8, max_packet_flits=8)
            net = Network(cfg, make_routing("xy"), ArbitrationPolicy())
            source = TraceTrafficSource(trace)
            sim = Simulator(net, [source], fast_forward=ff)
            result = sim.run_measurement(warmup=100, measure=700)
            obs[ff] = (
                {
                    "window": result.window,
                    "end_cycle": result.end_cycle,
                    "drained": result.drained,
                    "latencies": tuple(
                        net.stats.latencies(window=result.window).tolist()
                    ),
                    "ejected": net.stats.packets_ejected,
                    "injected": source.packets_injected,
                },
                result.metrics.ff_jumps,
            )
        assert obs[True][0] == obs[False][0]
        assert obs[True][1] > 0


class TestPolicyBoundaryReplay:
    """Policies with per-interval state must see identical boundaries.

    The workload injects until a stop cycle, goes fully idle across
    several policy boundaries (rank intervals / QoS frames), then a second
    source resumes — so the idle gap's boundary replay feeds directly
    into post-gap arbitration state.
    """

    def _gapped_run(self, policy, fast_forward):
        cfg = NocConfig(width=8, height=8, vc_depth=8, max_packet_flits=8)
        net = Network(cfg, make_routing("xy"), policy)
        topo = MeshTopology(8, 8)
        early = SyntheticTrafficSource(
            nodes=[0, 9],
            rate=0.2,
            pattern=UniformPattern(topo),
            app_id=0,
            seed=3,
            lengths=FixedLength(4),
            stop=250,
        )
        late = SyntheticTrafficSource(
            nodes=[54, 63],
            rate=0.2,
            pattern=UniformPattern(topo),
            app_id=1,
            seed=4,
            lengths=FixedLength(4),
            start=1500,
        )
        sim = Simulator(net, [early, late], fast_forward=fast_forward)
        sim.run(2400)
        sim.run_until_drained(5000)
        return sim, net

    def test_stc_rank_replay(self):
        state = {}
        for ff in (True, False):
            policy = StcPolicy(rank_interval=100, batch_period=50)
            sim, net = self._gapped_run(policy, ff)
            state[ff] = (
                dict(policy.ranks),
                dict(policy._last_counts),
                net.stats.packets_ejected,
                tuple(net.stats._eject),
                sim.metrics.ff_jumps > 0,
            )
        assert state[True][:4] == state[False][:4]
        assert state[True][4] is True  # the gap was actually skipped
        assert state[False][4] is False

    @pytest.mark.parametrize("make_policy", [
        lambda: WeightedQosPolicy(weights={0: 2.0, 1: 1.0}, frame_cycles=100),
        lambda: RairQosPolicy(qos=WeightedQosPolicy(frame_cycles=100)),
    ])
    def test_qos_frame_replay(self, make_policy):
        state = {}
        for ff in (True, False):
            policy = make_policy()
            qos = policy.qos if isinstance(policy, RairQosPolicy) else policy
            sim, net = self._gapped_run(policy, ff)
            state[ff] = (
                dict(qos._frame_start),
                dict(qos.budgets),
                net.stats.packets_ejected,
                tuple(net.stats._eject),
                sim.metrics.ff_jumps > 0,
            )
        assert state[True][:4] == state[False][:4]
        assert state[True][4] is True
        assert state[False][4] is False


class TestDeadlineInteraction:
    def test_deadline_error_at_same_cycle(self):
        cycles = {}
        for ff in (True, False):
            sim, _, _ = _trickle_sim(ff)
            sim.deadline_cycle = 137
            with pytest.raises(DeadlineError):
                sim.run(10_000)
            cycles[ff] = sim.cycle
        assert cycles[True] == cycles[False] == 137


def _cells():
    return [
        Cell.for_scenario(SCHEMES["RA_RAIR"], two_app_msp(0.4), Effort.SMOKE, seed=s)
        for s in SEEDS
    ]


def _obs(tmp_path: pathlib.Path, sub: str) -> ObsConfig:
    return ObsConfig(dir=str(tmp_path / sub), sample_period=50)


def test_seed_matrix_ff_vs_naive_identical(tmp_path, monkeypatch):
    """Serial × jobs=2 × cache-hit under fast-forward all equal naive.

    The naive arm disables fast-forward through the environment variable,
    which propagates into worker processes — so the parallel path is
    exercised in both modes, and the obs JSONL files must match byte for
    byte across all of it.
    """
    cells = _cells()

    monkeypatch.delenv("REPRO_DISABLE_FAST_FORWARD", raising=False)
    runs_ff, _ = run_cells(cells, jobs=1, obs=_obs(tmp_path, "ff"))
    runs_ff_par, _ = run_cells(cells, jobs=2, obs=_obs(tmp_path, "ff_par"))
    cache = str(tmp_path / "cache")
    run_cells(cells, jobs=1, cache=cache)
    runs_ff_hit, report_hit = run_cells(cells, jobs=1, cache=cache)
    assert report_hit.cache_hits == len(SEEDS)

    monkeypatch.setenv("REPRO_DISABLE_FAST_FORWARD", "1")
    runs_naive, _ = run_cells(cells, jobs=1, obs=_obs(tmp_path, "naive"))
    runs_naive_par, _ = run_cells(cells, jobs=2, obs=_obs(tmp_path, "naive_par"))

    for ff, ff_par, ff_hit, naive, naive_par in zip(
        runs_ff, runs_ff_par, runs_ff_hit, runs_naive, runs_naive_par
    ):
        sig = naive.determinism_signature()
        assert ff.determinism_signature() == sig
        assert ff_par.determinism_signature() == sig
        assert ff_hit.determinism_signature() == sig
        assert naive_par.determinism_signature() == sig
        assert ff == naive
        assert ff.obs == naive.obs

    for name in sorted(p.name for p in (tmp_path / "naive").iterdir()):
        want = (tmp_path / "naive" / name).read_bytes()
        assert (tmp_path / "ff" / name).read_bytes() == want
        assert (tmp_path / "ff_par" / name).read_bytes() == want
        assert (tmp_path / "naive_par" / name).read_bytes() == want
    assert {p.name for p in (tmp_path / "ff").iterdir()} == {
        f"{cell_obs_name(c)}.jsonl" for c in cells
    }
