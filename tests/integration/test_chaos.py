"""Chaos acceptance tests: the fault-tolerant engine under injected faults.

The ISSUE acceptance scenario: a 24-cell sweep containing one cell that
always raises, one that hangs past the wall-clock timeout, and one that
SIGKILLs its worker must complete with 21 clean runs and 3 structured
failures, in input order — and a re-invocation against the same cache
directory must resume without re-simulating a single clean cell.

Everything here is marked ``chaos`` (process-killing, timeout-driven,
seconds-scale): ``pytest -m chaos`` runs just this lane, ``-m "not
chaos"`` excludes it.
"""

from __future__ import annotations

import pytest

from repro.experiments.chaos import chaos_cell
from repro.experiments.parallel import FaultPolicy, run_cells_detailed
from repro.experiments.runner import SCHEMES, Effort

pytestmark = pytest.mark.chaos

SCHEME = SCHEMES["RO_RR"]

#: generous attempt budget so innocent cells struck as collateral by the
#: killer's pool breaks can never exhaust their own attempts
POLICY = FaultPolicy(max_attempts=4, backoff_base_s=0.01, wall_timeout_s=2.5)

RAISE_AT, HANG_AT, KILL_AT = 3, 11, 17
FAULTY = {RAISE_AT: "raise", HANG_AT: "hang", KILL_AT: "kill"}


def acceptance_cells():
    return [
        chaos_cell(SCHEME, Effort.SMOKE, seed=100 + i,
                   mode=FAULTY.get(i, "ok"), cell_id=i)
        for i in range(24)
    ]


class TestAcceptanceSweep:
    def test_one_poisoned_cell_never_aborts_the_sweep(self, tmp_path):
        cells = acceptance_cells()
        results, report = run_cells_detailed(
            cells, jobs=4, cache=tmp_path, policy=POLICY
        )

        # -- input order, one result per cell --------------------------------
        assert len(results) == 24
        assert [r.index for r in results] == list(range(24))
        assert [r.cell for r in results] == cells

        # -- 21 clean runs, 3 structured failures -----------------------------
        ok = [r for r in results if r.ok]
        failed = {r.index: r.failure for r in results if not r.ok}
        assert len(ok) == 21
        assert sorted(failed) == sorted(FAULTY)
        assert report.failures == 3

        # deterministic error fails fast, no retries burned on it
        assert failed[RAISE_AT].error_type == "SimulationError"
        assert failed[RAISE_AT].retryable is False
        assert failed[RAISE_AT].attempts == 1
        assert "injected deterministic failure" in failed[RAISE_AT].message

        # wedged worker is killed by the parent's wall-clock deadline
        assert failed[HANG_AT].error_type == "CellTimeout"
        assert failed[HANG_AT].wall_time_s >= POLICY.wall_timeout_s
        assert report.timeouts >= 1

        # pool-breaking cell is quarantined and convicted, not retried forever
        assert failed[KILL_AT].error_type == "BrokenProcessPool"
        assert failed[KILL_AT].attempts >= POLICY.max_attempts

        # every failure is a complete record
        for failure in failed.values():
            assert failure.message
            assert failure.attempts >= 1
            assert failure.wall_time_s >= 0.0

        # clean cells were simulated and cached (a retried collateral cell
        # may legitimately hit the entry its killed predecessor wrote)
        assert report.cache_hits + report.cache_misses == 21
        assert report.sim_cycles > 0

        # -- re-invocation resumes the 21 clean cells from the journal --------
        results2, report2 = run_cells_detailed(
            acceptance_cells(), jobs=4, cache=tmp_path, policy=POLICY
        )
        assert report2.resumed == 21
        assert report2.cache_hits == 21
        assert report2.sim_cycles == 0  # zero cycles re-simulated
        assert report2.failures == 3  # the poisoned cells fail the same way
        assert {i: f.error_type for i, f in
                ((r.index, r.failure) for r in results2 if not r.ok)} == {
            RAISE_AT: "SimulationError",
            HANG_AT: "CellTimeout",
            KILL_AT: "BrokenProcessPool",
        }
        for before, after in zip(results, results2):
            if before.ok:
                assert after.resumed
                assert (after.run.determinism_signature()
                        == before.run.determinism_signature())


class TestWorkerCrashRecovery:
    def test_sigkill_mid_sweep_rebuilds_pool_and_retries_victim(self, tmp_path):
        """A worker SIGKILLed once: pool rebuilt, victim retried, sweep clean."""
        marker = tmp_path / "kill_once.marker"
        cells = [
            chaos_cell(SCHEME, Effort.SMOKE, seed=200 + i, mode="ok", cell_id=i)
            for i in range(5)
        ]
        cells.insert(2, chaos_cell(
            SCHEME, Effort.SMOKE, seed=199, mode="kill_once", marker=str(marker)
        ))
        results, report = run_cells_detailed(
            cells, jobs=3,
            policy=FaultPolicy(max_attempts=4, backoff_base_s=0.01),
        )
        assert marker.exists()  # the fault actually fired
        assert all(r.ok for r in results)
        assert report.failures == 0
        assert report.retries >= 1  # at least the victim was re-run
        assert results[2].attempts >= 2  # the victim, specifically
