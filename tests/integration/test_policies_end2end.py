"""End-to-end behavioural tests of the arbitration policies.

These tests verify the *direction* of each mechanism's effect on real
simulations (small meshes, short windows) — the quantitative shape checks
against the paper live in the benchmark harness.
"""


from repro import build_simulation
from repro.core.dpa import DpaConfig
from repro.core.msp import Stage
from repro.core.regions import RegionMap
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.adversarial import AdversarialTrafficSource
from repro.traffic.regional import RegionalAppTraffic


def two_app_run(scheme, p_inter=1.0, seed=3, policy_kwargs=None, routing="local",
                low=0.04, high=0.32, warmup=300, measure=1200):
    """6x6 mesh halves: App0 low load w/ inter-region share, App1 high intra."""
    cfg = NocConfig(width=6, height=6)
    topo = MeshTopology(6, 6)
    rm = RegionMap.halves(topo)
    sim, net = build_simulation(
        cfg, region_map=rm, scheme=scheme, routing=routing, policy_kwargs=policy_kwargs
    )
    sim.add_traffic(
        RegionalAppTraffic(
            rm, 0, rate=low, seed=seed,
            intra_fraction=1 - p_inter, inter_fraction=p_inter, mc_fraction=0.0,
        )
    )
    sim.add_traffic(
        RegionalAppTraffic(
            rm, 1, rate=high, seed=seed + 1,
            intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0,
        )
    )
    res = sim.run_measurement(warmup=warmup, measure=measure, drain_limit=40_000)
    apl = net.stats.per_app_apl(window=res.window)
    return apl, res, net


class TestRairReducesInterference:
    def test_rair_cuts_low_load_inter_region_apl(self):
        rr, _, _ = two_app_run("ro_rr")
        rair, _, _ = two_app_run("rair")
        assert rair[0] < rr[0] * 0.95  # clear improvement for App0

    def test_high_load_app_penalty_is_bounded(self):
        rr, _, _ = two_app_run("ro_rr")
        rair, _, _ = two_app_run("rair")
        assert rair[1] < rr[1] * 1.35

    def test_full_msp_beats_va_only(self):
        va, _, _ = two_app_run("rair", policy_kwargs={"stages": Stage.VA})
        full, _, _ = two_app_run("rair")
        assert full[0] <= va[0] * 1.02  # VA+SA at least as good for App0


class TestStaticPriorities:
    def test_foreignh_helps_interregion_app(self):
        nat, _, _ = two_app_run("rair", policy_kwargs={"dpa": DpaConfig(mode="native")})
        foreign, _, _ = two_app_run("rair", policy_kwargs={"dpa": DpaConfig(mode="foreign")})
        # App0's traffic in region 1 is foreign; ForeignH should serve it better.
        assert foreign[0] < nat[0]


class TestStcBehaviour:
    def test_stc_prioritizes_low_intensity_app(self):
        rr, _, _ = two_app_run("ro_rr")
        # Rank early enough for the short test window to be rank-driven.
        stc, _, _ = two_app_run(
            "stc", policy_kwargs={"rank_interval": 200, "batch_period": 400}
        )
        assert stc[0] < rr[0]


class TestAdversarialProtection:
    @staticmethod
    def run_with_flood(scheme, seed=4):
        cfg = NocConfig(width=6, height=6)
        topo = MeshTopology(6, 6)
        rm = RegionMap.halves(topo)
        sim, net = build_simulation(cfg, region_map=rm, scheme=scheme, routing="local")
        for app in (0, 1):
            sim.add_traffic(
                RegionalAppTraffic(
                    rm, app, rate=0.05, seed=seed + app,
                    intra_fraction=0.8, inter_fraction=0.2, mc_fraction=0.0,
                )
            )
        sim.add_traffic(AdversarialTrafficSource(topo, seed=seed + 9, rate=0.25, region_map=rm))
        res = sim.run_measurement(warmup=300, measure=1000, drain_limit=60_000)
        return net.stats.apl(window=res.window)  # adversary excluded by default

    def test_rair_shields_apps_from_flood(self):
        rr_apl = self.run_with_flood("ro_rr")
        rair_apl = self.run_with_flood("rair")
        assert rair_apl < rr_apl


class TestRoutingInteraction:
    def test_rair_composes_with_dbar(self):
        local, _, _ = two_app_run("rair", routing="local")
        dbar, _, _ = two_app_run("rair", routing="dbar")
        # Both must work; DBAR should not catastrophically regress App1.
        assert dbar[1] < local[1] * 1.5

    def test_age_policy_runs_clean(self):
        apl, res, _ = two_app_run("age")
        assert res.drained
        assert apl[0] > 0 and apl[1] > 0
