"""End-to-end tests for the obs report CLI and CSV exporters.

Generates a real stream (RAIR mesh, cross-region traffic, collector
attached) and drives ``python -m repro.obs.report`` through its three
modes — validate-only, human summary, CSV export — plus the failure
paths CI relies on for a nonzero exit status.
"""

from __future__ import annotations

import csv
import pathlib

import pytest

from repro import RegionMap, build_simulation
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.obs import MetricsCollector, ObsConfig
from repro.obs.exporters import export_csv
from repro.obs.report import main as report_main
from repro.traffic.regional import RegionalAppTraffic


@pytest.fixture(scope="module")
def stream_path(tmp_path_factory):
    out = tmp_path_factory.mktemp("obs")
    cfg = NocConfig(width=6, height=6)
    rm = RegionMap.halves(MeshTopology(6, 6))
    sim, _net = build_simulation(cfg, region_map=rm, scheme="rair", routing="local")
    for app, rate in ((0, 0.05), (1, 0.25)):
        sim.add_traffic(
            RegionalAppTraffic(rm, app, rate=rate, seed=app + 1,
                               intra_fraction=0.6, inter_fraction=0.4,
                               mc_fraction=0.0)
        )
    MetricsCollector(
        ObsConfig(dir=str(out), sample_period=50, name="smoke")
    ).install(sim)
    res = sim.run_measurement(warmup=100, measure=400, drain_limit=20_000)
    assert res.obs is not None and res.obs.samples > 0
    return out / "smoke.jsonl"


class TestReportCheckMode:
    def test_ok_line_and_zero_exit(self, stream_path, capsys):
        assert report_main(["--check", str(stream_path)]) == 0
        outp = capsys.readouterr().out
        assert outp.startswith(f"OK {stream_path}:")
        assert "header=1" in outp
        assert "summary=1" in outp
        assert "latency_class=3" in outp

    def test_missing_file_fails(self, tmp_path, capsys):
        missing = tmp_path / "nope.jsonl"
        assert report_main(["--check", str(missing)]) == 1
        assert f"FAIL {missing}" in capsys.readouterr().err

    def test_invalid_stream_fails_but_valid_files_still_report(
        self, stream_path, tmp_path, capsys
    ):
        bad = tmp_path / "bad.jsonl"
        # A well-formed summary record, but the stream misses its header.
        bad.write_text(
            '{"kind":"summary","cycle":5,"samples":0,"events":0,'
            '"dpa_flips":0,"link_util":{}}\n'
        )
        assert report_main(["--check", str(bad), str(stream_path)]) == 1
        captured = capsys.readouterr()
        assert "FAIL" in captured.err and "must start with a header" in captured.err
        assert f"OK {stream_path}" in captured.out  # good file still validated

    def test_truncated_stream_fails(self, stream_path, tmp_path, capsys):
        # Drop the trailing summary — simulates a run killed mid-write.
        lines = stream_path.read_text().splitlines()
        cut = tmp_path / "cut.jsonl"
        cut.write_text("\n".join(lines[:-1]) + "\n")
        assert report_main(["--check", str(cut)]) == 1
        assert "exactly one summary" in capsys.readouterr().err


class TestReportSummaryMode:
    def test_renders_all_sections(self, stream_path, capsys):
        assert report_main([str(stream_path)]) == 0
        outp = capsys.readouterr().out
        assert "6x6 mesh, schema v1" in outp
        assert "run 'smoke'" in outp
        assert "latency (cycles):" in outp
        for cls in ("native", "foreign", "global"):
            assert cls in outp
        assert "p99" in outp
        assert "priority flips" in outp
        assert "flits/cycle" in outp


class TestCsvExport:
    def test_cli_csv_flag_writes_files(self, stream_path, tmp_path, capsys):
        out = tmp_path / "csv"
        assert report_main(["--check", "--csv", str(out), str(stream_path)]) == 0
        names = sorted(p.name for p in out.iterdir())
        assert names == [
            "smoke_dpa_flips.csv",
            "smoke_latency.csv",
            "smoke_link_samples.csv",
            "smoke_vc_samples.csv",
        ]
        assert "wrote" in capsys.readouterr().out

    def test_exported_tables_are_consistent(self, stream_path, tmp_path):
        written = export_csv(str(stream_path), str(tmp_path))
        # Key each path by its suffix after the "smoke_" stem.
        by_name = {
            pathlib.Path(p).name.removeprefix("smoke_"): p for p in written
        }

        with open(by_name["vc_samples.csv"], newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["cycle", "node", "occupancy", "ovc_n", "ovc_f"]
        # One row per node per sample on the 6x6 mesh.
        assert (len(rows) - 1) % 36 == 0
        assert len(rows) > 36

        with open(by_name["link_samples.csv"], newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["cycle", "node", "port", "flits"]
        assert (len(rows) - 1) % (36 * 5) == 0

        with open(by_name["latency.csv"], newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["class", "count", "mean", "p50", "p95", "p99", "max"]
        assert [r[0] for r in rows[1:]] == ["native", "foreign", "global"]
        assert int(rows[1][1]) > 0  # native packets were observed

        with open(by_name["dpa_flips.csv"], newline="") as fh:
            rows = list(csv.reader(fh))
        assert rows[0] == ["cycle", "node", "native_high", "ovc_n", "ovc_f"]
        cycles = [int(r[0]) for r in rows[1:]]
        assert cycles == sorted(cycles)
