"""Deadlock stress and end-to-end smoke for the wrap fabrics.

Same contract as test_deadlock_stress.py: the simulator's watchdog raises
after 5000 progress-free cycles, so draining an over-saturated run *is*
the deadlock-freedom assertion. The torus and ring rely on the dateline
escape classes (repro.noc.topology docstring) instead of the mesh's
naturally acyclic dimension-order graph, so they get their own saturating
runs, plus a fig10-shaped sweep proving the experiment stack works end to
end with both RAIR and RO_RR on each fabric.
"""

import pytest

from repro import build_simulation
from repro.core.regions import RegionMap
from repro.experiments import fig10_routing
from repro.experiments.runner import Effort
from repro.noc.config import NocConfig
from repro.noc.network import Network
from repro.noc.topology import make_topology
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import BimodalLengths, SyntheticTrafficSource


def saturating_run(
    config: NocConfig, scheme: str, routing: str, cycles=1500, rate=0.6
) -> Network:
    topo = make_topology(config)
    rm = RegionMap.quadrants(topo) if scheme == "rair" else None
    sim, net = build_simulation(config, region_map=rm, scheme=scheme, routing=routing)
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(topo.num_nodes),
            rate=rate,
            pattern=UniformPattern(topo),
            app_id=0,
            seed=13,
            lengths=BimodalLengths(),
            stop=cycles,
        )
    )
    sim.run(cycles)
    sim.run_until_drained(60_000)
    return net


@pytest.mark.parametrize("routing", ["xy", "local", "dbar"])
def test_oversaturated_torus_does_not_deadlock(routing):
    cfg = NocConfig.for_topology("torus", width=6, height=6)
    net = saturating_run(cfg, "ro_rr", routing)
    assert net.stats.packets_ejected > 500


@pytest.mark.parametrize("routing", ["xy", "local", "dbar"])
def test_oversaturated_ring_does_not_deadlock(routing):
    cfg = NocConfig.for_topology("ring", width=16, height=1)
    net = saturating_run(cfg, "ro_rr", routing, rate=0.3)
    assert net.stats.packets_ejected > 300


@pytest.mark.parametrize("kind,width,height", [("torus", 6, 6), ("ring", 16, 1)])
def test_rair_on_wrap_fabrics_does_not_deadlock(kind, width, height):
    cfg = NocConfig.for_topology(kind, width=width, height=height)
    rate = 0.6 if kind == "torus" else 0.3
    net = saturating_run(cfg, "rair", "local", rate=rate)
    assert net.stats.packets_ejected > 300


@pytest.mark.parametrize("topology", ["torus", "ring"])
def test_fig10_smoke_sweep_drains(topology):
    result = fig10_routing.run(
        effort=Effort.SMOKE,
        p_values=(1.0,),
        schemes=("RO_RR_Local", "RAIR_Local"),
        topology=topology,
    )
    assert result.metrics["failures"] == 0
    assert len(result.rows) == 2
    for row in result.rows:
        assert row["drained"] is True
        assert row["apl_app0"] == row["apl_app0"]  # not NaN
