"""Integration tests for the runtime invariant guard.

Three claims, each load-bearing for the guard's contract:

1. **Detection** — every seeded fault class from
   :data:`repro.experiments.chaos.GUARD_FAULTS` is caught and classified
   with its own label (``FAILED(Deadlock)``, ``FAILED(Livelock)``, ...),
   and each failure leaves a schema-valid crash blackbox behind.
2. **Cleanliness** — strict-mode checks raise nothing on healthy uniform
   traffic, on every fabric (mesh, torus, ring), so the invariants are
   invariants and not flakes.
3. **Transparency** — a guarded run is bit-identical to an unguarded one:
   same determinism signature, same network counters, byte-identical obs
   JSONL. The guard is execution policy, never part of the result.
"""

from __future__ import annotations

import os

import pytest

from repro import build_simulation
from repro.experiments.chaos import GUARD_FAULTS, guard_chaos_cell
from repro.experiments.parallel import run_cells_detailed
from repro.experiments.runner import SCHEMES, Effort
from repro.noc.config import NocConfig
from repro.noc.guard import GuardConfig, RuntimeGuard
from repro.obs.schema import load_jsonl, validate_stream
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource

SCHEME = SCHEMES["RO_RR"]

#: fault token -> the failure label the sweep table must render
EXPECTED_LABEL = {
    "credit_leak": "CreditConservation",
    "drop_tail": "FlitConservation",
    "freeze_router": "Starvation",
    "dateline": "Dateline",
    "livelock": "Livelock",
    "deadlock": "Deadlock",
}


def strict_guard(tmp_path) -> GuardConfig:
    """A strict guard tuned for tiny smoke runs: frequent checks, short
    watchdogs, and an age watermark inside the smoke window."""
    return GuardConfig(
        mode="strict",
        dir=str(tmp_path),
        check_period=8,
        stall_cycles=200,
        age_watermark=300,
    )


class TestFaultClassification:
    def test_expected_labels_cover_every_guard_fault(self):
        assert sorted(EXPECTED_LABEL) == sorted(GUARD_FAULTS)

    @pytest.mark.parametrize("fault", GUARD_FAULTS)
    def test_seeded_fault_is_detected_and_classified(self, fault, tmp_path):
        cell = guard_chaos_cell(SCHEME, Effort.SMOKE, seed=7, fault=fault)
        results, report = run_cells_detailed(
            [cell], jobs=1, guard=strict_guard(tmp_path)
        )
        (res,) = results
        assert not res.ok
        assert report.failures == 1
        assert res.failure.error_type == EXPECTED_LABEL[fault]
        assert res.failure.retryable is False  # guard trips are deterministic
        # ... and the forensics landed on disk as a schema-valid blackbox.
        boxes = [f for f in os.listdir(tmp_path) if f.endswith("_blackbox.jsonl")]
        assert len(boxes) == 1
        records = load_jsonl(tmp_path / boxes[0])
        counts = validate_stream(records)
        assert counts["guard_header"] == 1
        assert counts["guard_violation"] == 1
        assert counts.get("guard_event", 0) >= 1
        violation = records[-1]
        assert violation["reason"] in res.failure.message
        # a deadlock's blackbox names the wait-graph cycle it found
        if fault == "deadlock":
            assert len(violation["ring"]) >= 2
            for hop in violation["ring"]:
                assert {"node", "port", "vc", "pid", "state"} <= hop.keys()
        else:
            assert violation["ring"] == []

    def test_env_armed_worker_detects_deadlock(self, tmp_path, monkeypatch):
        """REPRO_GUARD arms a sweep whose caller passed no guard at all."""
        monkeypatch.setenv("REPRO_GUARD", "strict")
        monkeypatch.setenv("REPRO_GUARD_DIR", str(tmp_path))
        monkeypatch.setenv("REPRO_GUARD_STALL", "200")
        cell = guard_chaos_cell(SCHEME, Effort.SMOKE, seed=7, fault="deadlock")
        results, _ = run_cells_detailed([cell], jobs=1)
        assert results[0].failure.error_type == "Deadlock"
        assert any(f.endswith("_blackbox.jsonl") for f in os.listdir(tmp_path))


class TestCleanTraffic:
    @pytest.mark.parametrize("topology", ["mesh", "torus", "ring"])
    def test_strict_guard_is_silent_on_healthy_traffic(self, topology):
        cfg = NocConfig.for_topology(topology, width=4, height=4)
        sim, net = build_simulation(cfg, scheme="rr", routing="local")
        guard = RuntimeGuard(
            GuardConfig(mode="strict", name=f"clean_{topology}", check_period=16)
        )
        guard.install(sim)
        sim.add_traffic(SyntheticTrafficSource(
            nodes=range(cfg.num_nodes),
            rate=0.05,
            pattern=UniformPattern(net.topology),
            app_id=0,
            seed=7,
            lengths=FixedLength(2),
        ))
        res = sim.run_measurement(warmup=100, measure=400)
        assert res.abort is None
        assert res.drained
        assert guard.checks_run > 0  # the invariants actually ran


class TestBitIdentity:
    def _run(self, guard=None, obs=None):
        cfg = NocConfig(width=4, height=4)
        sim, net = build_simulation(cfg, scheme="rr", routing="xy")
        if obs is not None:
            from repro.obs.collector import MetricsCollector

            MetricsCollector(obs).install(sim)
        if guard is not None:
            RuntimeGuard(guard).install(sim)
        sim.add_traffic(SyntheticTrafficSource(
            nodes=range(cfg.num_nodes),
            rate=0.1,
            pattern=UniformPattern(net.topology),
            app_id=0,
            seed=11,
            lengths=FixedLength(3),
        ))
        res = sim.run_measurement(warmup=100, measure=500)
        return (res.abort, res.end_cycle, res.drained,
                net.flits_moved, net.packets_ejected), res

    def test_guard_off_vs_sample_vs_strict(self):
        bare, _ = self._run()
        sampled, _ = self._run(GuardConfig(mode="sample", check_period=64))
        strict, _ = self._run(GuardConfig(mode="strict", check_period=8))
        assert bare == sampled == strict

    def test_obs_stream_byte_identical_under_guard(self, tmp_path):
        from repro.obs.collector import ObsConfig

        off_dir, on_dir = tmp_path / "off", tmp_path / "on"
        base, _ = self._run(obs=ObsConfig(dir=str(off_dir), name="run"))
        guarded, _ = self._run(
            guard=GuardConfig(mode="strict", check_period=8),
            obs=ObsConfig(dir=str(on_dir), name="run"),
        )
        assert base == guarded
        off_bytes = (off_dir / "run.jsonl").read_bytes()
        on_bytes = (on_dir / "run.jsonl").read_bytes()
        assert off_bytes == on_bytes
