"""CLI tests: run_all with a cheap subset, figure CLIs' argument handling."""

import pytest

from repro.experiments import run_all, table1


class TestRunAllCli:
    def test_table1_only(self, tmp_path, capsys):
        run_all.main(["--only", "table1", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "summary.txt").exists()
        summary = (tmp_path / "summary.txt").read_text()
        assert "table1" in summary

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiments"):
            run_all.main(["--only", "fig99", "--out", str(tmp_path)])

    def test_unknown_effort_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            run_all.main(["--effort", "ludicrous", "--out", str(tmp_path)])


class TestFigureCli:
    def test_table1_main_prints(self, capsys):
        table1.main([])
        out = capsys.readouterr().out
        assert "Virtual channels" in out
        assert "128 bits/cycle" in out
