"""CLI tests: run_all with a cheap subset, figure CLIs' argument handling,
and the graceful-degradation contract (partial table + exit code 3)."""

import pytest

from repro.experiments import run_all, table1
from repro.experiments.report import EXIT_CELL_FAILURE


class TestRunAllCli:
    def test_table1_only(self, tmp_path, capsys):
        run_all.main(["--only", "table1", "--out", str(tmp_path)])
        out = capsys.readouterr().out
        assert "Table 1" in out
        assert (tmp_path / "table1.txt").exists()
        assert (tmp_path / "summary.txt").exists()
        summary = (tmp_path / "summary.txt").read_text()
        assert "table1" in summary

    def test_unknown_experiment_rejected(self, tmp_path):
        with pytest.raises(SystemExit, match="unknown experiments"):
            run_all.main(["--only", "fig99", "--out", str(tmp_path)])

    def test_unknown_effort_rejected(self, tmp_path):
        with pytest.raises(SystemExit):
            run_all.main(["--effort", "ludicrous", "--out", str(tmp_path)])


class TestFigureCli:
    def test_table1_main_prints(self, capsys):
        table1.main([])
        out = capsys.readouterr().out
        assert "Virtual channels" in out
        assert "128 bits/cycle" in out


class TestGracefulDegradation:
    """Every figure CLI must render the partial table and exit with 3 when
    cells fail. ``--cycle-budget 1`` makes *every* cell fail immediately
    (the budget expires on the first warmup cycle), which exercises the
    full failure-rendering path of each CLI in milliseconds per cell.
    """

    FIGURES = sorted(set(run_all.EXPERIMENTS) - {"table1"})

    @pytest.mark.parametrize("name", FIGURES)
    def test_figure_cli_renders_failures_and_exits_3(self, name, capsys):
        module = run_all.EXPERIMENTS[name]
        code = module.main(["--effort", "smoke", "--cycle-budget", "1"])
        out = capsys.readouterr().out
        assert code == EXIT_CELL_FAILURE
        assert "FAILED(DeadlineError)" in out  # hole rendered, not hidden
        assert "WARNING" in out
        assert "cell(s) failed" in out

    def test_sweep_cli_renders_failures_and_exits_3(self, capsys):
        from repro.experiments import sweep

        code = sweep.main([
            "--effort", "smoke", "--seeds", "2", "--cycle-budget", "1",
            "--schemes", "RA_RAIR",
        ])
        out = capsys.readouterr().out
        assert code == EXIT_CELL_FAILURE
        assert "FAILED(DeadlineError)" in out
        assert "WARNING" in out

    def test_run_all_aggregates_cell_failures(self, tmp_path, capsys):
        code = run_all.main([
            "--only", "fig09_msp", "--effort", "smoke",
            "--cycle-budget", "1", "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == EXIT_CELL_FAILURE
        assert "FAILED(DeadlineError)" in out
        summary = (tmp_path / "summary.txt").read_text()
        assert "FAILED cell(s)" in summary
        assert "failures=" in summary

    def test_run_all_contains_experiment_level_errors(
        self, tmp_path, capsys, monkeypatch
    ):
        def boom(**kwargs):
            raise RuntimeError("experiment module is broken")

        monkeypatch.setattr(run_all.EXPERIMENTS["fig09_msp"], "run", boom)
        code = run_all.main([
            "--only", "fig09_msp", "table1", "--effort", "smoke",
            "--out", str(tmp_path),
        ])
        out = capsys.readouterr().out
        assert code == EXIT_CELL_FAILURE
        assert "ERROR RuntimeError" in out
        assert "Table 1" in out  # the broken experiment did not stop table1
        summary = (tmp_path / "summary.txt").read_text()
        assert "ERROR RuntimeError" in summary
        assert "errors=1" in summary
