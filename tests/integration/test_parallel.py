"""Determinism and caching acceptance tests for the parallel cell engine.

Two guarantees hold the whole layer together:

* bit-identity — fanning cells over worker processes must not perturb a
  single sample (every RNG stream derives from the cell seed, never from
  worker identity or scheduling order),
* cache transparency — a warm cache returns the same runs without
  simulating a single cycle.
"""

from __future__ import annotations

import pytest

from repro.experiments.chaos import chaos_cell
from repro.experiments.fig09_msp import run as fig09_run
from repro.experiments.parallel import (
    Cell,
    FaultPolicy,
    run_cells,
    run_cells_detailed,
)
from repro.experiments.runner import SCHEMES, Effort, run_scenario
from repro.experiments.scenarios import two_app_msp
from repro.experiments.sweep import replicate
from repro.util.errors import ConfigError

SEEDS = [1, 2]


@pytest.mark.parametrize("key", sorted(SCHEMES))
def test_replicate_parallel_matches_serial(key):
    """jobs=1 vs jobs=4 per-app APL samples are bit-identical per scheme."""
    scheme = SCHEMES[key]
    serial = replicate(scheme, two_app_msp(0.5), SEEDS, effort=Effort.SMOKE, jobs=1)
    para = replicate(scheme, two_app_msp(0.5), SEEDS, effort=Effort.SMOKE, jobs=4)
    assert sorted(serial) == sorted(para)
    for app in serial:
        assert serial[app].samples.tolist() == para[app].samples.tolist()


class TestCellEngine:
    def test_for_scenario_requires_spec(self):
        scenario = two_app_msp(0.5)
        stripped = type(scenario)(
            name=scenario.name,
            config=scenario.config,
            region_map=scenario.region_map,
            traffic_factory=scenario.traffic_factory,
            spec=None,
        )
        with pytest.raises(ConfigError, match="spec"):
            Cell.for_scenario(SCHEMES["RO_RR"], stripped, Effort.SMOKE, 1)

    def test_bad_jobs_rejected(self):
        cell = Cell.for_scenario(SCHEMES["RO_RR"], two_app_msp(0.5), Effort.SMOKE, 1)
        with pytest.raises(ConfigError, match="jobs"):
            run_cells([cell], jobs=0)

    def test_run_scenario_cache_round_trip(self, tmp_path):
        scheme = SCHEMES["RA_RAIR"]
        cold = run_scenario(
            scheme, two_app_msp(0.5), effort=Effort.SMOKE, seed=3, cache=tmp_path
        )
        warm = run_scenario(
            scheme, two_app_msp(0.5), effort=Effort.SMOKE, seed=3, cache=tmp_path
        )
        assert not cold.metrics.cache_hit
        assert warm.metrics.cache_hit
        assert warm.determinism_signature() == cold.determinism_signature()


@pytest.mark.chaos
class TestBitIdentityUnderRetries:
    """Retries, backoff, and pool rebuilds must not perturb a single sample.

    Strategy: run with jobs=3 *first*, while the faults are armed — the
    kill_once cell SIGKILLs one worker (pool rebuild + victim retry) and
    the flaky cell raises a transient OSError once (backoff + retry).
    Both faults disarm themselves through their marker files, so the
    jobs=1 rerun sees no fault at all; the parallel-with-retries samples
    must still be bit-identical to that clean serial baseline.
    """

    def build_cells(self, tmp_path):
        scheme = SCHEMES["RA_RAIR"]
        cells = [
            chaos_cell(scheme, Effort.SMOKE, seed=300 + i, mode="ok", cell_id=i)
            for i in range(4)
        ]
        cells.insert(1, chaos_cell(
            scheme, Effort.SMOKE, seed=298, mode="kill_once",
            marker=str(tmp_path / "kill_once.marker"),
        ))
        cells.insert(3, chaos_cell(
            scheme, Effort.SMOKE, seed=299, mode="flaky",
            marker=str(tmp_path / "flaky.marker"),
        ))
        return cells

    def test_jobs_n_with_retries_matches_clean_jobs_1(self, tmp_path):
        policy = FaultPolicy(max_attempts=4, backoff_base_s=0.01)
        cells = self.build_cells(tmp_path)
        para, report = run_cells_detailed(cells, jobs=3, policy=policy)
        assert (tmp_path / "kill_once.marker").exists()
        assert (tmp_path / "flaky.marker").exists()
        assert all(r.ok for r in para)
        assert report.retries >= 2  # the crash victim and the flaky cell
        assert para[1].attempts >= 2 and para[3].attempts >= 2

        serial, serial_report = run_cells_detailed(cells, jobs=1, policy=policy)
        assert all(r.ok for r in serial)
        assert serial_report.retries == 0  # faults disarmed: clean baseline
        for p, s in zip(para, serial):
            assert p.run.determinism_signature() == s.run.determinism_signature()


class TestMediumAcceptance:
    """ISSUE acceptance: MEDIUM-effort figure sweep, serial vs jobs=4 vs warm."""

    KW = dict(
        effort=Effort.MEDIUM,
        seed=42,
        p_values=(0.0, 1.0),
        schemes=("RO_RR", "RAIR_VA+SA"),
    )

    def test_parallel_bit_identical_and_warm_cache_hits_everything(self, tmp_path):
        serial = fig09_run(**self.KW)
        cold = fig09_run(**self.KW, jobs=4, cache=tmp_path)
        assert cold.rows == serial.rows  # bit-identical floats
        assert cold.metrics["cache_misses"] == 4
        assert cold.metrics["cache_hits"] == 0

        warm = fig09_run(**self.KW, jobs=4, cache=tmp_path)
        assert warm.rows == serial.rows
        assert warm.metrics["cache_hits"] == 4
        assert warm.metrics["cache_misses"] == 0
        assert warm.metrics["sim_cycles"] == 0  # zero simulator cycles
