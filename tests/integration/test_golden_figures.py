"""Golden-number regression tests for the reproduced tables.

Each test runs a tiny fixed-seed configuration of a figure CLI and
compares the *entire* rendered table — rows, columns, notes — against a
checked-in expectation, exactly. The simulator is deterministic, so any
diff means a behavior change: kernel refactors, observability wiring, or
policy edits cannot silently shift the paper numbers.

Execution metrics (wall time, cache counters) are stripped before
comparison — they are the only legitimately run-dependent part of a
:class:`~repro.experiments.runner.FigureResult`.

To regenerate after an *intentional* simulation change::

    PYTHONPATH=src python tests/integration/test_golden_figures.py --regen

and review the diff like any other code change.
"""

from __future__ import annotations

import json
import pathlib

import pytest

from repro.experiments import fig09_msp, fig12_dpa, table1
from repro.experiments.runner import Effort

GOLDEN_DIR = pathlib.Path(__file__).parent / "golden"

#: fixed seed for the golden runs — never change without regenerating
GOLDEN_SEED = 42


def _fig09():
    return fig09_msp.run(effort=Effort.SMOKE, seed=GOLDEN_SEED, p_values=(0.0, 1.0))


def _fig12():
    return fig12_dpa.run(effort=Effort.SMOKE, seed=GOLDEN_SEED, variants=("a",))


def _table1():
    return table1.run()


CASES = {
    "fig09_smoke": _fig09,
    "fig12a_smoke": _fig12,
    "table1": _table1,
}


def _normalized(result) -> dict:
    """JSON-round-tripped table dict without the execution metrics."""
    d = result.to_json_dict()
    d.pop("metrics", None)
    return json.loads(json.dumps(d))


@pytest.mark.parametrize("name", sorted(CASES))
def test_golden_table(name):
    path = GOLDEN_DIR / f"{name}.json"
    assert path.exists(), (
        f"missing golden file {path}; generate it with "
        f"'PYTHONPATH=src python {__file__} --regen'"
    )
    expected = json.loads(path.read_text())
    actual = _normalized(CASES[name]())
    assert actual == expected, (
        f"{name} drifted from its golden table; if the change is "
        f"intentional, regenerate with 'PYTHONPATH=src python {__file__} "
        f"--regen' and commit the diff"
    )


def _regen() -> None:
    GOLDEN_DIR.mkdir(exist_ok=True)
    for name, factory in sorted(CASES.items()):
        path = GOLDEN_DIR / f"{name}.json"
        path.write_text(json.dumps(_normalized(factory()), indent=2) + "\n")
        print(f"wrote {path}")


if __name__ == "__main__":
    import sys

    if "--regen" in sys.argv:
        _regen()
    else:
        print(__doc__)
