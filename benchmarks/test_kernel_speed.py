"""Kernel-scheduling speed benchmark: cycles/sec of the simulation core.

Unlike the figure macro-benchmarks this one is self-timed through
:class:`~repro.noc.stats.RunMetrics` (no pytest-benchmark dependency, so
it also runs in the minimal CI environment). The workload isolates the
scheduling kernel: RAIR arbitration on an 8x8 mesh with uniform-random
*streaming* traffic — 8-flit packets in 8-deep VCs, so each packet-hop
is one VA decision followed by several cycles of pure switch traversal,
exactly the pattern the wake lists exist to serve. XY routing keeps the
per-head routing work small so the measured time is kernel, not rank
computation. The sweep covers a low rate (most routers asleep), a mid
rate, and saturation (everything busy; the wake lists degenerate to the
old full scan and must stay close to its cost).

``results/BENCH_kernel_baseline.json`` pins the pre-refactor polling
kernel's numbers on the same workload; the emitter test combines them
with the current run into ``results/BENCH_kernel.json`` so the speedup
of the event-driven kernel stays recorded alongside the figures. Cross-
session comparisons drift with machine load — when regenerating the
baseline, run old and new *interleaved in one process* (import-swap the
two trees) and keep the best of each; that is how the committed numbers
were produced.

Effort comes from ``REPRO_BENCH_EFFORT`` like the other benchmarks:
``smoke`` does one short repetition per rate (CI), anything else does
three full-length repetitions and keeps the best (timing noise on shared
machines only ever slows a run down).
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from benchmarks.conftest import bench_stamp
from repro import build_simulation
from repro.noc.config import NocConfig
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource

RATES = (0.05, 0.2, 0.4)  # low / mid / saturation
PACKET_FLITS = 8
WARMUP, MEASURE, REPEATS = 300, 1500, 3
SMOKE_MEASURE, SMOKE_REPEATS = 300, 3

_speeds: dict[float, float] = {}  # rate -> best cycles/sec, filled by the sweep


def kernel_cycles_per_sec(rate: float, measure: int = MEASURE, repeats: int = REPEATS,
                          seed: int = 11) -> float:
    """Best-of-``repeats`` kernel throughput on the streaming workload.

    Kept importable and dependency-light on purpose: the same function is
    run against the pre-refactor tree (via a git worktree on PYTHONPATH)
    to regenerate the baseline file.
    """
    best = 0.0
    for _ in range(repeats):
        cfg = NocConfig(vc_depth=PACKET_FLITS, max_packet_flits=PACKET_FLITS)
        sim, net = build_simulation(cfg, scheme="rair", routing="xy")
        sim.add_traffic(
            SyntheticTrafficSource(
                nodes=range(cfg.num_nodes),
                rate=rate,
                pattern=UniformPattern(net.topology),
                app_id=0,
                seed=seed,
                lengths=FixedLength(PACKET_FLITS),
            )
        )
        res = sim.run_measurement(warmup=WARMUP, measure=measure, drain_limit=10_000)
        best = max(best, res.metrics.cycles_per_sec)
    return best


@pytest.mark.parametrize("rate", RATES)
def test_kernel_speed(rate, effort):
    smoke = effort.name == "SMOKE"
    cps = kernel_cycles_per_sec(
        rate,
        measure=SMOKE_MEASURE if smoke else MEASURE,
        repeats=SMOKE_REPEATS if smoke else REPEATS,
    )
    assert cps > 0.0
    _speeds[rate] = cps
    print(f"\nkernel @ rate {rate}: {cps:,.0f} cycles/sec")


def test_emit_bench_json(results_dir, effort):
    """Write results/BENCH_kernel.json from this run + the pinned baseline."""
    missing = [r for r in RATES if r not in _speeds]
    if missing:
        pytest.skip(f"speed sweep incomplete (missing rates {missing})")
    baseline_path = results_dir / "BENCH_kernel_baseline.json"
    baseline = json.loads(baseline_path.read_text()) if baseline_path.exists() else None
    report = {
        "workload": {
            "mesh": "8x8",
            "scheme": "rair",
            "routing": "xy",
            "traffic": f"uniform random, {PACKET_FLITS}-flit packets, "
                       f"{PACKET_FLITS}-deep VCs",
            "warmup": WARMUP,
            "measure": SMOKE_MEASURE if effort.name == "SMOKE" else MEASURE,
            "repeats": SMOKE_REPEATS if effort.name == "SMOKE" else REPEATS,
            "effort": effort.name.lower(),
        },
        "stamp": bench_stamp(),
        "cycles_per_sec": {str(r): _speeds[r] for r in RATES},
    }
    if baseline is not None:
        report["baseline"] = baseline
        base_speeds = baseline["cycles_per_sec"]
        report["speedup"] = {
            str(r): _speeds[r] / base_speeds[str(r)]
            for r in RATES
            if str(r) in base_speeds and base_speeds[str(r)] > 0
        }
    check_out = os.environ.get("REPRO_BENCH_CHECK_OUT")
    if check_out:
        # CI's compare gate: persist this run's numbers to a scratch path
        # (never to results/) regardless of effort.
        path = pathlib.Path(check_out)
        path.parent.mkdir(parents=True, exist_ok=True)
        path.write_text(json.dumps(report, indent=1) + "\n")
        print(f"\nwrote {path}")
    if effort.name == "SMOKE":
        # Liveness check only: smoke timings are noise, so don't let a CI
        # run clobber the recorded full-effort numbers.
        print("\nsmoke effort: report built but not persisted to results/")
    else:
        out = results_dir / "BENCH_kernel.json"
        out.write_text(json.dumps(report, indent=1) + "\n")
        print(f"\nwrote {out}")
    if "speedup" in report:
        for r, s in report["speedup"].items():
            print(f"  rate {r}: {s:.2f}x vs polling kernel")
