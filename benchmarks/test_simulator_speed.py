"""Microbenchmarks of the simulator core itself.

These are the classic pytest-benchmark use case (repeatable timing of a
hot path) and guard against performance regressions in the router loop —
the experiment macro-benchmarks depend on the simulator sustaining
O(10-100k) router-cycles per second.
"""

import pytest

from repro import build_simulation
from repro.noc.config import NocConfig
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import BimodalLengths, SyntheticTrafficSource


def make_loaded_sim(scheme: str, rate: float = 0.2, warm: int = 200):
    cfg = NocConfig()
    sim, net = build_simulation(cfg, scheme=scheme, routing="local")
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(64), rate=rate, pattern=UniformPattern(net.topology),
            app_id=0, seed=11, lengths=BimodalLengths(),
        )
    )
    sim.run(warm)
    return sim


@pytest.mark.parametrize("scheme", ["ro_rr", "rair", "stc"])
def test_steady_state_cycles(benchmark, scheme):
    """Cost of 100 steady-state cycles at 0.2 flits/node/cycle (8x8)."""
    sim = make_loaded_sim(scheme)
    benchmark.pedantic(sim.run, args=(100,), rounds=5, iterations=1, warmup_rounds=1)


def test_idle_network_step_is_cheap(benchmark):
    cfg = NocConfig()
    sim, _ = build_simulation(cfg)
    benchmark.pedantic(sim.run, args=(1000,), rounds=5, iterations=1)
