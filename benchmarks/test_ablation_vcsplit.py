"""E-A2 bench: regional:global VC split (paper Section VI).

Paper argument asserted loosely: every split keeps RAIR beneficial on the
generic six-app mix, and the recommended even split is within noise of the
best skewed split (it is the robust choice, not necessarily the absolute
winner on any single workload).
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import ablation_vcsplit


def test_vc_split_ablation(benchmark, effort, results_dir):
    result = run_once(benchmark, ablation_vcsplit.run, effort=effort)
    emit(results_dir, "ablation_vcsplit", result)

    by_split = {row["split"]: row["red_avg"] for row in result.rows}
    assert set(by_split) == {"1G:3R", "2G:2R", "3G:1R"}

    for split, red in by_split.items():
        assert red > -0.05, f"split {split} must not catastrophically regress"

    best = max(by_split.values())
    assert by_split["2G:2R"] >= best - 0.06
