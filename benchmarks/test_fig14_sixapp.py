"""E-F14 bench: Figure 14 — six concurrent applications (UR global traffic).

Paper shape asserted: average APL reduction vs RO_RR is positive for
RA_RAIR and larger than both RO_Rank's and RA_DBAR's; RAIR's gains
concentrate on the low/medium-load applications.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import fig14_sixapp


def test_fig14_sixapp_shape(benchmark, effort, results_dir):
    result = run_once(benchmark, fig14_sixapp.run, effort=effort)
    emit(results_dir, "fig14_sixapp", result)

    rair = result.row_by(scheme="RA_RAIR")
    rank = result.row_by(scheme="RO_Rank")
    dbar = result.row_by(scheme="RA_DBAR")

    # RAIR wins on average (paper: -10.1% vs -5.8% vs -3.4%; our magnitudes
    # are compressed — EXPERIMENTS.md discusses why — but the ordering and
    # the sign survive).
    assert rair["red_avg"] > 0.005
    assert rair["red_avg"] > rank["red_avg"] - 0.002
    assert rair["red_avg"] > dbar["red_avg"]

    # The gains concentrate on the low/medium-load applications (0,2,3,4),
    # where RAIR clearly beats every baseline.
    def low_mean(row):
        return sum(row[f"red_app{i}"] for i in (0, 2, 3, 4)) / 4

    assert low_mean(rair) > low_mean(rank)
    assert low_mean(rair) > low_mean(dbar)
    assert low_mean(rair) > sum(rair[f"red_app{i}"] for i in (1, 5)) / 2
