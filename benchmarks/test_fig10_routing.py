"""E-F10 bench: Figure 10 — RAIR composed with different routing algorithms.

Paper shape asserted at p=100%: RAIR variants beat their round-robin
counterparts on App0; RAIR_DBAR is the best App0 configuration overall and
DBAR routing does not wreck App1.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import fig10_routing


def test_fig10_routing_shape(benchmark, effort, results_dir):
    result = run_once(benchmark, fig10_routing.run, effort=effort, p_values=(0.5, 1.0))
    emit(results_dir, "fig10_routing", result)

    rr_local = result.row_by(p_inter="100%", scheme="RO_RR_Local")
    rair_local = result.row_by(p_inter="100%", scheme="RAIR_Local")
    rr_dbar = result.row_by(p_inter="100%", scheme="RO_RR_DBAR")
    rair_dbar = result.row_by(p_inter="100%", scheme="RAIR_DBAR")

    # RAIR beats round-robin under both routing algorithms (paper: the
    # contention reduction dominates the routing gain).
    assert rair_local["apl_app0"] < rr_local["apl_app0"]
    assert rair_dbar["apl_app0"] < rr_dbar["apl_app0"]

    # RAIR_DBAR is the strongest configuration for the inter-region app.
    best = min(
        rr_local["apl_app0"], rair_local["apl_app0"], rr_dbar["apl_app0"]
    )
    assert rair_dbar["apl_app0"] <= best * 1.05

    # App1 under RAIR_DBAR stays within a reasonable envelope of the
    # RO_RR_Local reference (paper: fully recovered).
    assert rair_dbar["apl_app1"] < rr_local["apl_app1"] * 1.3
