"""Interleaved A/B benchmark driver: current tree vs a baseline worktree.

Cross-session benchmark numbers drift with machine load; the honest way
to compare two kernels is to run them *interleaved in one process* and
keep the best of each. This driver does that for the hot-path workload::

    git worktree add /tmp/rair-base <baseline-rev>
    python -m benchmarks.interleave --base /tmp/rair-base \
        --out results/BENCH_hotpath.json

Per repetition it measures every rate once on the current tree and once
on the baseline tree, swapping which tree the ``repro`` package resolves
from between calls (``sys.modules`` purge + ``sys.path`` swap). The
workload function lives in this tree and only uses APIs present in both.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

REPO_ROOT = pathlib.Path(__file__).resolve().parent.parent

from benchmarks.conftest import bench_stamp  # noqa: E402
from benchmarks.hotpath import (  # noqa: E402
    MEASURE,
    RATES,
    REPEATS,
    WORKLOAD,
    hotpath_cycles_per_sec,
)


def _purge_repro() -> None:
    for name in list(sys.modules):
        if name == "repro" or name.startswith("repro."):
            del sys.modules[name]


def measure_tree(tree_src: pathlib.Path, rate: float, measure: int, seed: int) -> float:
    """One measurement with ``repro`` served from ``tree_src``."""
    _purge_repro()
    sys.path.insert(0, str(tree_src))
    try:
        return hotpath_cycles_per_sec(rate, measure=measure, seed=seed)
    finally:
        sys.path.remove(str(tree_src))
        _purge_repro()


def run_interleaved(
    base_src: pathlib.Path,
    new_src: pathlib.Path,
    rates=RATES,
    measure: int = MEASURE,
    repeats: int = REPEATS,
    seed: int = 11,
) -> dict:
    """Best-of-``repeats`` cycles/sec per rate for both trees, interleaved."""
    best_new: dict[float, float] = {r: 0.0 for r in rates}
    best_base: dict[float, float] = {r: 0.0 for r in rates}
    for rep in range(repeats):
        for rate in rates:
            cps_new = measure_tree(new_src, rate, measure, seed)
            cps_base = measure_tree(base_src, rate, measure, seed)
            best_new[rate] = max(best_new[rate], cps_new)
            best_base[rate] = max(best_base[rate], cps_base)
            print(
                f"rep {rep + 1}/{repeats} rate {rate}: "
                f"new {cps_new:,.0f} base {cps_base:,.0f} cycles/sec",
                flush=True,
            )
    return {
        "workload": dict(WORKLOAD, measure=measure, repeats=repeats),
        "stamp": bench_stamp(),
        "cycles_per_sec": {str(r): best_new[r] for r in rates},
        "baseline": {
            "tree": str(base_src),
            "cycles_per_sec": {str(r): best_base[r] for r in rates},
        },
        "speedup": {
            str(r): best_new[r] / best_base[r] if best_base[r] > 0 else 0.0
            for r in rates
        },
    }


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.interleave",
        description="Interleaved hot-path benchmark: this tree vs a baseline worktree.",
    )
    parser.add_argument(
        "--base",
        required=True,
        help="path to a checkout/worktree of the baseline revision",
    )
    parser.add_argument(
        "--out",
        default=str(REPO_ROOT / "results" / "BENCH_hotpath.json"),
        help="output JSON path (default results/BENCH_hotpath.json)",
    )
    parser.add_argument("--measure", type=int, default=MEASURE)
    parser.add_argument("--repeats", type=int, default=REPEATS)
    parser.add_argument("--seed", type=int, default=11)
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])

    base_src = pathlib.Path(args.base).resolve() / "src"
    if not (base_src / "repro").is_dir():
        print(f"no repro package under {base_src}", file=sys.stderr)
        return 2
    new_src = REPO_ROOT / "src"

    report = run_interleaved(
        base_src, new_src, measure=args.measure, repeats=args.repeats, seed=args.seed
    )
    out = pathlib.Path(args.out)
    out.parent.mkdir(exist_ok=True)
    out.write_text(json.dumps(report, indent=1) + "\n")
    print(f"wrote {out}")
    for rate, s in report["speedup"].items():
        print(f"  rate {rate}: {s:.2f}x vs baseline")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
