"""Hot-path (idle-heavy) speed benchmark: trickle traffic on an 8x8 mesh.

Timing-only lane for the workload defined in ``benchmarks/hotpath.py``.
``results/BENCH_hotpath.json`` itself is produced by the *interleaved*
driver (``python -m benchmarks.interleave``) against a baseline worktree
— a pytest run on one tree cannot measure a fair speedup, so this lane
never rewrites that file. It asserts liveness (nonzero throughput, the
fast-forward path actually engaging on the idle-heavy rates) and, when
``REPRO_BENCH_CHECK_OUT`` is set, writes the measured numbers there for
``benchmarks/compare.py`` to gate in CI.
"""

from __future__ import annotations

import json
import os
import pathlib

import pytest

from benchmarks.conftest import bench_stamp
from benchmarks.hotpath import (
    MEASURE,
    PACKET_FLITS,
    RATES,
    REPEATS,
    SMOKE_MEASURE,
    SMOKE_REPEATS,
    SOURCE_NODES,
    WORKLOAD,
    hotpath_cycles_per_sec,
)
from repro import build_simulation
from repro.noc.config import NocConfig
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource

_speeds: dict[float, float] = {}  # rate -> best cycles/sec


@pytest.mark.parametrize("rate", RATES)
def test_hotpath_speed(rate, effort):
    smoke = effort.name == "SMOKE"
    measure = SMOKE_MEASURE if smoke else MEASURE
    best = 0.0
    for _ in range(SMOKE_REPEATS if smoke else REPEATS):
        best = max(best, hotpath_cycles_per_sec(rate, measure=measure))
    assert best > 0.0
    _speeds[rate] = best
    print(f"\nhotpath @ rate {rate}: {best:,.0f} cycles/sec")


def test_fast_forward_engages_on_trickle():
    """The idle-heavy rate must actually exercise the fast path."""
    cfg = NocConfig(vc_depth=PACKET_FLITS, max_packet_flits=PACKET_FLITS)
    sim, net = build_simulation(cfg, scheme="rair", routing="xy")
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=SOURCE_NODES,
            rate=RATES[0],
            pattern=UniformPattern(net.topology),
            app_id=0,
            seed=11,
            lengths=FixedLength(PACKET_FLITS),
        )
    )
    res = sim.run_measurement(warmup=300, measure=600, drain_limit=10_000)
    assert res.metrics.ff_cycles_skipped > 0
    assert res.metrics.pool_hits > 0


def test_emit_check_json(effort):
    """Write the measured speeds for the CI compare gate (env-gated)."""
    out = os.environ.get("REPRO_BENCH_CHECK_OUT")
    missing = [r for r in RATES if r not in _speeds]
    if missing:
        pytest.skip(f"speed sweep incomplete (missing rates {missing})")
    if not out:
        pytest.skip("REPRO_BENCH_CHECK_OUT not set; check-only run emits nothing")
    report = {
        "workload": dict(
            WORKLOAD,
            measure=SMOKE_MEASURE if effort.name == "SMOKE" else MEASURE,
            repeats=SMOKE_REPEATS if effort.name == "SMOKE" else REPEATS,
            effort=effort.name.lower(),
        ),
        "stamp": bench_stamp(),
        "cycles_per_sec": {str(r): _speeds[r] for r in RATES},
    }
    path = pathlib.Path(out)
    path.parent.mkdir(parents=True, exist_ok=True)
    path.write_text(json.dumps(report, indent=1) + "\n")
    print(f"\nwrote {path}")
