"""E-T1 bench: render Table 1 and sanity-check the default configuration."""

from benchmarks.conftest import emit, run_once
from repro.experiments import table1
from repro.noc.config import NocConfig


def test_table1_configuration(benchmark, results_dir):
    result = run_once(benchmark, table1.run)
    emit(results_dir, "table1", result)
    # The network-visible rows must reflect the paper's Table 1 values.
    cfg = NocConfig(num_vnets=2)
    assert cfg.num_nodes == 64
    assert len(cfg.vc_classes) == 4  # Table 1: 4 VCs per protocol class
    assert cfg.escape_vcs == 1  # plus the additional escape set (Sec. IV.D)
    assert cfg.vc_depth == 5
    assert cfg.link_bits == 128
    vc_row = result.row_by(item="Virtual channels")
    assert "atomic" in vc_row["paper"]
    assert "atomic" in vc_row["repro"]
