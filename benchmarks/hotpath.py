"""Hot-path workload: trickle traffic with genuine idle gaps.

The kernel-speed benchmark (``test_kernel_speed.py``) keeps every node
injecting, so it measures the *busy* kernel. This workload measures the
other half of real experiment time: an 8x8 mesh where only the two
opposite corners inject, at per-node rates that leave the chip idle for
most cycles at the low end and a substantial minority at the high end —
the regime where idle-cycle fast-forward, packet pooling, and the
precomputed routing tables pay.

``hotpath_cycles_per_sec`` is importable and deliberately restricted to
APIs that exist in both the current tree and the pre-optimisation tree:
``benchmarks/interleave.py`` calls it alternately against the two trees
in one process (sys.path swap) to produce ``results/BENCH_hotpath.json``
with machine-load-fair speedups.
"""

from __future__ import annotations

RATES = (0.05, 0.2, 0.4)  # flits/source-node/cycle: mostly-idle .. mixed
SOURCE_NODES = (0, 63)  # opposite corners of the 8x8 mesh
PACKET_FLITS = 8
WARMUP, MEASURE, REPEATS = 300, 1500, 3
SMOKE_MEASURE, SMOKE_REPEATS = 300, 3

WORKLOAD = {
    "mesh": "8x8",
    "scheme": "rair",
    "routing": "xy",
    "traffic": (
        "two corner sources (nodes 0 and 63), uniform chip-wide "
        f"destinations, {PACKET_FLITS}-flit packets, {PACKET_FLITS}-deep VCs"
    ),
    "warmup": WARMUP,
    "measure": MEASURE,
    "repeats": REPEATS,
}


def hotpath_cycles_per_sec(rate: float, measure: int = MEASURE, seed: int = 11) -> float:
    """One timed measurement of the trickle workload (cycles/sec).

    ``repro`` is imported inside the function so the caller controls which
    tree serves it (interleaved A/B runs purge ``sys.modules`` and swap
    ``sys.path`` between calls). Per-repetition best-of is the caller's
    job — interleaving repetitions across trees is the whole point.
    """
    from repro import build_simulation
    from repro.noc.config import NocConfig
    from repro.traffic.patterns import UniformPattern
    from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource

    cfg = NocConfig(vc_depth=PACKET_FLITS, max_packet_flits=PACKET_FLITS)
    sim, net = build_simulation(cfg, scheme="rair", routing="xy")
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=SOURCE_NODES,
            rate=rate,
            pattern=UniformPattern(net.topology),
            app_id=0,
            seed=seed,
            lengths=FixedLength(PACKET_FLITS),
        )
    )
    res = sim.run_measurement(warmup=WARMUP, measure=measure, drain_limit=10_000)
    return res.metrics.cycles_per_sec
