"""E-F9 bench: Figure 9 — multi-stage prioritization under a p sweep.

Paper shape asserted: at p=100%, RAIR variants beat RO_RR on App0's APL
with MSP at VA+SA at least as good as VA-only, while App1's penalty stays
bounded; all APLs rise with p.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import fig09_msp


P_VALUES = (0.0, 0.5, 1.0)


def test_fig09_msp_shape(benchmark, effort, results_dir):
    result = run_once(
        benchmark, fig09_msp.run, effort=effort, p_values=P_VALUES
    )
    emit(results_dir, "fig09_msp", result)

    rr_0 = result.row_by(p_inter="0%", scheme="RO_RR")
    rr_100 = result.row_by(p_inter="100%", scheme="RO_RR")
    va_100 = result.row_by(p_inter="100%", scheme="RAIR_VA")
    full_100 = result.row_by(p_inter="100%", scheme="RAIR_VA+SA")

    for row in result.rows:
        assert row["drained"], f"undrained run: {row}"

    # APL grows with p (more hops + more contention).
    assert rr_100["apl_app0"] > rr_0["apl_app0"]

    # MSP cuts App0's APL markedly at p=100% (paper: -18.9% for VA+SA).
    assert full_100["apl_app0"] < rr_100["apl_app0"] * 0.92
    # Enforcing priority at both VA and SA is at least as good as VA alone.
    assert full_100["apl_app0"] <= va_100["apl_app0"] * 1.02
    assert va_100["apl_app0"] < rr_100["apl_app0"]

    # App1's slowdown stays bounded (paper: <3%; we allow scaled-window noise).
    assert full_100["apl_app1"] < rr_100["apl_app1"] * 1.25
