"""Benchmark harness configuration.

Every benchmark regenerates one paper table/figure (DESIGN.md §3) at the
effort selected by the ``REPRO_BENCH_EFFORT`` environment variable
(``smoke``/``fast``/``medium``/``full``; default ``fast``). Each bench

* times the full experiment via pytest-benchmark (one round — these are
  minutes-long macro benchmarks, not microbenchmarks),
* prints the reproduced rows/series,
* saves them under ``results/`` for EXPERIMENTS.md,
* asserts the paper's qualitative *shape* (who wins, roughly by how much).
"""

from __future__ import annotations

import datetime
import os
import pathlib
import subprocess

import pytest

from repro.experiments.runner import Effort

RESULTS_DIR = pathlib.Path(__file__).resolve().parent.parent / "results"


def bench_stamp() -> dict:
    """Provenance stamp for benchmark JSON artifacts: git rev + UTC time.

    Best-effort on the rev — a tarball checkout without git still
    benchmarks fine, it just records ``unknown``.
    """
    rev = "unknown"
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            capture_output=True,
            text=True,
            cwd=pathlib.Path(__file__).resolve().parent,
            timeout=10,
        )
        if proc.returncode == 0 and proc.stdout.strip():
            rev = proc.stdout.strip()
    except OSError:
        pass
    return {
        "git_rev": rev,
        "timestamp": datetime.datetime.now(datetime.timezone.utc).isoformat(
            timespec="seconds"
        ),
    }


def bench_effort() -> Effort:
    """Effort level for benchmark runs (env: REPRO_BENCH_EFFORT)."""
    name = os.environ.get("REPRO_BENCH_EFFORT", "fast").upper()
    return Effort[name]


@pytest.fixture(scope="session")
def effort() -> Effort:
    return bench_effort()


@pytest.fixture(scope="session")
def results_dir() -> pathlib.Path:
    RESULTS_DIR.mkdir(exist_ok=True)
    return RESULTS_DIR


def emit(results_dir: pathlib.Path, name: str, figure_result) -> None:
    """Print a reproduced figure and persist it to results/<name>.txt."""
    text = figure_result.format_table()
    print("\n" + text, flush=True)
    (results_dir / f"{name}.txt").write_text(text + "\n")


def run_once(benchmark, fn, *args, **kwargs):
    """Run a macro-experiment exactly once under pytest-benchmark timing."""
    return benchmark.pedantic(fn, args=args, kwargs=kwargs, rounds=1, iterations=1)
