"""E-F17 bench: Figure 17 — PARSEC-like workloads under adversarial traffic.

Paper shape asserted: average slowdown ordering
RO_RR > RA_DBAR, RO_Rank > RA_RAIR, with RA_RAIR clearly the most
protective scheme (paper: 1.92 / 1.75 / 1.47 / 1.18).
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import fig17_parsec


def test_fig17_adversarial_shape(benchmark, effort, results_dir):
    result = run_once(benchmark, fig17_parsec.run, effort=effort)
    emit(results_dir, "fig17_parsec", result)

    slow = {row["scheme"]: row["slow_avg"] for row in result.rows}

    # Every scheme suffers some slowdown from the flood.
    for scheme, s in slow.items():
        assert s > 1.0, f"{scheme} should slow down under the flood, got {s}"

    # RAIR is the most protective (the flood is foreign everywhere).
    assert slow["RA_RAIR"] < slow["RO_RR"]
    assert slow["RA_RAIR"] < slow["RA_DBAR"]
    assert slow["RA_RAIR"] < slow["RO_Rank"]
    # Round-robin is the least protective (paper's worst case).
    assert slow["RO_RR"] >= max(slow["RA_DBAR"], slow["RA_RAIR"]) * 0.95
