"""E-F15 bench: Figure 15 — global traffic patterns (UR/TP/BC/HS).

Paper shape asserted: RA_RAIR achieves a positive average APL reduction on
*every* global traffic pattern (it places no implicit restrictions on the
inter-region pattern) and remains the best scheme averaged over patterns.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import fig15_patterns


def test_fig15_patterns_shape(benchmark, effort, results_dir):
    result = run_once(benchmark, fig15_patterns.run, effort=effort)
    emit(results_dir, "fig15_patterns", result)

    patterns = ("UR", "TP", "BC", "HS")
    for pattern in patterns:
        rair = result.row_by(pattern=pattern, scheme="RA_RAIR")
        assert rair["red_avg"] > 0, f"RAIR must help under {pattern}"

    def avg(scheme):
        return sum(
            result.row_by(pattern=p, scheme=scheme)["red_avg"] for p in patterns
        ) / len(patterns)

    assert avg("RA_RAIR") > avg("RO_Rank")
    assert avg("RA_RAIR") > avg("RA_DBAR")
