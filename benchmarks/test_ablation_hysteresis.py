"""E-A1 bench: DPA hysteresis delta sweep (paper Section IV.C).

Paper observation asserted loosely: RAIR stays effective across the
0.1-0.3 delta range (the paper found ~0.2 best); the sweep must not
contain a catastrophic configuration.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import ablation_hysteresis


def test_hysteresis_delta_sweep(benchmark, effort, results_dir):
    result = run_once(benchmark, ablation_hysteresis.run, effort=effort)
    emit(results_dir, "ablation_hysteresis", result)

    by_delta = {row["delta"]: row["red_avg"] for row in result.rows}

    # The paper-recommended band keeps RAIR effective.
    for delta in (0.1, 0.2, 0.3):
        assert by_delta[delta] > 0, f"delta={delta} should still beat RO_RR"

    # The recommended delta=0.2 is within noise of the sweep's best value.
    best = max(by_delta.values())
    assert by_delta[0.2] >= best - 0.05
