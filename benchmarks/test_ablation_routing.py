"""E-A3 bench: RAIR's gain must survive every deadlock-free routing.

Paper claim asserted (Section IV.D): RAIR places no restriction on the
routing algorithm — the App0 (inter-region, low-load) APL reduction is
positive under deterministic XY, both turn models, Duato local-adaptive
and DBAR, while App1's cost stays bounded.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import ablation_routing


def test_rair_gain_across_routings(benchmark, effort, results_dir):
    result = run_once(benchmark, ablation_routing.run, effort=effort)
    emit(results_dir, "ablation_routing", result)

    for row in result.rows:
        assert row["drained"], f"undrained: {row['routing']}"
        assert row["red_app0"] > 0, f"RAIR must help App0 under {row['routing']}"
        assert row["red_app1"] > -0.30, f"App1 cost unbounded under {row['routing']}"
