"""E-F12 bench: Figure 12 — dynamic priority adaptation vs static priorities.

Paper shape asserted: the two Fig. 11 scenarios disagree about which static
priority is better — (a) favours ForeignH, (b) favours NativeH — and DPA
tracks (approximately matches or beats) the better static choice in both,
which neither static variant does.
"""

from benchmarks.conftest import emit, run_once
from repro.experiments import fig12_dpa


def test_fig12_dpa_shape(benchmark, effort, results_dir):
    result = run_once(benchmark, fig12_dpa.run, effort=effort)
    emit(results_dir, "fig12_dpa", result)

    nat_a = result.row_by(scenario="a", scheme="RAIR_NativeH")["red_avg"]
    for_a = result.row_by(scenario="a", scheme="RAIR_ForeignH")["red_avg"]
    dpa_a = result.row_by(scenario="a", scheme="RAIR_DPA")["red_avg"]
    nat_b = result.row_by(scenario="b", scheme="RAIR_NativeH")["red_avg"]
    for_b = result.row_by(scenario="b", scheme="RAIR_ForeignH")["red_avg"]
    dpa_b = result.row_by(scenario="b", scheme="RAIR_DPA")["red_avg"]

    # Scenario (a): prioritizing foreign (the low-load apps' global
    # traffic inside region 3) wins; scenario (b): native wins.
    assert for_a > nat_a
    assert nat_b > for_b

    # DPA approaches the better static policy in each scenario — the
    # paper's argument for why a dynamic mechanism is indispensable.
    slack = 0.06  # absolute reduction slack for scaled windows
    assert dpa_a >= for_a - slack
    assert dpa_b >= nat_b - slack

    # DPA always clearly beats the *wrong* static choice, and improves on
    # RO_RR where the scenario leaves headroom (scenario (b)'s effects are
    # small at scaled windows, so only the ordering is asserted there).
    assert dpa_a > nat_a
    assert dpa_b > for_b
    assert dpa_a > 0
