"""Compare two BENCH_*.json files and gate on throughput regressions.

Usage::

    python -m benchmarks.compare results/BENCH_kernel.json new.json
    python -m benchmarks.compare old.json new.json --threshold 0.2

Both files must carry a top-level ``cycles_per_sec`` mapping (rate ->
cycles/sec), the shape every BENCH emitter in this repo writes. The tool
prints a per-rate speedup table (new relative to old) and exits nonzero
when any shared rate regressed by more than ``--threshold`` (default
0.10, i.e. new < 90% of old) — the CI benchmark lane's gate.
"""

from __future__ import annotations

import argparse
import json
import pathlib
import sys

__all__ = ["compare", "main"]


def _load_speeds(path: pathlib.Path) -> dict[str, float]:
    data = json.loads(path.read_text())
    speeds = data.get("cycles_per_sec")
    if not isinstance(speeds, dict) or not speeds:
        raise ValueError(f"{path}: no 'cycles_per_sec' mapping")
    return {str(k): float(v) for k, v in speeds.items()}


def compare(old: dict[str, float], new: dict[str, float], threshold: float):
    """Per-rate ratios plus the rates that regressed beyond ``threshold``.

    Returns ``(rows, regressions)`` where rows are
    ``(rate, old_cps, new_cps, ratio)`` over the shared rates.
    """
    shared = sorted(set(old) & set(new), key=float)
    rows = []
    regressions = []
    for rate in shared:
        ratio = new[rate] / old[rate] if old[rate] > 0 else float("inf")
        rows.append((rate, old[rate], new[rate], ratio))
        if ratio < 1.0 - threshold:
            regressions.append(rate)
    return rows, regressions


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m benchmarks.compare",
        description="Diff two BENCH_*.json files; nonzero exit on regression.",
    )
    parser.add_argument("old", help="baseline BENCH json")
    parser.add_argument("new", help="candidate BENCH json")
    parser.add_argument(
        "--threshold",
        type=float,
        default=0.10,
        help="allowed fractional slowdown before failing (default 0.10)",
    )
    args = parser.parse_args(argv if argv is not None else sys.argv[1:])
    if not 0.0 <= args.threshold < 1.0:
        print(f"threshold must be in [0, 1), got {args.threshold}", file=sys.stderr)
        return 2

    try:
        old = _load_speeds(pathlib.Path(args.old))
        new = _load_speeds(pathlib.Path(args.new))
    except (OSError, ValueError, json.JSONDecodeError) as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 2

    rows, regressions = compare(old, new, args.threshold)
    if not rows:
        print("error: the two files share no rates", file=sys.stderr)
        return 2

    print(f"{'rate':>8} {'old c/s':>14} {'new c/s':>14} {'speedup':>8}")
    for rate, o, n, ratio in rows:
        flag = "  << regression" if rate in regressions else ""
        print(f"{rate:>8} {o:>14,.0f} {n:>14,.0f} {ratio:>7.2f}x{flag}")

    if regressions:
        print(
            f"FAIL: {len(regressions)} rate(s) regressed more than "
            f"{args.threshold:.0%}: {', '.join(regressions)}",
            file=sys.stderr,
        )
        return 1
    print(f"OK: no rate regressed more than {args.threshold:.0%}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
