#!/usr/bin/env python3
"""Region-layout study: how region shape and count affect interference.

RAIR's per-router state is independent of the number of regions (paper
Section VI), so it can serve many small regions as easily as two big ones.
This example maps the same six-application workload onto three different
layouts — two halves (apps doubled up), 3x2 grid, and 2x3 grid — and
compares RO_RR vs RA_RAIR on each, demonstrating that:

* interference reduction survives arbitrary rectangular layouts,
* more/smaller regions mean shorter intra-region paths (lower base APL),
* RAIR's relative benefit holds across layouts.

Run:  python examples/mapping_study.py
"""

from repro import RegionMap, build_simulation
from repro.noc import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic import RegionalAppTraffic
from repro.util.rng import spawn_rngs

#: per-app offered load in flits/node/cycle (alternating light/heavy —
#: heavy apps sit near the *smallest* layout's latency knee (the halves
#: region saturates around 0.385) so every layout stays stable while still
#: having real interference to reduce)
LOADS = (0.06, 0.30, 0.10, 0.12, 0.15, 0.30)


def layout_variants(topology: MeshTopology) -> dict[str, RegionMap]:
    return {
        "3x2 grid (6 regions)": RegionMap.grid(topology, 3, 2),
        "2x3 grid (6 regions)": RegionMap.grid(topology, 2, 3),
        "2x1 halves (2 regions)": RegionMap.halves(topology),
    }


def run(regions: RegionMap, scheme: str, seed: int = 21) -> dict:
    """APL per app class: light apps send 40% inter-region traffic that
    must cross the heavy apps' busy regions — the interference RAIR cuts."""
    config = NocConfig()
    sim, net = build_simulation(config, region_map=regions, scheme=scheme, routing="local")
    rngs = spawn_rngs(seed, regions.num_apps)
    heavy = {app for app in regions.apps if LOADS[app % len(LOADS)] >= 0.3}
    for app in regions.apps:
        if app in heavy:
            fractions = dict(intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0)
        else:
            fractions = dict(intra_fraction=0.6, inter_fraction=0.4, mc_fraction=0.0)
        sim.add_traffic(
            RegionalAppTraffic(
                regions, app, rate=LOADS[app % len(LOADS)], seed=rngs[app],
                **fractions,
            )
        )
    result = sim.run_measurement(warmup=800, measure=3000, drain_limit=80_000)
    per_app = net.stats.per_app_apl(window=result.window)
    light = [v for a, v in per_app.items() if a not in heavy]
    heavy_apl = [v for a, v in per_app.items() if a in heavy]
    return {
        "light": sum(light) / len(light),
        "heavy": sum(heavy_apl) / len(heavy_apl),
    }


def main() -> None:
    topology = MeshTopology(8, 8)
    print("Light apps (40% inter-region) vs heavy apps, per region layout\n")
    print(f"{'layout':26}{'light RR':>10}{'light RAIR':>12}{'gain':>8}{'heavy cost':>12}")
    for name, regions in layout_variants(topology).items():
        base = run(regions, "ro_rr")
        rair = run(regions, "rair")
        gain = 1 - rair["light"] / base["light"]
        cost = rair["heavy"] / base["heavy"] - 1
        print(
            f"  {name:24}{base['light']:10.1f}{rair['light']:12.1f}"
            f"{gain:>8.1%}{cost:>11.1%}"
        )
    print(
        "\nRAIR accelerates the light applications' inter-region packets"
        "\nunder every layout; no per-region router state means the layout"
        "\nchange itself is free (paper Section VI)."
    )


if __name__ == "__main__":
    main()
