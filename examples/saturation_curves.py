#!/usr/bin/env python3
"""Latency-vs-load curves: the simulator substrate's signature plot.

Sweeps injection rate for uniform-random traffic on the 8x8 mesh under
three routing algorithms and renders the classic saturation curves as an
ASCII chart, annotated with the analytic zero-load latency
(:mod:`repro.noc.timing`) and the calibrated knee from
:mod:`repro.experiments.saturation_table`. This is the experiment behind
every "% of saturation load" number in the reproduction.

Run:  python examples/saturation_curves.py  [--points 6]
"""

import argparse

from repro import build_simulation
from repro.experiments.saturation_table import saturation_load
from repro.noc import NocConfig
from repro.noc.timing import mean_ur_hops, zero_load_latency
from repro.traffic import BimodalLengths, SyntheticTrafficSource, UniformPattern

ROUTINGS = ("xy", "local", "dbar")


def measure(routing: str, rate: float, seed: int = 3) -> float:
    config = NocConfig()
    sim, net = build_simulation(config, scheme="ro_rr", routing=routing)
    sim.add_traffic(
        SyntheticTrafficSource(
            nodes=range(config.num_nodes), rate=rate,
            pattern=UniformPattern(net.topology), app_id=0, seed=seed,
            lengths=BimodalLengths(),
        )
    )
    result = sim.run_measurement(warmup=500, measure=1500, drain_limit=50_000)
    return net.stats.apl(window=result.window)


def ascii_chart(curves: dict[str, list[tuple[float, float]]], height: int = 14) -> str:
    """Tiny multi-series scatter chart (rate on x, APL on y, log-ish cap)."""
    points = [p for series in curves.values() for p in series]
    max_apl = max(apl for _, apl in points)
    max_rate = max(rate for rate, _ in points)
    cols = 60
    grid = [[" "] * (cols + 1) for _ in range(height + 1)]
    markers = {}
    for marker, (name, series) in zip("x+o", curves.items()):
        markers[name] = marker
        for rate, apl in series:
            x = int(round(cols * rate / max_rate))
            y = height - int(round(height * min(apl, max_apl) / max_apl))
            grid[y][x] = marker
    lines = [f"{max_apl:7.0f} |" + "".join(row) for row in grid[:1]]
    for row in grid[1:]:
        lines.append("        |" + "".join(row))
    lines.append("        +" + "-" * cols)
    lines.append(f"         0{'flits/node/cycle'.center(cols - 10)}{max_rate:.2f}")
    legend = "  ".join(f"{markers[name]} = {name}" for name in curves)
    lines.append("        " + legend)
    return "\n".join(lines)


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--points", type=int, default=6, help="loads per curve")
    args = parser.parse_args()

    knee = saturation_load("ur_chip_8x8")
    zero = zero_load_latency(round(mean_ur_hops(8, 8)), 3)
    rates = [knee * f for f in
             [0.2 + 0.9 * i / (args.points - 1) for i in range(args.points)]]

    print(f"UR on 8x8; analytic zero-load APL ~{zero}, calibrated knee {knee}\n")
    curves = {}
    for routing in ROUTINGS:
        series = []
        for rate in rates:
            apl = measure(routing, rate)
            series.append((rate, apl))
            print(f"  {routing:6} rate {rate:.3f}  APL {apl:7.1f}")
        curves[routing] = series
    print()
    print(ascii_chart(curves))
    print(
        "\nThe knee (calibrated at 3x the zero-load APL) is where every"
        "\nscenario's '% of saturation' loads are anchored."
    )


if __name__ == "__main__":
    main()
