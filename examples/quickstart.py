#!/usr/bin/env python3
"""Quickstart: build a regionalized NoC, run RAIR vs round-robin, compare.

This walks the full public API surface in ~60 lines:

1. configure a network (:class:`repro.noc.NocConfig`),
2. place two applications in regions (:class:`repro.RegionMap`),
3. build a simulator per scheme (:func:`repro.build_simulation`),
4. attach regionalized traffic (:class:`repro.traffic.RegionalAppTraffic`),
5. run the paper's warmup/measure/drain protocol and read per-app APLs.

Run:  python examples/quickstart.py
"""

from repro import RegionMap, build_simulation
from repro.noc import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic import RegionalAppTraffic


def run_scheme(scheme: str, seed: int = 42) -> dict[int, float]:
    """Simulate the two-application scenario under one arbitration scheme."""
    config = NocConfig()  # paper defaults: 8x8 mesh, 4 VCs (2G/2R), 5-flit buffers
    topology = MeshTopology(config.width, config.height)
    regions = RegionMap.halves(topology)  # App0 left half, App1 right half

    sim, net = build_simulation(
        config,
        region_map=regions,
        scheme=scheme,  # "ro_rr", "age", "stc", or "rair"
        routing="local",  # Duato-adaptive minimal routing with escape VCs
    )

    # App0: light load, but half of its packets cross into App1's region.
    sim.add_traffic(
        RegionalAppTraffic(
            regions, app_id=0, rate=0.04, seed=seed,
            intra_fraction=0.5, inter_fraction=0.5, mc_fraction=0.0,
        )
    )
    # App1: heavy load, fully contained in its own region.
    sim.add_traffic(
        RegionalAppTraffic(
            regions, app_id=1, rate=0.30, seed=seed + 1,
            intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0,
        )
    )

    # Paper protocol (Section V.A), scaled down: warm up, measure, drain.
    result = sim.run_measurement(warmup=1000, measure=4000)
    assert result.drained, "measurement window did not drain — load too high?"
    return net.stats.per_app_apl(window=result.window)


def main() -> None:
    print("Two applications on an 8x8 regionalized NoC")
    print("  App0: low load, 50% inter-region (its packets cross App1's region)")
    print("  App1: high load, intra-region only\n")

    baseline = run_scheme("ro_rr")
    rair = run_scheme("rair")

    print(f"{'':14}{'RO_RR':>10}{'RA_RAIR':>10}{'change':>9}")
    for app in sorted(baseline):
        change = rair[app] / baseline[app] - 1.0
        print(
            f"  App{app} APL   {baseline[app]:10.1f}{rair[app]:10.1f}{change:+9.1%}"
        )
    print(
        "\nRAIR accelerates App0's critical inter-region packets by"
        " prioritizing foreign traffic on global VCs and adapting regional-VC"
        " priority to the load imbalance (paper Section IV)."
    )


if __name__ == "__main__":
    main()
