#!/usr/bin/env python3
"""Server-consolidation example: shield tenant VMs from a misbehaving one.

The paper's motivating server-consolidation story (Sections II and V.G):
several virtual machines share one many-core chip, each in its own region;
one of them goes rogue — an attack or just an OS bug — and floods the
network. A region-aware interference-reduction scheme should keep the
well-behaved tenants' packet latency close to the flood-free baseline.

This example runs four PARSEC-like tenant workloads in quadrants, layers a
chip-wide flood on top, and prints each tenant's latency slowdown under
three arbitration schemes.

Run:  python examples/adversarial_protection.py  [--rate 0.4]
"""

import argparse

from repro import RegionMap, build_simulation
from repro.noc import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic import (
    PARSEC_PROFILES,
    AdversarialTrafficSource,
    ParsecWorkload,
)

TENANTS = ("blackscholes", "swaptions", "fluidanimate", "raytrace")


def run(scheme: str, flood_rate: float, seed: int = 7) -> dict[int, float]:
    """Per-tenant APL with (or without, rate=0) an adversarial flood."""
    config = NocConfig(num_vnets=2)  # separate request/reply networks
    topology = MeshTopology(config.width, config.height)
    regions = RegionMap.quadrants(topology)

    sim, net = build_simulation(config, region_map=regions, scheme=scheme, routing="local")
    sim.add_traffic(
        ParsecWorkload(regions, [PARSEC_PROFILES[n] for n in TENANTS], seed=seed)
    )
    if flood_rate > 0:
        sim.add_traffic(
            AdversarialTrafficSource(
                topology, seed=seed + 1, rate=flood_rate, region_map=regions
            )
        )
    result = sim.run_measurement(warmup=1000, measure=4000, drain_limit=80_000)
    return net.stats.per_app_apl(window=result.window)  # adversary excluded


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--rate", type=float, default=0.4,
                        help="flood rate in flits/cycle/node (paper: 0.4)")
    args = parser.parse_args()

    schemes = ("ro_rr", "stc", "rair")
    print(f"Flood rate: {args.rate} flits/cycle/node; tenants in quadrants\n")
    header = f"{'tenant':14}" + "".join(f"{s:>12}" for s in schemes)
    print(header + "   (APL slowdown vs flood-free run)")

    slowdowns = {}
    for scheme in schemes:
        clean = run(scheme, flood_rate=0.0)
        flooded = run(scheme, flood_rate=args.rate)
        slowdowns[scheme] = {
            app: flooded[app] / clean[app] for app in clean
        }

    for app, tenant in enumerate(TENANTS):
        row = f"  {tenant:12}"
        for scheme in schemes:
            row += f"{slowdowns[scheme][app]:>11.2f}x"
        print(row)

    avgs = {s: sum(v.values()) / len(v) for s, v in slowdowns.items()}
    print("\naverage: " + "  ".join(f"{s}={avgs[s]:.2f}x" for s in schemes))
    print(
        "\nRAIR identifies the flood as foreign traffic in every region and"
        " demotes it via DPA; STC only down-ranks it but batching still"
        " admits its older packets (paper Fig. 17)."
    )


if __name__ == "__main__":
    main()
