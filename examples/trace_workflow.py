#!/usr/bin/env python3
"""Trace workflow: capture once, replay everywhere.

The paper's methodology separates workload generation (full-system traces)
from network simulation (GARNET). This package supports the same split:

1. capture a regionalized workload into a :class:`~repro.traffic.Trace`,
2. save/load it (`.npz`),
3. replay the *identical* offered traffic under several schemes — the
   cleanest possible A/B comparison (zero workload noise between runs).

Run:  python examples/trace_workflow.py
"""

import tempfile
from pathlib import Path

from repro import RegionMap, build_simulation
from repro.noc import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic import RegionalAppTraffic, Trace, TraceTrafficSource, capture_trace
from repro.util.rng import spawn_rngs

CYCLES = 3000


def build_workload(regions: RegionMap, seed: int = 33) -> list:
    rngs = spawn_rngs(seed, 2)
    return [
        RegionalAppTraffic(regions, 0, rate=0.04, seed=rngs[0],
                           intra_fraction=0.5, inter_fraction=0.5, mc_fraction=0.0),
        RegionalAppTraffic(regions, 1, rate=0.28, seed=rngs[1],
                           intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0),
    ]


def replay(trace: Trace, regions: RegionMap, scheme: str) -> dict[int, float]:
    config = NocConfig()
    sim, net = build_simulation(config, region_map=regions, scheme=scheme, routing="local")
    sim.add_traffic(TraceTrafficSource(trace))
    sim.run(CYCLES)
    assert sim.run_until_drained(60_000), "trace replay failed to drain"
    window = (500, CYCLES)  # skip the cold start
    return net.stats.per_app_apl(window=window)


def main() -> None:
    topology = MeshTopology(8, 8)
    regions = RegionMap.halves(topology)

    print(f"1. capturing {CYCLES} cycles of the two-app workload...")
    trace = capture_trace(build_workload(regions), cycles=CYCLES)
    print(f"   {len(trace)} packets, {trace.total_flits()} flits")

    with tempfile.TemporaryDirectory() as tmp:
        path = Path(tmp) / "two_app.npz"
        trace.save(path)
        loaded = Trace.load(path)
        print(f"2. saved + reloaded: {path.name} ({path.stat().st_size} bytes)")

        print("3. replaying the identical traffic under three schemes:\n")
        print(f"{'scheme':12}{'App0 APL':>10}{'App1 APL':>10}")
        for scheme in ("ro_rr", "stc", "rair"):
            apl = replay(loaded, regions, scheme)
            print(f"  {scheme:10}{apl[0]:10.1f}{apl[1]:10.1f}")

    print(
        "\nEvery scheme saw byte-identical offered traffic — differences"
        "\nare pure arbitration effects, no workload noise."
    )


if __name__ == "__main__":
    main()
