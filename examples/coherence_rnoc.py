#!/usr/bin/env python3
"""RNoC formation: how home-node placement regionalizes coherence traffic.

The paper's Section II.A Example 3: virtual hierarchies (Marty & Hill)
choose cache-line home nodes inside each VM's region, so most coherence
transactions stay local — the chip *becomes* a regionalized NoC without
anyone touching the network. This example makes that formation visible:

1. run a directory-coherence workload with **static** (chip-interleaved)
   homes — the conventional-NoC case,
2. rerun with **dynamic** (region-interleaved) homes,
3. compare the intra-/inter-region traffic split (RB-3), transaction
   latency, and finally show RAIR exploiting the regionalized pattern.

Run:  python examples/coherence_rnoc.py
"""

from repro import RegionMap, build_simulation
from repro.noc import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.coherence import CoherenceConfig, CoherenceWorkload


def run(home_policy: str, scheme: str = "ro_rr", seed: int = 17):
    config = NocConfig(num_vnets=3)  # request / forward / response classes
    topology = MeshTopology(config.width, config.height)
    regions = RegionMap.quadrants(topology)
    sim, net = build_simulation(config, region_map=regions, scheme=scheme, routing="local")
    workload = CoherenceWorkload(
        regions,
        CoherenceConfig(req_rate=0.03, remote_share=0.10, home_policy=home_policy),
        seed=seed,
    )
    sim.add_traffic(workload)
    result = sim.run_measurement(warmup=1000, measure=4000)
    report = workload.regionalization_report()
    report["apl"] = net.stats.apl(window=result.window)
    return report


def main() -> None:
    print("Directory coherence on 4 VMs in quadrants (paper Example 3)\n")
    print(f"{'home policy':28}{'intra %':>9}{'inter %':>9}{'APL':>8}{'txn cycles':>12}")
    rows = {}
    for policy in ("static", "dynamic"):
        rows[policy] = run(policy)
        r = rows[policy]
        print(
            f"  {policy + ' homes':26}{r['intra_fraction']:>8.1%}"
            f"{r['inter_fraction']:>9.1%}{r['apl']:>8.1f}"
            f"{r['avg_transaction_cycles']:>12.1f}"
        )

    print(
        "\nDynamic homes convert most protocol traffic to intra-region (the"
        "\npaper's RB-3 behaviour) and cut transaction latency — the NoC is"
        "\nnow an RNoC. Region-aware arbitration can exploit that:\n"
    )
    rair = run("dynamic", scheme="rair")
    base = rows["dynamic"]
    print(
        f"  dynamic homes + RA_RAIR     APL {rair['apl']:.1f} "
        f"(vs {base['apl']:.1f} under RO_RR)"
    )


if __name__ == "__main__":
    main()
