#!/usr/bin/env python3
"""Extensibility walkthrough: write your own interference-reduction scheme.

Every scheme in this package — RO_RR, STC, RAIR — is an
:class:`~repro.arbitration.base.ArbitrationPolicy`: a small object that
supplies priority keys for the router's arbitration steps. This example
builds a new one from scratch, **GlobalFirst**: a deliberately simple
region-aware policy that prioritizes inter-region (global) packets
everywhere, with no dynamic adaptation — roughly "RAIR without DPA and
without VC classes" — and shows where it wins and where full RAIR's
adaptivity matters.

It also demonstrates the visualization helpers on a live network.

Run:  python examples/custom_scheme.py
"""

from repro import RegionMap, build_simulation
from repro.arbitration.base import ArbitrationPolicy
from repro.noc import NocConfig
from repro.noc.topology import MeshTopology
from repro.noc.visualize import latency_histogram, render_regions
from repro.traffic import RegionalAppTraffic


class GlobalFirstPolicy(ArbitrationPolicy):
    """Prioritize packets whose source and destination regions differ.

    Priority keys are *lower wins*. We key on the packet's ``is_global``
    flag (set by the traffic layer from the region map): global packets
    first, round-robin inside each class. Unlike RAIR this is static —
    a region flooded by global traffic keeps serving it first, which is
    exactly the failure mode DPA exists to avoid (paper Fig. 12(b)).
    """

    name = "global_first"
    uses_va_priority = True
    uses_sa_priority = True

    def va_out_priority(self, router, out_vc_class, invc):
        return 0 if invc.pkt.is_global else 1

    def sa_priority(self, router, invc):
        return 0 if invc.pkt.is_global else 1


def run_policy(policy_name_or_obj, regions, seed=9):
    config = NocConfig()
    sim, net = build_simulation(config, region_map=regions, scheme="ro_rr", routing="local")
    if isinstance(policy_name_or_obj, ArbitrationPolicy):
        # Swap in a custom policy object: attach binds it to the network.
        net.policy = policy_name_or_obj
        policy_name_or_obj.attach(net)
    else:
        sim, net = build_simulation(
            config, region_map=regions, scheme=policy_name_or_obj, routing="local"
        )
    # Scenario (b)-style stress: the *high-load* app sends global traffic.
    sim.add_traffic(RegionalAppTraffic(regions, 0, rate=0.05, seed=seed,
                                       intra_fraction=1.0, inter_fraction=0.0,
                                       mc_fraction=0.0))
    sim.add_traffic(RegionalAppTraffic(regions, 1, rate=0.30, seed=seed + 1,
                                       intra_fraction=0.7, inter_fraction=0.3,
                                       mc_fraction=0.0))
    result = sim.run_measurement(warmup=800, measure=3000)
    return net, result


def main() -> None:
    topology = MeshTopology(8, 8)
    regions = RegionMap.halves(topology)
    print("Region layout (application id per node):")
    print(render_regions(regions))
    print("\nScenario: App0 low load intra-only; App1 HIGH load with 30% global")
    print("traffic invading App0's region — static global-first should hurt App0.\n")

    rows = []
    for label, policy in [
        ("RO_RR", "ro_rr"),
        ("GlobalFirst (custom)", GlobalFirstPolicy()),
        ("RA_RAIR", "rair"),
    ]:
        net, result = run_policy(policy, regions)
        apl = net.stats.per_app_apl(window=result.window)
        rows.append((label, apl))
        print(f"{label:22} App0 APL {apl[0]:7.1f}   App1 APL {apl[1]:7.1f}")

    print(
        "\nGlobalFirst accelerates App1's invading packets *into* App0's"
        " region unconditionally; RAIR's DPA notices App0's native traffic"
        " is the less intensive flow there and protects it.\n"
    )

    net, result = run_policy("rair", regions)
    print("RAIR latency distribution (all packets in window):")
    print(latency_histogram(net.stats.latencies(window=result.window)))


if __name__ == "__main__":
    main()
