#!/usr/bin/env python3
"""DPA tuning walkthrough: hysteresis width and static-priority pitfalls.

Demonstrates the paper's Section IV.C / Fig. 12 argument hands-on:

1. build the two contrasting four-application scenarios (Fig. 11 a/b),
2. show that each static priority (NativeH / ForeignH) wins exactly one of
   them,
3. show DPA tracking the better static policy in both,
4. sweep the hysteresis delta to locate the paper's ~0.2 sweet spot.

Run:  python examples/dpa_tuning.py  [--effort smoke|fast|medium]
"""

import argparse

from repro.core.dpa import DpaConfig
from repro.experiments.runner import SCHEMES, Effort, run_scenario
from repro.experiments.scenarios import four_app_dpa, six_app


def static_vs_dynamic(effort: Effort, seed: int) -> None:
    print("1) Static priorities each win only one scenario:\n")
    print(f"{'scenario':12}{'NativeH':>10}{'ForeignH':>10}{'DPA':>10}   (avg APL reduction vs RO_RR)")
    for variant in ("a", "b"):
        scenario = four_app_dpa(variant)
        base = run_scenario(SCHEMES["RO_RR"], scenario, effort=effort, seed=seed)
        cells = []
        for key in ("RAIR_NativeH", "RAIR_ForeignH", "RAIR_DPA"):
            res = run_scenario(SCHEMES[key], scenario, effort=effort, seed=seed)
            apps = sorted(base.per_app_apl)
            red = sum(res.reduction_vs(base, app=a) for a in apps) / len(apps)
            cells.append(red)
        print(
            f"  Fig.11({variant})  {cells[0]:>9.1%}{cells[1]:>10.1%}{cells[2]:>10.1%}"
        )
    print(
        "\n   Scenario (a) floods region 3 with low-intensity foreign traffic"
        " -> ForeignH wins; (b) floods the low-load regions with high-"
        "intensity foreign traffic -> NativeH wins. DPA adapts to both.\n"
    )


def hysteresis_sweep(effort: Effort, seed: int) -> None:
    print("2) Hysteresis width sweep (six-app scenario):\n")
    scenario = six_app()
    base = run_scenario(SCHEMES["RO_RR"], scenario, effort=effort, seed=seed)
    apps = sorted(base.per_app_apl)
    print(f"{'delta':>8}{'avg reduction':>16}")
    for delta in (0.0, 0.1, 0.2, 0.3, 0.4):
        res = run_scenario(
            SCHEMES["RA_RAIR"], scenario, effort=effort, seed=seed,
            policy_overrides={"dpa": DpaConfig(delta=delta)},
        )
        red = sum(res.reduction_vs(base, app=a) for a in apps) / len(apps)
        print(f"{delta:>8.1f}{red:>15.1%}")
    print(
        "\n   The paper reports deltas of 0.1-0.3 working well with ~0.2"
        " best; too small reacts to transient VC flips, too large reacts"
        " too late to real load shifts."
    )


def main() -> None:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--effort", default="fast", choices=["smoke", "fast", "medium"])
    parser.add_argument("--seed", type=int, default=42)
    args = parser.parse_args()
    effort = Effort[args.effort.upper()]
    static_vs_dynamic(effort, args.seed)
    hysteresis_sweep(effort, args.seed)


if __name__ == "__main__":
    main()
