"""Turn-model partially adaptive routing: West-First and Odd-Even.

The paper's Section IV.D claims RAIR composes with "virtually any deadlock
avoidance or recovery routing algorithm". These two classic turn-model
algorithms are deadlock-free *without* escape VCs (their turn restrictions
make the channel-dependency graph acyclic), so they exercise that claim
from a different angle than the Duato-style algorithms:

* **West-First** (Glass & Ni): all westward movement happens first and is
  deterministic; once the packet no longer needs to go west it may route
  fully adaptively among the productive {east, north, south} directions.
* **Odd-Even** (Chiu): no EN/ES turns in even columns, no NW/SW turns in
  odd columns; adaptivity is spread more evenly across the mesh than in
  West-First. The admissible-port function below is Chiu's minimal ROUTE
  algorithm.

Because the full turn-model relation is already deadlock-free, the escape
VC is simply pinned to a deterministic member of the relation (the first
admissible port), which keeps the router's escape-VC plumbing uniform
across all routing algorithms.
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm
from repro.routing.selection import credit_rank
from repro.noc.topology import EAST, LOCAL, NORTH, SOUTH, WEST
from repro.util.errors import ConfigError

__all__ = ["WestFirstRouting", "OddEvenRouting"]


class _TurnModelRouting(RoutingAlgorithm):
    """Shared machinery: credit-ranked selection, first-port escape."""

    def attach(self, network) -> None:
        # The turn relations are proved acyclic on a mesh only; a wrap
        # link would reintroduce the cycles the banned turns break.
        kind = network.topology.kind
        if kind != "mesh":
            raise ConfigError(
                f"{self.name} turn-model routing is mesh-only, got {kind!r}"
            )
        super().attach(network)

    def rank_ports(self, node: int, pkt, ports: tuple[int, ...]) -> tuple[int, ...]:
        if len(ports) <= 1:
            return ports
        scores = credit_rank(self.network, node, pkt, ports)
        order = sorted(range(len(ports)), key=lambda i: (scores[i], i))
        return tuple(ports[i] for i in order)

    def escape_port(self, node: int, pkt) -> int:
        # Deterministic sub-relation of an acyclic turn-model relation:
        # always the first admissible port (stable, minimal, productive).
        return self.admissible_ports(node, pkt)[0]


class WestFirstRouting(_TurnModelRouting):
    """West-First: deterministic while westbound, adaptive afterwards."""

    name = "west_first"

    def admissible_ports(self, node: int, pkt) -> tuple[int, ...]:
        topo = self.network.topology
        if node == pkt.dst:
            return (LOCAL,)
        x, y = topo.coords(node)
        dx, dy = topo.coords(pkt.dst)
        if dx < x:
            # All west hops first; W-only keeps the NW/SW turns out of the
            # relation.
            return (WEST,)
        ports = []
        if dx > x:
            ports.append(EAST)
        if dy < y:
            ports.append(NORTH)
        elif dy > y:
            ports.append(SOUTH)
        return tuple(ports)


class OddEvenRouting(_TurnModelRouting):
    """Odd-Even turn model, minimal routing (Chiu's ROUTE algorithm)."""

    name = "odd_even"
    # Chiu's relation exempts the source column from the even-column turn
    # ban (``cur_x == src_x`` below), so admissibility depends on the
    # packet's source — a (node, dst) table would mis-route it.
    route_table_enabled = False

    def admissible_ports(self, node: int, pkt) -> tuple[int, ...]:
        topo = self.network.topology
        if node == pkt.dst:
            return (LOCAL,)
        cur_x, cur_y = topo.coords(node)
        dst_x, dst_y = topo.coords(pkt.dst)
        src_x, _ = topo.coords(pkt.src)
        e0 = dst_x - cur_x
        e1 = dst_y - cur_y
        vertical = NORTH if e1 < 0 else SOUTH
        ports: list[int] = []
        if e0 == 0:
            # Same column: pure vertical movement.
            ports.append(vertical)
        elif e0 > 0:
            # Eastbound.
            if e1 == 0:
                ports.append(EAST)
            else:
                # EN/ES turns are disallowed in even columns, so the
                # vertical option only exists in odd columns (or in the
                # source column, where no turn is taken).
                if cur_x % 2 == 1 or cur_x == src_x:
                    ports.append(vertical)
                # Keeping east must leave a later legal turn: the final
                # turn into the destination column happens via NW/SW,
                # which is only legal into odd columns — so either the
                # destination column is odd or we are not immediately
                # west of it.
                if dst_x % 2 == 1 or e0 != 1:
                    ports.append(EAST)
        else:
            # Westbound: W always legal; NW/SW turns only from even columns.
            ports.append(WEST)
            if e1 != 0 and cur_x % 2 == 0:
                ports.append(vertical)
        if not ports:  # defensive: Chiu's relation never leaves this empty
            ports.append(vertical if e0 == 0 else (EAST if e0 > 0 else WEST))
        return tuple(ports)
