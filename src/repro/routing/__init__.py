"""Routing algorithms for the NoC fabrics.

All evaluated schemes run one of three routing algorithms, each of which
works on any :class:`~repro.noc.topology.Topology` (mesh, torus, ring):

* :class:`~repro.routing.xy.XYRouting` — deterministic dimension-order
  routing (the deadlock-free escape function),
* :class:`~repro.routing.duato.DuatoAdaptiveRouting` — minimal fully
  adaptive routing made deadlock-free by Duato's theory (escape VCs per
  virtual network restricted to the topology's dimension-order port, with
  dateline classes on wrap fabrics), with a locally informed selection
  function (free downstream credits),
* :class:`~repro.routing.dbar.DbarRouting` — the same adaptive skeleton
  with DBAR's region-truncated path-congestion selection function
  (Ma et al., ISCA 2011), the routing half of the paper's RA_DBAR
  comparison point.

The turn-model algorithms (:class:`~repro.routing.turn_model.WestFirstRouting`,
:class:`~repro.routing.turn_model.OddEvenRouting`) are mesh-only — their
turn relations are proved acyclic on a mesh and reject wrap fabrics at
attach time.
"""

from repro.routing.base import RoutingAlgorithm
from repro.routing.dbar import DbarRouting
from repro.routing.duato import DuatoAdaptiveRouting
from repro.routing.selection import credit_rank, dbar_rank
from repro.routing.turn_model import OddEvenRouting, WestFirstRouting
from repro.routing.xy import XYRouting

__all__ = [
    "RoutingAlgorithm",
    "XYRouting",
    "DuatoAdaptiveRouting",
    "DbarRouting",
    "WestFirstRouting",
    "OddEvenRouting",
    "credit_rank",
    "dbar_rank",
    "make_routing",
]

_REGISTRY = {
    "xy": XYRouting,
    "duato": DuatoAdaptiveRouting,
    "local": DuatoAdaptiveRouting,
    "dbar": DbarRouting,
    "west_first": WestFirstRouting,
    "wf": WestFirstRouting,
    "odd_even": OddEvenRouting,
    "oe": OddEvenRouting,
}


def make_routing(name: str, **kwargs) -> RoutingAlgorithm:
    """Construct a routing algorithm by name (``xy``/``local``/``dbar``)."""
    try:
        cls = _REGISTRY[name.lower()]
    except KeyError:
        raise ValueError(f"unknown routing algorithm {name!r}; known: {sorted(_REGISTRY)}") from None
    return cls(**kwargs)
