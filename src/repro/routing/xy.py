"""Deterministic dimension-order routing.

Packets fully traverse the X dimension before turning into Y (on a ring,
the minimal direction is fixed at the source). On a mesh this is minimal
and deadlock-free without virtual channels; on wrap fabrics it is the
dateline-classed escape relation (see :mod:`repro.noc.topology`) — in both
cases it is exactly the escape function the adaptive algorithms use, which
is why the deterministic baseline routes every VC along it.
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm

__all__ = ["XYRouting"]


class XYRouting(RoutingAlgorithm):
    """Dimension-order routing (X-then-Y on grids, minimal-way on rings)."""

    name = "xy"

    def admissible_ports(self, node: int, pkt) -> tuple[int, ...]:
        return (self.network.topology.dimension_order_port(node, pkt.dst),)

    def escape_port(self, node: int, pkt) -> int:
        return self.network.topology.dimension_order_port(node, pkt.dst)
