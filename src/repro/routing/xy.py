"""Deterministic dimension-order (XY) routing.

Packets fully traverse the X dimension before turning into Y. On a mesh
this is minimal and deadlock-free without virtual channels, which is why it
also serves as the escape function for the adaptive algorithms.
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm

__all__ = ["XYRouting"]


class XYRouting(RoutingAlgorithm):
    """X-then-Y dimension-order routing."""

    name = "xy"

    def admissible_ports(self, node: int, pkt) -> tuple[int, ...]:
        return (self.network.topology.xy_port(node, pkt.dst),)

    def escape_port(self, node: int, pkt) -> int:
        return self.network.topology.xy_port(node, pkt.dst)
