"""Minimal fully adaptive routing per Duato's theory, local selection.

Admissible ports are all productive (minimal) directions. The escape VC of
each virtual network is restricted to the dimension-order port; adaptive
VCs may take any admissible port. Port ranking uses only local credit
information (:func:`repro.routing.selection.credit_rank`), making this the
"typical adaptive routing algorithm that uses the information available at
the local router" of the paper's Section V.C.
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm
from repro.routing.selection import credit_rank

__all__ = ["DuatoAdaptiveRouting"]


class DuatoAdaptiveRouting(RoutingAlgorithm):
    """Minimal adaptive routing with escape VCs and credit-based selection."""

    name = "local"

    def admissible_ports(self, node: int, pkt) -> tuple[int, ...]:
        return self.network.topology.minimal_ports(node, pkt.dst)

    def rank_ports(self, node: int, pkt, ports: tuple[int, ...]) -> tuple[int, ...]:
        if len(ports) <= 1:
            return ports
        scores = credit_rank(self.network, node, pkt, ports)
        order = sorted(range(len(ports)), key=lambda i: (scores[i], i))
        return tuple(ports[i] for i in order)
