"""DBAR: destination-based adaptive routing with region-truncated congestion.

Ma et al. (ISCA 2011) propose propagating buffer-occupancy information
along each dimension but *discarding contributions from other regions*, so
that the load of a neighbouring application's region cannot perturb route
selection for packets that will never enter it. The paper under
reproduction uses DBAR both as an enhanced routing algorithm for RAIR
(RAIR_DBAR, Fig. 10) and as the least-restrictive region-aware baseline
(RA_DBAR, Figs. 14/15/17).

Substitution note (DESIGN.md §4): real DBAR carries the aggregate on
dedicated wires; we compute the same truncated-path aggregate from the
simulator's per-router occupancy table, which has identical information
content one cycle later.
"""

from __future__ import annotations

from repro.routing.base import RoutingAlgorithm
from repro.routing.selection import dbar_rank

__all__ = ["DbarRouting"]


class DbarRouting(RoutingAlgorithm):
    """Minimal adaptive routing with DBAR's region-aware selection function."""

    name = "dbar"
    uses_congestion = True

    def admissible_ports(self, node: int, pkt) -> tuple[int, ...]:
        return self.network.topology.minimal_ports(node, pkt.dst)

    def rank_ports(self, node: int, pkt, ports: tuple[int, ...]) -> tuple[int, ...]:
        if len(ports) <= 1:
            return ports
        scores = dbar_rank(self.network, node, pkt, ports)
        order = sorted(range(len(ports)), key=lambda i: (scores[i], i))
        return tuple(ports[i] for i in order)
