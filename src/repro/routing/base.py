"""Routing-algorithm interface.

A routing algorithm answers two questions for a head flit sitting at a
router:

1. *Admissible output ports* — which directions keep the packet on a
   permitted path (minimal, for all algorithms in this package).
2. *Port ranking* (the selection function) — in which order should
   admissible ports be tried, given current congestion knowledge.

Deadlock freedom follows Duato's theory: VC 0 of each virtual network is an
escape channel on which only the dimension-order (XY) direction may be
requested; all other VCs are unrestricted among admissible ports. The
escape network alone is XY on a mesh, which is deadlock-free, and a blocked
packet can always eventually request the escape VC, so the full network is
deadlock-free regardless of the adaptive selection used.
"""

from __future__ import annotations

__all__ = ["RoutingAlgorithm"]


class RoutingAlgorithm:
    """Base class; concrete algorithms override the three query methods."""

    #: short name used in experiment reports
    name = "base"
    #: set True in algorithms whose selection function reads the network's
    #: congestion snapshot — the network skips the per-cycle snapshot
    #: refresh entirely when the installed algorithm leaves this False
    uses_congestion = False

    def __init__(self) -> None:
        self.network = None

    def attach(self, network) -> None:
        """Bind to a network (gives access to topology and congestion state)."""
        self.network = network

    # -- queries ---------------------------------------------------------
    def admissible_ports(self, node: int, pkt) -> tuple[int, ...]:
        """Output ports the packet may take from ``node`` (never empty)."""
        raise NotImplementedError

    def escape_port(self, node: int, pkt) -> int:
        """The single port on which the escape VC may be requested."""
        return self.network.topology.xy_port(node, pkt.dst)

    def rank_ports(self, node: int, pkt, ports: tuple[int, ...]) -> tuple[int, ...]:
        """Order ``ports`` from most to least preferred (selection function)."""
        return ports
