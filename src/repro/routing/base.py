"""Routing-algorithm interface.

A routing algorithm answers two questions for a head flit sitting at a
router:

1. *Admissible output ports* — which directions keep the packet on a
   permitted path (minimal, for all algorithms in this package).
2. *Port ranking* (the selection function) — in which order should
   admissible ports be tried, given current congestion knowledge.

Deadlock freedom follows Duato's theory: the escape VCs of each virtual
network are channels on which only the topology's dimension-order direction
may be requested; all other VCs are unrestricted among admissible ports.
The escape network alone is dimension-order routing, which is acyclic on a
mesh directly and on wrap fabrics (torus, ring) once split into two
dateline VC classes (see :mod:`repro.noc.topology`); a blocked packet can
always eventually request its escape VC, so the full network is
deadlock-free regardless of the adaptive selection used.

Route tables
------------

For every algorithm in this package the *admissible-port set*, the *escape
port*, and the *escape VC class* are pure functions of ``(node, dst)`` —
only the selection (``rank_ports``) reads dynamic state.
:meth:`RoutingAlgorithm.attach` therefore precomputes a flat
``num_nodes**2`` table of ``(admissible_ports, escape_port, escape_class)``
entries once per network, and the router's RC stage becomes a single list
index (see ``Router.va_options``). An algorithm whose admissibility depends
on more than the destination (e.g. per-vnet or source-dependent relations)
must set ``route_table_enabled = False`` to keep the dynamic per-packet
path; the table build probes ``admissible_ports`` with a lightweight
stand-in packet that only carries ``src``/``dst``/``vnet``/``app_id``, so
exotic field reads fail loudly at attach time rather than silently
mis-tabulating.
"""

from __future__ import annotations

__all__ = ["RoutingAlgorithm"]


class _RouteProbe:
    """Stand-in packet for table builds: destination (and src) only."""

    __slots__ = ("src", "dst", "vnet", "app_id")

    def __init__(self) -> None:
        self.src = 0
        self.dst = 0
        self.vnet = 0
        self.app_id = -1


class RoutingAlgorithm:
    """Base class; concrete algorithms override the three query methods."""

    #: short name used in experiment reports
    name = "base"
    #: set True in algorithms whose selection function reads the network's
    #: congestion snapshot — the network skips the per-cycle snapshot
    #: refresh entirely when the installed algorithm leaves this False
    uses_congestion = False
    #: set False in subclasses whose admissible ports / escape port depend
    #: on more than (node, dst) — disables the attach-time route table
    route_table_enabled = True
    #: largest mesh (in nodes) for which the quadratic table is built
    #: eagerly; bigger networks fall back to the per-packet path
    TABLE_MAX_NODES = 4096

    def __init__(self) -> None:
        self.network = None
        self._route_table: list[tuple[tuple[int, ...], int, int]] | None = None
        self._num_nodes = 0

    def attach(self, network) -> None:
        """Bind to a network (gives access to topology and congestion state).

        Also builds the per-(node, dst) route table when the algorithm is
        destination-pure (see module docstring).
        """
        self.network = network
        n = network.topology.num_nodes
        self._num_nodes = n
        self._route_table = None
        if self.route_table_enabled and n <= self.TABLE_MAX_NODES:
            probe = _RouteProbe()
            table = []
            for node in range(n):
                for dst in range(n):
                    probe.dst = dst
                    table.append(
                        (self.admissible_ports(node, probe),
                         self.escape_port(node, probe),
                         self.escape_vc_class(node, probe))
                    )
            self._route_table = table

    def route_entry(self, node: int, dst: int) -> tuple[tuple[int, ...], int, int]:
        """Precomputed ``(admissible_ports, escape_port, escape_class)``.

        Only valid when a table was built (``attach`` on a tableable
        algorithm); the network caches whether it may call this.
        """
        return self._route_table[node * self._num_nodes + dst]

    # -- queries ---------------------------------------------------------
    def admissible_ports(self, node: int, pkt) -> tuple[int, ...]:
        """Output ports the packet may take from ``node`` (never empty)."""
        raise NotImplementedError

    def escape_port(self, node: int, pkt) -> int:
        """The single port on which the escape VC may be requested."""
        return self.network.topology.dimension_order_port(node, pkt.dst)

    def escape_vc_class(self, node: int, pkt) -> int:
        """Dateline VC class of the escape hop (0 on single-class fabrics).

        Algorithms that override :meth:`escape_port` away from the
        topology's dimension-order port must keep this consistent with
        their escape relation; the default delegates to the topology.
        """
        return self.network.topology.escape_class(node, pkt.dst)

    def rank_ports(self, node: int, pkt, ports: tuple[int, ...]) -> tuple[int, ...]:
        """Order ``ports`` from most to least preferred (selection function)."""
        return ports
