"""VC regionalization — paper Section IV.A.

Virtual channels carry a 1-bit class tag: **global** or **regional**
(:class:`repro.noc.config.VcClass`, layout in ``NocConfig.vc_classes``).
Crucially the classes are *priority* classes, not partitions: any packet
may occupy any VC, so no buffer capacity is wasted when one traffic type
is absent — one of the three advantages the paper claims for the
mechanism. The class only changes who wins the output-VC arbitration:

* a **global** output VC always prefers *foreign* requesters over native
  ones (foreign traffic is inter-region traffic mid-flight; Section II.C
  argues it is the more latency-critical class),
* a **regional** output VC prefers whichever side the router's DPA state
  currently favours.

Ties inside a class fall back to round-robin, which also realizes the
paper's "round-robin within the foreign traffic" rule when several
applications' global packets meet in one region.

This module holds the pure priority functions so they can be unit- and
property-tested independently of the router; :class:`repro.core.rair.RairPolicy`
wires them into the arbitration steps.
"""

from __future__ import annotations

from repro.noc.config import NocConfig, VcClass

__all__ = ["global_vc_priority", "regional_vc_priority", "vc_class_counts", "preferred_class"]


def global_vc_priority(is_native: bool) -> int:
    """Priority key (lower wins) on a global-class output VC."""
    return 1 if is_native else 0


def regional_vc_priority(is_native: bool, native_high: bool) -> int:
    """Priority key (lower wins) on a regional-class output VC under DPA state."""
    return 0 if is_native == native_high else 1


def preferred_class(is_native: bool) -> VcClass:
    """VC class a packet should request first in VA_in.

    Foreign (inter-region) traffic heads for global VCs where it always
    has priority; native traffic heads for regional VCs. This is a
    preference, not a restriction — when the preferred class has no free
    VC the packet requests the other class.
    """
    return VcClass.REGIONAL if is_native else VcClass.GLOBAL


def vc_class_counts(config: NocConfig) -> tuple[int, int]:
    """``(num_global, num_regional)`` VCs per virtual network."""
    n_glob = sum(1 for c in config.vc_classes if c is VcClass.GLOBAL)
    return n_glob, len(config.vc_classes) - n_glob
