"""The RAIR arbitration policy: VC regionalization + MSP + DPA combined.

This is the paper's proposed technique (Section IV.E "putting it all
together") expressed as an :class:`~repro.arbitration.base.ArbitrationPolicy`:

* **native/foreign identification** — each router carries the application
  id of its node (from the :class:`~repro.core.regions.RegionMap` installed
  on the network); the input VC caches whether its resident packet's app id
  matches (done at head-flit arrival by the router).
* **VA_in** — untouched contention-wise, but the VC *request preference*
  is class-aware: foreign packets request free global VCs first, native
  packets free regional VCs first (falling back to the other class, since
  classification is by priority, not partition).
* **VA_out** — global output VCs always prefer foreign requesters;
  regional output VCs follow the DPA state (Section IV.A rules).
* **SA_in / SA_out** — the DPA state decides whether native or foreign
  flits win the switch (enabled by ``stages``; ``Stage.VA`` alone gives
  the paper's RAIR_VA ablation).
* **DPA** — per-router occupied-VC counters (maintained by the router on
  head arrival / tail departure) feed the hysteresis update once per
  cycle; the result is used from the *next* cycle, mirroring the paper's
  off-critical-path implementation. ``DpaConfig.mode`` pins the priority
  for the RAIR_NativeH / RAIR_ForeignH variants of Fig. 12.

Scalability note (paper Section VI): all state is two counters and one bit
per router — nothing scales with the number of regions or applications.
"""

from __future__ import annotations

from repro.arbitration.base import ArbitrationPolicy, rotating_pick
from repro.core.dpa import DpaConfig, hysteresis_update
from repro.core.msp import Stage
from repro.core.vc_regionalization import (
    global_vc_priority,
    preferred_class,
    regional_vc_priority,
)
from repro.noc.config import VcClass

__all__ = ["RairPolicy"]


class RairPolicy(ArbitrationPolicy):
    """Region-aware interference reduction (RA_RAIR and its ablation variants).

    Parameters
    ----------
    stages:
        Where MSP enforces priority: ``Stage.VA`` (RAIR_VA),
        ``Stage.ALL`` (RAIR_VA+SA — the default, full RAIR).
    dpa:
        DPA configuration; ``DpaConfig(mode="native")`` /
        ``DpaConfig(mode="foreign")`` give the static-priority variants.
    """

    name = "ra_rair"
    uses_va_priority = True

    def __init__(self, stages: Stage = Stage.ALL, dpa: DpaConfig | None = None):
        super().__init__()
        if not isinstance(stages, Stage):
            raise TypeError(f"stages must be a Stage flag, got {stages!r}")
        self.stages = stages
        self.dpa = dpa or DpaConfig()
        self._dpa_dynamic = self.dpa.mode == "dynamic"
        self.uses_va_priority = bool(stages & Stage.VA)
        self.uses_sa_priority = bool(stages & Stage.SA)
        if self.uses_va_priority and self.uses_sa_priority:
            self.name = "ra_rair"
        elif self.uses_va_priority:
            self.name = "rair_va"
        else:
            self.name = "rair_none"
        if self.dpa.mode == "native":
            self.name += "_nativeH"
        elif self.dpa.mode == "foreign":
            self.name += "_foreignH"

    def attach(self, network) -> None:
        super().attach(network)
        # Initial DPA state: foreign-high by default (paper Section IV.C
        # case 3 gives foreign priority "by default"); static modes pin it.
        init = self.dpa.mode == "native"
        for router in network.routers:
            router.native_high = init

    # -- VA_in preference -------------------------------------------------------
    def choose_request(self, router, invc, options):
        """Class-aware VC request: preferred class first within the best port."""
        first_port = options[0][0]
        port_options = [o for o in options if o[0] == first_port]
        if len(port_options) > 1:
            want = preferred_class(invc.is_native)
            classes = router.vc_class_of
            preferred = [o for o in port_options if classes[o[1]] is want]
            if preferred:
                port_options = preferred
        if len(port_options) == 1:
            return port_options[0]
        ptr = router.va_req_ptr[first_port]
        winner, router.va_req_ptr[first_port] = rotating_pick(
            port_options, lambda o: o[1], ptr, router.total_vcs
        )
        return winner

    # -- priority keys ------------------------------------------------------------
    def va_out_priority(self, router, out_vc_class, invc):
        if out_vc_class is VcClass.GLOBAL:
            return global_vc_priority(invc.is_native)
        if out_vc_class is VcClass.ESCAPE:
            # Escape VCs sit outside the regional/global classification
            # (Section IV.D); their allocation stays priority-neutral so
            # the deadlock-free fallback lane is equally reachable.
            return 0
        return regional_vc_priority(invc.is_native, router.native_high)

    def sa_priority(self, router, invc):
        return regional_vc_priority(invc.is_native, router.native_high)

    # -- DPA update -----------------------------------------------------------------
    def end_router_cycle(self, router, cycle: int) -> None:
        if self._dpa_dynamic:
            old = router.native_high
            new = hysteresis_update(old, router.ovc_n, router.ovc_f, self.dpa.delta)
            if new != old:
                router.native_high = new
                # Same hot-path guard as every kernel event: one pointer
                # comparison when untraced, and only on actual transitions
                # (network is None only when the policy is driven bare,
                # outside a Network — unit tests do that).
                tr = self.network.trace if self.network is not None else None
                if tr is not None:
                    tr.dpa_flip(cycle, router.node, new, router.ovc_n, router.ovc_f)

    # -- convenience constructors ------------------------------------------------
    @classmethod
    def va_only(cls) -> "RairPolicy":
        """RAIR_VA: MSP at the VA stage only (Fig. 9 ablation)."""
        return cls(stages=Stage.VA)

    @classmethod
    def native_high(cls) -> "RairPolicy":
        """RAIR_NativeH: static native-first priority (Fig. 12 ablation)."""
        return cls(dpa=DpaConfig(mode="native"))

    @classmethod
    def foreign_high(cls) -> "RairPolicy":
        """RAIR_ForeignH: static foreign-first priority (Fig. 12 ablation)."""
        return cls(dpa=DpaConfig(mode="foreign"))
