"""RAIR — the paper's primary contribution.

Three cooperating mechanisms (paper Section IV), all expressed through the
:class:`~repro.core.rair.RairPolicy` arbitration policy plus the
:class:`~repro.core.regions.RegionMap` that tags routers with their
application:

* **VC regionalization** (:mod:`repro.core.vc_regionalization`) — VCs are
  tagged regional/global; global VCs always prefer foreign traffic,
  regional VCs follow the DPA priority.
* **Multi-stage prioritization** (:mod:`repro.core.msp`) — the priority is
  enforced at VA_out, SA_in and SA_out (never VA_in, where flows do not
  contend).
* **Dynamic priority adaptation** (:mod:`repro.core.dpa`) — per-router
  occupied-VC counters drive a hysteresis state machine deciding whether
  native or foreign traffic currently has priority.
"""

from repro.core.dpa import DpaConfig, hysteresis_update
from repro.core.msp import Stage, StageSet
from repro.core.rair import RairPolicy
from repro.core.regions import RegionMap
from repro.core.vc_regionalization import (
    regional_vc_priority,
    global_vc_priority,
    vc_class_counts,
)

__all__ = [
    "RairPolicy",
    "RegionMap",
    "DpaConfig",
    "hysteresis_update",
    "Stage",
    "StageSet",
    "global_vc_priority",
    "regional_vc_priority",
    "vc_class_counts",
]
