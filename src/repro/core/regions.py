"""Region maps: which application owns which node.

A *region* is the set of nodes an application's threads are mapped to
(paper Section II: regional behaviours RB-1/RB-2 — concurrently running
applications, clustered placement). The region map is the only global
knowledge RAIR needs: each router is tagged with the application number
assigned to its node, and a packet traversing it is *native* if the tags
match, *foreign* otherwise (Section IV.E).

Builders cover the layouts of the paper's figures: left/right halves
(Fig. 8), quadrants (Figs. 11 and 16), and an m x n grid for the
six-application scenario (Fig. 13). Arbitrary rectangle lists and raw
assignments are supported for custom studies; nodes may be left unassigned
(app id -1, e.g. dedicated memory-controller tiles), in which case all
traffic through them is foreign.
"""

from __future__ import annotations

from collections.abc import Sequence

from repro.noc.topology import Topology
from repro.util.errors import ConfigError

__all__ = ["RegionMap"]

UNASSIGNED = -1


class RegionMap:
    """Immutable node -> application assignment over a topology.

    Application ids double as region ids: the paper assigns one region per
    application, and RAIR's per-router state is independent of the region
    count (Section VI scalability discussion), so nothing here limits how
    many regions a mesh may carry.
    """

    def __init__(self, topology: Topology, node_app: Sequence[int]):
        if len(node_app) != topology.num_nodes:
            raise ConfigError(
                f"node_app has {len(node_app)} entries for {topology.num_nodes} nodes"
            )
        apps = set()
        for node, app in enumerate(node_app):
            if app != UNASSIGNED and app < 0:
                raise ConfigError(f"node {node} has invalid app id {app}")
            if app != UNASSIGNED:
                apps.add(app)
        self.topology = topology
        self.node_app: tuple[int, ...] = tuple(int(a) for a in node_app)
        self.apps: tuple[int, ...] = tuple(sorted(apps))

    # -- constructors ----------------------------------------------------------
    @classmethod
    def single(cls, topology: Topology, app: int = 0) -> "RegionMap":
        """One region covering the whole chip (a conventional NoC)."""
        return cls(topology, [app] * topology.num_nodes)

    @classmethod
    def halves(cls, topology: Topology, vertical: bool = True) -> "RegionMap":
        """Two regions: left/right halves (Fig. 8) or top/bottom."""
        assign = []
        for node in range(topology.num_nodes):
            x, y = topology.coords(node)
            if vertical:
                assign.append(0 if x < topology.width // 2 else 1)
            else:
                assign.append(0 if y < topology.height // 2 else 1)
        return cls(topology, assign)

    @classmethod
    def quadrants(cls, topology: Topology) -> "RegionMap":
        """Four regions (Figs. 11 and 16): app i in quadrant i.

        Numbering: 0 = north-west, 1 = north-east, 2 = south-west,
        3 = south-east.
        """
        return cls.grid(topology, 2, 2)

    @classmethod
    def grid(cls, topology: Topology, cols: int, rows: int) -> "RegionMap":
        """``cols`` x ``rows`` near-equal regions, row-major ids.

        Delegates the node -> region assignment to the topology
        (:meth:`~repro.noc.topology.Topology.region_grid`): rectangular
        blocks on the grids, contiguous arcs on a ring. Uneven divisions
        are balanced with integer rounding (an 8-wide mesh split into 3
        columns gets widths 3/3/2), which is how we realize the paper's
        six-region (3 x 2) configuration on an 8x8 mesh.
        """
        return cls(topology, topology.region_grid(cols, rows))

    @classmethod
    def from_rects(
        cls,
        topology: Topology,
        rects: Sequence[tuple[int, int, int, int]],
        allow_unassigned: bool = False,
    ) -> "RegionMap":
        """Regions from ``(x0, y0, width, height)`` rectangles, app i = rect i.

        Rectangles must be disjoint; full coverage is required unless
        ``allow_unassigned`` is set.
        """
        assign = [UNASSIGNED] * topology.num_nodes
        for app, (x0, y0, w, h) in enumerate(rects):
            if w < 1 or h < 1:
                raise ConfigError(f"rect {app} has non-positive size {w}x{h}")
            if x0 < 0 or y0 < 0 or x0 + w > topology.width or y0 + h > topology.height:
                raise ConfigError(f"rect {app} {(x0, y0, w, h)} leaves the mesh")
            for y in range(y0, y0 + h):
                for x in range(x0, x0 + w):
                    node = topology.node_at(x, y)
                    if assign[node] != UNASSIGNED:
                        raise ConfigError(
                            f"rects {assign[node]} and {app} both cover node {node}"
                        )
                    assign[node] = app
        if not allow_unassigned and UNASSIGNED in assign:
            missing = [n for n, a in enumerate(assign) if a == UNASSIGNED]
            raise ConfigError(f"rects leave nodes unassigned: {missing[:8]}...")
        return cls(topology, assign)

    # -- queries -----------------------------------------------------------------
    @property
    def num_apps(self) -> int:
        """Number of distinct applications (regions)."""
        return len(self.apps)

    def app_of(self, node: int) -> int:
        """Application assigned to ``node`` (-1 if unassigned)."""
        return self.node_app[node]

    def nodes_of(self, app: int) -> tuple[int, ...]:
        """All nodes belonging to application ``app``."""
        return tuple(n for n, a in enumerate(self.node_app) if a == app)

    def is_global_pair(self, src: int, dst: int) -> bool:
        """True when ``src`` and ``dst`` lie in different regions."""
        return self.node_app[src] != self.node_app[dst]

    def region_fraction(self, app: int) -> float:
        """Fraction of the chip owned by ``app``."""
        return len(self.nodes_of(app)) / self.topology.num_nodes

    def __eq__(self, other) -> bool:
        return (
            isinstance(other, RegionMap)
            and other.node_app == self.node_app
            and other.topology.signature() == self.topology.signature()
        )

    def __hash__(self) -> int:
        return hash((self.topology.signature(), self.node_app))

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RegionMap({self.topology!r}, {self.num_apps} apps)"
