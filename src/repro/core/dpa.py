"""Dynamic priority adaptation (DPA) — paper Section IV.C.

DPA decides, per router and per cycle, whether *native* or *foreign*
traffic currently has priority on regional VCs and in switch allocation.
The decision input is the pair of occupied-VC counters the router
maintains over **all** its input VCs (not just one port, to smooth
non-uniform port state): ``OVC_n`` for native and ``OVC_f`` for foreign
traffic. The ratio ``r = OVC_f / OVC_n`` feeds a hysteresis transfer
function (paper Fig. 7):

* native priority goes *high* only once ``r > 1 + delta``,
* native priority goes *low* only once ``r < 1 - delta``,
* anywhere in between, the previous state is kept.

The paper sweeps delta in 0.1–0.3 and finds ~0.2 best; that is the default
here (and the subject of the E-A1 ablation benchmark). Foreign-high is the
initial/default state, reflecting the criticality argument of Section
II.C: foreign traffic is global traffic, which overlaps less with other
misses and therefore stalls its application more per packet.

Starvation freedom (Section IV.D) is inherent: if native traffic hoards
VCs, ``r`` falls and flips priority to foreign, and vice versa — a
negative feedback loop with no extra mechanism.

To keep DPA off the router's critical path the priority computed from the
cycle-``t`` counters is *used* in cycle ``t+1`` (Section IV.E); the
simulator realizes that by updating the router's ``native_high`` flag in
the end-of-cycle hook.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.util.validate import check_fraction

__all__ = ["DpaConfig", "hysteresis_update"]


@dataclass(frozen=True)
class DpaConfig:
    """DPA tuning knobs.

    ``delta`` is the hysteresis half-width of Fig. 7. ``mode`` selects the
    paper's evaluation variants: ``dynamic`` is full DPA; ``native`` /
    ``foreign`` pin the priority (RAIR_NativeH / RAIR_ForeignH in
    Fig. 12).
    """

    delta: float = 0.2
    mode: str = "dynamic"

    def __post_init__(self) -> None:
        check_fraction(self.delta, "delta")
        if self.mode not in ("dynamic", "native", "foreign"):
            raise ValueError(f"mode must be dynamic/native/foreign, got {self.mode!r}")


def hysteresis_update(native_high: bool, ovc_n: int, ovc_f: int, delta: float) -> bool:
    """One step of the Fig.-7 state machine.

    Parameters are the previous state and the current occupied-VC counters;
    returns the new ``native_high`` state. With ``ovc_n == 0`` the ratio is
    treated as infinite (native is absent, hence maximally non-intensive,
    hence high priority if anything foreign is present); with both counters
    zero the state is unchanged (an idle router keeps its priority).
    """
    if ovc_n == 0:
        if ovc_f == 0:
            return native_high
        return True
    r = ovc_f / ovc_n
    if not native_high and r > 1.0 + delta:
        return True
    if native_high and r < 1.0 - delta:
        return False
    return native_high
