"""Multi-stage prioritization (MSP) — paper Section IV.B.

The canonical router has four arbitration steps; MSP applies the
region-aware priority to exactly three of them:

========  ==========================================  =====================
Step      Contention                                  MSP action
========  ==========================================  =====================
VA_in     none — each input VC picks independently    untouched (no loss)
VA_out    input VCs competing for one output VC       VC-regionalization
                                                      priority (per class)
SA_in     VCs of one input port competing for the     DPA priority
          port's switch input
SA_out    input ports competing for one output port   DPA priority
========  ==========================================  =====================

The same DPA priority value is used at VA_out/SA_in/SA_out within a cycle
(consistency requirement of Section IV.B), and prioritization never idles
a resource that has any requester, so MSP costs no throughput relative to
round-robin.

:class:`StageSet` selects where the priority is enforced; the paper's
Fig. 9 ablation compares ``VA`` (RAIR_VA) against ``VA | SA``
(RAIR_VA+SA, the full mechanism).
"""

from __future__ import annotations

import enum

__all__ = ["Stage", "StageSet"]


class Stage(enum.Flag):
    """Arbitration stages where MSP enforces region-aware priority."""

    NONE = 0
    VA = enum.auto()
    SA = enum.auto()
    ALL = VA | SA


# Backwards-friendly alias: a set of stages *is* a Stage flag value.
StageSet = Stage
