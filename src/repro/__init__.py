"""repro — reproduction of "RAIR: Interference Reduction in Regionalized
Networks-on-Chip" (Chen, Hwang, Pinkston — IPPS 2013).

The package layers:

* :mod:`repro.noc` — a from-scratch cycle-accurate VC-router mesh
  simulator (the GARNET substitute),
* :mod:`repro.routing` — XY, Duato-adaptive and DBAR routing,
* :mod:`repro.arbitration` — round-robin, age-based and idealized-STC
  arbitration baselines,
* :mod:`repro.core` — RAIR itself: VC regionalization, multi-stage
  prioritization and dynamic priority adaptation,
* :mod:`repro.traffic` — synthetic/regional/PARSEC-like/adversarial
  workloads,
* :mod:`repro.experiments` — the per-figure evaluation harness.

Quickstart::

    from repro import build_simulation

    sim, net = build_simulation(scheme="rair", routing="local")
    ...

See ``examples/quickstart.py`` for a complete runnable walk-through.
"""

from repro._version import __version__
from repro.arbitration import make_policy
from repro.core import RairPolicy, RegionMap
from repro.noc import Network, NocConfig, Simulator
from repro.routing import make_routing

__all__ = [
    "NocConfig",
    "Network",
    "Simulator",
    "RegionMap",
    "RairPolicy",
    "make_policy",
    "make_routing",
    "build_simulation",
    "__version__",
]


def build_simulation(
    config: NocConfig | None = None,
    region_map: RegionMap | None = None,
    scheme: str = "ro_rr",
    routing: str = "local",
    policy_kwargs: dict | None = None,
    routing_kwargs: dict | None = None,
    trace=None,
) -> tuple[Simulator, Network]:
    """Convenience constructor: (simulator, network) for a named scheme.

    ``scheme`` is an arbitration-policy name (``ro_rr``, ``age``,
    ``ro_rank``, ``rair``...), ``routing`` a routing-algorithm name
    (``xy``, ``local``, ``dbar``). Traffic sources are added by the caller
    via ``sim.add_traffic``. ``trace`` is an optional
    :class:`~repro.noc.trace.KernelTrace` the kernel emits scheduling
    events into.
    """
    config = config or NocConfig()
    net = Network(
        config,
        routing=make_routing(routing, **(routing_kwargs or {})),
        policy=make_policy(scheme, **(policy_kwargs or {})),
        region_map=region_map,
        trace=trace,
    )
    return Simulator(net), net
