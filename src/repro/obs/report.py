"""``python -m repro.obs.report`` — validate and summarize obs streams.

Default mode renders a compact human-readable digest of each stream
(after validating it); ``--check`` validates only, printing one ``OK``
line per file — that is what the CI obs smoke lane runs. ``--csv DIR``
additionally flattens each stream to CSV via
:func:`repro.obs.exporters.export_csv`.

Exit status: 0 when every file validates, 1 when any fails.
"""

from __future__ import annotations

import argparse
import sys

from repro.obs.schema import ObsSchemaError, load_jsonl, validate_stream

__all__ = ["main", "render_blackbox", "render_summary"]


def _fmt(v) -> str:
    return f"{v:.2f}" if isinstance(v, float) else str(v)


def render_blackbox(path: str, records: list[dict], counts: dict) -> str:
    """Human-readable digest of one validated guard-blackbox stream."""
    header = records[0]
    violation = records[-1]
    lines = [
        f"{path}",
        f"  {header['width']}x{header['height']} {header['topology']}, "
        f"schema v{header['schema']}, guard {header['mode']!r}, "
        f"run {header['name']!r}",
        f"  VIOLATION at cycle {violation['cycle']}: {violation['reason']}",
        f"    {violation['message']}",
        f"  state: {violation['buffered_total']} flit(s) buffered, "
        f"{violation['packets_in_flight']} packet(s) in flight, "
        f"{violation['queued']} queued; "
        f"{counts.get('router_snapshot', 0)} router snapshot(s)",
    ]
    ring = violation["ring"]
    if ring:
        lines.append(f"  wait cycle ({len(ring)} VCs):")
        for hop in ring:
            lines.append(
                f"    node {hop['node']} port {hop['port']} vc {hop['vc']} "
                f"[{hop['state']}, pkt #{hop['pid']} -> {hop['dst']}, "
                f"esc_cls {hop['escape_class']}]"
            )
    events = [r for r in records if r.get("kind") == "guard_event"]
    if events:
        by_event: dict[str, int] = {}
        for rec in events:
            by_event[rec["event"]] = by_event.get(rec["event"], 0) + 1
        mix = ", ".join(f"{k}={v}" for k, v in sorted(by_event.items()))
        lines.append(
            f"  blackbox: last {len(events)} kernel events "
            f"(cycles {events[0]['cycle']}..{events[-1]['cycle']}): {mix}"
        )
    return "\n".join(lines)


def render_summary(path: str, records: list[dict], counts: dict) -> str:
    """Human-readable digest of one validated stream (either flavour)."""
    if records[0].get("kind") == "guard_header":
        return render_blackbox(path, records, counts)
    header = records[0]
    summary = records[-1]
    lines = [
        f"{path}",
        f"  {header['width']}x{header['height']} mesh, schema v{header['schema']}, "
        f"run {header['name']!r}",
        f"  cycles {header['start_cycle']}..{summary['cycle']}, "
        f"{summary['samples']} samples every {header['sample_period']} cycles, "
        f"{summary['events']} events",
    ]

    lat = [r for r in records if r.get("kind") == "latency_class"]
    if lat:
        lines.append("  latency (cycles):")
        lines.append(
            "    {:<8} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}".format(
                "class", "count", "mean", "p50", "p95", "p99", "max"
            )
        )
        for rec in lat:
            if rec["count"] == 0:
                lines.append(f"    {rec['cls']:<8} {0:>7}")
                continue
            lines.append(
                "    {:<8} {:>7} {:>8} {:>8} {:>8} {:>8} {:>8}".format(
                    rec["cls"],
                    rec["count"],
                    _fmt(rec["mean"]),
                    _fmt(rec["p50"]),
                    _fmt(rec["p95"]),
                    _fmt(rec["p99"]),
                    _fmt(rec["max"]),
                )
            )

    flips = summary["dpa_flips"]
    by_node: dict[int, int] = {}
    for rec in records:
        if rec.get("kind") == "dpa_flip":
            by_node[rec["node"]] = by_node.get(rec["node"], 0) + 1
    line = f"  dpa: {flips} priority flips"
    if by_node:
        top = sorted(by_node.items(), key=lambda kv: (-kv[1], kv[0]))[:5]
        line += " (top nodes: " + ", ".join(f"{n}:{c}" for n, c in top) + ")"
    lines.append(line)

    util = summary["link_util"]
    lines.append(
        f"  links: mean {util['mean']:.3f} flits/cycle, "
        f"max {util['max']:.3f} at node {util['max_node']} port {util['max_port']}"
    )
    return "\n".join(lines)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.obs.report",
        description="Validate and summarize observability JSONL streams.",
    )
    parser.add_argument("paths", nargs="+", help="JSONL file(s) to read")
    parser.add_argument(
        "--check",
        action="store_true",
        help="validate against the schema only (CI mode); no summary output",
    )
    parser.add_argument(
        "--csv",
        metavar="DIR",
        default=None,
        help="also export each stream's time series to CSV files in DIR",
    )
    args = parser.parse_args(argv)

    status = 0
    for path in args.paths:
        try:
            records = load_jsonl(path)
            counts = validate_stream(records)
        except (OSError, ObsSchemaError) as exc:
            print(f"FAIL {path}: {exc}", file=sys.stderr)
            status = 1
            continue
        if args.check:
            kinds = ", ".join(f"{k}={v}" for k, v in sorted(counts.items()))
            print(f"OK {path}: {sum(counts.values())} records ({kinds})")
        else:
            print(render_summary(path, records, counts))
        if args.csv:
            from repro.obs.exporters import export_csv

            for out in export_csv(path, args.csv):
                print(f"  wrote {out}")
    return status


if __name__ == "__main__":
    raise SystemExit(main())
