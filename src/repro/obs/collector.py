"""The metrics collector: trace hooks + periodic sampling + summaries.

:class:`MetricsCollector` combines three cheap capture mechanisms:

* the :class:`~repro.noc.trace.KernelTrace` hook protocol, of which it
  overrides only ``dpa_flip`` — the kernel emits that event on priority
  *transitions* only, so the DPA hysteresis timeline costs nothing on
  no-change cycles;
* a periodic sampler called from :meth:`repro.noc.sim.Simulator.step`
  every ``sample_period`` cycles, snapshotting per-router buffered flits,
  native/foreign occupied-VC counters, and per-link flit deltas;
* an ejection callback classifying each measured packet's latency as
  native / foreign (destination-region membership) and global (global-VC
  packets, a subset), for the per-class percentile summaries.

The collector is single-use per simulator but :meth:`finalize` is
idempotent: it derives the latency/summary records from the accumulated
state without consuming it, so a second ``run_measurement`` on the same
simulator extends the time series and re-finalizes a longer stream.

Nothing in ``repro.noc`` imports this module — the simulator talks to the
collector through the duck-typed ``next_sample`` / ``take_sample`` /
``finalize`` surface, keeping the core free of observability concerns.
"""

from __future__ import annotations

import json
import os
import re
from dataclasses import dataclass, field, replace

import numpy as np

from repro.noc.trace import KernelTrace
from repro.obs.schema import LATENCY_CLASSES, SCHEMA_VERSION
from repro.util.errors import ConfigError

__all__ = ["ObsConfig", "ObsSummary", "MetricsCollector", "sanitize_name"]

_NAME_OK = re.compile(r"[^A-Za-z0-9._+-]+")


def sanitize_name(name: str) -> str:
    """Collapse anything filesystem-hostile in a run name to ``-``."""
    return _NAME_OK.sub("-", name).strip("-") or "run"


@dataclass(frozen=True)
class ObsConfig:
    """Observability settings, threaded through the experiment stack.

    Frozen and picklable so it crosses process boundaries with the cell.
    It is *execution* policy, like ``cycle_budget``: it never enters
    result-cache keys (the simulation is bit-identical with or without a
    collector installed).

    ``dir=None`` keeps everything in memory — the run still gets an
    :class:`ObsSummary` but no JSONL file. ``name`` is the output file
    stem; the experiment layer fills it per cell when unset.
    """

    dir: str | None
    sample_period: int = 64
    name: str | None = None

    def __post_init__(self) -> None:
        if self.sample_period < 1:
            raise ConfigError(
                f"sample_period must be >= 1, got {self.sample_period}"
            )

    def named(self, default: str) -> "ObsConfig":
        """This config with ``name`` defaulted (and sanitized) if unset."""
        return replace(self, name=sanitize_name(self.name or default))


@dataclass
class ObsSummary:
    """Compact per-run digest of the full observability stream.

    Fully simulation-determined (no wall-clock anywhere), so two runs of
    the same cell — serial, in a worker, or restored from the result
    cache — compare equal. ``jsonl_path`` is excluded from comparisons:
    it reflects where *this* invocation wrote the stream, not what the
    simulation did.
    """

    end_cycle: int
    sample_period: int
    samples: int
    events: int
    dpa_flips: int
    dpa_flips_by_node: dict[int, int]
    #: class -> {count, mean, p50, p95, p99, max} (stats absent when count=0)
    latency: dict[str, dict]
    #: {mean, max, max_node, max_port} flit utilization per link
    link_util: dict
    schema: int = SCHEMA_VERSION
    jsonl_path: str | None = field(default=None, compare=False)

    def to_dict(self) -> dict:
        return {
            "schema": self.schema,
            "end_cycle": self.end_cycle,
            "sample_period": self.sample_period,
            "samples": self.samples,
            "events": self.events,
            "dpa_flips": self.dpa_flips,
            "dpa_flips_by_node": {str(k): v for k, v in self.dpa_flips_by_node.items()},
            "latency": {cls: dict(stats) for cls, stats in self.latency.items()},
            "link_util": dict(self.link_util),
            "jsonl_path": self.jsonl_path,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "ObsSummary":
        return cls(
            schema=int(d.get("schema", SCHEMA_VERSION)),
            end_cycle=int(d["end_cycle"]),
            sample_period=int(d["sample_period"]),
            samples=int(d["samples"]),
            events=int(d["events"]),
            dpa_flips=int(d["dpa_flips"]),
            dpa_flips_by_node={int(k): int(v) for k, v in d["dpa_flips_by_node"].items()},
            latency={str(c): dict(s) for c, s in d["latency"].items()},
            link_util=dict(d["link_util"]),
            jsonl_path=d.get("jsonl_path"),
        )


def _latency_stats(samples: list[int]) -> dict:
    """p50/p95/p99 summary + log2 histogram of one latency class."""
    a = np.asarray(samples, dtype=np.int64)
    # Bucket i counts latencies in [2^i, 2^(i+1)); frexp gives the exact
    # binary exponent, immune to the float rounding of log2 at powers of 2.
    buckets = np.frexp(a.astype(np.float64))[1] - 1
    hist = np.bincount(buckets)
    return {
        "count": int(len(a)),
        "mean": float(np.mean(a)),
        "p50": float(np.percentile(a, 50)),
        "p95": float(np.percentile(a, 95)),
        "p99": float(np.percentile(a, 99)),
        "max": float(np.max(a)),
        "hist": [int(x) for x in hist],
    }


class MetricsCollector(KernelTrace):
    """Records the observability stream for one simulator.

    Install with :meth:`install` *before* ``run_measurement``; the
    simulator drives sampling and finalization. The collector claims the
    network's trace slot (for ``dpa_flip``) — installing over an existing
    tracer is refused rather than silently chained.
    """

    __slots__ = (
        "config",
        "next_sample",
        "samples_taken",
        "events_recorded",
        "_net",
        "_region_of",
        "_records",
        "_prev_link",
        "_install_link",
        "_start_cycle",
        "_lat",
        "_flips_by_node",
    )

    def __init__(self, config: ObsConfig):
        self.config = config
        self.next_sample = 0
        self.samples_taken = 0
        self.events_recorded = 0
        self._net = None
        self._records: list[dict] = []
        self._lat: dict[str, list[int]] = {cls: [] for cls in LATENCY_CLASSES}
        self._flips_by_node: dict[int, int] = {}

    # -- wiring -----------------------------------------------------------------
    def install(self, sim) -> "MetricsCollector":
        """Attach to ``sim``: trace slot, obs slot, ejection callback."""
        net = sim.network
        if net.trace is not None:
            raise ConfigError(
                "network already has a trace installed; the collector "
                "needs the trace slot for DPA flip events"
            )
        if self._net is not None:
            raise ConfigError("collector is already installed on a simulator")
        net.trace = self
        sim.obs = self
        self._net = net
        self._region_of = net.region_ids
        net.eject_callbacks.append(self._on_eject)
        self._start_cycle = sim.cycle
        period = self.config.sample_period
        self.next_sample = (sim.cycle // period + 1) * period
        self._prev_link = net.link_flit_counts()
        self._install_link = [row[:] for row in self._prev_link]
        cfg = net.config
        from repro._version import __version__, git_revision

        self._records.append(
            {
                "kind": "header",
                "schema": SCHEMA_VERSION,
                "name": self.config.name or "run",
                "width": cfg.width,
                "height": cfg.height,
                "num_nodes": net.topology.num_nodes,
                "sample_period": period,
                "start_cycle": sim.cycle,
                # provenance stamp: optional additive fields, so no schema
                # version bump (validators ignore unknown fields)
                "repro_version": __version__,
                "git_rev": git_revision() or "",
            }
        )
        self._records.append(
            {
                "kind": "dpa_init",
                "cycle": sim.cycle,
                "native_high": [bool(r.native_high) for r in net.routers],
            }
        )
        return self

    # -- trace hook (the only kernel event the collector consumes) ---------------
    def dpa_flip(self, cycle, node, native_high, ovc_n, ovc_f) -> None:
        self._records.append(
            {
                "kind": "dpa_flip",
                "cycle": cycle,
                "node": node,
                "native_high": bool(native_high),
                "ovc_n": ovc_n,
                "ovc_f": ovc_f,
            }
        )
        self._flips_by_node[node] = self._flips_by_node.get(node, 0) + 1
        self.events_recorded += 1

    # -- periodic sampler (called by Simulator.step) ------------------------------
    def take_sample(self, cycle: int, net) -> None:
        """Snapshot per-router and per-link state at a period boundary."""
        routers = net.routers
        self._records.append(
            {
                "kind": "vc_sample",
                "cycle": cycle,
                "occupancy": list(net.occupancy),
                "ovc_n": [r.ovc_n for r in routers],
                "ovc_f": [r.ovc_f for r in routers],
            }
        )
        cur = net.link_flit_counts()
        prev = self._prev_link
        self._records.append(
            {
                "kind": "link_sample",
                "cycle": cycle,
                "flits": [
                    [c - p for c, p in zip(crow, prow)]
                    for crow, prow in zip(cur, prev)
                ],
            }
        )
        self._prev_link = cur
        self.samples_taken += 1
        self.next_sample = cycle + self.config.sample_period

    # -- per-packet latency classification ----------------------------------------
    def _on_eject(self, pkt, eject_cycle: int) -> None:
        w = self._net.measure_window
        if w is None or not (w[0] <= pkt.inject_cycle < w[1]) or pkt.is_adversarial:
            return
        latency = eject_cycle - pkt.inject_cycle
        app = pkt.app_id
        if app >= 0 and self._region_of[pkt.dst] == app:
            self._lat["native"].append(latency)
        else:
            self._lat["foreign"].append(latency)
        if pkt.is_global:
            self._lat["global"].append(latency)
        self.events_recorded += 1

    # -- finalization ---------------------------------------------------------------
    def finalize(self, end_cycle: int) -> ObsSummary:
        """Derive the latency/summary records, write JSONL, return the digest."""
        net = self._net
        if net is None:
            raise ConfigError("collector was never installed")
        latency: dict[str, dict] = {}
        tail: list[dict] = []
        for cls in LATENCY_CLASSES:
            samples = self._lat[cls]
            if samples:
                stats = _latency_stats(samples)
            else:
                stats = {"count": 0}
            latency[cls] = stats
            tail.append({"kind": "latency_class", "cls": cls, **stats})
        link_util = self._link_utilization(end_cycle)
        dpa_flips = sum(self._flips_by_node.values())
        tail.append(
            {
                "kind": "summary",
                "cycle": end_cycle,
                "samples": self.samples_taken,
                "events": self.events_recorded,
                "dpa_flips": dpa_flips,
                "link_util": link_util,
            }
        )
        records = self._records + tail
        path = None
        if self.config.dir is not None:
            from repro.obs.exporters import write_jsonl

            os.makedirs(self.config.dir, exist_ok=True)
            stem = sanitize_name(self.config.name or "run")
            path = os.path.join(self.config.dir, f"{stem}.jsonl")
            write_jsonl(records, path)
        return ObsSummary(
            end_cycle=end_cycle,
            sample_period=self.config.sample_period,
            samples=self.samples_taken,
            events=self.events_recorded,
            dpa_flips=dpa_flips,
            dpa_flips_by_node=dict(sorted(self._flips_by_node.items())),
            latency=latency,
            link_util=link_util,
            jsonl_path=path,
        )

    def _link_utilization(self, end_cycle: int) -> dict:
        """Flits/cycle per physical link since install (mean + hottest)."""
        net = self._net
        elapsed = end_cycle - self._start_cycle
        neighbor = net.topology.neighbor
        cur = net.link_flit_counts()
        base = self._install_link
        best = (-1.0, 0, 0)
        total = 0.0
        links = 0
        for node, (crow, brow) in enumerate(zip(cur, base)):
            for port in range(len(crow)):
                # Port 0 is the ejection link (always present); others
                # only exist where the mesh has a neighbor.
                if port != 0 and neighbor[node][port] < 0:
                    continue
                util = (crow[port] - brow[port]) / elapsed if elapsed > 0 else 0.0
                total += util
                links += 1
                if util > best[0]:
                    best = (util, node, port)
        return {
            "mean": total / links if links else 0.0,
            "max": max(best[0], 0.0),
            "max_node": best[1],
            "max_port": best[2],
        }

    def records(self) -> list[dict]:
        """The time-series records accumulated so far (no finalize tail)."""
        return list(self._records)


def dumps_record(rec: dict) -> str:
    """Canonical one-line JSON encoding (sorted keys, no whitespace).

    Shared by the JSONL writer so the stream is byte-identical wherever
    it is produced — the seed-matrix determinism test diffs raw files
    across serial and worker-process runs.
    """
    return json.dumps(rec, sort_keys=True, separators=(",", ":"))
