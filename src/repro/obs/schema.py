"""Schema for the observability JSONL stream.

One run produces one JSONL file: a ``header`` record, then time-ordered
``dpa_init`` / ``dpa_flip`` / ``vc_sample`` / ``link_sample`` records,
then the finalize-time ``latency_class`` records and a single trailing
``summary``. Every record carries ``kind``; the header carries the schema
version so readers can reject streams they do not understand.

Record kinds (``kind`` → required fields):

``header``
    ``schema`` (int, == :data:`SCHEMA_VERSION`), ``name`` (str),
    ``width`` / ``height`` / ``num_nodes`` (int), ``sample_period``
    (int), ``start_cycle`` (int). Also carries the optional provenance
    fields ``repro_version`` / ``git_rev`` (str) — additive, so they
    did not bump the schema version (validators ignore extra fields).
``dpa_init``
    ``cycle`` (int), ``native_high`` (list[bool], one per node) — the
    DPA state when the collector was installed, so the flip stream
    reconstructs an absolute timeline.
``dpa_flip``
    ``cycle`` / ``node`` (int), ``native_high`` (bool), ``ovc_n`` /
    ``ovc_f`` (int) — one per priority-state *transition* (the
    hysteresis timeline of paper Fig. 11).
``vc_sample``
    ``cycle`` (int), ``occupancy`` / ``ovc_n`` / ``ovc_f``
    (list[int], one per node) — periodic snapshot of buffered flits and
    native/foreign occupied-VC counters.
``link_sample``
    ``cycle`` (int), ``flits`` (list of 5-int lists, one per node) —
    flits sent per output port *since the previous sample* (port 0 is
    the ejection link into the local NI).
``latency_class``
    ``cls`` (one of :data:`LATENCY_CLASSES`), ``count`` (int), and —
    when ``count > 0`` — ``mean`` / ``p50`` / ``p95`` / ``p99`` /
    ``max`` (float) and ``hist`` (list[int], log2 latency buckets:
    ``hist[i]`` counts packets with latency in ``[2^i, 2^(i+1))``).
``summary``
    ``cycle`` (int, end of run), ``samples`` / ``events`` /
    ``dpa_flips`` (int), ``link_util`` (object).

A second stream flavour is the runtime guard's *crash blackbox*
(``<name>_blackbox.jsonl``, written by :mod:`repro.noc.guard` on a
violation): a ``guard_header`` record, the last-K kernel events as
``guard_event`` records, per-busy-router ``router_snapshot`` records, and
a single trailing ``guard_violation``. :func:`validate_stream` detects
the flavour from the first record.

``guard_header``
    ``schema`` (int), ``name`` / ``mode`` / ``topology`` (str),
    ``width`` / ``height`` / ``num_nodes`` / ``depth`` (ring capacity) /
    ``start_cycle`` (int).
``guard_event``
    ``cycle`` (int), ``event`` (str, a :class:`~repro.noc.trace.KernelTrace`
    method name), ``args`` (list, that event's arguments after the cycle).
``router_snapshot``
    ``cycle`` / ``node`` / ``busy_vcs`` / ``ovc_n`` / ``ovc_f`` (int),
    ``native_high`` (bool), ``vcs`` (list of per-VC objects),
    ``credits`` / ``owners`` (list of per-port lists).
``guard_violation``
    ``cycle`` (int), ``reason`` / ``message`` (str), ``ring`` (list,
    the wait-graph cycle for deadlocks, else empty), ``buffered_total``
    / ``packets_in_flight`` / ``queued`` (int).

Schema evolution policy: adding a new record kind or an *optional* field
is backward-compatible and keeps the version; renaming/removing fields or
changing semantics bumps :data:`SCHEMA_VERSION`. Validators here reject
unknown kinds and missing fields but ignore extra fields, so version-1
readers tolerate forward-compatible extensions.
"""

from __future__ import annotations

import json

from repro.util.errors import ReproError

__all__ = [
    "SCHEMA_VERSION",
    "LATENCY_CLASSES",
    "RECORD_KINDS",
    "ObsSchemaError",
    "validate_record",
    "validate_stream",
    "load_jsonl",
]

#: current JSONL schema version (see module docstring for the policy)
SCHEMA_VERSION = 1

#: packet classes the latency histograms are keyed by: ``native`` /
#: ``foreign`` by destination-region membership, ``global`` for packets
#: flagged to ride the global VCs (a subset of the other two)
LATENCY_CLASSES = ("native", "foreign", "global")

_BOOL = (bool,)
_INT = (int,)          # validators run on json.loads output: no numpy here
_NUM = (int, float)
_STR = (str,)
_LIST = (list,)
_OBJ = (dict,)

#: kind -> {field: allowed types}; extra fields are always permitted
RECORD_KINDS: dict[str, dict[str, tuple]] = {
    "header": {
        "schema": _INT,
        "name": _STR,
        "width": _INT,
        "height": _INT,
        "num_nodes": _INT,
        "sample_period": _INT,
        "start_cycle": _INT,
    },
    "dpa_init": {"cycle": _INT, "native_high": _LIST},
    "dpa_flip": {
        "cycle": _INT,
        "node": _INT,
        "native_high": _BOOL,
        "ovc_n": _INT,
        "ovc_f": _INT,
    },
    "vc_sample": {
        "cycle": _INT,
        "occupancy": _LIST,
        "ovc_n": _LIST,
        "ovc_f": _LIST,
    },
    "link_sample": {"cycle": _INT, "flits": _LIST},
    "latency_class": {"cls": _STR, "count": _INT},
    "summary": {
        "cycle": _INT,
        "samples": _INT,
        "events": _INT,
        "dpa_flips": _INT,
        "link_util": _OBJ,
    },
    "guard_header": {
        "schema": _INT,
        "name": _STR,
        "mode": _STR,
        "width": _INT,
        "height": _INT,
        "num_nodes": _INT,
        "topology": _STR,
        "depth": _INT,
        "start_cycle": _INT,
    },
    "guard_event": {"cycle": _INT, "event": _STR, "args": _LIST},
    "router_snapshot": {
        "cycle": _INT,
        "node": _INT,
        "busy_vcs": _INT,
        "native_high": _BOOL,
        "ovc_n": _INT,
        "ovc_f": _INT,
        "vcs": _LIST,
        "credits": _LIST,
        "owners": _LIST,
    },
    "guard_violation": {
        "cycle": _INT,
        "reason": _STR,
        "message": _STR,
        "ring": _LIST,
        "buffered_total": _INT,
        "packets_in_flight": _INT,
        "queued": _INT,
    },
}

#: latency_class fields required whenever ``count > 0``
_LATENCY_STAT_FIELDS = ("mean", "p50", "p95", "p99", "max")


class ObsSchemaError(ReproError, ValueError):
    """An observability record or stream violates the schema."""


def validate_record(rec: object, lineno: int | None = None) -> str:
    """Validate one decoded record; returns its kind.

    Raises :class:`ObsSchemaError` naming the offending field (and the
    1-based ``lineno`` when given, so CI failures point at the line).
    """
    where = f" (line {lineno})" if lineno is not None else ""
    if not isinstance(rec, dict):
        raise ObsSchemaError(f"record is not an object{where}: {rec!r}")
    kind = rec.get("kind")
    fields = RECORD_KINDS.get(kind)
    if fields is None:
        raise ObsSchemaError(f"unknown record kind {kind!r}{where}")
    for name, types in fields.items():
        if name not in rec:
            raise ObsSchemaError(f"{kind} record missing field {name!r}{where}")
        value = rec[name]
        # bool is an int subclass; an int-typed field must not accept it.
        if types is _INT and isinstance(value, bool):
            raise ObsSchemaError(
                f"{kind}.{name} must be an integer, got bool{where}"
            )
        if not isinstance(value, types):
            raise ObsSchemaError(
                f"{kind}.{name} has type {type(value).__name__}, "
                f"expected {'/'.join(t.__name__ for t in types)}{where}"
            )
    if kind == "latency_class":
        if rec["cls"] not in LATENCY_CLASSES:
            raise ObsSchemaError(f"unknown latency class {rec['cls']!r}{where}")
        if rec["count"] > 0:
            for name in _LATENCY_STAT_FIELDS:
                if not isinstance(rec.get(name), (int, float)):
                    raise ObsSchemaError(
                        f"latency_class({rec['cls']}) with count>0 missing "
                        f"numeric field {name!r}{where}"
                    )
            if not isinstance(rec.get("hist"), list):
                raise ObsSchemaError(
                    f"latency_class({rec['cls']}) with count>0 missing "
                    f"'hist' list{where}"
                )
    return kind


#: kinds whose ``cycle`` must never decrease within a stream
_TIME_ORDERED = (
    "dpa_init",
    "dpa_flip",
    "vc_sample",
    "link_sample",
    "guard_event",
    "router_snapshot",
    "guard_violation",
)


def validate_stream(records) -> dict:
    """Validate a full record sequence; returns per-kind counts.

    Structural rules beyond per-record validation: the first record is a
    ``header`` or ``guard_header`` with the current
    :data:`SCHEMA_VERSION` (its kind selects the stream flavour), and the
    ``cycle`` fields of the time-ordered kinds never decrease. An obs
    stream must close with exactly one trailing ``summary``; a guard
    blackbox with exactly one trailing ``guard_violation``.
    """
    counts: dict[str, int] = {}
    last_cycle = None
    kinds: list[str] = []
    for lineno, rec in enumerate(records, start=1):
        kind = validate_record(rec, lineno)
        kinds.append(kind)
        counts[kind] = counts.get(kind, 0) + 1
        if lineno == 1:
            if kind not in ("header", "guard_header"):
                raise ObsSchemaError(f"stream must start with a header, got {kind!r}")
            if rec["schema"] != SCHEMA_VERSION:
                raise ObsSchemaError(
                    f"unsupported schema version {rec['schema']} "
                    f"(reader supports {SCHEMA_VERSION})"
                )
        elif kind in ("header", "guard_header"):
            raise ObsSchemaError(f"duplicate header at line {lineno}")
        if kind in _TIME_ORDERED:
            cycle = rec["cycle"]
            if last_cycle is not None and cycle < last_cycle:
                raise ObsSchemaError(
                    f"cycle went backwards at line {lineno}: "
                    f"{cycle} after {last_cycle}"
                )
            last_cycle = cycle
    if not kinds:
        raise ObsSchemaError("empty stream (no records)")
    terminal = "guard_violation" if kinds[0] == "guard_header" else "summary"
    if counts.get(terminal, 0) != 1 or kinds[-1] != terminal:
        raise ObsSchemaError(
            f"stream must end with exactly one {terminal} record"
        )
    return counts


def load_jsonl(path) -> list[dict]:
    """Decode a JSONL file into a list of records (no validation)."""
    records = []
    with open(path, encoding="utf-8") as fh:
        for lineno, line in enumerate(fh, start=1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as exc:
                raise ObsSchemaError(f"invalid JSON at {path}:{lineno}: {exc}") from exc
    return records
