"""Observability subsystem: per-class metrics time-series and exporters.

RAIR's argument is distributional — native vs. foreign interference shows
up in per-class latency tails, DPA hysteresis flips, and per-link
hotspots, not in a single APL scalar. This package records those signals
without touching the kernel hot path when disabled:

:mod:`repro.obs.collector`
    :class:`~repro.obs.collector.MetricsCollector` — a
    :class:`~repro.noc.trace.KernelTrace` subclass (for the ``dpa_flip``
    event stream) plus a periodic sampler driven by
    :meth:`~repro.noc.sim.Simulator.step`. Produces an
    :class:`~repro.obs.collector.ObsSummary` and optionally a
    schema-versioned JSONL stream.
:mod:`repro.obs.schema`
    The JSONL record vocabulary, schema version, and validators.
:mod:`repro.obs.exporters`
    JSONL/CSV writers.
:mod:`repro.obs.report`
    ``python -m repro.obs.report run.jsonl`` — validation (``--check``),
    a compact human-readable summary, and CSV export (``--csv``).

Overhead contract: with no collector installed, the simulator pays one
pointer comparison per cycle and one per emitted kernel event — measured
within noise of the untraced kernel benchmark (docs/OBSERVABILITY.md).
"""

from repro.obs.collector import MetricsCollector, ObsConfig, ObsSummary
from repro.obs.schema import SCHEMA_VERSION, ObsSchemaError, load_jsonl, validate_stream

__all__ = [
    "MetricsCollector",
    "ObsConfig",
    "ObsSummary",
    "SCHEMA_VERSION",
    "ObsSchemaError",
    "load_jsonl",
    "validate_stream",
]
