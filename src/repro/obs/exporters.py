"""Exporters: the canonical JSONL writer and CSV flatteners.

JSONL is the primary format (one self-describing record per line, schema
in the header — see :mod:`repro.obs.schema`); CSV is a convenience export
for spreadsheet/pandas consumers, one file per time-series kind.
"""

from __future__ import annotations

import csv
import os

from repro.obs.collector import dumps_record
from repro.obs.schema import LATENCY_CLASSES, load_jsonl

__all__ = ["write_jsonl", "export_csv"]


def write_jsonl(records, path) -> None:
    """Write records to ``path`` in canonical one-line-per-record form.

    Written via a temp file + atomic rename so a crash mid-export never
    leaves a half-stream behind for the report tool to choke on.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        for rec in records:
            fh.write(dumps_record(rec))
            fh.write("\n")
    os.replace(tmp, path)


def _write_csv(path, header, rows) -> None:
    with open(path, "w", newline="", encoding="utf-8") as fh:
        writer = csv.writer(fh)
        writer.writerow(header)
        writer.writerows(rows)


def export_csv(jsonl_path, out_dir) -> list[str]:
    """Flatten one JSONL stream into per-kind CSV files.

    Produces (for the kinds present) ``<stem>_vc_samples.csv`` (one row
    per node per sample), ``<stem>_link_samples.csv`` (one row per link
    per sample), ``<stem>_dpa_flips.csv``, and ``<stem>_latency.csv``.
    Returns the written paths.
    """
    records = load_jsonl(jsonl_path)
    stem = os.path.splitext(os.path.basename(jsonl_path))[0]
    os.makedirs(out_dir, exist_ok=True)
    written: list[str] = []

    vc_rows = []
    link_rows = []
    flip_rows = []
    lat_rows = []
    for rec in records:
        kind = rec.get("kind")
        if kind == "vc_sample":
            for node, (occ, n, f) in enumerate(
                zip(rec["occupancy"], rec["ovc_n"], rec["ovc_f"])
            ):
                vc_rows.append([rec["cycle"], node, occ, n, f])
        elif kind == "link_sample":
            for node, ports in enumerate(rec["flits"]):
                for port, flits in enumerate(ports):
                    link_rows.append([rec["cycle"], node, port, flits])
        elif kind == "dpa_flip":
            flip_rows.append(
                [rec["cycle"], rec["node"], int(rec["native_high"]),
                 rec["ovc_n"], rec["ovc_f"]]
            )
        elif kind == "latency_class":
            lat_rows.append(
                [rec["cls"], rec["count"], rec.get("mean", ""),
                 rec.get("p50", ""), rec.get("p95", ""), rec.get("p99", ""),
                 rec.get("max", "")]
            )

    if vc_rows:
        path = os.path.join(out_dir, f"{stem}_vc_samples.csv")
        _write_csv(path, ["cycle", "node", "occupancy", "ovc_n", "ovc_f"], vc_rows)
        written.append(path)
    if link_rows:
        path = os.path.join(out_dir, f"{stem}_link_samples.csv")
        _write_csv(path, ["cycle", "node", "port", "flits"], link_rows)
        written.append(path)
    if flip_rows:
        path = os.path.join(out_dir, f"{stem}_dpa_flips.csv")
        _write_csv(
            path, ["cycle", "node", "native_high", "ovc_n", "ovc_f"], flip_rows
        )
        written.append(path)
    if lat_rows:
        # Stable class order regardless of record order in the stream.
        order = {cls: i for i, cls in enumerate(LATENCY_CLASSES)}
        lat_rows.sort(key=lambda r: order.get(r[0], len(order)))
        path = os.path.join(out_dir, f"{stem}_latency.csv")
        _write_csv(
            path, ["class", "count", "mean", "p50", "p95", "p99", "max"], lat_rows
        )
        written.append(path)
    return written
