"""Priority-class job scheduler with bounded-queue admission control.

Scheduling policy (deliberately boring, therefore explainable):

* three priority classes — ``high`` > ``normal`` > ``low``;
* strict priority across classes: a queued high job is always dispatched
  before any queued normal job, regardless of arrival order;
* FIFO within a class: same-class jobs run in submission order;
* no preemption: a running low job is never paused for a late high job
  (cells are short; the high job simply goes first among the *queued*).

Admission control is a single bounded queue across all classes: when
``max_queued`` jobs are already waiting, :meth:`PriorityScheduler.submit`
raises :class:`QueueFull` carrying a ``retry_after_s`` hint, which the
daemon turns into an HTTP 429 + ``Retry-After``. Bounding the queue is
what produces *backpressure* instead of unbounded memory growth — the
same reasoning the NoC applies to VC buffers and credits.

The scheduler is plain synchronous data structures (deques + a dict), so
it unit-tests without an event loop; the daemon serializes access from
its single asyncio thread.
"""

from __future__ import annotations

import collections

from repro.service.protocol import PRIORITIES, JobRecord
from repro.util.errors import ReproError

__all__ = ["PriorityScheduler", "QueueFull"]


class QueueFull(ReproError):
    """Admission refused: the bounded queue is at capacity (HTTP 429)."""

    def __init__(self, message: str, retry_after_s: float):
        super().__init__(message)
        self.retry_after_s = retry_after_s


class PriorityScheduler:
    """Bounded multi-class FIFO queue of :class:`JobRecord` ids."""

    def __init__(self, max_queued: int = 64, retry_after_s: float = 2.0):
        if max_queued < 1:
            raise ValueError(f"max_queued must be >= 1, got {max_queued}")
        self.max_queued = max_queued
        self.retry_after_s = retry_after_s
        self._queues: dict[str, collections.deque[str]] = {
            p: collections.deque() for p in PRIORITIES
        }
        #: jobs dispatched and not yet reported finished
        self.running: set[str] = set()
        #: dispatch counter (stamped into JobRecord.start_seq)
        self.dispatched = 0

    @property
    def queued(self) -> int:
        return sum(len(q) for q in self._queues.values())

    def submit(self, job: JobRecord) -> int:
        """Enqueue; returns the job's position in its class (0-based).

        Raises :class:`QueueFull` when the global bound is hit — the
        caller maps that to 429 with ``Retry-After``.
        """
        if self.queued >= self.max_queued:
            raise QueueFull(
                f"queue full ({self.queued}/{self.max_queued} jobs waiting); "
                f"retry in {self.retry_after_s:g}s",
                retry_after_s=self.retry_after_s,
            )
        queue = self._queues[job.priority]  # priority validated by JobSpec
        queue.append(job.id)
        return len(queue) - 1

    def requeue(self, job: JobRecord) -> None:
        """Re-admit a recovered job, bypassing the admission bound.

        Jobs in the recovery set were accepted before the restart; the
        bound gates *new* work, and rejecting previously-accepted jobs
        would turn a restart into data loss.
        """
        self._queues[job.priority].append(job.id)

    def next_job(self) -> str | None:
        """Dispatch the next job id (or None): class order, FIFO within."""
        for priority in PRIORITIES:
            queue = self._queues[priority]
            if queue:
                job_id = queue.popleft()
                self.running.add(job_id)
                self.dispatched += 1
                return job_id
        return None

    def finish(self, job_id: str) -> None:
        self.running.discard(job_id)

    def cancel(self, job_id: str) -> bool:
        """Remove a *queued* job; False if it is not waiting (running/done)."""
        for queue in self._queues.values():
            try:
                queue.remove(job_id)
            except ValueError:
                continue
            return True
        return False

    def position(self, job_id: str) -> int | None:
        """Global dispatch distance of a queued job (0 = next), else None."""
        ahead = 0
        for priority in PRIORITIES:
            for queued_id in self._queues[priority]:
                if queued_id == job_id:
                    return ahead
                ahead += 1
        return None

    def snapshot(self) -> dict:
        """Queue depths for health/metrics endpoints."""
        return {
            "queued": self.queued,
            "running": len(self.running),
            "max_queued": self.max_queued,
            "by_priority": {p: len(q) for p, q in self._queues.items()},
            "dispatched": self.dispatched,
        }
