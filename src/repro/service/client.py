"""Blocking HTTP client for the sweep service (stdlib ``http.client``).

Two layers:

* :class:`ServiceClient` — one method per daemon endpoint, plus a
  :meth:`~ServiceClient.stream_results` generator that yields stream
  records (``cell`` / ``job_end``) as the daemon flushes them.
* :func:`run_cells_via_service` — the drop-in execution path behind
  ``run_cells_detailed(..., service=...)``: encode the cells, submit,
  stream, decode, and hand back the same ``(results, report)`` pair the
  direct engine returns, in the same cell order. Cache and obs/guard
  directory paths are resolved to absolute paths before submission so
  the daemon (a different process, possibly a different cwd) writes the
  exact files a direct run would — that plus the invertible codec is the
  whole bit-identity story on the client side.

Backpressure: a 429 from the daemon carries ``Retry-After``; submission
sleeps and retries a bounded number of times before surfacing
:class:`ServiceError`, so sweeps queued behind a busy daemon degrade to
waiting, not failing.
"""

from __future__ import annotations

import dataclasses
import http.client
import json
import os
import time
import urllib.parse

from repro.service.protocol import (
    TERMINAL_STATES,
    JobSpec,
    ProtocolError,
    cell_result_from_wire,
    report_from_wire,
)
from repro.util.errors import ReproError

__all__ = [
    "ServiceClient",
    "ServiceError",
    "ServiceSpec",
    "resolve_service_url",
    "run_cells_via_service",
]


class ServiceError(ReproError):
    """The daemon is unreachable, rejected a request, or a job failed."""

    def __init__(self, message: str, status: int | None = None):
        super().__init__(message)
        self.status = status


@dataclasses.dataclass(frozen=True)
class ServiceSpec:
    """How to reach the service: what ``--service``/``--priority`` carry.

    ``url`` may be an ``http://host:port`` base URL or a path to a
    daemon store directory, whose ``endpoint`` file names the live URL
    (handy with ``--port 0``).
    """

    url: str
    priority: str = "normal"
    #: max 429-retry attempts before submission gives up
    submit_retries: int = 10
    #: cap on a single Retry-After sleep, seconds
    max_retry_after_s: float = 10.0


def resolve_service_url(url: str) -> str:
    """Turn a ``--service`` value into a base URL.

    Accepts a literal ``http://`` URL, or a daemon ``--store`` directory
    (or its ``endpoint`` file) to follow the advertised endpoint.
    """
    if url.startswith("http://") or url.startswith("https://"):
        return url.rstrip("/")
    path = url[: -len("/endpoint")] if url.endswith("/endpoint") else url
    if os.path.isdir(path) or os.path.isfile(os.path.join(path, "endpoint")):
        from repro.service.jobstore import JobStore

        advertised = JobStore(path).read_endpoint()
        if advertised is None:
            raise ServiceError(
                f"no endpoint file under {path!r}; is the daemon running?"
            )
        return advertised.rstrip("/")
    raise ServiceError(
        f"--service expects an http:// URL or a daemon store directory, got {url!r}"
    )


class ServiceClient:
    """Thin blocking wrapper over the daemon's HTTP+JSONL API."""

    def __init__(self, url: str, timeout: float = 30.0):
        base = resolve_service_url(url)
        parsed = urllib.parse.urlsplit(base)
        if parsed.scheme != "http" or not parsed.hostname:
            raise ServiceError(f"unsupported service URL {base!r}")
        self.url = base
        self.host = parsed.hostname
        self.port = parsed.port or 80
        self.timeout = timeout

    # -- plumbing ----------------------------------------------------------------

    def _connect(self, timeout: float | None) -> http.client.HTTPConnection:
        return http.client.HTTPConnection(self.host, self.port, timeout=timeout)

    def _request(self, method: str, path: str, body: dict | None = None):
        """One request/response; returns (status, headers, parsed JSON)."""
        conn = self._connect(self.timeout)
        try:
            payload = None
            headers = {"Connection": "close"}
            if body is not None:
                payload = json.dumps(body, sort_keys=True).encode("utf-8")
                headers["Content-Type"] = "application/json"
            try:
                conn.request(method, path, body=payload, headers=headers)
                resp = conn.getresponse()
                raw = resp.read()
            except OSError as exc:
                raise ServiceError(
                    f"service at {self.url} unreachable ({path}): {exc}"
                ) from exc
            try:
                parsed = json.loads(raw.decode("utf-8")) if raw else {}
            except ValueError:
                parsed = {"error": raw.decode("utf-8", "replace").strip()}
            return resp.status, dict(resp.getheaders()), parsed
        finally:
            conn.close()

    @staticmethod
    def _check(status: int, payload: dict, what: str) -> dict:
        if status >= 400:
            raise ServiceError(
                f"{what} failed: HTTP {status}: {payload.get('error', payload)}",
                status=status,
            )
        return payload

    # -- endpoints ---------------------------------------------------------------

    def health(self) -> dict:
        status, _, payload = self._request("GET", "/v1/health")
        return self._check(status, payload, "health check")

    def version(self) -> dict:
        status, _, payload = self._request("GET", "/v1/version")
        return self._check(status, payload, "version query")

    def jobs(self) -> list[dict]:
        status, _, payload = self._request("GET", "/v1/jobs")
        return self._check(status, payload, "job listing").get("jobs", [])

    def job(self, job_id: str) -> dict:
        status, _, payload = self._request("GET", f"/v1/jobs/{job_id}")
        return self._check(status, payload, f"status of {job_id}")

    def cancel(self, job_id: str) -> dict:
        status, _, payload = self._request("POST", f"/v1/jobs/{job_id}/cancel")
        return self._check(status, payload, f"cancel of {job_id}")

    def pause(self) -> dict:
        status, _, payload = self._request("POST", "/v1/control/pause")
        return self._check(status, payload, "pause")

    def resume(self) -> dict:
        status, _, payload = self._request("POST", "/v1/control/resume")
        return self._check(status, payload, "resume")

    def submit(self, spec: JobSpec, retries: int = 10, max_sleep_s: float = 10.0):
        """Submit a job; honors 429 + Retry-After. Returns the 201 body."""
        wire = spec.to_wire()
        attempt = 0
        while True:
            status, headers, payload = self._request("POST", "/v1/jobs", body=wire)
            if status != 429:
                return self._check(status, payload, "job submission")
            attempt += 1
            if attempt > retries:
                raise ServiceError(
                    f"service at {self.url} still at capacity after "
                    f"{retries} retries: {payload.get('error', '')}",
                    status=429,
                )
            retry_after = headers.get("Retry-After") or headers.get("retry-after")
            try:
                sleep_s = float(retry_after)
            except (TypeError, ValueError):
                sleep_s = 1.0
            time.sleep(min(max(sleep_s, 0.05), max_sleep_s))

    def stream_results(self, job_id: str):
        """Yield stream records (dicts) until the terminal ``job_end``.

        Reads the unframed JSONL response line by line; the daemon holds
        the connection open for non-terminal jobs and flushes each record
        as it lands, so iteration blocks on live progress. No read
        timeout is applied — jobs are allowed to be long.
        """
        conn = self._connect(None)
        try:
            try:
                conn.request(
                    "GET",
                    f"/v1/jobs/{job_id}/results",
                    headers={"Connection": "close"},
                )
                resp = conn.getresponse()
            except OSError as exc:
                raise ServiceError(
                    f"service at {self.url} unreachable (results of {job_id}): {exc}"
                ) from exc
            if resp.status >= 400:
                raw = resp.read()
                try:
                    detail = json.loads(raw.decode("utf-8")).get("error", "")
                except ValueError:
                    detail = raw.decode("utf-8", "replace").strip()
                raise ServiceError(
                    f"results of {job_id} failed: HTTP {resp.status}: {detail}",
                    status=resp.status,
                )
            for raw_line in resp:
                line = raw_line.strip()
                if not line:
                    continue
                try:
                    rec = json.loads(line.decode("utf-8"))
                except ValueError as exc:
                    raise ServiceError(
                        f"undecodable stream line from {job_id}: {line[:200]!r}"
                    ) from exc
                yield rec
                if isinstance(rec, dict) and rec.get("kind") == "job_end":
                    return
        finally:
            conn.close()

    def wait(self, job_id: str, poll_s: float = 0.2, timeout: float | None = None):
        """Poll until the job reaches a terminal state; returns its status."""
        deadline = None if timeout is None else time.monotonic() + timeout
        while True:
            status = self.job(job_id)
            if status.get("state") in TERMINAL_STATES:
                return status
            if deadline is not None and time.monotonic() > deadline:
                raise ServiceError(
                    f"job {job_id} not terminal after {timeout:g}s "
                    f"(state={status.get('state')!r})"
                )
            time.sleep(poll_s)


def _abspath_config(cfg, attr: str = "dir"):
    """Rebase a config's directory field to an absolute path (or pass through)."""
    if cfg is None:
        return None
    value = getattr(cfg, attr, None)
    if value is None or os.path.isabs(value):
        return cfg
    return dataclasses.replace(cfg, **{attr: os.path.abspath(value)})


def run_cells_via_service(
    service,
    cells,
    jobs: int = 1,
    cache=None,
    policy=None,
    use_journal: bool = True,
    obs=None,
    guard=None,
    on_result=None,
):
    """Execute a sweep through the daemon; same contract as the direct path.

    Returns ``(list[CellResult], ExecutionReport)`` with results in cell
    order. ``service`` is a :class:`ServiceSpec` or a bare URL/store
    path. The per-job parallelism (``jobs``), cache directory, fault
    policy, and obs/guard configs travel with the job and are applied by
    the daemon's engine verbatim.
    """
    if isinstance(service, str):
        service = ServiceSpec(url=service)
    cells = list(cells)
    cache_dir = getattr(cache, "root", cache)
    if cache_dir is not None:
        cache_dir = os.path.abspath(os.fspath(cache_dir))
    spec = JobSpec(
        cells=cells,
        priority=service.priority,
        jobs=jobs,
        cache=cache_dir,
        use_journal=use_journal,
        policy=policy,
        obs=_abspath_config(obs),
        guard=_abspath_config(guard),
    )
    client = ServiceClient(service.url)
    submitted = client.submit(
        spec,
        retries=service.submit_retries,
        max_sleep_s=service.max_retry_after_s,
    )
    job_id = submitted["id"]

    by_index: dict[int, object] = {}
    end = None
    for rec in client.stream_results(job_id):
        kind = rec.get("kind")
        if kind == "cell":
            try:
                result = cell_result_from_wire(rec)
            except (ProtocolError, KeyError, TypeError) as exc:
                raise ServiceError(
                    f"bad cell record from job {job_id}: {exc}"
                ) from exc
            if result.index in by_index:
                continue  # replay/live overlap; first copy wins
            by_index[result.index] = result
            if on_result is not None:
                on_result(result)
        elif kind == "job_end":
            end = rec
    if end is None:
        raise ServiceError(
            f"result stream of job {job_id} ended without a job_end record"
        )
    state = end.get("state")
    if state != "done":
        raise ServiceError(
            f"job {job_id} finished {state!r}: {end.get('error') or 'no detail'}"
        )
    missing = [i for i in range(len(cells)) if i not in by_index]
    if missing:
        raise ServiceError(
            f"job {job_id} completed but cells {missing} have no result record"
        )
    if end.get("report") is None:
        raise ServiceError(f"job {job_id} job_end carries no execution report")
    report = report_from_wire(end["report"])
    results = [by_index[i] for i in range(len(cells))]
    return results, report
