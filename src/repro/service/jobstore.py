"""Durable job store: append-only journal + per-job result streams.

Layout under the store root::

    jobs.jsonl            append-only job journal (submit/state events)
    results/<job>.jsonl   per-job result stream (cell records + job_end)
    endpoint              the daemon's bound URL (written on startup)

Both JSONL files use the :class:`~repro.experiments.cache.SweepJournal`
framing discipline — every append is newline-framed (leading *and*
trailing ``\\n``) and fsynced, so a torn write damages at most the line it
interrupted, and that line fails to parse and is skipped on replay. A
daemon killed at any instant therefore recovers to a consistent state:
the journal replays to the last durable job event, and a result stream
replays to the last durable cell record (an interrupted cell is simply
re-run — completed cells are never duplicated because recovery reads the
stream before scheduling the remainder).

The journal records two event kinds::

    {"event": "submit", "v": 1, "job": {...full record incl. spec...}}
    {"event": "state",  "v": 1, "id": ..., "state": ..., ...extras}

Replay folds state events over submit events; jobs whose folded state is
non-terminal (``queued``/``running``) are the daemon's recovery set.
Result streams hold the same ``cell`` records the streaming API serves
(:func:`~repro.service.protocol.cell_result_to_wire`), so a late client
can replay a finished job's stream purely from disk.
"""

from __future__ import annotations

import json
import os
import pathlib

from repro.service.protocol import PROTOCOL_VERSION, JobRecord, ProtocolError

__all__ = ["JobStore"]


def _append_framed(path: pathlib.Path, obj: dict) -> None:
    """Newline-framed, fsynced single-record append (torn-write safe)."""
    path.parent.mkdir(parents=True, exist_ok=True)
    with open(path, "a", encoding="utf-8") as fh:
        fh.write("\n" + json.dumps(obj, sort_keys=True) + "\n")
        fh.flush()
        os.fsync(fh.fileno())


def _iter_lines(path: pathlib.Path):
    """Parse a framed JSONL file, skipping blanks and torn lines."""
    try:
        text = path.read_text(encoding="utf-8")
    except OSError:
        return
    for line in text.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            yield json.loads(line)
        except ValueError:
            continue  # torn tail from an interrupted append


class JobStore:
    """Filesystem-backed durability for the sweep service."""

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.journal_path = self.root / "jobs.jsonl"
        self.results_dir = self.root / "results"
        #: job ids whose journaled spec failed to decode on the last recover()
        self.undecodable: list[str] = []

    # -- journal ------------------------------------------------------------------

    def append_submit(self, record: JobRecord) -> None:
        _append_framed(
            self.journal_path,
            {"event": "submit", "v": PROTOCOL_VERSION, "job": record.submit_wire()},
        )

    def append_state(self, job_id: str, state: str, **extra) -> None:
        rec = {"event": "state", "v": PROTOCOL_VERSION, "id": job_id, "state": state}
        rec.update(extra)
        _append_framed(self.journal_path, rec)

    def recover(self) -> dict[str, JobRecord]:
        """Replay the journal into the last-known record per job, by id.

        Submit events for records that no longer decode (e.g. a cell
        type from a removed module) are dropped with their job id noted
        in :attr:`undecodable` rather than failing the whole recovery.
        """
        jobs: dict[str, JobRecord] = {}
        self.undecodable: list[str] = []
        for rec in _iter_lines(self.journal_path):
            if not isinstance(rec, dict):
                continue
            event = rec.get("event")
            if event == "submit":
                payload = rec.get("job")
                if not isinstance(payload, dict):
                    continue
                try:
                    job = JobRecord.from_submit_wire(payload)
                except (ProtocolError, KeyError, TypeError, ValueError):
                    job_id = payload.get("id")
                    if isinstance(job_id, str):
                        self.undecodable.append(job_id)
                    continue
                jobs[job.id] = job
            elif event == "state":
                job = jobs.get(rec.get("id"))
                if job is None:
                    continue
                state = rec.get("state")
                if isinstance(state, str):
                    job.state = state
                for attr in ("started_at", "finished_at", "start_seq", "error"):
                    if attr in rec:
                        setattr(job, attr, rec[attr])
        # completed counters come from the durable result streams, not the
        # journal, so they can never claim more than what is replayable
        for job in jobs.values():
            job.completed = len(self.completed_indices(job.id))
        return jobs

    def next_job_number(self) -> int:
        """1 + the highest job number ever journaled (ids are ``j<N>``)."""
        highest = 0
        for rec in _iter_lines(self.journal_path):
            if not isinstance(rec, dict) or rec.get("event") != "submit":
                continue
            job_id = (rec.get("job") or {}).get("id", "")
            if isinstance(job_id, str) and job_id.startswith("j"):
                try:
                    highest = max(highest, int(job_id[1:]))
                except ValueError:
                    continue
        return highest + 1

    # -- result streams ----------------------------------------------------------

    def result_path(self, job_id: str) -> pathlib.Path:
        return self.results_dir / f"{job_id}.jsonl"

    def append_result(self, job_id: str, record: dict) -> None:
        _append_framed(self.result_path(job_id), record)

    def result_records(self, job_id: str) -> list[dict]:
        """All durable records of a job's stream, in append order."""
        return [r for r in _iter_lines(self.result_path(job_id)) if isinstance(r, dict)]

    def completed_indices(self, job_id: str) -> set[int]:
        """Cell indices with a durable result record (never to re-run)."""
        return {
            r["index"]
            for r in self.result_records(job_id)
            if r.get("kind") == "cell" and isinstance(r.get("index"), int)
        }

    # -- endpoint advertisement ---------------------------------------------------

    def write_endpoint(self, url: str) -> None:
        """Advertise the bound URL (atomic; read by clients and tests)."""
        self.root.mkdir(parents=True, exist_ok=True)
        tmp = self.root / "endpoint.tmp"
        tmp.write_text(url + "\n", encoding="utf-8")
        os.replace(tmp, self.root / "endpoint")

    def read_endpoint(self) -> str | None:
        try:
            return (self.root / "endpoint").read_text(encoding="utf-8").strip() or None
        except OSError:
            return None
