"""The sweep-service daemon: ``python -m repro.service.daemon``.

A single-process asyncio service that owns the experiment worker pool and
serves a localhost HTTP+JSONL API::

    GET  /v1/health                 liveness + queue depths + version
    GET  /v1/version                version/git-rev/protocol stamp
    POST /v1/jobs                   submit a job (JobSpec wire form)
                                    -> 201 {id, state, position}
                                    -> 429 + Retry-After on backpressure
    GET  /v1/jobs                   job listing (spec-free status records)
    GET  /v1/jobs/<id>              one job's status
    GET  /v1/jobs/<id>/results      JSONL stream: replay of durable cell
                                    records, then live tail to job_end
    POST /v1/jobs/<id>/cancel       cancel a *queued* job (409 otherwise)
    POST /v1/control/pause|resume   hold / release dispatch (testing, ops)

Execution model: the dispatch loop pulls the highest-priority queued job
(FIFO within class) whenever a concurrency slot is free and runs the
unmodified :func:`~repro.experiments.parallel.run_cells_detailed` in a
worker thread — the daemon adds scheduling, durability, and streaming
*around* the engine, never a different engine, which is what keeps
service results bit-identical to direct runs (same cache keys, same
fault-policy semantics, byte-identical obs JSONL).

Durability: every submit/state transition is journaled and every
completed cell appended to the job's result stream *before* clients see
it (:mod:`repro.service.jobstore`). On restart the daemon replays the
journal, re-enqueues every non-terminal job in original submission
order, and re-runs only cells without a durable result record — a killed
daemon never duplicates completed work and never loses an accepted job.

The HTTP implementation is deliberately minimal (stdlib asyncio only):
one request per connection, ``Connection: close``, streaming responses
are unframed JSONL flushed per record. The daemon binds 127.0.0.1 by
default and treats the socket as a local trust boundary, like the
process-pool pipes it wraps.
"""

from __future__ import annotations

import argparse
import asyncio
import dataclasses
import json
import time

from repro._version import version_blurb
from repro.experiments.parallel import run_cells_detailed
from repro.service.jobstore import JobStore
from repro.service.protocol import (
    PROTOCOL_VERSION,
    JobRecord,
    JobSpec,
    ProtocolError,
    cell_result_to_wire,
    report_to_wire,
    stamp,
)
from repro.service.scheduler import PriorityScheduler, QueueFull

__all__ = ["SweepDaemon", "main"]

_MAX_BODY_BYTES = 64 * 1024 * 1024
_MAX_HEADER_BYTES = 64 * 1024

#: queue sentinel that tells a streaming subscriber to stop tailing
_STREAM_END = None


class _HttpError(Exception):
    def __init__(self, status: int, message: str, headers: dict | None = None):
        super().__init__(message)
        self.status = status
        self.headers = headers or {}


_REASONS = {
    200: "OK",
    201: "Created",
    202: "Accepted",
    400: "Bad Request",
    404: "Not Found",
    405: "Method Not Allowed",
    409: "Conflict",
    413: "Payload Too Large",
    429: "Too Many Requests",
    500: "Internal Server Error",
}


class SweepDaemon:
    """State + request handling for one daemon process."""

    def __init__(
        self,
        store: JobStore,
        host: str = "127.0.0.1",
        port: int = 0,
        max_queued: int = 64,
        concurrency: int = 1,
        paused: bool = False,
    ):
        self.store = store
        self.host = host
        self.port = port
        self.concurrency = max(1, concurrency)
        self.paused = paused
        self.scheduler = PriorityScheduler(max_queued=max_queued)
        self.jobs: dict[str, JobRecord] = {}
        self._subscribers: dict[str, set[asyncio.Queue]] = {}
        self._active = 0
        self._next_number = 1
        self._wake: asyncio.Event | None = None
        self._started = time.time()
        self.url: str | None = None

    # -- lifecycle ---------------------------------------------------------------

    def recover(self) -> int:
        """Replay the journal; re-enqueue non-terminal jobs. Returns count."""
        self.jobs = self.store.recover()
        self._next_number = self.store.next_job_number()
        requeued = 0
        for job in self.jobs.values():  # journal order == submission order
            if job.terminal:
                continue
            if job.state != "queued":
                job.state = "queued"
                self.store.append_state(job.id, "queued", recovered=True)
            self.scheduler.requeue(job)  # bypasses the admission bound
            requeued += 1
        return requeued

    async def serve(self) -> None:
        """Bind, advertise the endpoint, and run until cancelled."""
        self._wake = asyncio.Event()
        server = await asyncio.start_server(self._handle_conn, self.host, self.port)
        bound_port = server.sockets[0].getsockname()[1]
        self.url = f"http://{self.host}:{bound_port}"
        self.store.write_endpoint(self.url)
        print(f"repro sweep service listening on {self.url}", flush=True)
        dispatcher = asyncio.ensure_future(self._dispatch_loop())
        try:
            async with server:
                await server.serve_forever()
        finally:
            dispatcher.cancel()

    # -- dispatch ----------------------------------------------------------------

    def _kick(self) -> None:
        if self._wake is not None:
            self._wake.set()

    async def _dispatch_loop(self) -> None:
        while True:
            self._wake.clear()
            while not self.paused and self._active < self.concurrency:
                job_id = self.scheduler.next_job()
                if job_id is None:
                    break
                job = self.jobs[job_id]
                job.state = "running"
                job.started_at = time.time()
                job.start_seq = self.scheduler.dispatched
                self.store.append_state(
                    job.id,
                    "running",
                    started_at=job.started_at,
                    start_seq=job.start_seq,
                )
                self._active += 1
                asyncio.ensure_future(self._run_job(job))
            await self._wake.wait()

    async def _run_job(self, job: JobRecord) -> None:
        loop = asyncio.get_running_loop()
        spec = job.spec
        done_indices = self.store.completed_indices(job.id)
        remaining = [c for i, c in enumerate(spec.cells) if i not in done_indices]
        # engine indices are remainder-relative; map back to spec positions
        spec_index = [i for i in range(len(spec.cells)) if i not in done_indices]
        seq = len(self.store.result_records(job.id))

        def publish(result) -> None:
            # Runs on the event loop: seq assignment, the durable append,
            # and subscriber fan-out stay ordered and race-free.
            nonlocal seq
            result = dataclasses.replace(result, index=spec_index[result.index])
            rec = cell_result_to_wire(result, seq)
            seq += 1
            self.store.append_result(job.id, rec)
            job.completed += 1
            self._fanout(job.id, rec)

        def on_result(result) -> None:
            # Called from the executor thread (or its pool workers'
            # parent); hop to the loop so publish() is serialized.
            loop.call_soon_threadsafe(publish, result)

        try:
            if remaining:
                _results, report = await asyncio.to_thread(
                    run_cells_detailed,
                    remaining,
                    jobs=spec.jobs,
                    cache=spec.cache,
                    policy=spec.policy,
                    use_journal=spec.use_journal,
                    obs=spec.obs,
                    guard=spec.guard,
                    on_result=on_result,
                )
            else:
                from repro.experiments.parallel import ExecutionReport

                report = ExecutionReport(cells=0, jobs=spec.jobs)
            # Fold pre-crash completions into the report the client sees.
            if done_indices:
                report.cells = len(spec.cells)
                report.resumed += len(done_indices)
            job.state = "done"
            job.error = None
        except Exception as exc:  # engine-level failure, not a cell failure
            report = None
            job.state = "failed"
            job.error = f"{type(exc).__name__}: {exc}"
        job.finished_at = time.time()
        self.store.append_state(
            job.id, job.state, finished_at=job.finished_at, error=job.error
        )
        end = {
            "kind": "job_end",
            "id": job.id,
            "state": job.state,
            "error": job.error,
            "report": report_to_wire(report) if report is not None else None,
            "job": job.status_wire(),
        }
        self.store.append_result(job.id, end)
        self._fanout(job.id, end)
        self._close_stream(job.id)
        self._active -= 1
        self.scheduler.finish(job.id)
        self._kick()

    # -- streaming fan-out -------------------------------------------------------

    def _fanout(self, job_id: str, rec: dict) -> None:
        for queue in self._subscribers.get(job_id, ()):
            queue.put_nowait(rec)

    def _close_stream(self, job_id: str) -> None:
        for queue in self._subscribers.pop(job_id, ()):
            queue.put_nowait(_STREAM_END)

    # -- HTTP plumbing -----------------------------------------------------------

    async def _handle_conn(self, reader, writer) -> None:
        try:
            try:
                method, path, body = await self._read_request(reader)
                await self._route(method, path, body, writer)
            except _HttpError as exc:
                await self._send_json(
                    writer, exc.status, {"error": str(exc)}, extra=exc.headers
                )
            except (ConnectionError, asyncio.IncompleteReadError):
                pass
            except Exception as exc:  # never take the daemon down for a request
                try:
                    await self._send_json(
                        writer, 500, {"error": f"{type(exc).__name__}: {exc}"}
                    )
                except Exception:
                    pass
        finally:
            try:
                writer.close()
                await writer.wait_closed()
            except Exception:
                pass

    async def _read_request(self, reader):
        try:
            head = await reader.readuntil(b"\r\n\r\n")
        except asyncio.LimitOverrunError:
            raise _HttpError(413, "headers too large") from None
        if len(head) > _MAX_HEADER_BYTES:
            raise _HttpError(413, "headers too large")
        lines = head.decode("latin-1").split("\r\n")
        try:
            method, path, _version = lines[0].split(" ", 2)
        except ValueError:
            raise _HttpError(400, f"malformed request line {lines[0]!r}") from None
        headers = {}
        for line in lines[1:]:
            if ":" in line:
                name, _, value = line.partition(":")
                headers[name.strip().lower()] = value.strip()
        length = int(headers.get("content-length", 0) or 0)
        if length > _MAX_BODY_BYTES:
            raise _HttpError(413, f"body of {length} bytes exceeds limit")
        body = await reader.readexactly(length) if length else b""
        return method.upper(), path.split("?", 1)[0], body

    async def _send_json(self, writer, status, payload, extra=None) -> None:
        body = (json.dumps(payload, sort_keys=True) + "\n").encode("utf-8")
        headers = {
            "Content-Type": "application/json",
            "Content-Length": str(len(body)),
            "Connection": "close",
            **(extra or {}),
        }
        writer.write(self._head(status, headers) + body)
        await writer.drain()

    @staticmethod
    def _head(status: int, headers: dict) -> bytes:
        reason = _REASONS.get(status, "Unknown")
        lines = [f"HTTP/1.1 {status} {reason}"]
        lines += [f"{k}: {v}" for k, v in headers.items()]
        return ("\r\n".join(lines) + "\r\n\r\n").encode("latin-1")

    # -- routing -----------------------------------------------------------------

    async def _route(self, method, path, body, writer) -> None:
        parts = [p for p in path.split("/") if p]
        if parts[:1] != ["v1"]:
            raise _HttpError(404, f"unknown path {path!r}")
        tail = parts[1:]
        if tail == ["health"] and method == "GET":
            await self._send_json(writer, 200, self._health())
        elif tail == ["version"] and method == "GET":
            await self._send_json(
                writer, 200, {**stamp(), "protocol": PROTOCOL_VERSION}
            )
        elif tail == ["jobs"] and method == "POST":
            await self._submit(body, writer)
        elif tail == ["jobs"] and method == "GET":
            await self._send_json(
                writer,
                200,
                {"jobs": [j.status_wire() for j in self.jobs.values()]},
            )
        elif len(tail) == 2 and tail[0] == "jobs" and method == "GET":
            job = self._job_or_404(tail[1])
            payload = job.status_wire()
            payload["position"] = self.scheduler.position(job.id)
            await self._send_json(writer, 200, payload)
        elif len(tail) == 3 and tail[:1] == ["jobs"] and tail[2] == "results":
            if method != "GET":
                raise _HttpError(405, "results endpoint is GET-only")
            await self._stream_results(self._job_or_404(tail[1]), writer)
        elif len(tail) == 3 and tail[:1] == ["jobs"] and tail[2] == "cancel":
            if method != "POST":
                raise _HttpError(405, "cancel endpoint is POST-only")
            await self._cancel(self._job_or_404(tail[1]), writer)
        elif tail == ["control", "pause"] and method == "POST":
            self.paused = True
            await self._send_json(writer, 200, {"paused": True})
        elif tail == ["control", "resume"] and method == "POST":
            self.paused = False
            self._kick()
            await self._send_json(writer, 200, {"paused": False})
        else:
            raise _HttpError(404, f"no route for {method} {path!r}")

    def _job_or_404(self, job_id: str) -> JobRecord:
        job = self.jobs.get(job_id)
        if job is None:
            raise _HttpError(404, f"unknown job {job_id!r}")
        return job

    def _health(self) -> dict:
        return {
            "status": "ok",
            "paused": self.paused,
            "uptime_s": round(time.time() - self._started, 3),
            "jobs": len(self.jobs),
            "active": self._active,
            "concurrency": self.concurrency,
            **self.scheduler.snapshot(),
            **stamp(),
            "protocol": PROTOCOL_VERSION,
        }

    async def _submit(self, body: bytes, writer) -> None:
        try:
            payload = json.loads(body.decode("utf-8"))
            spec = JobSpec.from_wire(payload)
        except (ValueError, ProtocolError) as exc:
            raise _HttpError(400, f"bad job spec: {exc}") from None
        job = JobRecord.new(f"j{self._next_number:06d}", spec)
        try:
            position = self.scheduler.submit(job)
        except QueueFull as exc:
            raise _HttpError(
                429,
                str(exc),
                headers={"Retry-After": f"{exc.retry_after_s:g}"},
            ) from None
        self._next_number += 1
        self.jobs[job.id] = job
        self.store.append_submit(job)
        self._kick()
        await self._send_json(
            writer,
            201,
            {
                "id": job.id,
                "state": job.state,
                "priority": job.priority,
                "cells": len(spec.cells),
                "position": position,
            },
        )

    async def _cancel(self, job: JobRecord, writer) -> None:
        if job.terminal:
            raise _HttpError(409, f"job {job.id} already {job.state}")
        if not self.scheduler.cancel(job.id):
            raise _HttpError(409, f"job {job.id} is running; cannot cancel")
        job.state = "cancelled"
        job.finished_at = time.time()
        self.store.append_state(job.id, "cancelled", finished_at=job.finished_at)
        end = {
            "kind": "job_end",
            "id": job.id,
            "state": "cancelled",
            "error": None,
            "report": None,
            "job": job.status_wire(),
        }
        self.store.append_result(job.id, end)
        self._fanout(job.id, end)
        self._close_stream(job.id)
        await self._send_json(writer, 200, job.status_wire())

    async def _stream_results(self, job: JobRecord, writer) -> None:
        # Subscribe before replaying the durable records: publish() runs
        # on this same loop, so nothing can land between the two steps,
        # and seq-dedup below makes the overlap harmless regardless.
        queue: asyncio.Queue | None = None
        if not job.terminal:
            queue = asyncio.Queue()
            self._subscribers.setdefault(job.id, set()).add(queue)
        try:
            writer.write(
                self._head(
                    200,
                    {"Content-Type": "application/x-ndjson", "Connection": "close"},
                )
            )
            seen_seq = set()
            ended = False
            for rec in self.store.result_records(job.id):
                if rec.get("kind") == "cell":
                    seen_seq.add(rec.get("seq"))
                elif rec.get("kind") == "job_end":
                    ended = True
                writer.write((json.dumps(rec, sort_keys=True) + "\n").encode("utf-8"))
            await writer.drain()
            while queue is not None and not ended:
                rec = await queue.get()
                if rec is _STREAM_END:
                    break
                if rec.get("kind") == "cell" and rec.get("seq") in seen_seq:
                    continue
                if rec.get("kind") == "job_end":
                    ended = True
                writer.write((json.dumps(rec, sort_keys=True) + "\n").encode("utf-8"))
                await writer.drain()
        finally:
            if queue is not None:
                subs = self._subscribers.get(job.id)
                if subs is not None:
                    subs.discard(queue)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.daemon",
        description="Long-lived sweep service: accepts, prioritizes, and "
        "streams experiment sweeps over a localhost HTTP+JSONL API.",
    )
    parser.add_argument(
        "--store",
        default=".repro-service",
        metavar="DIR",
        help="job-store directory (journal, result streams, endpoint file); "
        "restarting against the same store recovers unfinished jobs",
    )
    parser.add_argument("--host", default="127.0.0.1", help="bind address")
    parser.add_argument(
        "--port",
        type=int,
        default=8642,
        help="TCP port (0 = ephemeral; the bound URL is printed and written "
        "to <store>/endpoint either way)",
    )
    parser.add_argument(
        "--max-queued",
        type=int,
        default=64,
        metavar="N",
        help="admission bound: queued jobs beyond N are rejected with "
        "HTTP 429 + Retry-After (default 64)",
    )
    parser.add_argument(
        "--concurrency",
        type=int,
        default=1,
        metavar="N",
        help="jobs executed simultaneously (default 1; each job still fans "
        "its cells over its own --jobs worker processes)",
    )
    parser.add_argument(
        "--paused",
        action="store_true",
        help="start with dispatch held; release via POST /v1/control/resume",
    )
    parser.add_argument(
        "--version", action="version", version=version_blurb("repro-service")
    )
    args = parser.parse_args(argv)

    daemon = SweepDaemon(
        JobStore(args.store),
        host=args.host,
        port=args.port,
        max_queued=args.max_queued,
        concurrency=args.concurrency,
        paused=args.paused,
    )
    recovered = daemon.recover()
    if recovered:
        print(f"recovered {recovered} unfinished job(s) from {args.store}", flush=True)
    try:
        asyncio.run(daemon.serve())
    except KeyboardInterrupt:
        pass
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
