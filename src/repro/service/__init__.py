"""repro.service — simulation-as-a-service for experiment sweeps.

The batch CLIs under :mod:`repro.experiments` run one sweep and exit. This
package turns the same execution engine into a long-lived local service:

* :mod:`repro.service.daemon` — an asyncio daemon
  (``python -m repro.service.daemon``) that owns the worker pool and
  exposes a localhost HTTP+JSONL API for submitting sweep jobs,
* :mod:`repro.service.scheduler` — priority-class admission and dispatch
  (``high``/``normal``/``low``, FIFO within a class, bounded queue with
  429-style backpressure),
* :mod:`repro.service.jobstore` — a durable append-only job journal and
  per-job result streams (same torn-write-tolerant framing as
  :class:`~repro.experiments.cache.SweepJournal`), crash-recoverable on
  daemon restart,
* :mod:`repro.service.protocol` — the schema-versioned JSON wire format
  (invertible codec for cells, fault policies, obs/guard configs, and
  results — the result payload *is* the cache payload format),
* :mod:`repro.service.client` — the thin blocking client every figure CLI
  routes through via ``--service URL``, plus
  ``python -m repro.service.submit`` for ops (health, list, watch,
  cancel, run).

The invariant the whole package is built around: a sweep submitted
through the service is **bit-identical** to the same sweep run directly —
same cells, same cache keys (hits shared both ways), same
:class:`~repro.experiments.parallel.FaultPolicy` semantics, byte-identical
obs JSONL — because the daemon executes the unmodified
:func:`~repro.experiments.parallel.run_cells_detailed`. See
``docs/SERVICE.md`` for the API and lifecycle.
"""

from repro.service.client import ServiceClient, ServiceError, ServiceSpec
from repro.service.protocol import PRIORITIES, PROTOCOL_VERSION, JobRecord

__all__ = [
    "PRIORITIES",
    "PROTOCOL_VERSION",
    "JobRecord",
    "ServiceClient",
    "ServiceError",
    "ServiceSpec",
]
