"""Wire protocol for the sweep service: codec, job records, priorities.

Everything the daemon and client exchange — and everything the job store
persists — is JSON, framed as one object per line (JSONL) on streaming
endpoints. Two codecs cover the payloads:

* **Value codec** (:func:`encode_value` / :func:`decode_value`) — an
  *invertible* encoding of the object graph a
  :class:`~repro.experiments.parallel.Cell` can contain: scalars, lists,
  tuples, dicts, enums, and dataclasses from the ``repro`` package. It
  is the same type universe :func:`repro.experiments.cache.canonicalize`
  accepts (anything cacheable is transmittable), but unlike
  ``canonicalize`` it round-trips: ``decode_value(encode_value(cell))``
  compares equal to ``cell`` and hashes to the same
  :func:`~repro.experiments.cache.cache_key`, which is what makes
  service-side and direct execution share one cache. Decoding only
  instantiates enums/dataclasses imported from ``repro.*`` modules —
  the wire format cannot name arbitrary types.
* **Result codec** (:func:`cell_result_to_wire` / ``from_wire``) — one
  :class:`~repro.experiments.parallel.CellResult` per line, with the
  successful run embedded in the *cache payload format*
  (:func:`repro.experiments.cache.run_to_payload`), so a streamed result
  and a cached result are literally the same JSON object.

Record kinds on a result stream: ``cell`` records (one per finished
cell, tagged with a job-local ``seq``) and a single terminal ``job_end``
carrying the final job state and the
:class:`~repro.experiments.parallel.ExecutionReport`.

Versioning: every job record and stream header carries
:data:`PROTOCOL_VERSION`; the policy mirrors :mod:`repro.obs.schema` —
additive optional fields keep the version, renames/semantic changes bump
it, and readers reject versions they do not understand.
"""

from __future__ import annotations

import dataclasses
import enum
import importlib
import time
from dataclasses import dataclass, field

from repro._version import __version__, git_revision
from repro.experiments.cache import cache_key, run_from_payload, run_to_payload
from repro.experiments.parallel import (
    Cell,
    CellFailure,
    CellResult,
    ExecutionReport,
    FaultPolicy,
)
from repro.util.errors import ReproError

__all__ = [
    "PROTOCOL_VERSION",
    "PRIORITIES",
    "JOB_STATES",
    "TERMINAL_STATES",
    "ProtocolError",
    "encode_value",
    "decode_value",
    "encode_cells",
    "decode_cells",
    "cell_result_to_wire",
    "cell_result_from_wire",
    "report_to_wire",
    "report_from_wire",
    "JobSpec",
    "JobRecord",
    "stamp",
]

#: wire/schema version for job records and result streams
PROTOCOL_VERSION = 1

#: priority classes in scheduling order (index = class rank, 0 first)
PRIORITIES = ("high", "normal", "low")

#: job lifecycle states
JOB_STATES = ("queued", "running", "done", "failed", "cancelled")

#: states a job never leaves
TERMINAL_STATES = frozenset({"done", "failed", "cancelled"})

#: marker key for non-plain JSON values; no repro dataclass has a field
#: with this name, so plain dicts never collide with codec envelopes
_TAG = "__repro__"


class ProtocolError(ReproError, ValueError):
    """A wire payload is malformed, unsupported, or names a bad type."""


def stamp() -> dict:
    """Build-provenance fields stamped into job records and headers."""
    return {"repro_version": __version__, "git_rev": git_revision() or ""}


# -- value codec -----------------------------------------------------------------


def _type_ref(obj) -> str:
    cls = type(obj)
    return f"{cls.__module__}:{cls.__qualname__}"


def encode_value(obj):
    """Encode ``obj`` to a JSON-serializable structure, invertibly.

    Raises :class:`ProtocolError` for types outside the cell-payload
    universe (the same things :func:`~repro.experiments.cache.canonicalize`
    rejects, so anything that has a cache key also has a wire form).
    """
    # Enum before scalar: IntEnum/StrEnum members pass the isinstance
    # scalar check but must round-trip as their type, not their value.
    if isinstance(obj, enum.Enum):
        rec = {_TAG: "enum", "type": _type_ref(obj)}
        # Flag combinations may have no member name; their int value is
        # canonical. Plain members round-trip by name.
        name = getattr(obj, "name", None)
        if name is not None and name in type(obj).__members__:
            rec["name"] = name
        else:
            rec["value"] = encode_value(obj.value)
        return rec
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        return {
            _TAG: "dataclass",
            "type": _type_ref(obj),
            "fields": {
                f.name: encode_value(getattr(obj, f.name))
                for f in dataclasses.fields(obj)
            },
        }
    if isinstance(obj, tuple):
        return {_TAG: "tuple", "items": [encode_value(x) for x in obj]}
    if isinstance(obj, list):
        return [encode_value(x) for x in obj]
    if isinstance(obj, dict):
        if all(isinstance(k, str) for k in obj) and _TAG not in obj:
            return {k: encode_value(v) for k, v in obj.items()}
        return {
            _TAG: "dict",
            "items": [[encode_value(k), encode_value(v)] for k, v in obj.items()],
        }
    raise ProtocolError(
        f"cannot encode {type(obj).__name__!r} for the service wire: {obj!r}"
    )


def _resolve_type(ref: str):
    module_name, _, qualname = ref.partition(":")
    if not module_name.startswith("repro"):
        raise ProtocolError(f"wire payload names non-repro type {ref!r}")
    try:
        target = importlib.import_module(module_name)
        for part in qualname.split("."):
            target = getattr(target, part)
    except (ImportError, AttributeError) as exc:
        raise ProtocolError(f"cannot resolve wire type {ref!r}: {exc}") from exc
    return target


def decode_value(obj):
    """Invert :func:`encode_value`; raises :class:`ProtocolError` on junk."""
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, list):
        return [decode_value(x) for x in obj]
    if not isinstance(obj, dict):
        raise ProtocolError(f"undecodable wire value: {obj!r}")
    tag = obj.get(_TAG)
    if tag is None:
        return {k: decode_value(v) for k, v in obj.items()}
    if tag == "tuple":
        return tuple(decode_value(x) for x in obj["items"])
    if tag == "dict":
        return {decode_value(k): decode_value(v) for k, v in obj["items"]}
    if tag == "enum":
        cls = _resolve_type(obj["type"])
        if not (isinstance(cls, type) and issubclass(cls, enum.Enum)):
            raise ProtocolError(f"{obj['type']!r} is not an enum")
        if "name" in obj:
            try:
                return cls[obj["name"]]
            except KeyError as exc:
                raise ProtocolError(
                    f"unknown {cls.__name__} member {obj['name']!r}"
                ) from exc
        try:
            return cls(decode_value(obj["value"]))
        except ValueError as exc:
            raise ProtocolError(f"bad {cls.__name__} value: {exc}") from exc
    if tag == "dataclass":
        cls = _resolve_type(obj["type"])
        if not (isinstance(cls, type) and dataclasses.is_dataclass(cls)):
            raise ProtocolError(f"{obj['type']!r} is not a dataclass")
        fields = {k: decode_value(v) for k, v in obj["fields"].items()}
        try:
            return cls(**fields)
        except TypeError as exc:
            raise ProtocolError(
                f"cannot rebuild {cls.__name__} from wire fields: {exc}"
            ) from exc
    raise ProtocolError(f"unknown wire tag {tag!r}")


def encode_cells(cells) -> list:
    """Encode a cell list for submission."""
    return [encode_value(c) for c in cells]


def decode_cells(payload) -> list[Cell]:
    """Decode a submitted cell list, type-checking each element."""
    cells = []
    for i, entry in enumerate(payload):
        cell = decode_value(entry)
        if not isinstance(cell, Cell):
            raise ProtocolError(
                f"cells[{i}] decoded to {type(cell).__name__}, expected Cell"
            )
        cells.append(cell)
    return cells


# -- result codec ----------------------------------------------------------------


def cell_result_to_wire(res: CellResult, seq: int) -> dict:
    """One ``cell`` stream record. ``seq`` is the job-local completion index."""
    rec = {
        "kind": "cell",
        "seq": seq,
        "index": res.index,
        "attempts": res.attempts,
        "cache_hit": res.cache_hit,
        "resumed": res.resumed,
        "cell": encode_value(res.cell),
        "run": run_to_payload(res.run) if res.run is not None else None,
        "failure": None,
    }
    if res.failure is not None:
        f = res.failure
        rec["failure"] = {
            "error_type": f.error_type,
            "message": f.message,
            "traceback": f.traceback,
            "attempts": f.attempts,
            "wall_time_s": f.wall_time_s,
            "retryable": f.retryable,
        }
    return rec


def cell_result_from_wire(rec: dict) -> CellResult:
    """Invert :func:`cell_result_to_wire` (the in-process exception object,
    which cannot cross the wire, is dropped — same rule as worker
    processes)."""
    cell = decode_value(rec["cell"])
    failure = None
    if rec.get("failure") is not None:
        failure = CellFailure(**rec["failure"])
    run = run_from_payload(rec["run"]) if rec.get("run") is not None else None
    return CellResult(
        cell=cell,
        index=rec["index"],
        run=run,
        failure=failure,
        attempts=rec.get("attempts", 1),
        cache_hit=rec.get("cache_hit", False),
        resumed=rec.get("resumed", False),
    )


def report_to_wire(report: ExecutionReport) -> dict:
    return dataclasses.asdict(report)


def report_from_wire(payload: dict) -> ExecutionReport:
    known = {f.name for f in dataclasses.fields(ExecutionReport)}
    return ExecutionReport(**{k: v for k, v in payload.items() if k in known})


# -- job records -----------------------------------------------------------------


@dataclass(frozen=True)
class JobSpec:
    """What to run: the client-controlled half of a job.

    ``cache``/``obs``/``guard`` semantics are exactly those of
    :func:`~repro.experiments.parallel.run_cells_detailed` — the daemon
    forwards them verbatim, which is the bit-identity guarantee. Paths
    are interpreted by the daemon process, so clients send absolute
    paths (the stock client resolves them).
    """

    cells: list[Cell]
    priority: str = "normal"
    jobs: int = 1
    cache: str | None = None
    use_journal: bool = True
    policy: FaultPolicy | None = None
    obs: object | None = None
    guard: object | None = None

    def __post_init__(self) -> None:
        if self.priority not in PRIORITIES:
            raise ProtocolError(
                f"unknown priority {self.priority!r}; known: {PRIORITIES}"
            )
        if self.jobs < 1:
            raise ProtocolError(f"jobs must be >= 1, got {self.jobs}")
        if not self.cells:
            raise ProtocolError("a job needs at least one cell")

    def to_wire(self) -> dict:
        return {
            "cells": encode_cells(self.cells),
            "priority": self.priority,
            "jobs": self.jobs,
            "cache": self.cache,
            "use_journal": self.use_journal,
            "policy": encode_value(self.policy),
            "obs": encode_value(self.obs),
            "guard": encode_value(self.guard),
        }

    @classmethod
    def from_wire(cls, payload: dict) -> "JobSpec":
        if not isinstance(payload, dict):
            raise ProtocolError("job spec must be an object")
        try:
            cells_payload = payload["cells"]
        except KeyError:
            raise ProtocolError("job spec missing 'cells'") from None
        if not isinstance(cells_payload, list):
            raise ProtocolError("'cells' must be a list")
        return cls(
            cells=decode_cells(cells_payload),
            priority=payload.get("priority", "normal"),
            jobs=int(payload.get("jobs", 1)),
            cache=payload.get("cache"),
            use_journal=bool(payload.get("use_journal", True)),
            policy=decode_value(payload.get("policy")),
            obs=decode_value(payload.get("obs")),
            guard=decode_value(payload.get("guard")),
        )

    def cell_keys(self) -> list[str]:
        """Content keys of the cells (for logging and dedup diagnostics)."""
        return [cache_key(c) for c in self.cells]


@dataclass
class JobRecord:
    """Daemon-side lifecycle record of one submitted job."""

    id: str
    spec: JobSpec
    state: str = "queued"
    priority: str = "normal"
    submitted_at: float = 0.0
    started_at: float | None = None
    finished_at: float | None = None
    #: dispatch order among all jobs this daemon ran (scheduling proof)
    start_seq: int | None = None
    #: cells completed so far (streamed records)
    completed: int = 0
    error: str | None = None
    meta: dict = field(default_factory=dict)

    @classmethod
    def new(cls, job_id: str, spec: JobSpec) -> "JobRecord":
        return cls(
            id=job_id,
            spec=spec,
            priority=spec.priority,
            submitted_at=time.time(),
            meta={**stamp(), "protocol": PROTOCOL_VERSION},
        )

    @property
    def terminal(self) -> bool:
        return self.state in TERMINAL_STATES

    def status_wire(self) -> dict:
        """The spec-free status object (job listings, GET /v1/jobs/<id>)."""
        return {
            "id": self.id,
            "state": self.state,
            "priority": self.priority,
            "cells": len(self.spec.cells),
            "completed": self.completed,
            "submitted_at": self.submitted_at,
            "started_at": self.started_at,
            "finished_at": self.finished_at,
            "start_seq": self.start_seq,
            "error": self.error,
            "meta": dict(self.meta),
        }

    def submit_wire(self) -> dict:
        """The full journal form (includes the spec; crash recovery input)."""
        rec = self.status_wire()
        rec["spec"] = self.spec.to_wire()
        return rec

    @classmethod
    def from_submit_wire(cls, payload: dict) -> "JobRecord":
        rec = cls(
            id=str(payload["id"]),
            spec=JobSpec.from_wire(payload["spec"]),
            state=payload.get("state", "queued"),
            priority=payload.get("priority", "normal"),
            submitted_at=float(payload.get("submitted_at", 0.0)),
            started_at=payload.get("started_at"),
            finished_at=payload.get("finished_at"),
            start_seq=payload.get("start_seq"),
            completed=int(payload.get("completed", 0)),
            error=payload.get("error"),
            meta=dict(payload.get("meta", {})),
        )
        if rec.state not in JOB_STATES:
            raise ProtocolError(f"unknown job state {rec.state!r}")
        return rec
