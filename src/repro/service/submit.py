"""Ops CLI for the sweep service: ``python -m repro.service.submit``.

Subcommands (all take ``--service URL``, where URL is the daemon's
``http://host:port`` base or its ``--store`` directory)::

    health                  daemon liveness, queue depths, version
    list                    all jobs the daemon knows about
    show JOB                one job's status (state, progress, position)
    watch JOB               tail a job's result stream until it ends
    cancel JOB              cancel a queued job
    pause / resume          hold or release dispatch
    run EXPERIMENT          run a figure/ablation through the service and
                            render its table, e.g.::

        python -m repro.service.submit --service http://127.0.0.1:8642 \\
            run fig10_routing --effort smoke --priority high

``run`` reuses the experiment registry from
:mod:`repro.experiments.run_all`: it calls the module's ``run()`` with
``service=`` pointing at the daemon, so the sweep executes remotely
while the table renders locally — output is identical to the direct CLI
because the service path is bit-identical by construction.
"""

from __future__ import annotations

import argparse
import json
import sys

from repro._version import version_blurb
from repro.service.client import ServiceClient, ServiceError, ServiceSpec
from repro.service.protocol import PRIORITIES

__all__ = ["main"]


def _dump(obj) -> None:
    try:
        print(json.dumps(obj, indent=2, sort_keys=True))
    except BrokenPipeError:  # e.g. piped into head; not an error
        pass


def _watch(client: ServiceClient, job_id: str) -> int:
    state = "unknown"
    for rec in client.stream_results(job_id):
        kind = rec.get("kind")
        if kind == "cell":
            label = "ok" if rec.get("run") is not None else "FAILED"
            extra = " (cache hit)" if rec.get("cache_hit") else ""
            print(f"cell {rec.get('index')}: {label}{extra}", flush=True)
        elif kind == "job_end":
            state = rec.get("state", "unknown")
            print(f"job {job_id}: {state}", flush=True)
            if rec.get("error"):
                print(f"  error: {rec['error']}", flush=True)
            if rec.get("report"):
                print(f"  report: {json.dumps(rec['report'], sort_keys=True)}")
    return 0 if state == "done" else 1


def _run_experiment(args) -> int:
    from repro.experiments.report import finish, parse_effort
    from repro.experiments.run_all import EXPERIMENTS

    module = EXPERIMENTS.get(args.experiment)
    if module is None:
        print(
            f"unknown experiment {args.experiment!r}; known: "
            f"{sorted(n for n in EXPERIMENTS if n != 'table1')}",
            file=sys.stderr,
        )
        return 2
    if args.experiment == "table1":
        print("table1 is analytic (no sweep); run it directly", file=sys.stderr)
        return 2
    service = ServiceSpec(url=args.service, priority=args.priority)
    result = module.run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        jobs=args.jobs,
        cache=args.cache,
        service=service,
    )
    return finish(result)


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(
        prog="python -m repro.service.submit",
        description="Submit to and inspect a running repro sweep service.",
    )
    parser.add_argument(
        "--service",
        required=True,
        metavar="URL",
        help="daemon base URL (http://host:port) or its --store directory",
    )
    parser.add_argument(
        "--version", action="version", version=version_blurb("repro-submit")
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("health", help="daemon liveness and queue depths")
    sub.add_parser("list", help="list all jobs")
    for name, help_text in (
        ("show", "one job's status"),
        ("watch", "tail a job's result stream"),
        ("cancel", "cancel a queued job"),
    ):
        p = sub.add_parser(name, help=help_text)
        p.add_argument("job", help="job id, e.g. j000001")
    sub.add_parser("pause", help="hold dispatch (queued jobs wait)")
    sub.add_parser("resume", help="release dispatch")

    run_p = sub.add_parser(
        "run", help="run a figure/ablation through the service"
    )
    run_p.add_argument("experiment", help="experiment name (see run_all)")
    run_p.add_argument("--effort", default="medium")
    run_p.add_argument("--seed", type=int, default=42)
    run_p.add_argument("--jobs", type=int, default=1, help="worker processes")
    run_p.add_argument("--cache", default=None, metavar="DIR")
    run_p.add_argument("--priority", choices=PRIORITIES, default="normal")

    args = parser.parse_args(argv)
    try:
        if args.command == "run":
            return _run_experiment(args)
        client = ServiceClient(args.service)
        if args.command == "health":
            _dump(client.health())
        elif args.command == "list":
            _dump(client.jobs())
        elif args.command == "show":
            _dump(client.job(args.job))
        elif args.command == "watch":
            return _watch(client, args.job)
        elif args.command == "cancel":
            _dump(client.cancel(args.job))
        elif args.command == "pause":
            _dump(client.pause())
        elif args.command == "resume":
            _dump(client.resume())
        return 0
    except ServiceError as exc:
        print(f"error: {exc}", file=sys.stderr)
        return 1


if __name__ == "__main__":
    raise SystemExit(main())
