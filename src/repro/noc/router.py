"""Canonical pipelined virtual-channel router with an event-driven kernel.

Pipeline model (per flit, under no contention)::

    cycle t   : link arrival + buffer write (+ routing computation)
    cycle t+1 : VC allocation   (VA_in then VA_out)
    cycle t+2 : switch allocation (SA_in then SA_out) + switch traversal
    cycle t+2+L: arrival at the next router after L link cycles

i.e. a 3-stage router plus link — the canonical RC/VA/SA/ST/LT pipeline
with RC folded into the buffer-write cycle and ST into the SA-winner's
cycle, the usual lookahead/speculation-free compression. All contention
points the paper's MSP mechanism targets (VA_out, SA_in, SA_out) are
modelled as explicit per-cycle arbitrations through the installed
:class:`~repro.arbitration.base.ArbitrationPolicy`.

Scheduling is event-driven rather than polled: instead of scanning every
input VC every cycle, the router keeps explicit wake lists —

``va_pending`` / ``va_parked``
    Every VC in VA state is in exactly one of the two. ``do_va`` walks
    ``va_pending`` in ascending (port, vc) key order; a VC whose option
    set is empty (every admissible downstream VC owned or not fully
    drained) is *parked* and re-armed only when this router's resources
    change (a credit returns or an output VC's owner releases) — see
    :meth:`wake_parked` / :meth:`credit_arrived`.
``sa_pending``
    ACTIVE VCs presumed schedulable. ``do_sa`` walks it in ascending key
    order; VCs found drained (no flit buffered) or credit-starved are
    dropped and re-armed by the matching event (body-flit arrival,
    credit return via :meth:`credit_arrived`), while VCs blocked on pure
    pipeline timing (flit arrived this cycle, post-VA setup) stay listed
    — they become eligible by the next cycle with no external event.

The lists are integer bitmasks over the flat VC key
``port * total_vcs + vc``: arm/retire are single OR/AND-NOT operations,
re-arming all parked VCs is one OR, and walking lowest-bit-first yields
exactly the (port, vc) lexicographic order of the old full scan — so the
kernel is bit-identical to the polling kernel while never touching an
idle VC. The invariants are cross-checked against the brute-force
``wants_va`` / ``wants_sa`` oracle in
``tests/integration/test_kernel_invariants.py``.

Per-router RAIR state lives here so the policy hot path is field access:
``app_id`` (from the region map), the DPA occupied-VC counters ``ovc_n`` /
``ovc_f`` (updated on head arrival and tail departure — the "status of all
VCs in a router" rule of Section IV.C), and the DPA output bit
``native_high`` (written by the policy's end-of-cycle hook, read by the
next cycle's arbitrations). Per-VC config lookups the arbitration inner
loops need (``vc_class_of``) are precomputed tuples for the same reason.
"""

from __future__ import annotations

from repro.noc.buffers import VC_VA, InputVC
from repro.noc.config import NocConfig
from repro.noc.topology import LOCAL

__all__ = ["Router"]


def _mask_keys(mask: int) -> list[int]:
    """Decode a wake-list bitmask into its ascending list of VC keys."""
    keys = []
    while mask:
        low = mask & -mask
        keys.append(low.bit_length() - 1)
        mask ^= low
    return keys


class Router:
    """One router; all state is local except the network backref."""

    __slots__ = (
        "node",
        "config",
        "network",
        "num_ports",
        "total_vcs",
        "app_id",
        "in_vcs",
        "vcs",
        "vc_class_of",
        "vc_depth",
        "out_owner",
        "out_credits",
        "va_ptr",
        "sa_in_ptr",
        "sa_out_ptr",
        "va_req_ptr",
        "busy_vcs",
        "va_pending",
        "va_parked",
        "sa_pending",
        "_vnet_range",
        "_first_data_vc",
        "_vnet_vcs_t",
        "_adaptive_vcs",
        "_escape_sets",
        "ovc_n",
        "ovc_f",
        "native_high",
    )

    def __init__(self, node: int, config: NocConfig, network, app_id: int):
        self.node = node
        self.config = config
        self.network = network
        num_ports = network.topology.num_ports
        self.num_ports = num_ports
        self.total_vcs = config.total_vcs
        self.app_id = app_id
        self.in_vcs = [
            [
                InputVC(
                    node,
                    port,
                    vc,
                    config.vc_vnet(vc),
                    config.vc_class(vc),
                    config.is_escape_vc(vc),
                )
                for vc in range(self.total_vcs)
            ]
            for port in range(num_ports)
        ]
        # Flat view indexed by the wake-list key (port * total_vcs + vc),
        # plus per-VC config constants the arbitration inner loops need.
        self.vcs = [invc for port_vcs in self.in_vcs for invc in port_vcs]
        self.vc_class_of = tuple(config.vc_class(vc) for vc in range(self.total_vcs))
        self.vc_depth = config.vc_depth
        self._vnet_range = [config.vnet_vcs(v) for v in range(config.num_vnets)]
        self._first_data_vc = [r.start + config.escape_vcs for r in self._vnet_range]
        # Candidate VC sets per vnet as tuples: the VA option walk iterates
        # them every head-flit residency, and a prebuilt tuple beats
        # re-materialising range objects in the hot loop.
        self._vnet_vcs_t = [tuple(r) for r in self._vnet_range]
        self._adaptive_vcs = [
            tuple(range(first, r.stop))
            for r, first in zip(self._vnet_range, self._first_data_vc)
        ]
        # Escape VCs grouped by dateline class: _escape_sets[vnet][cls] are
        # the escape VCs a packet of that vnet may request when its current
        # escape hop carries dateline class cls. One class on a mesh (the
        # set is all escape VCs, as before the topology layer); wrap
        # fabrics stripe their escape VCs round-robin across two classes.
        ncls = network.topology.num_escape_classes
        self._escape_sets = [
            tuple(
                tuple(range(r.start + c, first, ncls))
                for c in range(ncls)
            )
            for r, first in zip(self._vnet_range, self._first_data_vc)
        ]
        self.out_owner = [[None] * self.total_vcs for _ in range(num_ports)]
        self.out_credits = [[config.vc_depth] * self.total_vcs for _ in range(num_ports)]
        self.va_ptr = [[0] * self.total_vcs for _ in range(num_ports)]
        self.sa_in_ptr = [0] * num_ports
        self.sa_out_ptr = [0] * num_ports
        self.va_req_ptr = [0] * num_ports
        self.busy_vcs = 0
        # Wake-list bitmasks (see module docstring).
        self.va_pending = 0
        self.va_parked = 0
        self.sa_pending = 0
        # DPA state (paper Section IV.C); policies may ignore it.
        self.ovc_n = 0
        self.ovc_f = 0
        self.native_high = False

    # -- wake-list maintenance ------------------------------------------------------
    def vc_key(self, invc: InputVC) -> int:
        """Flat wake-list key of an input VC; sorts like (port, vc)."""
        return invc.port * self.total_vcs + invc.vc

    def arm_va(self, invc: InputVC) -> None:
        """A head flit arrived: the VC will compete in VA from next cycle."""
        self.va_pending |= 1 << (invc.port * self.total_vcs + invc.vc)

    def arm_sa(self, invc: InputVC) -> None:
        """A body flit refilled a drained ACTIVE VC: re-arm it for SA."""
        self.sa_pending |= 1 << (invc.port * self.total_vcs + invc.vc)

    def wake_parked(self) -> None:
        """Re-arm every VA-parked VC after a resource-freeing event.

        Called when an output VC's owner releases or a credit returns —
        the only two events that can turn an empty VA option set
        non-empty. Waking is conservative (the walk re-checks options),
        so over-waking costs a rescan, never correctness.
        """
        parked = self.va_parked
        if parked:
            self.va_pending |= parked
            self.va_parked = 0

    def credit_arrived(self, port: int, vc: int) -> None:
        """A credit for output ``(port, vc)`` was delivered to this router.

        Waking is precise: a credit can only affect the schedulability of
        its own output VC, so either the VC is owned (re-arm the owner,
        which may have parked itself credit-starved) or — once the counter
        is back to full depth — the VC just became VA-allocatable and the
        parked VCs get to retry. Credits that leave an unowned VC still
        partially drained change nothing and wake nobody.
        """
        owner = self.out_owner[port][vc]
        if owner is not None:
            self.sa_pending |= 1 << (owner.port * self.total_vcs + owner.vc)
        elif self.out_credits[port][vc] == self.vc_depth:
            parked = self.va_parked
            if parked:
                self.va_pending |= parked
                self.va_parked = 0

    def vc_retired(self, invc: InputVC) -> None:
        """The tail flit left: drop the VC from the SA wake list.

        Releasing ``out_owner`` — and deciding whether the release makes a
        VA option appear (only ejection-port VCs free with their credits
        intact) — is the caller's job; this only handles the wake list.
        """
        self.sa_pending &= ~(1 << (invc.port * self.total_vcs + invc.vc))

    # -- VC allocation ------------------------------------------------------------
    def va_options(self, invc: InputVC) -> list[tuple[int, int]]:
        """Allocatable ``(out_port, out_vc)`` pairs for a VA-state VC.

        This is the single source of truth for VA admissibility — the
        ``do_va`` walk and the invariant tests both use it, so the parked
        condition ("no options") can never drift from the hot path.
        Ports appear in the routing algorithm's preference order and,
        within a port, adaptive VCs before the escape VCs.
        """
        network = self.network
        routing = network.routing
        node = self.node
        pkt = invc.pkt
        ports = invc.route_ports
        if ports is None:
            # RC stage: a table lookup when the routing algorithm built a
            # (node, dst) route table at attach, the dynamic queries
            # otherwise (huge fabrics, destination-impure algorithms).
            entry = network._route_entry
            if entry is not None:
                ports, invc.escape_port, invc.escape_class = entry(node, pkt.dst)
                invc.route_ports = ports
            else:
                ports = routing.admissible_ports(node, pkt)
                invc.route_ports = ports
                invc.escape_port = routing.escape_port(node, pkt)
                invc.escape_class = routing.escape_vc_class(node, pkt)
        ranked = routing.rank_ports(node, pkt, ports) if len(ports) > 1 else ports
        vnet = pkt.vnet
        depth = self.vc_depth
        escape_port = invc.escape_port
        options: list[tuple[int, int]] = []
        for p in ranked:
            owner_p = self.out_owner[p]
            if p == LOCAL:
                # Ejection: the escape restriction is moot, any VC
                # of the vnet may be requested.
                for vc in self._vnet_vcs_t[vnet]:
                    if owner_p[vc] is None:
                        options.append((p, vc))
            else:
                # Atomic VCs (Table 1): a downstream VC may only be
                # reallocated once it has fully drained — owner
                # released *and* all credits back (no flit of the
                # previous packet buffered or in flight).
                credits_p = self.out_credits[p]
                for vc in self._adaptive_vcs[vnet]:
                    if owner_p[vc] is None and credits_p[vc] == depth:
                        options.append((p, vc))
                # Escape VCs are only admissible on the dimension-order
                # port (Duato deadlock freedom) — and, on wrap fabrics,
                # only those of the hop's dateline class — and are tried
                # after the adaptive VCs of their port.
                if p == escape_port:
                    for vc in self._escape_sets[vnet][invc.escape_class]:
                        if owner_p[vc] is None and credits_p[vc] == depth:
                            options.append((p, vc))
        return options

    def do_va(self, cycle: int) -> None:
        """Run VA_in (request selection) and VA_out (grant) for this cycle."""
        mask = self.va_pending
        requests: dict[tuple[int, int], list[InputVC]] | None = None
        network = self.network
        policy = network.policy
        vcs = self.vcs
        if not mask:
            return
        if not (mask & (mask - 1)):
            # Lone VA candidate: its request is granted unopposed, so skip
            # the request-grouping dict. choose_request still runs — it
            # both picks among the options and advances the rotation
            # pointer, exactly as on the general path.
            invc = vcs[mask.bit_length() - 1]
            if cycle < invc.va_ready:
                return
            options = self.va_options(invc)
            if not options:
                self.va_pending = 0
                self.va_parked |= mask
                return
            p, vc = policy.choose_request(self, invc, options)
            self.out_owner[p][vc] = invc
            invc.grant_vc(p, vc, cycle)
            self.va_pending = 0
            self.sa_pending |= mask
            tr = network.trace
            if tr is not None:
                tr.va_grant(cycle, self.node, invc.port, invc.vc, p, vc, invc.pkt.pid)
            return
        # Walk port by port, shifting each port's submask down to a small
        # int — bit tricks on the narrow masks stay single-word, and the
        # (port, vc) ascending order of the old full scan is preserved.
        total = self.total_vcs
        port_all = (1 << total) - 1
        base = 0
        while mask >> base:
            pm = (mask >> base) & port_all
            parks = 0
            while pm:
                low = pm & -pm
                pm ^= low
                invc = vcs[base + low.bit_length() - 1]
                # Pending invariant: state is VC_VA. A VC armed this cycle
                # (head just arrived) waits out its buffer-write cycle here.
                if cycle < invc.va_ready:
                    continue
                options = self.va_options(invc)
                if not options:
                    # Every admissible downstream VC is owned or draining;
                    # only a credit return or owner release changes that.
                    parks |= low
                    continue
                req = policy.choose_request(self, invc, options)
                if requests is None:
                    requests = {}
                requests.setdefault(req, []).append(invc)
            if parks:
                parks <<= base
                self.va_pending ^= parks
                self.va_parked |= parks
            base += total
        if requests:
            tr = network.trace
            total = self.total_vcs
            for (p, vc), contenders in requests.items():
                if len(contenders) == 1:
                    winner = contenders[0]
                else:
                    winner = policy.va_out_pick(self, p, vc, contenders)
                self.out_owner[p][vc] = winner
                winner.grant_vc(p, vc, cycle)
                wbit = 1 << (winner.port * total + winner.vc)
                self.va_pending &= ~wbit
                self.sa_pending |= wbit
                if tr is not None:
                    tr.va_grant(cycle, self.node, winner.port, winner.vc, p, vc, winner.pkt.pid)

    # -- switch allocation -----------------------------------------------------------
    def do_sa(self, cycle: int) -> None:
        """Run SA_in and SA_out; winners traverse the switch this cycle."""
        mask = self.sa_pending
        vcs = self.vcs
        if not mask:
            return
        if not (mask & (mask - 1)):
            # Lone armed VC (the common case away from saturation): both
            # SA steps are uncontested, so run the eligibility checks in
            # walk order and send directly, skipping the grouping
            # machinery below.
            invc = vcs[mask.bit_length() - 1]
            arrivals = invc.arrivals
            if not arrivals:
                self.sa_pending = 0  # drained; next body flit re-arms
                return
            op = invc.out_port
            if op != LOCAL and self.out_credits[op][invc.out_vc] <= 0:
                self.sa_pending = 0  # credit-starved; credit_arrived re-arms
                return
            if arrivals[0] >= cycle or cycle < invc.sa_ready:
                return  # pure pipeline timing; eligible by next cycle
            network = self.network
            tr = network.trace
            if tr is not None:
                tr.sa_win(cycle, self.node, invc.port, invc.vc, op, invc.pkt.pid)
            network.send_flit(self, invc, cycle)
            return
        out_credits = self.out_credits
        network = self.network
        policy = network.policy
        sa_out: dict[int, list[InputVC]] | None = None
        # Walk port by port on shifted-down submasks (see do_va); a port's
        # armed VCs come out in ascending vc order and SA_in runs once per
        # port that fielded any eligible candidate.
        total = self.total_vcs
        port_all = (1 << total) - 1
        base = 0
        port = 0
        while mask >> base:
            pm = (mask >> base) & port_all
            if pm:
                cands: list[InputVC] | None = None
                drops = 0
                while pm:
                    low = pm & -pm
                    pm ^= low
                    invc = vcs[base + low.bit_length() - 1]
                    # Pending invariant: state is VC_ACTIVE.
                    arrivals = invc.arrivals
                    if not arrivals:
                        drops |= low  # drained; next body flit re-arms
                        continue
                    op = invc.out_port
                    if op != LOCAL and out_credits[op][invc.out_vc] <= 0:
                        drops |= low  # credit-starved; credit_arrived re-arms
                        continue
                    if arrivals[0] >= cycle or cycle < invc.sa_ready:
                        continue  # pure pipeline timing; eligible by next cycle
                    if cands is None:
                        cands = [invc]
                    else:
                        cands.append(invc)
                if drops:
                    self.sa_pending &= ~(drops << base)
                if cands is not None:
                    # SA_in: one winner represents the port.
                    winner = (
                        cands[0] if len(cands) == 1 else policy.sa_in_pick(self, port, cands)
                    )
                    if sa_out is None:
                        sa_out = {}
                    sa_out.setdefault(winner.out_port, []).append(winner)
            base += total
            port += 1
        if sa_out is None:
            return
        tr = network.trace
        for out_port, contenders in sa_out.items():
            if len(contenders) == 1:
                winner = contenders[0]
            else:
                winner = policy.sa_out_pick(self, out_port, contenders)
            if tr is not None:
                tr.sa_win(cycle, self.node, winner.port, winner.vc, out_port, winner.pkt.pid)
            network.send_flit(self, winner, cycle)

    # -- introspection --------------------------------------------------------------
    def pending_va_keys(self) -> list[int]:
        """Ascending VC keys currently armed for VA (tests/debugging)."""
        return _mask_keys(self.va_pending)

    def parked_va_keys(self) -> list[int]:
        """Ascending VC keys parked waiting for a VA resource event."""
        return _mask_keys(self.va_parked)

    def pending_sa_keys(self) -> list[int]:
        """Ascending VC keys currently armed for SA (tests/debugging)."""
        return _mask_keys(self.sa_pending)

    def buffered_flits(self) -> int:
        """Total flits currently buffered across all input VCs."""
        return sum(invc.occupancy() for port in self.in_vcs for invc in port)

    def dpa_state(self) -> tuple[bool, int, int]:
        """Current DPA state ``(native_high, ovc_n, ovc_f)``.

        The counters are the incrementally-maintained ones the policy hot
        path reads (not a recount) — cheap enough for the observability
        sampler to call on every router every sample period.
        """
        return self.native_high, self.ovc_n, self.ovc_f

    def occupied_vcs(self) -> tuple[int, int]:
        """Recount (native, foreign) occupied VCs from scratch (for checks)."""
        n = f = 0
        for port in self.in_vcs:
            for invc in port:
                if invc.pkt is not None:
                    if invc.is_native:
                        n += 1
                    else:
                        f += 1
        return n, f

    def scan_va_state(self) -> set[int]:
        """Brute-force recount of all VA-state VC keys (for checks)."""
        return {key for key, invc in enumerate(self.vcs) if invc.state == VC_VA}

    def scan_sa_eligible(self, cycle: int) -> set[int]:
        """Brute-force recount of SA-schedulable VC keys (for checks).

        Mirrors the old polling kernel's eligibility test exactly: VC-local
        pipeline conditions (:meth:`InputVC.wants_sa`) plus the router's
        credit check.
        """
        eligible = set()
        for key, invc in enumerate(self.vcs):
            if invc.wants_sa(cycle):
                op = invc.out_port
                if op == LOCAL or self.out_credits[op][invc.out_vc] > 0:
                    eligible.add(key)
        return eligible

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Router(node={self.node}, app={self.app_id}, busy={self.busy_vcs})"
