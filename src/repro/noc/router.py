"""Canonical pipelined virtual-channel router.

Pipeline model (per flit, under no contention)::

    cycle t   : link arrival + buffer write (+ routing computation)
    cycle t+1 : VC allocation   (VA_in then VA_out)
    cycle t+2 : switch allocation (SA_in then SA_out) + switch traversal
    cycle t+2+L: arrival at the next router after L link cycles

i.e. a 3-stage router plus link — the canonical RC/VA/SA/ST/LT pipeline
with RC folded into the buffer-write cycle and ST into the SA-winner's
cycle, the usual lookahead/speculation-free compression. All contention
points the paper's MSP mechanism targets (VA_out, SA_in, SA_out) are
modelled as explicit per-cycle arbitrations through the installed
:class:`~repro.arbitration.base.ArbitrationPolicy`.

Per-router RAIR state lives here so the policy hot path is field access:
``app_id`` (from the region map), the DPA occupied-VC counters ``ovc_n`` /
``ovc_f`` (updated on head arrival and tail departure — the "status of all
VCs in a router" rule of Section IV.C), and the DPA output bit
``native_high`` (written by the policy's end-of-cycle hook, read by the
next cycle's arbitrations).
"""

from __future__ import annotations

from repro.noc.buffers import VC_ACTIVE, VC_VA, InputVC
from repro.noc.config import NocConfig
from repro.noc.topology import LOCAL, NUM_PORTS

__all__ = ["Router"]


class Router:
    """One mesh router; all state is local except the network backref."""

    __slots__ = (
        "node",
        "config",
        "network",
        "num_ports",
        "total_vcs",
        "app_id",
        "in_vcs",
        "out_owner",
        "out_credits",
        "va_ptr",
        "sa_in_ptr",
        "sa_out_ptr",
        "va_req_ptr",
        "busy_vcs",
        "ovc_n",
        "ovc_f",
        "native_high",
    )

    def __init__(self, node: int, config: NocConfig, network, app_id: int):
        self.node = node
        self.config = config
        self.network = network
        self.num_ports = NUM_PORTS
        self.total_vcs = config.total_vcs
        self.app_id = app_id
        self.in_vcs = [
            [
                InputVC(
                    node,
                    port,
                    vc,
                    config.vc_vnet(vc),
                    config.vc_class(vc),
                    config.is_escape_vc(vc),
                )
                for vc in range(self.total_vcs)
            ]
            for port in range(NUM_PORTS)
        ]
        self.out_owner = [[None] * self.total_vcs for _ in range(NUM_PORTS)]
        self.out_credits = [[config.vc_depth] * self.total_vcs for _ in range(NUM_PORTS)]
        self.va_ptr = [[0] * self.total_vcs for _ in range(NUM_PORTS)]
        self.sa_in_ptr = [0] * NUM_PORTS
        self.sa_out_ptr = [0] * NUM_PORTS
        self.va_req_ptr = [0] * NUM_PORTS
        self.busy_vcs = 0
        # DPA state (paper Section IV.C); policies may ignore it.
        self.ovc_n = 0
        self.ovc_f = 0
        self.native_high = False

    # -- VC allocation ------------------------------------------------------------
    def do_va(self, cycle: int) -> None:
        """Run VA_in (request selection) and VA_out (grant) for this cycle."""
        requests: dict[tuple[int, int], list[InputVC]] | None = None
        network = self.network
        routing = network.routing
        policy = network.policy
        config = self.config
        node = self.node
        for port_vcs in self.in_vcs:
            for invc in port_vcs:
                if invc.state != VC_VA or cycle < invc.va_ready:
                    continue
                pkt = invc.pkt
                ports = invc.route_ports
                if ports is None:
                    ports = routing.admissible_ports(node, pkt)
                    invc.route_ports = ports
                ranked = routing.rank_ports(node, pkt, ports) if len(ports) > 1 else ports
                vnet_vcs = config.vnet_vcs(pkt.vnet)
                first_data_vc = vnet_vcs.start + config.escape_vcs
                depth = config.vc_depth
                options: list[tuple[int, int]] = []
                for p in ranked:
                    owner_p = self.out_owner[p]
                    if p == LOCAL:
                        # Ejection: the escape restriction is moot, any VC
                        # of the vnet may be requested.
                        for vc in vnet_vcs:
                            if owner_p[vc] is None:
                                options.append((p, vc))
                    else:
                        # Atomic VCs (Table 1): a downstream VC may only be
                        # reallocated once it has fully drained — owner
                        # released *and* all credits back (no flit of the
                        # previous packet buffered or in flight).
                        credits_p = self.out_credits[p]
                        for vc in range(first_data_vc, vnet_vcs.stop):
                            if owner_p[vc] is None and credits_p[vc] == depth:
                                options.append((p, vc))
                        # Escape VCs are only admissible on the
                        # dimension-order port (Duato deadlock freedom) and
                        # are tried after the adaptive VCs of their port.
                        if p == routing.escape_port(node, pkt):
                            for vc in range(vnet_vcs.start, first_data_vc):
                                if owner_p[vc] is None and credits_p[vc] == depth:
                                    options.append((p, vc))
                if not options:
                    continue
                req = policy.choose_request(self, invc, options)
                if requests is None:
                    requests = {}
                requests.setdefault(req, []).append(invc)
        if requests:
            for (p, vc), contenders in requests.items():
                if len(contenders) == 1:
                    winner = contenders[0]
                else:
                    winner = policy.va_out_pick(self, p, vc, contenders)
                self.out_owner[p][vc] = winner
                winner.grant_vc(p, vc, cycle)

    # -- switch allocation -----------------------------------------------------------
    def do_sa(self, cycle: int) -> None:
        """Run SA_in and SA_out; winners traverse the switch this cycle."""
        network = self.network
        policy = network.policy
        sa_out: dict[int, list[InputVC]] | None = None
        for in_port, port_vcs in enumerate(self.in_vcs):
            cands: list[InputVC] | None = None
            for invc in port_vcs:
                if (
                    invc.state == VC_ACTIVE
                    and invc.arrivals
                    and invc.arrivals[0] < cycle
                    and cycle >= invc.sa_ready
                ):
                    op = invc.out_port
                    if op == LOCAL or self.out_credits[op][invc.out_vc] > 0:
                        if cands is None:
                            cands = [invc]
                        else:
                            cands.append(invc)
            if cands is None:
                continue
            winner = cands[0] if len(cands) == 1 else policy.sa_in_pick(self, in_port, cands)
            if sa_out is None:
                sa_out = {}
            sa_out.setdefault(winner.out_port, []).append(winner)
        if sa_out:
            for out_port, contenders in sa_out.items():
                if len(contenders) == 1:
                    winner = contenders[0]
                else:
                    winner = policy.sa_out_pick(self, out_port, contenders)
                network.send_flit(self, winner, cycle)

    # -- introspection --------------------------------------------------------------
    def buffered_flits(self) -> int:
        """Total flits currently buffered across all input VCs."""
        return sum(invc.occupancy() for port in self.in_vcs for invc in port)

    def occupied_vcs(self) -> tuple[int, int]:
        """Recount (native, foreign) occupied VCs from scratch (for checks)."""
        n = f = 0
        for port in self.in_vcs:
            for invc in port:
                if invc.pkt is not None:
                    if invc.is_native:
                        n += 1
                    else:
                        f += 1
        return n, f

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"Router(node={self.node}, app={self.app_id}, busy={self.busy_vcs})"
