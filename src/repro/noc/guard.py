"""Runtime invariant guard: conservation monitors, stall forensics, blackbox.

The simulator's only built-in defence against a wedged run is the blunt
no-progress watchdog in :class:`~repro.noc.sim.Simulator` — it can say
*that* nothing moved, not *why*. This module adds a first-class runtime
verification layer with three parts:

**Conservation monitors** (:meth:`RuntimeGuard.check`, run every
``check_period`` cycles and once more at the end of a clean measurement):

* *flit conservation* — ``Network.occupancy`` / ``buffered_total`` match a
  recount of every VC's buffered flits, and per-VC wormhole framing is
  legal (``flits_sent <= flits_recv <= length``, buffered =
  received − sent, ACTIVE VCs hold an output VC);
* *credit conservation* — for every link VC, upstream credits + flits
  buffered downstream + flits in flight + credits in flight equals the
  buffer depth, exactly;
* *packet conservation* — ``packets_in_flight`` equals the number of
  distinct live packets (queued, resident, or in-flight head flits);
* *pool-reinjection safety* — no live packet is flagged ``in_pool`` and
  every free-list entry is;
* *dateline legality* (wrap fabrics) — every cached escape class matches
  the dateline rule for the packet's position, and every escape-VC hop in
  progress uses a VC of its hop's class;
* *age watermark* (opt-in) — no resident packet is older than
  ``age_watermark`` cycles while the network keeps ejecting (starvation:
  the victim is stuck while everyone else makes progress).

**Stall classification** (:meth:`RuntimeGuard.on_stall`, invoked by the
simulator's watchdog instead of its generic error): build the
channel-wait-graph from live router/VC state — ACTIVE VCs wait on the
downstream VC they are credit-blocked by (or the upstream VC holding the
rest of their packet), VA VCs with an empty option set wait on every
owner/drainer of their admissible downstream VCs — and run cycle
detection. A cycle is a ``deadlock`` (reported with the offending
node/port/vc ring, pids, and escape-class annotations); no cycle while
flits stopped is ``starvation`` (head-of-line blocking without cyclic
wait); flits moving while ejection is stalled — the separately-tracked
ejection watchdog — is a ``livelock``.

**Crash blackbox**: the guard taps the kernel's
:class:`~repro.noc.trace.KernelTrace` stream through a bounded
:class:`~repro.noc.trace.RingTrace` (tee'd behind an existing tracer such
as the obs collector, whose output stays byte-identical). On any
violation it dumps the last K kernel events, a per-router VC/credit/DPA
snapshot, and the classified violation as schema-versioned JSONL
(``guard_header`` / ``guard_event`` / ``router_snapshot`` /
``guard_violation`` records — see :mod:`repro.obs.schema`) and raises a
:class:`~repro.util.errors.GuardError` whose ``reason`` flows into
``MeasurementResult.abort`` and whose ``failure_label`` renders as
``FAILED(Deadlock)`` in sweep tables.

Modes: ``off`` installs nothing (the hot path keeps its single
``is not None`` pointer comparisons and stays allocation-free and
bit-identical); ``sample`` checks rarely with a small ring; ``strict``
checks often with a deep ring. All checks are read-only over simulator
state (the route-cache fills they trigger are the same values the kernel
would compute), so enabling the guard never changes simulation results.
"""

from __future__ import annotations

import os
from collections import Counter
from dataclasses import dataclass, replace

from repro.noc.buffers import VC_ACTIVE, VC_IDLE, VC_VA
from repro.noc.topology import LOCAL
from repro.noc.trace import RingTrace, TeeTrace
from repro.util.errors import ConfigError, GuardError

__all__ = ["GUARD_MODES", "GuardConfig", "RuntimeGuard", "find_cycle"]

#: enforcement modes: ``off`` never installs a guard; ``sample`` checks
#: every ~4K cycles with a 256-event ring; ``strict`` every 256 cycles
#: with a 1024-event ring
GUARD_MODES = ("off", "sample", "strict")

_DEFAULT_PERIOD = {"sample": 4096, "strict": 256}
_DEFAULT_DEPTH = {"sample": 256, "strict": 1024}

#: abort reason -> FAILED(<label>) rendering
_LABELS = {
    "deadlock": "Deadlock",
    "livelock": "Livelock",
    "starvation": "Starvation",
    "credit_conservation": "CreditConservation",
    "flit_conservation": "FlitConservation",
    "packet_conservation": "PacketConservation",
    "pool_safety": "PoolSafety",
    "dateline": "Dateline",
}

_STATE_NAMES = ("idle", "va", "active")


@dataclass(frozen=True)
class GuardConfig:
    """Runtime-guard settings, threaded through the experiment stack.

    Frozen and picklable so it crosses process boundaries with a cell.
    Like ``ObsConfig`` and ``cycle_budget`` it is *execution* policy: it
    never enters result-cache keys, because the guard is read-only and a
    guarded simulation is bit-identical to an unguarded one.

    ``dir=None`` keeps the blackbox in memory (on the raised
    :class:`~repro.util.errors.GuardError` / the guard object); a
    directory gets one ``<name>_blackbox.jsonl`` per violating run.
    ``check_period`` / ``blackbox_depth`` default by mode.
    ``age_watermark`` (cycles) enables the starvation age check — off by
    default because saturating sweeps legitimately hold packets for a
    long time. ``stall_cycles`` overrides the simulator's watchdog
    thresholds (the ejection watchdog becomes twice it), so tests can
    trip stalls inside short windows.
    """

    mode: str = "sample"
    dir: str | None = None
    name: str | None = None
    check_period: int | None = None
    blackbox_depth: int | None = None
    age_watermark: int | None = None
    stall_cycles: int | None = None

    def __post_init__(self) -> None:
        if self.mode not in GUARD_MODES:
            raise ConfigError(
                f"unknown guard mode {self.mode!r}; choose one of {GUARD_MODES}"
            )
        for fld in ("check_period", "blackbox_depth", "age_watermark", "stall_cycles"):
            value = getattr(self, fld)
            if value is not None and value < 1:
                raise ConfigError(f"{fld} must be >= 1, got {value}")

    @property
    def period(self) -> int:
        """Cycles between conservation sweeps (mode default unless set)."""
        return self.check_period or _DEFAULT_PERIOD.get(self.mode, 4096)

    @property
    def depth(self) -> int:
        """Blackbox ring-buffer capacity in events (mode default unless set)."""
        return self.blackbox_depth or _DEFAULT_DEPTH.get(self.mode, 256)

    def named(self, default: str) -> "GuardConfig":
        """This config with ``name`` defaulted if unset (blackbox file stem)."""
        return replace(self, name=self.name or default)

    @classmethod
    def from_env(cls) -> "GuardConfig | None":
        """The guard the ``REPRO_GUARD`` environment selects, or ``None``.

        ``REPRO_GUARD`` is the mode (unset/empty/``off`` disable the
        guard); ``REPRO_GUARD_DIR`` the blackbox directory;
        ``REPRO_GUARD_AGE`` / ``REPRO_GUARD_STALL`` the optional age
        watermark and watchdog override. This is how worker processes and
        CI lanes opt whole sweeps in without threading a config through.
        """
        mode = os.environ.get("REPRO_GUARD", "").strip().lower()
        if mode in ("", "off"):
            return None
        age = os.environ.get("REPRO_GUARD_AGE")
        stall = os.environ.get("REPRO_GUARD_STALL")
        return cls(
            mode=mode,
            dir=os.environ.get("REPRO_GUARD_DIR") or None,
            age_watermark=int(age) if age else None,
            stall_cycles=int(stall) if stall else None,
        )


def find_cycle(edges: dict) -> list | None:
    """First cycle in a wait graph (``key -> list of keys``), or ``None``.

    Iterative three-colour DFS; returns the cycle as the list of keys in
    dependency order (each waits on the next, the last on the first).
    Keys appearing only as edge *targets* have no outgoing edges and can
    never close a cycle.
    """
    WHITE, GREY, BLACK = 0, 1, 2
    color = dict.fromkeys(edges, WHITE)
    for root in edges:
        if color[root] != WHITE:
            continue
        color[root] = GREY
        path = [root]
        stack = [(root, iter(edges[root]))]
        while stack:
            node, it = stack[-1]
            advanced = False
            for nxt in it:
                c = color.get(nxt)
                if c == GREY:
                    return path[path.index(nxt):]
                if c == WHITE:
                    color[nxt] = GREY
                    path.append(nxt)
                    stack.append((nxt, iter(edges[nxt])))
                    advanced = True
                    break
            if not advanced:
                color[node] = BLACK
                path.pop()
                stack.pop()
    return None


class RuntimeGuard:
    """Invariant guard for one simulator (see module docstring).

    Install with :meth:`install` after any obs collector (the guard tees
    its ring behind an existing tracer). The simulator then drives
    :meth:`check` every ``config.period`` cycles and hands watchdog trips
    to :meth:`on_stall`; both raise :class:`GuardError` on violation,
    after dumping the blackbox.
    """

    def __init__(self, config: GuardConfig):
        if config.mode == "off":
            raise ConfigError("guard mode 'off' means: do not install a guard")
        self.config = config
        self.ring: RingTrace | None = None
        self.next_check = 0
        self.checks_run = 0
        #: records of the last violation's blackbox (also written as
        #: JSONL when ``config.dir`` is set)
        self.blackbox_records: list[dict] | None = None
        self._sim = None
        self._age_eject_mark = 0
        self._start_cycle = 0

    # -- wiring -----------------------------------------------------------------
    def install(self, sim) -> "RuntimeGuard":
        """Attach to ``sim``: guard slot, ring tracer, watchdog overrides."""
        if getattr(sim, "guard", None) is not None:
            raise ConfigError("simulator already has a guard installed")
        if self._sim is not None:
            raise ConfigError("guard is already installed on a simulator")
        net = sim.network
        self.ring = RingTrace(self.config.depth)
        # Tee behind an existing tracer (e.g. the obs collector) so it
        # keeps seeing the identical event stream; claim the slot outright
        # when it is free.
        net.trace = self.ring if net.trace is None else TeeTrace(net.trace, self.ring)
        sim.guard = self
        self._sim = sim
        self._start_cycle = sim.cycle
        self.next_check = sim.cycle + self.config.period
        self._age_eject_mark = net.packets_ejected
        if self.config.stall_cycles is not None:
            sim.WATCHDOG_CYCLES = self.config.stall_cycles
            sim.EJECT_WATCHDOG_CYCLES = 2 * self.config.stall_cycles
        return self

    # -- periodic conservation sweep ----------------------------------------------
    def check(self, cycle: int, net) -> None:
        """Run every conservation monitor; raises :class:`GuardError` on failure."""
        self._check_flits(cycle, net)
        self._check_credits(cycle, net)
        self._check_packets(cycle, net)
        self._check_dateline(cycle, net)
        self._check_age(cycle, net)
        self.checks_run += 1
        self.next_check = cycle + self.config.period

    def _check_flits(self, cycle: int, net) -> None:
        occupancy = net.occupancy
        total = 0
        for router in net.routers:
            node = router.node
            count = 0
            for invc in router.vcs:
                pkt = invc.pkt
                buffered = len(invc.arrivals)
                count += buffered
                where = f"VC (node {node} port {invc.port} vc {invc.vc})"
                if pkt is None:
                    if invc.state != VC_IDLE or buffered:
                        self._violate(
                            cycle, net, "flit_conservation",
                            f"{where} holds {buffered} flit(s) in state "
                            f"{_STATE_NAMES[invc.state]} with no resident packet",
                        )
                    continue
                if invc.state == VC_IDLE:
                    self._violate(
                        cycle, net, "flit_conservation",
                        f"{where} is IDLE but packet #{pkt.pid} is resident",
                    )
                if pkt.in_pool:
                    self._violate(
                        cycle, net, "pool_safety",
                        f"packet #{pkt.pid} resident at {where} is marked "
                        f"in_pool — a pooled object is live in the network",
                    )
                if not 0 <= invc.flits_sent <= invc.flits_recv <= pkt.length:
                    self._violate(
                        cycle, net, "flit_conservation",
                        f"{where} framing illegal for packet #{pkt.pid}: "
                        f"sent={invc.flits_sent} recv={invc.flits_recv} "
                        f"length={pkt.length}",
                    )
                if buffered != invc.flits_recv - invc.flits_sent:
                    self._violate(
                        cycle, net, "flit_conservation",
                        f"{where} buffers {buffered} flit(s) but framing "
                        f"counters imply {invc.flits_recv - invc.flits_sent} "
                        f"(packet #{pkt.pid})",
                    )
                if invc.state == VC_ACTIVE and invc.out_port < 0:
                    self._violate(
                        cycle, net, "flit_conservation",
                        f"{where} is ACTIVE without an allocated output VC",
                    )
            if count != occupancy[node]:
                self._violate(
                    cycle, net, "flit_conservation",
                    f"occupancy[{node}] is {occupancy[node]} but its VCs "
                    f"hold {count} flit(s)",
                )
            total += count
        if total != net.buffered_total:
            self._violate(
                cycle, net, "flit_conservation",
                f"buffered_total is {net.buffered_total} but the chip "
                f"holds {total} flit(s)",
            )

    def _check_credits(self, cycle: int, net) -> None:
        depth = net.config.vc_depth
        neighbor = net.topology.neighbor
        opposite = net.topology.opposite
        routers = net.routers
        inflight_flits = Counter(
            (node, port, vc) for _, node, port, vc, _ in net.scheduled_arrivals()
        )
        inflight_credits = Counter(
            (node, port, vc) for _, node, port, vc in net.scheduled_credits()
        )
        for router in routers:
            node = router.node
            for port in range(1, router.num_ports):
                down = neighbor[node][port]
                if down < 0:
                    continue
                down_port = opposite[port]
                down_vcs = routers[down].in_vcs[down_port]
                credits = router.out_credits[port]
                for vc in range(router.total_vcs):
                    have = (
                        credits[vc]
                        + len(down_vcs[vc].arrivals)
                        + inflight_flits[(down, down_port, vc)]
                        + inflight_credits[(node, port, vc)]
                    )
                    if have != depth:
                        self._violate(
                            cycle, net, "credit_conservation",
                            f"link VC (node {node} port {port} vc {vc}): "
                            f"credits {credits[vc]} + buffered "
                            f"{len(down_vcs[vc].arrivals)} + in-flight flits "
                            f"{inflight_flits[(down, down_port, vc)]} + "
                            f"in-flight credits "
                            f"{inflight_credits[(node, port, vc)]} = {have}, "
                            f"expected depth {depth}",
                        )

    def _check_packets(self, cycle: int, net) -> None:
        live: set[int] = set()
        for router in net.routers:
            for invc in router.vcs:
                if invc.pkt is not None:
                    live.add(invc.pkt.pid)
        for node_queues in net.queues:
            for queue in node_queues:
                for pkt in queue:
                    live.add(pkt.pid)
                    if pkt.in_pool:
                        self._violate(
                            cycle, net, "pool_safety",
                            f"queued packet #{pkt.pid} is marked in_pool",
                        )
        for _, _, _, _, pkt in net.scheduled_arrivals():
            if pkt is not None:
                live.add(pkt.pid)
                if pkt.in_pool:
                    self._violate(
                        cycle, net, "pool_safety",
                        f"in-flight packet #{pkt.pid} is marked in_pool",
                    )
        if len(live) != net.packets_in_flight:
            self._violate(
                cycle, net, "packet_conservation",
                f"packets_in_flight is {net.packets_in_flight} but "
                f"{len(live)} distinct packet(s) are queued, resident, or "
                f"in flight",
            )
        pool = getattr(net, "packet_pool", None)
        if pool is not None:
            for pkt in pool.free_packets():
                if not pkt.in_pool:
                    self._violate(
                        cycle, net, "pool_safety",
                        f"free-list packet #{pkt.pid} lost its in_pool flag",
                    )

    def _check_dateline(self, cycle: int, net) -> None:
        topo = net.topology
        ncls = topo.num_escape_classes
        if ncls < 2:
            return  # single escape class: nothing to get wrong
        cfg = net.config
        entry = net._route_entry
        routing = net.routing
        for router in net.routers:
            if not router.busy_vcs:
                continue
            node = router.node
            for invc in router.vcs:
                pkt = invc.pkt
                if pkt is None or invc.route_ports is None:
                    continue  # RC not run yet: nothing cached to corrupt
                if entry is not None:
                    expected = entry(node, pkt.dst)[2]
                else:
                    expected = routing.escape_vc_class(node, pkt)
                where = f"VC (node {node} port {invc.port} vc {invc.vc})"
                if invc.escape_class != expected:
                    self._violate(
                        cycle, net, "dateline",
                        f"{where} caches escape class {invc.escape_class} "
                        f"for packet #{pkt.pid} -> {pkt.dst}; the dateline "
                        f"rule says {expected}",
                    )
                if (
                    invc.state == VC_ACTIVE
                    and invc.out_port != LOCAL
                    and invc.out_port == invc.escape_port
                    and cfg.is_escape_vc(invc.out_vc)
                ):
                    base = cfg.vnet_vcs(pkt.vnet).start
                    if (invc.out_vc - base) % ncls != expected:
                        self._violate(
                            cycle, net, "dateline",
                            f"{where} sends packet #{pkt.pid} on escape VC "
                            f"{invc.out_vc} of class "
                            f"{(invc.out_vc - base) % ncls}; its hop is "
                            f"class {expected}",
                        )

    def _check_age(self, cycle: int, net) -> None:
        watermark = self.config.age_watermark
        if watermark is None:
            return
        ejected = net.packets_ejected
        progressing = ejected != self._age_eject_mark
        self._age_eject_mark = ejected
        if not progressing:
            return  # no global progress either: the watchdog will classify
        for router in net.routers:
            if not router.busy_vcs:
                continue
            for invc in router.vcs:
                pkt = invc.pkt
                if pkt is None:
                    continue
                age = cycle - pkt.inject_cycle
                if age > watermark:
                    self._violate(
                        cycle, net, "starvation",
                        f"packet #{pkt.pid} (node {router.node} port "
                        f"{invc.port} vc {invc.vc}, dst {pkt.dst}) has been "
                        f"in the network {age} cycles (> watermark "
                        f"{watermark}) while other packets keep ejecting",
                    )

    # -- stall classification -------------------------------------------------------
    def on_stall(self, cycle: int, net, trip: str) -> None:
        """Classify a watchdog trip; always raises :class:`GuardError`.

        ``trip`` is ``"progress"`` (no flit moved) or ``"ejection"``
        (flits moving, nothing ejected).
        """
        if trip == "ejection":
            self._violate(
                cycle, net, "livelock",
                f"flits kept moving but no packet ejected for "
                f"{getattr(self._sim, 'EJECT_WATCHDOG_CYCLES', '?')} cycles "
                f"at cycle {cycle} with {net.packets_in_flight} packet(s) "
                f"in flight",
            )
        edges = self.wait_graph(net)
        ring_keys = find_cycle(edges)
        if ring_keys is not None:
            ring = [self._describe_vc(net, key) for key in ring_keys]
            loop = " -> ".join(
                f"(n{n} p{p} v{v})" for n, p, v in ring_keys
            )
            self._violate(
                cycle, net, "deadlock",
                f"channel-wait-graph cycle of {len(ring_keys)} VC(s) at "
                f"cycle {cycle}: {loop}",
                ring=ring,
            )
        self._violate(
            cycle, net, "starvation",
            f"no flit moved for {self._sim.WATCHDOG_CYCLES} cycles at cycle "
            f"{cycle} with {net.buffered_total} flit(s) buffered, but the "
            f"channel-wait-graph is acyclic — head-of-line starvation, not "
            f"deadlock",
        )

    def wait_graph(self, net) -> dict:
        """Channel-wait-graph over busy VCs: ``(node, port, vc) -> blockers``.

        An ACTIVE VC with an empty buffer waits on the upstream VC still
        holding the rest of its packet; one that is credit-blocked waits
        on the downstream VC draining its output. A VA VC whose option
        set is empty waits on every owner of an admissible downstream VC
        (or, for a draining one, the downstream VC itself). VCs that are
        schedulable — merely slow — contribute no edges, so on a genuine
        deadlock the graph contains exactly the stalled dependency
        structure.
        """
        edges: dict = {}
        neighbor = net.topology.neighbor
        opposite = net.topology.opposite
        routers = net.routers
        for router in routers:
            if not router.busy_vcs:
                continue
            node = router.node
            for invc in router.vcs:
                pkt = invc.pkt
                if pkt is None:
                    continue
                deps: list = []
                if invc.state == VC_ACTIVE:
                    out_port = invc.out_port
                    if not invc.arrivals:
                        if invc.port != LOCAL:
                            up = neighbor[node][invc.port]
                            owner = routers[up].out_owner[opposite[invc.port]][invc.vc]
                            if owner is not None and owner.pkt is pkt:
                                deps.append((up, owner.port, owner.vc))
                    elif (
                        out_port != LOCAL
                        and router.out_credits[out_port][invc.out_vc] <= 0
                    ):
                        deps.append(
                            (neighbor[node][out_port], opposite[out_port], invc.out_vc)
                        )
                elif invc.state == VC_VA:
                    # va_options fills the RC cache with the same values
                    # the kernel would compute; it never advances
                    # arbitration pointers, so this is observation-only.
                    if not router.va_options(invc):
                        deps = self._va_blockers(router, invc, neighbor, opposite)
                if deps:
                    edges[(node, invc.port, invc.vc)] = deps
        return edges

    def _va_blockers(self, router, invc, neighbor, opposite) -> list:
        """Who blocks each downstream VC a parked VA VC could request."""
        node = router.node
        vnet = invc.pkt.vnet
        depth = router.vc_depth
        deps: list = []

        def blocker(port: int, vc: int) -> None:
            owner = router.out_owner[port][vc]
            if owner is not None:
                deps.append((node, owner.port, owner.vc))
            elif port != LOCAL and router.out_credits[port][vc] < depth:
                deps.append((neighbor[node][port], opposite[port], vc))

        for port in invc.route_ports:
            if port == LOCAL:
                for vc in router._vnet_vcs_t[vnet]:
                    blocker(port, vc)
            else:
                for vc in router._adaptive_vcs[vnet]:
                    blocker(port, vc)
                if port == invc.escape_port:
                    for vc in router._escape_sets[vnet][invc.escape_class]:
                        blocker(port, vc)
        return deps

    # -- blackbox + violation ---------------------------------------------------------
    def _describe_vc(self, net, key) -> dict:
        node, port, vc = key
        invc = net.routers[node].in_vcs[port][vc]
        pkt = invc.pkt
        return {
            "node": node,
            "port": port,
            "vc": vc,
            "pid": pkt.pid if pkt is not None else -1,
            "dst": pkt.dst if pkt is not None else -1,
            "state": _STATE_NAMES[invc.state],
            "buffered": len(invc.arrivals),
            "out_port": invc.out_port,
            "out_vc": invc.out_vc,
            "is_escape": bool(invc.is_escape),
            "escape_class": invc.escape_class,
        }

    def _snapshot_router(self, cycle: int, router) -> dict:
        return {
            "kind": "router_snapshot",
            "cycle": cycle,
            "node": router.node,
            "busy_vcs": router.busy_vcs,
            "native_high": bool(router.native_high),
            "ovc_n": router.ovc_n,
            "ovc_f": router.ovc_f,
            "vcs": [
                self._describe_vc(
                    router.network, (router.node, invc.port, invc.vc)
                )
                for invc in router.vcs
                if invc.pkt is not None
            ],
            "credits": [list(row) for row in router.out_credits],
            "owners": [
                [
                    owner.pkt.pid if owner is not None and owner.pkt is not None else -1
                    for owner in row
                ]
                for row in router.out_owner
            ],
        }

    def _violate(
        self, cycle: int, net, reason: str, message: str, ring: list | None = None
    ) -> None:
        """Dump the blackbox and raise the classified :class:`GuardError`."""
        # Lazy obs imports: repro.noc stays import-free of repro.obs at
        # module level; the blackbox writer is only touched on violation.
        from repro.obs.collector import sanitize_name
        from repro.obs.schema import SCHEMA_VERSION

        cfg = net.config
        records: list[dict] = [
            {
                "kind": "guard_header",
                "schema": SCHEMA_VERSION,
                "name": self.config.name or "guard",
                "mode": self.config.mode,
                "width": cfg.width,
                "height": cfg.height,
                "num_nodes": net.topology.num_nodes,
                "topology": net.topology.kind,
                "depth": self.config.depth,
                "start_cycle": self._start_cycle,
            }
        ]
        if self.ring is not None:
            for event in self.ring.events:
                records.append(
                    {
                        "kind": "guard_event",
                        "cycle": event[1],
                        "event": event[0],
                        "args": list(event[2:]),
                    }
                )
        for router in net.busy_routers():
            records.append(self._snapshot_router(cycle, router))
        records.append(
            {
                "kind": "guard_violation",
                "cycle": cycle,
                "reason": reason,
                "message": message,
                "ring": ring or [],
                "buffered_total": net.buffered_total,
                "packets_in_flight": net.packets_in_flight,
                "queued": net.queued_packets(),
            }
        )
        self.blackbox_records = records
        path = None
        if self.config.dir is not None:
            from repro.obs.exporters import write_jsonl

            os.makedirs(self.config.dir, exist_ok=True)
            stem = sanitize_name(self.config.name or "guard")
            path = os.path.join(self.config.dir, f"{stem}_blackbox.jsonl")
            write_jsonl(records, path)
        full = f"guard violation ({reason}) at cycle {cycle}: {message}"
        if path is not None:
            full += f" [blackbox: {path}]"
        raise GuardError(full, reason=reason, label=_LABELS[reason], blackbox_path=path)
