"""Analytic timing model of the router pipeline.

The simulator's canonical pipeline costs, under zero load:

* 3 cycles per router traversal — buffer write (+RC), VA, SA(+ST),
* 1 link cycle after each traversal (mesh link or ejection NI link),
* 1 cycle per additional flit (wormhole serialization behind the head).

These helpers give tests and calibration code an authoritative closed
form to pin the simulator against (see
``tests/integration/test_network_basics.py``); any change to the pipeline
must update this module and the paper-shape benchmarks together.
"""

from __future__ import annotations

from repro.noc.config import NocConfig
from repro.util.errors import ConfigError

__all__ = ["ROUTER_CYCLES", "zero_load_latency", "mean_ur_hops"]

#: cycles a head flit spends in each router under no contention
ROUTER_CYCLES = 3


def zero_load_latency(hops: int, length: int, config: NocConfig | None = None) -> int:
    """Exact zero-load packet latency over ``hops`` mesh hops.

    ``hops`` is the Manhattan distance (0 for self-addressed packets);
    ``length`` the packet's flit count. ``config`` supplies the link
    latency (default 1).
    """
    if hops < 0:
        raise ConfigError(f"hops must be >= 0, got {hops}")
    if length < 1:
        raise ConfigError(f"length must be >= 1, got {length}")
    link = config.link_latency if config is not None else 1
    # hops+1 router traversals; each mesh hop costs one link cycle, and the
    # final NI ejection link costs one more — with link_latency L the mesh
    # hops cost L each while the NI link stays 1 cycle.
    return (hops + 1) * ROUTER_CYCLES + hops * (link - 1) + (length - 1)


def mean_ur_hops(width: int, height: int) -> float:
    """Mean Manhattan distance for uniform-random traffic (src != dst).

    Exact enumeration; used to sanity-check measured zero-load APLs.
    """
    if width < 1 or height < 1:
        raise ConfigError("mesh dimensions must be positive")
    n = width * height
    if n < 2:
        raise ConfigError("need at least two nodes")

    def dim_sum(extent: int) -> int:
        # sum over all ordered pairs (a, b) of |a - b|
        return sum(abs(a - b) for a in range(extent) for b in range(extent))

    total = dim_sum(width) * height * height + dim_sum(height) * width * width
    return total / (n * (n - 1))
