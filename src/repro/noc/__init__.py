"""Cycle-accurate network-on-chip simulator substrate.

This subpackage is the from-scratch replacement for the GARNET simulator
used in the paper. It models a fabric (2-D mesh, torus, or bidirectional
ring — see :mod:`repro.noc.topology`) of canonical virtual-channel (VC)
wormhole routers with:

* credit-based flow control between routers,
* atomic VCs (one packet at a time per VC, as in the paper's Table 1),
* the canonical pipelined router — routing computation (RC), two-step VC
  allocation (VA_in / VA_out), two-step switch allocation (SA_in / SA_out),
  switch traversal (ST) and link traversal (LT),
* pluggable routing algorithms (:mod:`repro.routing`) and arbitration
  policies (:mod:`repro.arbitration`, :mod:`repro.core`), so every scheme
  evaluated in the paper is a configuration of the same simulator rather
  than a fork of it.

The entry points most users need are :class:`repro.noc.config.NocConfig`,
:class:`repro.noc.network.Network` and :class:`repro.noc.sim.Simulator`.
"""

import warnings

from repro.noc.config import NocConfig, VcClass
from repro.noc.flit import MessageClass, Packet
from repro.noc.network import Network
from repro.noc.sim import Simulator
from repro.noc.stats import LatencyStats, NetworkStats
from repro.noc.timing import mean_ur_hops, zero_load_latency
from repro.noc.trace import KernelTrace, RecordingTrace
from repro.noc.topology import (
    EAST,
    LOCAL,
    NORTH,
    PORT_NAMES,
    SOUTH,
    TOPOLOGY_KINDS,
    WEST,
    MeshTopology,
    RingTopology,
    Topology,
    TorusTopology,
    build_topology,
    make_topology,
)

__all__ = [
    "NocConfig",
    "VcClass",
    "Packet",
    "MessageClass",
    "Network",
    "Simulator",
    "LatencyStats",
    "NetworkStats",
    "KernelTrace",
    "RecordingTrace",
    "zero_load_latency",
    "mean_ur_hops",
    "Topology",
    "MeshTopology",
    "TorusTopology",
    "RingTopology",
    "TOPOLOGY_KINDS",
    "make_topology",
    "build_topology",
    "LOCAL",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "NUM_PORTS",
    "PORT_NAMES",
]

# Mesh-specific constants kept as deprecated aliases: port arity and the
# opposite-port map are per-topology now (Topology.num_ports /
# Topology.opposite — e.g. network.topology.opposite), not global truths.
_DEPRECATED_TOPOLOGY_CONSTS = ("NUM_PORTS", "OPPOSITE")


def __getattr__(name: str):
    if name in _DEPRECATED_TOPOLOGY_CONSTS:
        warnings.warn(
            f"repro.noc.{name} is deprecated: port arity and opposite-port "
            f"maps are topology-specific; use the Topology API "
            f"(e.g. network.topology.num_ports / network.topology.opposite, "
            f"or import mesh constants from repro.noc.topology)",
            DeprecationWarning,
            stacklevel=2,
        )
        from repro.noc import topology as _topology

        return getattr(_topology, name)
    raise AttributeError(f"module {__name__!r} has no attribute {name!r}")
