"""Topologies: node numbering, ports, neighbour arithmetic.

The simulator is topology-agnostic: every structural question a router,
network, routing algorithm, or traffic pattern needs answered goes through
a :class:`Topology` instance — node count, per-node port arity, the
neighbour and opposite-port maps, coordinate helpers, and the region-block
mapping used by :class:`~repro.core.regions.RegionMap`. Three fabrics are
built in:

:class:`MeshTopology`
    The paper's 2-D mesh. Nodes are numbered row-major: node ``n`` sits at
    ``(x, y) = (n % width, n // width)`` with ``x`` increasing eastward and
    ``y`` increasing southward. Five ports; port 0 (``LOCAL``) connects the
    attached core, ports 1-4 the mesh neighbours.
:class:`TorusTopology`
    The same grid with wrap-around links in both dimensions.
:class:`RingTopology`
    A bidirectional ring; three ports (``LOCAL``, clockwise,
    counter-clockwise).

Escape routing and datelines
----------------------------

Deadlock freedom follows Duato's theory (see :mod:`repro.routing.base`):
the escape virtual channels only ever carry dimension-order traffic. On a
mesh, dimension-order routing alone is acyclic, so one escape class
suffices (``num_escape_classes == 1``). Wrap-around links close a cycle in
each directed ring of a torus or ring fabric, so those topologies split the
escape channels into **two dateline classes**: a packet travelling in a
ring uses class 0 while it is on the near side of its destination and
class 1 while on the far side (i.e. until it crosses the wrap edge). The
class is a pure function of ``(current node, destination)`` —
:meth:`Topology.escape_class` — so it lives in the precomputed route table.
Within one directed ring, class-0 channels never use the wrap link and
class-1 channels are only used on the segment before the wrap, with the
only cross-class dependency being 1 -> 0 at the dateline; with dimensions
ordered X-then-Y the escape channel dependency graph is acyclic.
"""

from __future__ import annotations

from repro.util.errors import ConfigError
from repro.util.validate import require

__all__ = [
    "LOCAL",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "NUM_PORTS",
    "PORT_NAMES",
    "OPPOSITE",
    "RING_CW",
    "RING_CCW",
    "Topology",
    "MeshTopology",
    "TorusTopology",
    "RingTopology",
    "TOPOLOGY_KINDS",
    "make_topology",
    "build_topology",
    "num_escape_classes_for",
]

LOCAL = 0
NORTH = 1
EAST = 2
SOUTH = 3
WEST = 4
NUM_PORTS = 5
PORT_NAMES = ("local", "north", "east", "south", "west")
# OPPOSITE[p] is the input port on the neighbour that a flit leaving through
# output port p arrives on (flits leaving eastward arrive on the west port).
OPPOSITE = (LOCAL, SOUTH, WEST, NORTH, EAST)

# Ring ports: 1 steps to the next-higher node id (clockwise), 2 to the
# next-lower (counter-clockwise).
RING_CW = 1
RING_CCW = 2

_DELTAS = {NORTH: (0, -1), EAST: (1, 0), SOUTH: (0, 1), WEST: (-1, 0)}

#: topology kinds accepted by :func:`build_topology` / ``NocConfig.topology``
TOPOLOGY_KINDS = ("mesh", "torus", "ring")


class Topology:
    """Geometry of a fabric: pure arithmetic, no simulation state.

    Concrete subclasses populate, in ``__init__``:

    ``width`` / ``height`` / ``num_nodes``
        Logical grid extents (a ring is ``num_nodes x 1``) and node count.
    ``neighbor``
        ``neighbor[node][port]`` -> neighbour node id, or -1 where no link
        exists (always -1 for ``LOCAL``).

    and define, as class attributes:

    ``kind`` / ``num_ports`` / ``port_names`` / ``opposite``
        The registry name, per-node port arity, printable port names, and
        the opposite-port map (``opposite[p]`` is the input port a flit
        leaving through output port ``p`` arrives on).
    ``num_escape_classes``
        Dateline VC classes the escape network needs (1 when the
        dimension-order graph is already acyclic, 2 for wrap fabrics);
        the network requires ``escape_vcs >= num_escape_classes``.
    """

    kind = "abstract"
    num_ports = NUM_PORTS
    port_names = PORT_NAMES
    opposite = OPPOSITE
    num_escape_classes = 1
    #: derating applied by the experiment scenarios to their mesh-calibrated
    #: injection rates: the ratio of this fabric's theoretical uniform-random
    #: saturation throughput to an equal-node mesh's, capped at 1.0 (loads
    #: are only ever derated, never inflated). Exactly 1.0 on the mesh, so
    #: multiplying by it is a float no-op and mesh rates stay bit-identical.
    saturation_scale = 1.0

    width: int
    height: int
    num_nodes: int
    neighbor: list[tuple[int, ...]]

    # -- coordinate helpers -------------------------------------------------
    def coords(self, node: int) -> tuple[int, int]:
        """Return ``(x, y)`` of ``node``."""
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at ``(x, y)``."""
        require(
            0 <= x < self.width and 0 <= y < self.height,
            f"({x},{y}) outside {self.kind}",
        )
        return y * self.width + x

    def signature(self) -> tuple[str, int, int]:
        """Hashable identity of the fabric (kind and extents).

        Two topology instances with equal signatures are interchangeable;
        region maps and networks compare signatures, never instances.
        """
        return (self.kind, self.width, self.height)

    # -- routing queries ----------------------------------------------------
    def hop_distance(self, src: int, dst: int) -> int:
        """Minimal hop count between two nodes."""
        raise NotImplementedError

    def minimal_ports(self, node: int, dst: int) -> tuple[int, ...]:
        """Output ports on minimal paths from ``node`` to ``dst``.

        Returns ``(LOCAL,)`` when ``node == dst``; otherwise one or more
        link ports (one or two per productive dimension).
        """
        raise NotImplementedError

    def dimension_order_port(self, node: int, dst: int) -> int:
        """The deterministic dimension-order output port (the escape path)."""
        raise NotImplementedError

    def xy_port(self, node: int, dst: int) -> int:
        """Alias of :meth:`dimension_order_port` (historical mesh name)."""
        return self.dimension_order_port(node, dst)

    def escape_class(self, node: int, dst: int) -> int:
        """Dateline VC class for the escape hop leaving ``node`` toward ``dst``.

        Always 0 on fabrics whose dimension-order graph is acyclic; wrap
        fabrics return 0 or 1 (see the module docstring).
        """
        return 0

    def steps_to(self, node: int, dst: int, port: int) -> int:
        """Hops travelled in ``port``'s direction en route from ``node`` to ``dst``.

        Only meaningful for ports in ``minimal_ports(node, dst)`` — the
        DBAR selection function uses it to bound its congestion path walk.
        """
        raise NotImplementedError

    def path_nodes(self, node: int, port: int, stop: int) -> list[int]:
        """Nodes reached by repeatedly stepping through ``port`` from ``node``.

        Walks in the fixed direction ``port`` (a link port, not LOCAL) and
        collects nodes until ``stop`` steps have been taken or, on fabrics
        with edges, the boundary is hit. Used by the DBAR selection
        function to enumerate the routers whose congestion feeds a path
        estimate.
        """
        out: list[int] = []
        cur = node
        neighbor = self.neighbor
        for _ in range(stop):
            cur = neighbor[cur][port]
            if cur < 0:
                break
            out.append(cur)
        return out

    # -- placement helpers --------------------------------------------------
    def corner_nodes(self) -> tuple[int, int, int, int]:
        """Four spread-out boundary nodes (used as memory-controller sites)."""
        raise NotImplementedError

    def center_nodes(self) -> tuple[int, int, int, int]:
        """Four nodes at the centre of the fabric (hotspot sites)."""
        raise NotImplementedError

    def region_grid(self, cols: int, rows: int) -> list[int]:
        """Node -> region assignment for a ``cols`` x ``rows`` region split.

        Region ids are row-major. Uneven divisions are balanced with
        integer rounding (band sizes differ by at most one).
        """
        if cols < 1 or rows < 1 or cols > self.width or rows > self.height:
            raise ConfigError(
                f"cannot split {self.width}x{self.height} {self.kind} "
                f"into {cols}x{rows} regions"
            )
        col_of = band_index(self.width, cols)
        row_of = band_index(self.height, rows)
        assign = []
        for node in range(self.num_nodes):
            x, y = self.coords(node)
            assign.append(row_of[y] * cols + col_of[x])
        return assign

    # -- export -------------------------------------------------------------
    def to_networkx(self):
        """Export the fabric as a ``networkx.Graph`` (for analysis/tests).

        ``networkx`` is imported lazily — it is an ``[analysis]`` extra,
        not a core simulator dependency.
        """
        import networkx as nx

        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        for node in range(self.num_nodes):
            row = self.neighbor[node]
            for port in range(1, self.num_ports):
                if row[port] >= 0:
                    g.add_edge(node, row[port])
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"{type(self).__name__}({self.width}x{self.height})"


class _GridTopology(Topology):
    """Shared machinery of the 2-D grid fabrics (mesh and torus)."""

    _wrap = False

    def __init__(self, width: int, height: int):
        require(
            width >= 2 and height >= 2,
            f"{self.kind} must be at least 2x2, got {width}x{height}",
        )
        self.width = width
        self.height = height
        self.num_nodes = width * height
        # neighbor[node][port] -> neighbour node id, or -1 at a mesh edge.
        self.neighbor: list[tuple[int, ...]] = []
        for node in range(self.num_nodes):
            x, y = node % width, node // width
            row = [-1] * NUM_PORTS
            for port, (dx, dy) in _DELTAS.items():
                nx_, ny_ = x + dx, y + dy
                if self._wrap:
                    row[port] = (ny_ % height) * width + (nx_ % width)
                elif 0 <= nx_ < width and 0 <= ny_ < height:
                    row[port] = ny_ * width + nx_
            self.neighbor.append(tuple(row))

    def corner_nodes(self) -> tuple[int, int, int, int]:
        """The four corner nodes (used as memory-controller sites)."""
        return (
            self.node_at(0, 0),
            self.node_at(self.width - 1, 0),
            self.node_at(0, self.height - 1),
            self.node_at(self.width - 1, self.height - 1),
        )

    def center_nodes(self) -> tuple[int, int, int, int]:
        """The 2x2 block of nodes around the grid centre."""
        cx, cy = self.width // 2, self.height // 2
        return (
            self.node_at(cx - 1, cy - 1),
            self.node_at(cx, cy - 1),
            self.node_at(cx - 1, cy),
            self.node_at(cx, cy),
        )


class MeshTopology(_GridTopology):
    """Geometry of a ``width`` x ``height`` mesh.

    Pure arithmetic — holds no simulation state. Precomputes the neighbour
    table so the router hot loop never does coordinate math.
    """

    kind = "mesh"

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan hop count between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def minimal_ports(self, node: int, dst: int) -> tuple[int, ...]:
        """Output ports on minimal paths from ``node`` to ``dst``.

        Returns ``(LOCAL,)`` when ``node == dst``. For distinct nodes the
        result has one or two entries (one per productive dimension).
        """
        if node == dst:
            return (LOCAL,)
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        ports = []
        if dx > x:
            ports.append(EAST)
        elif dx < x:
            ports.append(WEST)
        if dy > y:
            ports.append(SOUTH)
        elif dy < y:
            ports.append(NORTH)
        return tuple(ports)

    def dimension_order_port(self, node: int, dst: int) -> int:
        """The dimension-order (X-then-Y) output port from ``node`` to ``dst``."""
        if node == dst:
            return LOCAL
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        if dx > x:
            return EAST
        if dx < x:
            return WEST
        return SOUTH if dy > y else NORTH

    def steps_to(self, node: int, dst: int, port: int) -> int:
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        if port in (EAST, WEST):
            return abs(dx - x)
        if port in (NORTH, SOUTH):
            return abs(dy - y)
        return 0


class TorusTopology(_GridTopology):
    """A ``width`` x ``height`` torus: the mesh grid plus wrap-around links.

    Minimal routing takes the shorter way around each dimension (ties
    prefer the positive — east/south — direction, matching dimension-order
    routing). The escape network is dimension-order with two dateline VC
    classes per dimension ring (module docstring).
    """

    kind = "torus"
    _wrap = True
    num_escape_classes = 2

    def hop_distance(self, src: int, dst: int) -> int:
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        hx = abs(sx - dx)
        hy = abs(sy - dy)
        return min(hx, self.width - hx) + min(hy, self.height - hy)

    def minimal_ports(self, node: int, dst: int) -> tuple[int, ...]:
        if node == dst:
            return (LOCAL,)
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        ports = []
        if dx != x:
            east = (dx - x) % self.width
            west = self.width - east
            if east < west:
                ports.append(EAST)
            elif west < east:
                ports.append(WEST)
            else:  # antipodal in X: both directions are minimal
                ports.append(EAST)
                ports.append(WEST)
        if dy != y:
            south = (dy - y) % self.height
            north = self.height - south
            if south < north:
                ports.append(SOUTH)
            elif north < south:
                ports.append(NORTH)
            else:
                ports.append(SOUTH)
                ports.append(NORTH)
        return tuple(ports)

    def dimension_order_port(self, node: int, dst: int) -> int:
        if node == dst:
            return LOCAL
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        if dx != x:
            east = (dx - x) % self.width
            return EAST if east <= self.width - east else WEST
        south = (dy - y) % self.height
        return SOUTH if south <= self.height - south else NORTH

    def escape_class(self, node: int, dst: int) -> int:
        # Dateline rule per directed dimension ring: class 0 before the
        # wrap edge would be needed, class 1 on the far side. Travelling
        # east, a packet with x < dx never crosses the x = 0 dateline
        # (class 0); one with x > dx is east-of-wrap (class 1) until the
        # wrap hop lands it back in class 0. Symmetric for west/south/north.
        if node == dst:
            return 0
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        if dx != x:
            east = (dx - x) % self.width
            if east <= self.width - east:
                return 0 if x < dx else 1
            return 0 if x > dx else 1
        south = (dy - y) % self.height
        if south <= self.height - south:
            return 0 if y < dy else 1
        return 0 if y > dy else 1

    def steps_to(self, node: int, dst: int, port: int) -> int:
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        if port == EAST:
            return (dx - x) % self.width
        if port == WEST:
            return (x - dx) % self.width
        if port == SOUTH:
            return (dy - y) % self.height
        if port == NORTH:
            return (y - dy) % self.height
        return 0


class RingTopology(Topology):
    """A bidirectional ring of ``num_nodes`` routers.

    Three ports per router: ``LOCAL``, ``RING_CW`` (toward the next-higher
    node id) and ``RING_CCW``. Logically a ``num_nodes x 1`` grid, so every
    coordinate helper works unchanged. Minimal routing takes the shorter
    way around (ties prefer clockwise); the escape network is the minimal
    direction with two dateline VC classes (module docstring).
    """

    kind = "ring"
    num_ports = 3
    port_names = ("local", "cw", "ccw")
    opposite = (LOCAL, RING_CCW, RING_CW)
    num_escape_classes = 2

    def __init__(self, num_nodes: int):
        require(num_nodes >= 4, f"ring needs at least 4 nodes, got {num_nodes}")
        self.width = num_nodes
        self.height = 1
        self.num_nodes = num_nodes
        self.neighbor = [
            (-1, (node + 1) % num_nodes, (node - 1) % num_nodes)
            for node in range(num_nodes)
        ]
        # A bisection cut crosses 2 ring channels per direction vs ~sqrt(N)
        # for an equal-node mesh, so uniform-random saturation is ~2/sqrt(N)
        # of the mesh's (1.0 for N <= 4, 0.25 for the default 64 nodes).
        self.saturation_scale = min(1.0, 2.0 / num_nodes**0.5)

    def hop_distance(self, src: int, dst: int) -> int:
        cw = (dst - src) % self.num_nodes
        return min(cw, self.num_nodes - cw)

    def minimal_ports(self, node: int, dst: int) -> tuple[int, ...]:
        if node == dst:
            return (LOCAL,)
        cw = (dst - node) % self.num_nodes
        ccw = self.num_nodes - cw
        if cw < ccw:
            return (RING_CW,)
        if ccw < cw:
            return (RING_CCW,)
        return (RING_CW, RING_CCW)  # antipodal: both directions minimal

    def dimension_order_port(self, node: int, dst: int) -> int:
        if node == dst:
            return LOCAL
        cw = (dst - node) % self.num_nodes
        return RING_CW if cw <= self.num_nodes - cw else RING_CCW

    def escape_class(self, node: int, dst: int) -> int:
        if node == dst:
            return 0
        cw = (dst - node) % self.num_nodes
        if cw <= self.num_nodes - cw:
            return 0 if node < dst else 1
        return 0 if node > dst else 1

    def steps_to(self, node: int, dst: int, port: int) -> int:
        cw = (dst - node) % self.num_nodes
        if port == RING_CW:
            return cw
        if port == RING_CCW:
            return (self.num_nodes - cw) % self.num_nodes
        return 0

    def corner_nodes(self) -> tuple[int, int, int, int]:
        """Four equally spread nodes (memory-controller sites)."""
        n = self.num_nodes
        return (0, n // 4, n // 2, 3 * n // 4)

    def center_nodes(self) -> tuple[int, int, int, int]:
        """Four consecutive nodes around the ring's midpoint."""
        n = self.num_nodes
        m = n // 2
        return ((m - 1) % n, m, (m + 1) % n, (m + 2) % n)

    def region_grid(self, cols: int, rows: int) -> list[int]:
        """``cols * rows`` contiguous arcs, ids row-major like the grids."""
        regions = cols * rows
        if cols < 1 or rows < 1 or regions > self.num_nodes:
            raise ConfigError(
                f"cannot split {self.num_nodes}-node {self.kind} "
                f"into {cols}x{rows} regions"
            )
        band_of = band_index(self.num_nodes, regions)
        return [band_of[node] for node in range(self.num_nodes)]

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"RingTopology({self.num_nodes})"


def band_index(extent: int, bands: int) -> list[int]:
    """Map each coordinate in [0, extent) to one of ``bands`` near-equal bands."""
    # Boundaries by rounding i*extent/bands, giving band sizes that differ
    # by at most one.
    return [min(bands - 1, coord * bands // extent) for coord in range(extent)]


_TOPOLOGY_CLASSES: dict[str, type] = {
    "mesh": MeshTopology,
    "torus": TorusTopology,
    "ring": RingTopology,
}


def num_escape_classes_for(kind: str) -> int:
    """Dateline escape-VC classes topology ``kind`` needs (without building it)."""
    cls = _TOPOLOGY_CLASSES.get(kind)
    if cls is None:
        raise ConfigError(f"unknown topology {kind!r}; choose one of {TOPOLOGY_KINDS}")
    return cls.num_escape_classes


def build_topology(kind: str, width: int, height: int) -> Topology:
    """Construct a topology by registry name.

    A ring folds the ``width x height`` extents into a single
    ``width * height``-node loop so configs stay shape-compatible.
    """
    if kind == "ring":
        return RingTopology(width * height)
    cls = _TOPOLOGY_CLASSES.get(kind)
    if cls is None:
        raise ConfigError(f"unknown topology {kind!r}; choose one of {TOPOLOGY_KINDS}")
    return cls(width, height)


def make_topology(config) -> Topology:
    """Build the topology a :class:`~repro.noc.config.NocConfig` names."""
    return build_topology(
        getattr(config, "topology", "mesh"), config.width, config.height
    )
