"""2-D mesh topology: node numbering, ports, neighbour arithmetic.

Nodes are numbered row-major: node ``n`` sits at coordinates
``(x, y) = (n % width, n // width)`` with ``x`` increasing eastward and
``y`` increasing southward. Each router has five ports; port 0 (``LOCAL``)
connects the attached core/network interface, ports 1-4 connect mesh
neighbours.
"""

from __future__ import annotations

import networkx as nx

from repro.util.validate import require

__all__ = [
    "LOCAL",
    "NORTH",
    "EAST",
    "SOUTH",
    "WEST",
    "NUM_PORTS",
    "PORT_NAMES",
    "OPPOSITE",
    "MeshTopology",
]

LOCAL = 0
NORTH = 1
EAST = 2
SOUTH = 3
WEST = 4
NUM_PORTS = 5
PORT_NAMES = ("local", "north", "east", "south", "west")
# OPPOSITE[p] is the input port on the neighbour that a flit leaving through
# output port p arrives on (flits leaving eastward arrive on the west port).
OPPOSITE = (LOCAL, SOUTH, WEST, NORTH, EAST)

_DELTAS = {NORTH: (0, -1), EAST: (1, 0), SOUTH: (0, 1), WEST: (-1, 0)}


class MeshTopology:
    """Geometry of a ``width`` x ``height`` mesh.

    Pure arithmetic — holds no simulation state. Precomputes the neighbour
    table so the router hot loop never does coordinate math.
    """

    def __init__(self, width: int, height: int):
        require(width >= 2 and height >= 2, f"mesh must be at least 2x2, got {width}x{height}")
        self.width = width
        self.height = height
        self.num_nodes = width * height
        # neighbor[node][port] -> neighbour node id, or -1 at the mesh edge.
        self.neighbor: list[tuple[int, ...]] = []
        for node in range(self.num_nodes):
            x, y = node % width, node // width
            row = [-1] * NUM_PORTS
            for port, (dx, dy) in _DELTAS.items():
                nx_, ny_ = x + dx, y + dy
                if 0 <= nx_ < width and 0 <= ny_ < height:
                    row[port] = ny_ * width + nx_
            self.neighbor.append(tuple(row))

    # -- coordinate helpers -------------------------------------------------
    def coords(self, node: int) -> tuple[int, int]:
        """Return ``(x, y)`` of ``node``."""
        return node % self.width, node // self.width

    def node_at(self, x: int, y: int) -> int:
        """Return the node id at ``(x, y)``."""
        require(0 <= x < self.width and 0 <= y < self.height, f"({x},{y}) outside mesh")
        return y * self.width + x

    def hop_distance(self, src: int, dst: int) -> int:
        """Manhattan hop count between two nodes."""
        sx, sy = self.coords(src)
        dx, dy = self.coords(dst)
        return abs(sx - dx) + abs(sy - dy)

    def minimal_ports(self, node: int, dst: int) -> tuple[int, ...]:
        """Output ports on minimal paths from ``node`` to ``dst``.

        Returns ``(LOCAL,)`` when ``node == dst``. For distinct nodes the
        result has one or two entries (one per productive dimension).
        """
        if node == dst:
            return (LOCAL,)
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        ports = []
        if dx > x:
            ports.append(EAST)
        elif dx < x:
            ports.append(WEST)
        if dy > y:
            ports.append(SOUTH)
        elif dy < y:
            ports.append(NORTH)
        return tuple(ports)

    def xy_port(self, node: int, dst: int) -> int:
        """The dimension-order (X-then-Y) output port from ``node`` to ``dst``."""
        if node == dst:
            return LOCAL
        x, y = self.coords(node)
        dx, dy = self.coords(dst)
        if dx > x:
            return EAST
        if dx < x:
            return WEST
        return SOUTH if dy > y else NORTH

    def path_nodes(self, node: int, port: int, stop: int) -> list[int]:
        """Nodes reached by repeatedly stepping through ``port`` from ``node``.

        Walks in the fixed direction ``port`` (a mesh direction, not LOCAL)
        and collects nodes until ``stop`` steps have been taken or the mesh
        edge is hit. Used by the DBAR selection function to enumerate the
        routers whose congestion feeds a path estimate.
        """
        out: list[int] = []
        cur = node
        for _ in range(stop):
            cur = self.neighbor[cur][port]
            if cur < 0:
                break
            out.append(cur)
        return out

    def corner_nodes(self) -> tuple[int, int, int, int]:
        """The four corner nodes (used as memory-controller sites)."""
        return (
            self.node_at(0, 0),
            self.node_at(self.width - 1, 0),
            self.node_at(0, self.height - 1),
            self.node_at(self.width - 1, self.height - 1),
        )

    def to_networkx(self) -> nx.Graph:
        """Export the mesh as a :class:`networkx.Graph` (for analysis/tests)."""
        g = nx.Graph()
        g.add_nodes_from(range(self.num_nodes))
        for node in range(self.num_nodes):
            for port in (EAST, SOUTH):
                nbr = self.neighbor[node][port]
                if nbr >= 0:
                    g.add_edge(node, nbr)
        return g

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        return f"MeshTopology({self.width}x{self.height})"
