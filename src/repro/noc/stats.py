"""Statistics collection and analysis.

:class:`NetworkStats` records one row per *ejected* packet in plain Python
lists (cheap appends in the hot loop) and converts to NumPy arrays lazily
for analysis — the split the HPC guides recommend: pure-Python where the
work is per-event bookkeeping, vectorized NumPy where the work is
aggregate math.

The analysis API mirrors what the paper reports: average packet latency
(APL) per application over a measurement window, slowdowns between runs,
and reductions relative to a baseline scheme.
"""

from __future__ import annotations

import math
from dataclasses import dataclass, field

import numpy as np

__all__ = ["NetworkStats", "LatencyStats", "RunMetrics"]


@dataclass
class RunMetrics:
    """Lightweight wall-clock counters for one measurement run.

    Filled in by :meth:`repro.noc.sim.Simulator.run_measurement`:
    ``phase_cycles`` / ``phase_seconds`` are keyed by the protocol phases
    (``warmup`` / ``measure`` / ``drain``). ``cache_hit`` is set by the
    experiment cache layer when the run was restored from disk instead of
    simulated (its timings then describe the *original* computation).
    """

    wall_time_s: float = 0.0
    cycles: int = 0
    phase_cycles: dict[str, int] = field(default_factory=dict)
    phase_seconds: dict[str, float] = field(default_factory=dict)
    cache_hit: bool = False
    #: execution attempts the fault-tolerant engine needed for this run
    #: (1 = first try; set by the parent after retries, never by workers)
    attempts: int = 1
    #: periodic observability samples taken during the run (0 = no
    #: collector attached; see :mod:`repro.obs`)
    obs_samples: int = 0
    #: observability events recorded during the run (DPA flips + per-class
    #: latency observations)
    obs_events: int = 0
    #: idle-gap jumps the fast-forward path took, and the total cycles it
    #: skipped (0 = naive ticking or a workload with no idle gaps)
    ff_jumps: int = 0
    ff_cycles_skipped: int = 0
    #: packet allocations served from the network's free-list pool vs
    #: freshly constructed (per-network totals at measurement end)
    pool_hits: int = 0
    pool_allocs: int = 0

    @property
    def cycles_per_sec(self) -> float:
        """Simulated cycles per wall-clock second.

        Returns 0.0 for any run that cannot meaningfully be rated: no
        cycles executed yet, a wall time at or below the clock resolution
        (a cache-restored or sub-millisecond run can legitimately carry
        ``wall_time_s == 0.0`` with ``cycles > 0`` — dividing would either
        crash or report an absurd rate), or a non-finite wall time from a
        corrupted metrics payload.
        """
        if self.cycles <= 0 or self.wall_time_s <= 0.0:
            return 0.0
        if not math.isfinite(self.wall_time_s):
            return 0.0
        return self.cycles / self.wall_time_s

    def record_phase(self, name: str, cycles: int, seconds: float) -> None:
        """Accumulate one protocol phase into the totals."""
        self.phase_cycles[name] = self.phase_cycles.get(name, 0) + cycles
        self.phase_seconds[name] = self.phase_seconds.get(name, 0.0) + seconds
        self.cycles += cycles
        self.wall_time_s += seconds

    def reset(self) -> None:
        """Zero every counter (e.g. before reusing a simulator)."""
        self.wall_time_s = 0.0
        self.cycles = 0
        self.phase_cycles.clear()
        self.phase_seconds.clear()
        self.cache_hit = False
        self.attempts = 1
        self.obs_samples = 0
        self.obs_events = 0
        self.ff_jumps = 0
        self.ff_cycles_skipped = 0
        self.pool_hits = 0
        self.pool_allocs = 0

    def snapshot(self) -> "RunMetrics":
        """Independent copy of the current counters.

        :meth:`~repro.noc.sim.Simulator.run_measurement` hands each result
        a snapshot so later runs on the same simulator cannot mutate
        results already returned.
        """
        return RunMetrics(
            wall_time_s=self.wall_time_s,
            cycles=self.cycles,
            phase_cycles=dict(self.phase_cycles),
            phase_seconds=dict(self.phase_seconds),
            cache_hit=self.cache_hit,
            attempts=self.attempts,
            obs_samples=self.obs_samples,
            obs_events=self.obs_events,
            ff_jumps=self.ff_jumps,
            ff_cycles_skipped=self.ff_cycles_skipped,
            pool_hits=self.pool_hits,
            pool_allocs=self.pool_allocs,
        )

    # -- serialization (result cache / FigureResult output) ------------------
    def to_dict(self) -> dict:
        return {
            "wall_time_s": self.wall_time_s,
            "cycles": self.cycles,
            "cycles_per_sec": self.cycles_per_sec,
            "phase_cycles": dict(self.phase_cycles),
            "phase_seconds": dict(self.phase_seconds),
            "cache_hit": self.cache_hit,
            "attempts": self.attempts,
            "obs_samples": self.obs_samples,
            "obs_events": self.obs_events,
            "ff_jumps": self.ff_jumps,
            "ff_cycles_skipped": self.ff_cycles_skipped,
            "pool_hits": self.pool_hits,
            "pool_allocs": self.pool_allocs,
        }

    @classmethod
    def from_dict(cls, d: dict) -> "RunMetrics":
        # .get defaults keep payloads cached before these counters existed
        # loadable (the result cache stores metrics dicts on disk).
        return cls(
            wall_time_s=float(d["wall_time_s"]),
            cycles=int(d["cycles"]),
            phase_cycles={str(k): int(v) for k, v in d["phase_cycles"].items()},
            phase_seconds={str(k): float(v) for k, v in d["phase_seconds"].items()},
            cache_hit=bool(d.get("cache_hit", False)),
            attempts=int(d.get("attempts", 1)),
            obs_samples=int(d.get("obs_samples", 0)),
            obs_events=int(d.get("obs_events", 0)),
            ff_jumps=int(d.get("ff_jumps", 0)),
            ff_cycles_skipped=int(d.get("ff_cycles_skipped", 0)),
            pool_hits=int(d.get("pool_hits", 0)),
            pool_allocs=int(d.get("pool_allocs", 0)),
        )


@dataclass(frozen=True)
class LatencyStats:
    """Summary of one latency sample set."""

    count: int
    mean: float
    median: float
    p95: float
    p99: float
    max: float

    @classmethod
    def from_samples(cls, samples: np.ndarray) -> "LatencyStats":
        """Summarize an array of latencies; empty input gives NaN fields."""
        if len(samples) == 0:
            nan = float("nan")
            return cls(0, nan, nan, nan, nan, nan)
        return cls(
            count=int(len(samples)),
            mean=float(np.mean(samples)),
            median=float(np.median(samples)),
            p95=float(np.percentile(samples, 95)),
            p99=float(np.percentile(samples, 99)),
            max=float(np.max(samples)),
        )


class NetworkStats:
    """Per-packet ejection log plus running counters."""

    def __init__(self) -> None:
        self._inject: list[int] = []
        self._eject: list[int] = []
        self._app: list[int] = []
        self._src: list[int] = []
        self._dst: list[int] = []
        self._length: list[int] = []
        self._hops: list[int] = []
        self._is_global: list[bool] = []
        self._is_adversarial: list[bool] = []
        self.flits_moved = 0
        self.packets_ejected = 0
        self._arrays: dict | None = None

    # -- recording (hot path) ----------------------------------------------------
    def record_ejection(self, pkt, eject_cycle: int) -> None:
        """Log a fully ejected packet."""
        self._inject.append(pkt.inject_cycle)
        self._eject.append(eject_cycle)
        self._app.append(pkt.app_id)
        self._src.append(pkt.src)
        self._dst.append(pkt.dst)
        self._length.append(pkt.length)
        self._hops.append(pkt.hops)
        self._is_global.append(pkt.is_global)
        self._is_adversarial.append(pkt.is_adversarial)
        self.packets_ejected += 1
        self._arrays = None

    # -- analysis ------------------------------------------------------------------
    def _as_arrays(self) -> dict:
        if self._arrays is None:
            self._arrays = {
                "inject": np.asarray(self._inject, dtype=np.int64),
                "eject": np.asarray(self._eject, dtype=np.int64),
                "app": np.asarray(self._app, dtype=np.int64),
                "src": np.asarray(self._src, dtype=np.int64),
                "dst": np.asarray(self._dst, dtype=np.int64),
                "length": np.asarray(self._length, dtype=np.int64),
                "hops": np.asarray(self._hops, dtype=np.int64),
                "is_global": np.asarray(self._is_global, dtype=bool),
                "is_adversarial": np.asarray(self._is_adversarial, dtype=bool),
            }
        return self._arrays

    def _mask(
        self,
        app: int | None,
        window: tuple[int, int] | None,
        include_adversarial: bool,
        only_global: bool | None,
    ) -> np.ndarray:
        a = self._as_arrays()
        mask = np.ones(len(a["inject"]), dtype=bool)
        if app is not None:
            mask &= a["app"] == app
        if window is not None:
            t0, t1 = window
            mask &= (a["inject"] >= t0) & (a["inject"] < t1)
        if not include_adversarial:
            mask &= ~a["is_adversarial"]
        if only_global is not None:
            mask &= a["is_global"] == only_global
        return mask

    def latencies(
        self,
        app: int | None = None,
        window: tuple[int, int] | None = None,
        include_adversarial: bool = False,
        only_global: bool | None = None,
    ) -> np.ndarray:
        """Packet latencies (eject - inject) matching the filters.

        ``window`` filters on *injection* cycle — the paper's measurement
        protocol (measure packets injected during the measurement window,
        then drain).
        """
        a = self._as_arrays()
        mask = self._mask(app, window, include_adversarial, only_global)
        return (a["eject"] - a["inject"])[mask]

    def apl(self, **kw) -> float:
        """Average packet latency over the filtered set (NaN if empty)."""
        lat = self.latencies(**kw)
        return float(np.mean(lat)) if len(lat) else float("nan")

    def summary(self, **kw) -> LatencyStats:
        """Latency summary over the filtered set."""
        return LatencyStats.from_samples(self.latencies(**kw))

    def packet_count(self, **kw) -> int:
        """Number of ejected packets matching the filters."""
        return int(self._mask(
            kw.get("app"), kw.get("window"), kw.get("include_adversarial", False),
            kw.get("only_global"),
        ).sum())

    def throughput_flits(self, window: tuple[int, int], app: int | None = None) -> float:
        """Accepted flits per cycle over an *ejection*-cycle window."""
        a = self._as_arrays()
        t0, t1 = window
        mask = (a["eject"] >= t0) & (a["eject"] < t1)
        if app is not None:
            mask &= a["app"] == app
        return float(a["length"][mask].sum()) / max(1, t1 - t0)

    def apps(self) -> list[int]:
        """Distinct application ids seen in the ejection log."""
        a = self._as_arrays()
        return sorted(int(x) for x in np.unique(a["app"]))

    def per_app_apl(self, window: tuple[int, int] | None = None) -> dict[int, float]:
        """APL per application (adversarial traffic excluded)."""
        return {app: self.apl(app=app, window=window) for app in self.apps() if app >= 0}

    def mean_hops(self, **kw) -> float:
        """Mean traversed hop count over the filtered packets."""
        a = self._as_arrays()
        mask = self._mask(
            kw.get("app"), kw.get("window"), kw.get("include_adversarial", False),
            kw.get("only_global"),
        )
        hops = a["hops"][mask]
        return float(hops.mean()) if len(hops) else float("nan")
