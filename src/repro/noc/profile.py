"""cProfile entry point for the simulation kernel.

Usage::

    python -m repro.noc.profile                       # default workload
    python -m repro.noc.profile --scheme RA_RAIR --effort MEDIUM
    python -m repro.noc.profile --sort tottime --top 30 --out profile.txt
    python -m repro.noc.profile --naive               # fast-forward off

Profiles one scheme × scenario measurement (the same
``run_scenario`` pipeline the experiment suite uses) under ``cProfile``
and prints two views:

* a **per-module aggregation** — total and cumulative time summed over
  each source module, the quickest way to see which layer (router,
  network, traffic, policy) owns the wall clock, and
* the standard per-function ``pstats`` listing, restricted to the top N
  entries by the chosen sort key.

``--out`` additionally writes the full text report to a file (the file
receives exactly what is printed).
"""

from __future__ import annotations

import argparse
import cProfile
import io
import pstats
import sys

__all__ = ["main"]


def _parse_args(argv):
    parser = argparse.ArgumentParser(
        prog="python -m repro.noc.profile",
        description="Profile the NoC simulation kernel with cProfile.",
    )
    parser.add_argument(
        "--scheme",
        default="RA_RAIR",
        help="scheme name from repro.experiments.runner.SCHEMES (default RA_RAIR)",
    )
    parser.add_argument(
        "--p-inter",
        type=float,
        default=0.4,
        help="inter-region fraction for the two-app MSP scenario (default 0.4)",
    )
    parser.add_argument(
        "--effort",
        default="FAST",
        choices=["SMOKE", "FAST", "MEDIUM", "FULL"],
        help="warmup/measure window size (default FAST)",
    )
    parser.add_argument("--seed", type=int, default=11)
    parser.add_argument(
        "--sort",
        default="cumulative",
        choices=sorted(k for k in pstats.SortKey.__members__.values()),
        help="pstats sort key for the per-function listing (default cumulative)",
    )
    parser.add_argument(
        "--top", type=int, default=20, help="entries in each listing (default 20)"
    )
    parser.add_argument(
        "--out",
        default=None,
        help="also write the text report to this file",
    )
    parser.add_argument(
        "--naive",
        action="store_true",
        help="disable idle-cycle fast-forward (profile the naive tick loop)",
    )
    return parser.parse_args(argv)


def _module_of(func_key) -> str:
    filename = func_key[0]
    if filename == "~":
        return "<builtin>"
    return filename


def _module_table(stats: pstats.Stats, top: int) -> str:
    """Aggregate per-function rows into per-module totals."""
    per_module: dict[str, list[float]] = {}
    for func, (cc, nc, tt, ct, _callers) in stats.stats.items():
        row = per_module.setdefault(_module_of(func), [0, 0.0, 0.0])
        row[0] += nc
        row[1] += tt
        # Cumulative time double-counts nested calls within one module;
        # taking the max over the module's functions instead gives the
        # time spent while *any* frame of the module was on the stack's
        # deepest entry point — the usual "which layer owns the time" view.
        row[2] = max(row[2], ct)
    ordered = sorted(per_module.items(), key=lambda kv: kv[1][1], reverse=True)
    lines = [
        "per-module totals (sorted by internal time):",
        f"  {'tottime':>10} {'cumtime':>10} {'calls':>12}  module",
    ]
    for module, (calls, tottime, cumtime) in ordered[:top]:
        lines.append(f"  {tottime:10.4f} {cumtime:10.4f} {calls:12d}  {module}")
    return "\n".join(lines)


def main(argv=None) -> int:
    args = _parse_args(argv if argv is not None else sys.argv[1:])

    # Imported here so ``--help`` stays instant and the profile run does
    # not attribute import time to the kernel.
    from repro.experiments.runner import SCHEMES, Effort, run_scenario
    from repro.experiments.scenarios import two_app_msp

    try:
        scheme = SCHEMES[args.scheme]
    except KeyError:
        print(
            f"unknown scheme {args.scheme!r}; known: {sorted(SCHEMES)}",
            file=sys.stderr,
        )
        return 2
    effort = Effort[args.effort]
    scenario = two_app_msp(args.p_inter)

    if args.naive:
        import os

        os.environ["REPRO_DISABLE_FAST_FORWARD"] = "1"

    profiler = cProfile.Profile()
    profiler.enable()
    run = run_scenario(scheme, scenario, effort, seed=args.seed)
    profiler.disable()

    buf = io.StringIO()
    stats = pstats.Stats(profiler, stream=buf)
    header = (
        f"profiled {scheme.key} on {run.scenario} at effort {args.effort} "
        f"(seed {args.seed}, fast-forward {'off' if args.naive else 'on'}): "
        f"{run.end_cycle} cycles, {run.packets_measured} packets measured"
    )
    print(header, file=buf)
    print(file=buf)
    print(_module_table(stats, args.top), file=buf)
    print(file=buf)
    stats.sort_stats(args.sort).print_stats(args.top)
    report = buf.getvalue()

    sys.stdout.write(report)
    if args.out:
        with open(args.out, "w") as fh:
            fh.write(report)
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
