"""Input virtual-channel state machine.

An :class:`InputVC` is the unit of buffering and arbitration in the router.
Because VCs are *atomic* (Table 1 of the paper: one packet occupies a VC at
a time), a VC's buffered flits all belong to one packet and are represented
by a deque of their arrival cycles rather than per-flit objects — the hot
loop never allocates.

State machine::

    IDLE --head flit arrives--> ROUTING/VA --wins VA_out--> ACTIVE
    ACTIVE --tail flit sent--> IDLE

A VC in ``VA`` state has a head flit buffered and competes for an output VC
each cycle; a VC in ``ACTIVE`` state owns a downstream VC and competes for
the switch whenever it has a flit buffered, a credit available and its
pipeline-stage timestamps allow.

The VC is not polled for schedulability: it *reports* its transitions to
the caller, who maintains the router's wake lists (see ``Router.va_pending``
/ ``Router.sa_pending`` and the "Kernel scheduling" section of
``docs/ARCHITECTURE.md``):

* :meth:`head_arrive` makes the VC VA-eligible (from the next cycle) —
  the caller arms the VA wake list;
* :meth:`body_arrive` returns True when the arrival made an ACTIVE VC
  newly SA-schedulable (its buffer had drained) — the caller re-arms the
  SA wake list;
* :meth:`send_flit` returns True on the tail flit (VC drained *and*
  released) — the caller retires the VC from the SA wake list.

:meth:`wants_va` / :meth:`wants_sa` remain as the brute-force eligibility
oracle that the wake lists are cross-checked against in tests.
"""

from __future__ import annotations

from collections import deque

from repro.noc.config import VcClass
from repro.util.errors import SimulationError

__all__ = ["InputVC", "VC_IDLE", "VC_VA", "VC_ACTIVE"]

VC_IDLE = 0
VC_VA = 1
VC_ACTIVE = 2


class InputVC:
    """One virtual channel of one input port of one router."""

    __slots__ = (
        "node",
        "port",
        "vc",
        "vnet",
        "vc_class",
        "is_escape",
        "pkt",
        "arrivals",
        "flits_recv",
        "flits_sent",
        "state",
        "out_port",
        "out_vc",
        "route_ports",
        "escape_port",
        "escape_class",
        "va_ready",
        "sa_ready",
        "is_native",
    )

    def __init__(self, node: int, port: int, vc: int, vnet: int, vc_class: VcClass, is_escape: bool):
        self.node = node
        self.port = port
        self.vc = vc
        self.vnet = vnet
        self.vc_class = vc_class
        self.is_escape = is_escape
        self.pkt = None
        self.arrivals: deque[int] = deque()
        self.flits_recv = 0
        self.flits_sent = 0
        self.state = VC_IDLE
        self.out_port = -1
        self.out_vc = -1
        self.route_ports: tuple[int, ...] | None = None
        # Cached alongside route_ports (all three are pure functions of
        # the resident packet); only meaningful while route_ports is not
        # None. escape_class is the dateline VC class of the escape hop
        # (always 0 on fabrics with a single escape class).
        self.escape_port = -1
        self.escape_class = 0
        self.va_ready = 0
        self.sa_ready = 0
        # Native/foreign classification of the resident packet w.r.t. this
        # router's region; cached at head arrival (RAIR Section IV.E: "a
        # packet is identified as either native ... or foreign").
        self.is_native = True

    # -- arrivals -------------------------------------------------------------
    def head_arrive(self, pkt, cycle: int, native: bool) -> None:
        """First flit of ``pkt`` is written into this buffer at ``cycle``."""
        if self.state != VC_IDLE or self.pkt is not None:
            raise SimulationError(
                f"head flit of {pkt!r} arrived at busy VC "
                f"(node {self.node} port {self.port} vc {self.vc})"
            )
        if pkt.vnet != self.vnet:
            raise SimulationError(f"{pkt!r} delivered to vnet-{self.vnet} VC")
        self.pkt = pkt
        self.arrivals.append(cycle)
        self.flits_recv = 1
        self.flits_sent = 0
        self.state = VC_VA
        self.route_ports = None
        self.va_ready = cycle + 1
        self.is_native = native

    def body_arrive(self, cycle: int) -> bool:
        """A subsequent flit of the resident packet arrives at ``cycle``.

        Returns True when this arrival made the VC newly SA-schedulable:
        it is ACTIVE (owns a downstream VC) and its buffer had fully
        drained, so the switch-allocation wake list forgot about it.
        """
        pkt = self.pkt
        if pkt is None:
            raise SimulationError(
                f"body flit arrived at empty VC (node {self.node} port {self.port} vc {self.vc})"
            )
        if self.flits_recv >= pkt.length:
            raise SimulationError(f"too many flits arrived for {pkt!r}")
        was_drained = not self.arrivals
        self.arrivals.append(cycle)
        self.flits_recv += 1
        return was_drained and self.state == VC_ACTIVE

    # -- queries --------------------------------------------------------------
    def occupancy(self) -> int:
        """Number of flits currently buffered."""
        return len(self.arrivals)

    def wants_va(self, cycle: int) -> bool:
        """True when this VC should compete in VC allocation this cycle."""
        return self.state == VC_VA and cycle >= self.va_ready

    def wants_sa(self, cycle: int) -> bool:
        """True when this VC has a flit eligible for switch allocation.

        Credit availability is checked by the router (it owns the credit
        counters); this only checks VC-local pipeline conditions: a flit is
        buffered, it was buffered in an earlier cycle (buffer-write and
        switch traversal cannot share a cycle), and the post-VA setup delay
        has elapsed.
        """
        return (
            self.state == VC_ACTIVE
            and bool(self.arrivals)
            and self.arrivals[0] < cycle
            and cycle >= self.sa_ready
        )

    # -- transitions ----------------------------------------------------------
    def grant_vc(self, out_port: int, out_vc: int, cycle: int) -> None:
        """VA_out granted this VC the downstream VC ``(out_port, out_vc)``."""
        if self.state != VC_VA:
            raise SimulationError("VC granted an output VC while not in VA state")
        self.out_port = out_port
        self.out_vc = out_vc
        self.state = VC_ACTIVE
        self.sa_ready = cycle + 1

    def send_flit(self, cycle: int) -> bool:
        """One flit wins the switch and departs; returns True if it was the tail."""
        if not self.arrivals:
            raise SimulationError("send_flit on empty buffer")
        self.arrivals.popleft()
        self.flits_sent += 1
        if self.flits_sent == self.pkt.length:
            self._release()
            return True
        return False

    def _release(self) -> None:
        if self.arrivals:
            raise SimulationError("VC released while flits still buffered")
        self.pkt = None
        self.state = VC_IDLE
        self.out_port = -1
        self.out_vc = -1
        self.route_ports = None
        self.flits_recv = 0
        self.flits_sent = 0

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        st = ("IDLE", "VA", "ACTIVE")[self.state]
        return (
            f"InputVC(n{self.node} p{self.port} v{self.vc} {st} "
            f"buf={len(self.arrivals)} pkt={self.pkt and self.pkt.pid})"
        )
