"""The network: routers, links, injection queues, event wiring.

The :class:`Network` owns all routers plus the cross-router machinery:

* scheduled flit arrivals and credit returns (dict-of-lists keyed by
  cycle — the event volume per cycle is small and ordered delivery keeps
  the simulation deterministic),
* per-node injection queues with a serializing injection link (at most one
  flit enters a router's LOCAL port per cycle, like a network interface),
* the global congestion table ``occupancy`` (flits buffered per router)
  consumed by DBAR's selection function,
* the region map (``region_of`` / router ``app_id`` tags) that RAIR and
  DBAR read,
* statistics and ejection callbacks (the PARSEC-like traffic model hooks
  replies onto request ejections),
* the kernel's *active set* — the routers currently holding at least one
  packet. :meth:`Network.run_router_phases` walks only those (in node
  order, so results never depend on set internals); routers join the set
  when a head flit arrives and leave when their last packet retires. All
  cross-router wake-up events flow through here: flit deliveries arm the
  receiving router's VA/SA wake lists, credit returns re-arm VCs parked
  on that credit (see :mod:`repro.noc.router`),
* the optional :class:`~repro.noc.trace.KernelTrace` hook (``trace``)
  that the kernel emits scheduling events into.
"""

from __future__ import annotations

from collections import deque

import numpy as np

from repro.core.regions import RegionMap
from repro.noc.config import NocConfig
from repro.noc.flit import PacketPool
from repro.noc.router import Router
from repro.noc.stats import NetworkStats
from repro.noc.topology import LOCAL, make_topology
from repro.util.errors import SimulationError

__all__ = ["Network"]


class Network:
    """A NoC (mesh, torus, or ring) with pluggable routing and arbitration.

    Parameters
    ----------
    config:
        Structural parameters (:class:`~repro.noc.config.NocConfig`).
    routing:
        A :class:`~repro.routing.base.RoutingAlgorithm`.
    policy:
        An :class:`~repro.arbitration.base.ArbitrationPolicy`.
    region_map:
        Optional :class:`~repro.core.regions.RegionMap`; without one, every
        node is unassigned (app -1): all traffic is foreign everywhere and
        DBAR's truncation sees a single region — i.e. a conventional NoC.
    trace:
        Optional :class:`~repro.noc.trace.KernelTrace` the kernel emits
        scheduling events into; ``None`` (the default) traces nothing and
        costs one pointer comparison per event.
    """

    def __init__(
        self,
        config: NocConfig,
        routing,
        policy,
        region_map: RegionMap | None = None,
        trace=None,
    ):
        self.config = config
        self.trace = trace
        self.topology = make_topology(config)
        self.region_map = region_map
        if region_map is not None:
            if region_map.topology.signature() != self.topology.signature():
                raise SimulationError("region map topology does not match network config")
            self.region_of = np.asarray(region_map.node_app, dtype=np.int64)
        else:
            self.region_of = np.zeros(self.topology.num_nodes, dtype=np.int64)
        # Plain-int twin of ``region_of`` for per-flit consumers (DBAR's
        # path walk, the obs ejection classifier) — indexing an ndarray
        # yields numpy scalars whose comparisons cost several times an int's.
        self.region_ids = [int(a) for a in self.region_of]
        self.routers = [
            Router(n, config, self, int(region_map.node_app[n]) if region_map else -1)
            for n in range(self.topology.num_nodes)
        ]
        self.routing = routing
        self.policy = policy

        # Event queues: cycle -> list of pending deliveries.
        self._arrivals: dict[int, list] = {}
        self._credits: dict[int, list] = {}
        # Per-flit hot-path constants (attribute chains cost in the kernel).
        self._link_lat = config.link_latency
        self._credit_lat = config.credit_latency
        self._neighbor = self.topology.neighbor
        self._opposite = self.topology.opposite
        # Injection: one FIFO per (node, vnet) + a serializing link.
        self.queues = [
            [deque() for _ in range(config.num_vnets)] for _ in range(self.topology.num_nodes)
        ]
        self._inject_busy_until = [0] * self.topology.num_nodes
        self._inj_vc_ptr = [0] * self.topology.num_nodes
        self._pending_nodes: set[int] = set()
        # Routers currently holding >= 1 packet; the per-cycle router
        # phases walk this (sorted) instead of every router on the chip.
        # The sorted walk order is cached and rebuilt only when the set
        # changes (routers join/leave far less often than cycles tick).
        self._active: set[int] = set()
        self._active_list: list[int] = []
        self._active_dirty = False

        # Congestion table for DBAR / diagnostics: flits buffered per
        # router. A plain list, not an ndarray: it takes two scalar
        # updates per flit on the kernel's hottest path, where ndarray
        # item assignment costs several times what a list write does.
        self.occupancy = [0] * self.topology.num_nodes
        # Per-(router, output port) flit counters for link-utilization
        # reports (port 0 counts ejections into the local NI). Nested
        # lists for the same per-flit-update reason; the ``link_flits``
        # property serves consumers the ndarray view they index.
        self._link_flits = [
            [0] * self.topology.num_ports for _ in range(self.topology.num_nodes)
        ]
        # What DBAR actually sees: a quantized snapshot of the occupancy,
        # refreshed periodically — real DBAR ships coarse congestion levels
        # over dedicated wires with propagation delay, not exact per-cycle
        # buffer counts (DESIGN.md substitution #4).
        self.congestion = np.zeros(self.topology.num_nodes, dtype=np.int64)
        self.congestion_period = 4
        self.congestion_quantum = max(1, config.vc_depth - 1)
        self.congestion_cap = 3  # 2-bit congestion levels
        # Per-app offered flits (STC's intensity oracle input).
        self.app_flits_injected: dict[int, int] = {}
        # Per-app switch traversals (bandwidth actually consumed; the QoS
        # policies' budget accounting input).
        self.app_flits_delivered: dict[int, int] = {}

        self.stats = NetworkStats()
        self.eject_callbacks: list = []
        self.flits_moved = 0
        self.packets_in_flight = 0
        # Packets fully ejected into a local NI since construction. The
        # simulator's ejection watchdog diffs this against its own mark to
        # catch livelock (flits moving, nothing ever ejecting) — a blind
        # spot of the flit-movement watchdog.
        self.packets_ejected = 0
        # Running total of flits buffered chip-wide (== sum(occupancy),
        # maintained incrementally so the per-cycle watchdog check is O(1)).
        self.buffered_total = 0
        # Free list of ejected packet objects (see PacketPool): traffic
        # sources draw from it through alloc_packet, ejection returns to it.
        self.packet_pool = PacketPool()
        # Measurement-window accounting (set by Simulator.run_measurement);
        # lets the drain phase know when every window packet has retired
        # without rescanning the ejection log.
        self.measure_window: tuple[int, int] | None = None
        self.window_injected = 0
        self.window_ejected = 0

        # Attach last: policies and routing algorithms may read any of the
        # state built above (counters, topology, routers) when binding.
        routing.attach(self)
        policy.attach(self)
        # Per-cycle work the kernel can prove unnecessary is skipped:
        # the congestion snapshot only feeds routing algorithms that
        # declare ``uses_congestion`` (DBAR), and the per-router policy
        # hook is only walked when the policy actually overrides it.
        self._congestion_live = bool(getattr(routing, "uses_congestion", False))
        from repro.arbitration.base import ArbitrationPolicy

        self._policy_router_hook = (
            getattr(type(policy), "end_router_cycle", None)
            is not ArbitrationPolicy.end_router_cycle
        )
        # RC-as-lookup: bound method of the routing algorithm's route table
        # when one was built at attach (see RoutingAlgorithm.attach); the
        # router's va_options falls back to the per-packet queries when None.
        self._route_entry = (
            routing.route_entry
            if getattr(routing, "_route_table", None) is not None
            else None
        )

    def set_measure_window(self, window: tuple[int, int]) -> None:
        """Install the injection-cycle window whose packets must drain."""
        self.measure_window = window
        self.window_injected = 0
        self.window_ejected = 0

    # -- injection -------------------------------------------------------------------
    def alloc_packet(self, *args, **kwargs):
        """A packet built from the free-list pool (fields as ``Packet``).

        The hot-path allocation entry point for traffic sources: reuses an
        ejected packet object when one is available (re-initialised in
        place with a fresh pid), otherwise constructs a new one.
        """
        return self.packet_pool.alloc(*args, **kwargs)

    def inject(self, pkt) -> None:
        """Queue a packet at its source node."""
        if pkt.in_pool:
            raise SimulationError(
                f"{pkt!r} was already ejected and returned to the packet "
                f"pool; stale references must not be re-injected"
            )
        if not 0 <= pkt.src < self.topology.num_nodes:
            raise SimulationError(f"{pkt!r} has invalid source")
        if not 0 <= pkt.dst < self.topology.num_nodes:
            raise SimulationError(f"{pkt!r} has invalid destination")
        if pkt.length > self.config.max_packet_flits:
            raise SimulationError(f"{pkt!r} longer than max_packet_flits")
        if not 0 <= pkt.vnet < self.config.num_vnets:
            raise SimulationError(f"{pkt!r} has invalid vnet")
        self.queues[pkt.src][pkt.vnet].append(pkt)
        self._pending_nodes.add(pkt.src)
        self.app_flits_injected[pkt.app_id] = (
            self.app_flits_injected.get(pkt.app_id, 0) + pkt.length
        )
        self.packets_in_flight += 1
        w = self.measure_window
        if w is not None and w[0] <= pkt.inject_cycle < w[1]:
            self.window_injected += 1

    def queued_packets(self) -> int:
        """Packets waiting in source queues across the chip."""
        return sum(len(q) for node in self.queues for q in node)

    def place_injections(self, cycle: int) -> None:
        """Move queued packets into idle LOCAL input VCs (1 flit/cycle link)."""
        if not self._pending_nodes:
            return
        done = []
        # Sorted so injection order never depends on hash-set internals
        # (per-node placements are independent, but determinism should be
        # structural, not an artifact of what each step happens to touch).
        for node in sorted(self._pending_nodes):
            if self._inject_busy_until[node] > cycle:
                continue
            router = self.routers[node]
            queues = self.queues[node]
            # Rotate the starting vnet so vnets share the injection link fairly.
            nv = len(queues)
            started = False
            for k in range(nv):
                vnet = (cycle + k) % nv
                q = queues[vnet]
                if not q:
                    continue
                vc = self._find_idle_local_vc(router, vnet)
                if vc is None:
                    continue
                pkt = q.popleft()
                self._deliver_flit(node, LOCAL, vc, pkt, cycle)
                for i in range(1, pkt.length):
                    self._push(self._arrivals, cycle + i, (node, LOCAL, vc, None))
                self._inject_busy_until[node] = cycle + pkt.length
                started = True
                break
            if not started and not any(queues):
                done.append(node)
        for node in done:
            self._pending_nodes.discard(node)

    def _find_idle_local_vc(self, router: Router, vnet: int) -> int | None:
        vcs = self.config.vnet_vcs(vnet)
        n = len(vcs)
        start = self._inj_vc_ptr[router.node]
        local_vcs = router.in_vcs[LOCAL]
        for k in range(n):
            vc = vcs[(start + k) % n]
            if local_vcs[vc].pkt is None:
                self._inj_vc_ptr[router.node] = (start + k + 1) % n
                return vc
        return None

    # -- event delivery ----------------------------------------------------------------
    @staticmethod
    def _push(table: dict[int, list], cycle: int, item) -> None:
        lst = table.get(cycle)
        if lst is None:
            table[cycle] = [item]
        else:
            lst.append(item)

    def refresh_congestion(self, cycle: int) -> None:
        """Update the quantized congestion snapshot DBAR reads.

        A no-op unless the installed routing algorithm declares
        ``uses_congestion`` (only DBAR does) — nothing else reads the
        snapshot, so refreshing it for XY/Duato runs is wasted work.
        """
        if self._congestion_live and cycle % self.congestion_period == 0:
            np.minimum(
                np.asarray(self.occupancy, dtype=np.int64) // self.congestion_quantum,
                self.congestion_cap,
                out=self.congestion,
            )

    def skip_idle_cycles(self, start: int, stop: int) -> None:
        """Apply the network-side effects of ticking idle cycles ``[start, stop)``.

        Called by the simulator's fast-forward after it has proven the
        range idle (no packets in flight, queued, or scheduled). The only
        per-cycle network work that is not trivially a no-op on an idle
        chip is the periodic congestion refresh; with every ``occupancy``
        entry zero the refresh writes all-zero levels, and repeating it is
        idempotent — so one refresh stands in for however many boundaries
        the range contained, keeping DBAR's snapshot bit-identical to
        naive ticking.
        """
        if self._congestion_live:
            boundary = start + (-start) % self.congestion_period
            if boundary < stop:
                self.refresh_congestion(boundary)

    def deliver_events(self, cycle: int) -> None:
        """Apply all flit arrivals and credit returns scheduled for ``cycle``."""
        arrivals = self._arrivals.pop(cycle, None)
        if arrivals:
            for node, port, vc, pkt in arrivals:
                self._deliver_flit(node, port, vc, pkt, cycle)
        credits = self._credits.pop(cycle, None)
        if credits:
            tr = self.trace
            depth = self.config.vc_depth
            routers = self.routers
            for node, port, vc in credits:
                router = routers[node]
                out_credits = router.out_credits[port]
                c = out_credits[vc] + 1
                out_credits[vc] = c
                if c > depth:
                    raise SimulationError(
                        f"credit overflow at node {node} port {port} vc {vc}"
                    )
                # Re-arm the owning VC if it parked credit-starved, and
                # wake VA-parked VCs when the slot fills back to depth
                # (Router.credit_arrived inlined — this loop runs once
                # per flit ever sent over a link).
                owner = router.out_owner[port][vc]
                if owner is not None:
                    router.sa_pending |= 1 << (owner.port * router.total_vcs + owner.vc)
                elif c == depth:
                    parked = router.va_parked
                    if parked:
                        router.va_pending |= parked
                        router.va_parked = 0
                if tr is not None:
                    tr.credit_return(cycle, node, port, vc)

    def _deliver_flit(self, node: int, port: int, vc: int, pkt, cycle: int) -> None:
        router = self.routers[node]
        invc = router.in_vcs[port][vc]
        if pkt is not None:
            native = router.app_id >= 0 and pkt.app_id == router.app_id
            invc.head_arrive(pkt, cycle, native)
            router.arm_va(invc)
            if router.busy_vcs == 0:
                self._active.add(node)
                self._active_dirty = True
                if self.trace is not None:
                    self.trace.wake(cycle, node)
            router.busy_vcs += 1
            if native:
                router.ovc_n += 1
            else:
                router.ovc_f += 1
        else:
            if invc.body_arrive(cycle):
                router.arm_sa(invc)
        self.occupancy[node] += 1
        self.buffered_total += 1

    # -- flit transmission (called by routers' SA stage) ---------------------------------
    def send_flit(self, router: Router, invc, cycle: int) -> None:
        """One flit of ``invc`` traverses the switch and leaves ``router``."""
        pkt = invc.pkt
        out_port = invc.out_port
        out_vc = invc.out_vc
        in_port = invc.port
        in_vc = invc.vc
        native = invc.is_native
        is_head = invc.flits_sent == 0
        is_tail = invc.send_flit(cycle)
        node = router.node
        self.occupancy[node] -= 1
        self.buffered_total -= 1
        self.flits_moved += 1
        self._link_flits[node][out_port] += 1
        try:
            self.app_flits_delivered[pkt.app_id] += 1
        except KeyError:
            self.app_flits_delivered[pkt.app_id] = 1
        if self.trace is not None:
            self.trace.flit_send(cycle, node, out_port, out_vc, pkt.pid, is_tail)

        # Free one buffer slot -> credit back to the upstream router.
        if in_port != LOCAL:
            upstream = self._neighbor[node][in_port]
            when = cycle + self._credit_lat
            lst = self._credits.get(when)
            item = (upstream, self._opposite[in_port], in_vc)
            if lst is None:
                self._credits[when] = [item]
            else:
                lst.append(item)

        if is_tail:
            router.out_owner[out_port][out_vc] = None
            router.vc_retired(invc)
            if out_port == LOCAL:
                # An ejection-port VC frees with its credits intact, so a
                # VA option is born right now: re-arm the parked VCs. A
                # link-port VC frees with at least one credit outstanding
                # (the tail flit just consumed one), so its option is born
                # only when the final credit returns — credit_arrived
                # handles that wake; waking here too would be harmless
                # but pointless.
                router.wake_parked()
            router.busy_vcs -= 1
            if router.busy_vcs == 0:
                self._active.discard(node)
                self._active_dirty = True
                if self.trace is not None:
                    self.trace.sleep(cycle, node)
            if native:
                router.ovc_n -= 1
            else:
                router.ovc_f -= 1

        if out_port == LOCAL:
            if is_tail:
                eject_cycle = cycle + 1  # link traversal into the NI
                self.stats.record_ejection(pkt, eject_cycle)
                self.packets_in_flight -= 1
                self.packets_ejected += 1
                w = self.measure_window
                if w is not None and w[0] <= pkt.inject_cycle < w[1]:
                    self.window_ejected += 1
                for cb in self.eject_callbacks:
                    cb(pkt, eject_cycle)
                # Terminal point of a packet's life: stats copied its
                # fields, callbacks ran — the object itself goes back to
                # the pool for the next alloc_packet to re-initialise.
                self.packet_pool.release(pkt)
        else:
            credits = router.out_credits[out_port]
            credits[out_vc] -= 1
            if credits[out_vc] < 0:
                raise SimulationError(
                    f"negative credits at node {node} port {out_port} vc {out_vc}"
                )
            dst = self._neighbor[node][out_port]
            if is_head:
                pkt.hops += 1
            when = cycle + self._link_lat
            lst = self._arrivals.get(when)
            item = (dst, self._opposite[out_port], out_vc, pkt if is_head else None)
            if lst is None:
                self._arrivals[when] = [item]
            else:
                lst.append(item)

    # -- per-cycle router phases ----------------------------------------------------------
    def run_router_phases(self, cycle: int) -> None:
        """Run VA, SA, and the policy end-of-cycle hook on active routers.

        One walk over the active set (in node order, so results never
        depend on set internals) runs all three phases per router. Fusing
        the old three network-wide loops is result-identical because no
        phase reads another router's same-cycle phase output: VA and SA
        touch only router-local state, every cross-router effect of SA
        (flit and credit delivery) is queued for a strictly later cycle
        (``link_latency``/``credit_latency`` are validated positive), and
        the per-router hook reads only its own router, whose VA/SA have
        already run by then. The snapshot is taken once: a router can only
        *leave* the set mid-walk (drain during its own SA) — joining
        requires a flit delivery, and those all happen before this runs.
        """
        if not self._active:
            return
        if self._active_dirty:
            self._active_list = sorted(self._active)
            self._active_dirty = False
        routers = self.routers
        policy = self.policy
        # The hook is skipped entirely for policies keeping the base no-op.
        hook = policy.end_router_cycle if self._policy_router_hook else None
        for node in self._active_list:
            router = routers[node]
            if router.va_pending:
                router.do_va(cycle)
            if router.sa_pending:
                router.do_sa(cycle)
            if hook is not None and router.busy_vcs:
                hook(router, cycle)

    # -- queries --------------------------------------------------------------------------
    @property
    def link_flits(self):
        """Per-(router, output port) flit counters as an ndarray snapshot."""
        return np.asarray(self._link_flits, dtype=np.int64)

    def link_flit_counts(self) -> list[list[int]]:
        """Per-(router, output port) flit counters as copied nested lists.

        The observability sampler diffs successive copies to get per-link
        flit deltas per sample period; copying lists is cheaper than the
        ndarray conversion of :attr:`link_flits` at sampling frequency.
        """
        return [row[:] for row in self._link_flits]

    def busy_routers(self):
        """Routers currently holding at least one packet."""
        return [r for r in self.routers if r.busy_vcs]

    def active_nodes(self) -> list[int]:
        """Sorted nodes in the kernel's active set (holding >= 1 packet)."""
        return sorted(self._active)

    def has_pending_events(self) -> bool:
        """Whether any arrivals or credits are still scheduled."""
        return bool(self._arrivals) or bool(self._credits)

    def idle(self) -> bool:
        """True when nothing is queued, buffered, or in flight.

        Pending credit returns count as activity: stopping before they
        deliver would leave upstream credit counters permanently low.
        """
        return (
            self.packets_in_flight == 0
            and not self._pending_nodes
            and not self._arrivals
            and not self._credits
        )

    def total_buffered_flits(self) -> int:
        """Flits buffered across the whole chip (cross-check vs occupancy)."""
        return sum(self.occupancy)

    def scheduled_arrivals(self) -> list[tuple[int, int, int, int, object]]:
        """Snapshot of in-flight flit deliveries as ``(cycle, node, port, vc, pkt)``.

        ``pkt`` is the packet object for head flits and ``None`` for body
        flits. Read-only view for the guard's conservation scans — the
        event queues themselves stay private to the kernel.
        """
        return [
            (cyc, node, port, vc, pkt)
            for cyc, lst in self._arrivals.items()
            for (node, port, vc, pkt) in lst
        ]

    def scheduled_credits(self) -> list[tuple[int, int, int, int]]:
        """Snapshot of in-flight credit returns as ``(cycle, node, port, vc)``."""
        return [
            (cyc, node, port, vc)
            for cyc, lst in self._credits.items()
            for (node, port, vc) in lst
        ]
