"""Packets and message classes.

The simulator is wormhole-switched with *atomic* VCs: all flits of a packet
occupy one VC at a time and flits of different packets never interleave in
a buffer. That invariant lets us represent a packet's flits implicitly —
an input VC tracks how many flits of its resident packet have arrived and
departed instead of allocating a Python object per flit, which keeps the
hot loop allocation-free (see the HPC guide note on doing less work rather
than micro-tuning).

Packet lengths follow the paper: short packets are a single 16-byte flit,
long packets are 5 flits (64-byte payload + head flit) on 128-bit links.
"""

from __future__ import annotations

import enum
import itertools

__all__ = [
    "MessageClass",
    "Packet",
    "PacketPool",
    "SHORT_PACKET_FLITS",
    "LONG_PACKET_FLITS",
]

SHORT_PACKET_FLITS = 1
LONG_PACKET_FLITS = 5


class MessageClass(enum.IntEnum):
    """Protocol class of a packet; maps onto a virtual network.

    ``DATA`` is used by synthetic traffic (single vnet). The PARSEC-like
    traffic model uses ``REQUEST``/``REPLY`` on two vnets so that reply
    generation at the destination cannot deadlock against requests.
    """

    DATA = 0
    REQUEST = 0
    REPLY = 1


_packet_ids = itertools.count()


class Packet:
    """One network packet.

    Attributes are plain slots (no dataclass machinery) because packets are
    the highest-volume allocation in a simulation.

    Attributes
    ----------
    pid: unique id (monotonically increasing, process-wide).
    src, dst: source and destination node ids.
    app_id: id of the application the packet belongs to (-1 = unattributed,
        e.g. pure background traffic in unit tests).
    vnet: virtual network (protocol class) index.
    length: number of flits.
    inject_cycle: cycle the packet entered the source queue.
    is_global: whether source and destination lie in different regions
        (set by the traffic layer; informational/statistics only — routers
        classify traffic as native/foreign locally, per the paper).
    is_adversarial: marks Fig.-17 flood traffic for statistics.
    reply_length: if > 0, the destination's service model emits a reply of
        this many flits after its service latency (PARSEC-like traffic).
    reply_latency: service latency before the reply is injected.
    hops: router-to-router hops actually traversed (maintained by the
        network as the head flit moves; equals the Manhattan distance for
        the minimal routings in this package).
    """

    __slots__ = (
        "pid",
        "src",
        "dst",
        "app_id",
        "vnet",
        "length",
        "inject_cycle",
        "is_global",
        "is_adversarial",
        "reply_length",
        "reply_latency",
        "hops",
        "in_pool",
    )

    def __init__(
        self,
        src: int,
        dst: int,
        length: int,
        inject_cycle: int,
        app_id: int = -1,
        vnet: int = 0,
        is_global: bool = False,
        is_adversarial: bool = False,
        reply_length: int = 0,
        reply_latency: int = 0,
    ):
        self.init(
            src, dst, length, inject_cycle, app_id, vnet,
            is_global, is_adversarial, reply_length, reply_latency,
        )

    def init(
        self,
        src: int,
        dst: int,
        length: int,
        inject_cycle: int,
        app_id: int = -1,
        vnet: int = 0,
        is_global: bool = False,
        is_adversarial: bool = False,
        reply_length: int = 0,
        reply_latency: int = 0,
    ) -> "Packet":
        """(Re)initialise every field in place.

        Used both by ``__init__`` and by :class:`PacketPool` when recycling
        an ejected packet object. The ``pid`` is always freshly drawn —
        recycled objects are *new* packets to every consumer keyed on pid
        (trace events, coherence continuations).
        """
        self.pid = next(_packet_ids)
        self.src = src
        self.dst = dst
        self.app_id = app_id
        self.vnet = vnet
        self.length = length
        self.inject_cycle = inject_cycle
        self.is_global = is_global
        self.is_adversarial = is_adversarial
        self.reply_length = reply_length
        self.reply_latency = reply_latency
        self.hops = 0
        self.in_pool = False
        return self

    def __repr__(self) -> str:  # pragma: no cover - debug aid
        kind = "G" if self.is_global else "R"
        adv = "!" if self.is_adversarial else ""
        return (
            f"Packet(#{self.pid} app{self.app_id}{adv} {self.src}->{self.dst} "
            f"len={self.length} vnet={self.vnet} t={self.inject_cycle} {kind})"
        )


class PacketPool:
    """Free list of ejected :class:`Packet` objects.

    Packets are the one per-event allocation left on the kernel's hot path
    (flits are implicit — see the module docstring). A network owns one
    pool: ejection returns the packet object here (after the ejection
    callbacks ran — the release contract is that callbacks copy what they
    need and never retain the object), and traffic sources draw from it via
    ``Network.alloc_packet``, re-initialising in place through
    :meth:`Packet.init` with a fresh pid.

    ``hits`` / ``allocs`` count recycled vs freshly constructed packets;
    they surface in :class:`~repro.noc.stats.RunMetrics`. The pool is
    bounded so a drained burst cannot pin unbounded memory.
    """

    __slots__ = ("_free", "max_size", "hits", "allocs")

    def __init__(self, max_size: int = 4096):
        self._free: list[Packet] = []
        self.max_size = max_size
        self.hits = 0
        self.allocs = 0

    def __len__(self) -> int:
        return len(self._free)

    def alloc(
        self,
        src: int,
        dst: int,
        length: int,
        inject_cycle: int,
        app_id: int = -1,
        vnet: int = 0,
        is_global: bool = False,
        is_adversarial: bool = False,
        reply_length: int = 0,
        reply_latency: int = 0,
    ) -> Packet:
        """A packet with the given fields — recycled if the pool has one."""
        free = self._free
        if free:
            self.hits += 1
            return free.pop().init(
                src, dst, length, inject_cycle, app_id, vnet,
                is_global, is_adversarial, reply_length, reply_latency,
            )
        self.allocs += 1
        return Packet(
            src, dst, length, inject_cycle, app_id, vnet,
            is_global, is_adversarial, reply_length, reply_latency,
        )

    def release(self, pkt: Packet) -> None:
        """Return an ejected packet's object for reuse (idempotence-guarded)."""
        if pkt.in_pool:
            return  # already released; never hand the same object out twice
        pkt.in_pool = True
        if len(self._free) < self.max_size:
            self._free.append(pkt)

    def free_packets(self) -> tuple[Packet, ...]:
        """Snapshot of the free list (for the guard's pool-safety check).

        Every packet here must carry ``in_pool=True`` — a free-list entry
        with the flag clear means something re-initialised a pooled object
        without drawing it through :meth:`alloc`.
        """
        return tuple(self._free)
