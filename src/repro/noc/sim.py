"""Simulation driver: the per-cycle phase loop plus measurement protocol.

Phase order within a cycle (fixed, network-wide, so results are exactly
reproducible):

1. deliver scheduled flit arrivals and credit returns,
2. traffic sources generate packets (into source queues),
3. queued packets enter idle LOCAL input VCs (injection link),
4. VC allocation at every *active* router (one with packets resident —
   the network's wake lists track exactly those; idle routers cost
   nothing),
5. switch allocation + traversal at every active router,
6. policy end-of-cycle hooks (DPA update per router, STC ranking
   network-wide).

The paper's measurement protocol (Section V.A) is implemented by
:meth:`Simulator.run_measurement`: warm up for ``warmup`` cycles, tag the
next ``measure`` cycles as the measurement window, keep simulating (with
traffic still flowing) until every packet injected inside the window has
ejected — bounded by ``drain_limit`` — and report statistics for window
packets only.
"""

from __future__ import annotations

import os
import time
from dataclasses import dataclass, field

from repro.arbitration.base import ArbitrationPolicy
from repro.noc.network import Network
from repro.noc.stats import RunMetrics
from repro.util.errors import ConfigError, DeadlineError, GuardError, SimulationError

__all__ = ["Simulator", "MeasurementResult"]


@dataclass
class MeasurementResult:
    """Outcome of one warmup/measure/drain run.

    ``abort`` distinguishes *why* a run failed to drain: ``"watchdog"``
    means the stall watchdog fired during the drain phase with no runtime
    guard installed (no flit moved for :attr:`Simulator.WATCHDOG_CYCLES`
    cycles — the leftover packets are stuck, not merely slow),
    ``"drain_limit"`` means the drain budget ran out while flits were
    still moving, ``"deadline"`` means the caller's cooperative cycle
    budget (:attr:`Simulator.deadline_cycle`) expired mid-drain, and
    ``None`` means a clean run. When a
    :class:`~repro.noc.guard.RuntimeGuard` is installed, a drain-phase
    trip instead carries the guard's classified reason — ``"deadlock"``,
    ``"livelock"``, ``"starvation"``, or one of the conservation tokens
    (``"credit_conservation"`` / ``"flit_conservation"`` /
    ``"packet_conservation"`` / ``"pool_safety"`` / ``"dateline"``).
    ``undrained_packets`` alone cannot tell these apart.
    """

    warmup: int
    measure: int
    window: tuple[int, int]
    end_cycle: int
    drained: bool
    #: packets injected in the window that never ejected before drain_limit
    undrained_packets: int
    #: None (clean) | "watchdog" | "drain_limit" | "deadline" | a guard
    #: reason token (see class docstring)
    abort: str | None = None
    #: wall-clock / cycle counters for this run
    metrics: RunMetrics = field(default_factory=RunMetrics)
    #: optional observability summary (:class:`repro.obs.ObsSummary`)
    #: produced when a collector was installed on the simulator. Untyped
    #: on purpose: ``repro.noc`` never imports ``repro.obs``.
    obs: object | None = None


class Simulator:
    """Drives a :class:`~repro.noc.network.Network` cycle by cycle."""

    #: cycles without any flit movement (while flits are buffered) that
    #: trigger the stall watchdog
    WATCHDOG_CYCLES = 5000
    #: cycles without any packet *ejection* (while packets are in flight)
    #: that trigger the ejection watchdog. Tracked separately from flit
    #: movement: a livelocked network keeps moving flits forever — e.g.
    #: packets circling without ever reaching LOCAL — and is invisible to
    #: the movement watchdog. Deliberately larger than WATCHDOG_CYCLES so
    #: a full stall is classified by the movement watchdog first.
    EJECT_WATCHDOG_CYCLES = 10_000

    def __init__(
        self,
        network: Network,
        traffic_sources=(),
        fast_forward: bool | None = None,
    ):
        self.network = network
        self.traffic_sources = list(traffic_sources)
        self.cycle = 0
        # Idle-cycle fast-forward (see _run_to): None resolves to on unless
        # the REPRO_DISABLE_FAST_FORWARD environment variable is set — the
        # escape hatch the bit-identity tests use for their naive arm, and
        # it propagates into experiment worker processes for free.
        if fast_forward is None:
            fast_forward = not os.environ.get("REPRO_DISABLE_FAST_FORWARD")
        self.fast_forward = bool(fast_forward)
        self._last_moved = 0
        self._last_progress_cycle = 0
        self._last_ejected = 0
        self._last_eject_cycle = 0
        self.metrics = RunMetrics()
        #: optional runtime invariant guard (duck-typed — anything with
        #: ``next_check`` / ``check(cycle, network)`` /
        #: ``on_stall(cycle, network, trip)``; see
        #: :class:`repro.noc.guard.RuntimeGuard`, whose ``install`` sets
        #: this). ``None`` costs one pointer comparison per cycle.
        self.guard = None
        #: optional observability collector (duck-typed — anything with
        #: ``next_sample`` / ``take_sample(cycle, network)`` /
        #: ``finalize(end_cycle)``; see
        #: :class:`repro.obs.collector.MetricsCollector`, whose ``install``
        #: sets this). ``None`` costs one pointer comparison per cycle.
        self.obs = None
        #: absolute cycle past which :meth:`run` raises
        #: :class:`~repro.util.errors.DeadlineError` (cooperative cycle
        #: budget; ``None`` disables the check). Set per-measurement by
        #: ``run_measurement(cycle_budget=...)``.
        self.deadline_cycle: int | None = None

    def reset_metrics(self) -> None:
        """Zero the run-metrics counters (cycle/wall-time/phase timings)."""
        self.metrics.reset()

    def add_traffic(self, source) -> None:
        """Register a traffic source (object with ``tick(cycle, network)``)."""
        self.traffic_sources.append(source)

    # -- core loop -----------------------------------------------------------------
    def step(self) -> None:
        """Advance the simulation by one cycle."""
        net = self.network
        cycle = self.cycle
        net.refresh_congestion(cycle)
        net.deliver_events(cycle)
        for source in self.traffic_sources:
            source.tick(cycle, net)
        net.place_injections(cycle)
        net.run_router_phases(cycle)
        net.policy.end_network_cycle(net, cycle)
        obs = self.obs
        if obs is not None and cycle >= obs.next_sample:
            obs.take_sample(cycle, net)
        guard = self.guard
        if guard is not None and cycle >= guard.next_check:
            guard.check(cycle, net)
        self._watchdog(cycle)
        self.cycle = cycle + 1

    def run(self, cycles: int) -> None:
        """Run ``cycles`` additional cycles.

        Honours :attr:`deadline_cycle`: if the budget would expire inside
        this call, the simulator advances exactly to the deadline and then
        raises :class:`DeadlineError`. The check is a single comparison up
        front, so the budget-free hot path is unchanged.
        """
        deadline = self.deadline_cycle
        end = self.cycle + cycles
        if deadline is not None and end > deadline:
            self._run_to(deadline)
            raise DeadlineError(
                f"cycle budget exhausted at cycle {self.cycle} "
                f"(deadline {deadline}, {cycles} more cycles requested)"
            )
        self._run_to(end)

    def _ff_eligible(self) -> bool:
        """Whether fast-forward may engage with the installed sources/policy.

        Two provability requirements (checked per :meth:`_run_to` call —
        sources can be added between runs):

        * every traffic source exposes ``next_injection_cycle`` (the
          lookahead that replays the naive per-cycle RNG draw order, so
          closed-loop sources like the PARSEC model simply opt out), and
        * the arbitration policy is idle-invariant: either it keeps the
          base no-op ``end_network_cycle``, or it overrides
          ``fast_forward_idle`` to replay its (idempotent-during-idle)
          boundary work over a skipped range.
        """
        for source in self.traffic_sources:
            if not hasattr(source, "next_injection_cycle"):
                return False
        # getattr, not attribute access: duck-typed policies (test fakes)
        # need not inherit the base class — they fall back to naive ticking
        # unless they provide the hook themselves.
        pol = type(self.network.policy)
        if getattr(pol, "end_network_cycle", None) is ArbitrationPolicy.end_network_cycle:
            return True
        ffi = getattr(pol, "fast_forward_idle", None)
        return ffi is not None and ffi is not ArbitrationPolicy.fast_forward_idle

    def _run_to(self, end: int) -> None:
        """Advance to cycle ``end``, fast-forwarding provably idle gaps.

        When the network is idle (nothing queued, buffered, scheduled, or
        in flight) the only event that can change its state is a future
        injection, so the clock may jump straight to the earliest of: the
        next injection any source will produce (each source scans forward
        consuming its RNG in exactly the naive per-cycle order and buffers
        the packets it builds — see
        ``SyntheticTrafficSource.next_injection_cycle``), the next
        observability sample (taken at the identical cycle with identical
        idle state, keeping the JSONL stream byte-identical), or ``end``
        itself. Skipped-range bookkeeping (congestion refresh, policy
        boundaries, watchdog progress marks) reproduces the naive per-cycle
        loop's end state exactly — the fast-forwarded simulation is
        bit-identical, just never pays for empty cycles.
        """
        if not (self.fast_forward and self._ff_eligible()):
            while self.cycle < end:
                self.step()
            return
        net = self.network
        idle = net.idle
        sources = self.traffic_sources
        metrics = self.metrics
        while self.cycle < end:
            if idle():
                cycle = self.cycle
                target = end
                obs = self.obs
                if obs is not None:
                    ns = obs.next_sample
                    if ns <= cycle:
                        target = cycle  # sample due now: tick normally
                    elif ns < target:
                        target = ns
                for source in sources:
                    if target <= cycle:
                        break
                    nxt = source.next_injection_cycle(cycle, target, net)
                    if nxt is not None and nxt < target:
                        target = nxt
                if target > cycle:
                    net.skip_idle_cycles(cycle, target)
                    net.policy.fast_forward_idle(net, cycle, target)
                    # Watchdog end state of ticking idle cycles naively:
                    # every one of them resets the progress marks (an idle
                    # network has no packets in flight, so the ejection
                    # mark resets every cycle too).
                    self._last_moved = net.flits_moved
                    self._last_progress_cycle = target - 1
                    self._last_ejected = net.packets_ejected
                    self._last_eject_cycle = target - 1
                    metrics.ff_jumps += 1
                    metrics.ff_cycles_skipped += target - cycle
                    self.cycle = target
                    continue
            self.step()

    def run_until_drained(self, limit: int) -> bool:
        """Step until the network is idle; returns False if ``limit`` hit."""
        for _ in range(limit):
            if self.network.idle():
                return True
            self.step()
        return self.network.idle()

    def _watchdog(self, cycle: int) -> None:
        """Two-mark stall watchdog: flit movement and packet ejection.

        The movement mark catches full stalls (nothing moved while flits
        are buffered). The ejection mark catches livelocks the movement
        mark is blind to: flits keep moving but no packet ever reaches its
        destination. Either trip goes to :meth:`_stall`, which hands the
        forensics to an installed runtime guard or raises the plain
        :class:`SimulationError` otherwise.
        """
        net = self.network
        ejected = net.packets_ejected
        eject_stalled = ejected == self._last_ejected and net.packets_in_flight
        if not eject_stalled:
            self._last_ejected = ejected
            self._last_eject_cycle = cycle
        moved = net.flits_moved
        if moved != self._last_moved or not net.buffered_total:
            self._last_moved = moved
            self._last_progress_cycle = cycle
            if (
                eject_stalled
                and cycle - self._last_eject_cycle >= self.EJECT_WATCHDOG_CYCLES
            ):
                self._stall(cycle, "ejection")
            return
        if cycle - self._last_progress_cycle >= self.WATCHDOG_CYCLES:
            self._stall(cycle, "progress")

    def _stall(self, cycle: int, trip: str) -> None:
        """Report a watchdog trip (``trip``: ``"progress"`` | ``"ejection"``)."""
        net = self.network
        guard = self.guard
        if guard is not None:
            guard.on_stall(cycle, net, trip)  # classifies; raises GuardError
            return  # pragma: no cover - on_stall never returns
        if trip == "ejection":
            raise SimulationError(
                f"no packet ejected for {self.EJECT_WATCHDOG_CYCLES} cycles "
                f"at cycle {cycle} while flits kept moving — livelock with "
                f"{net.packets_in_flight} packet(s) in flight"
            )
        stuck = [(r.node, r.busy_vcs) for r in net.busy_routers()][:10]
        raise SimulationError(
            f"no flit moved for {self.WATCHDOG_CYCLES} cycles at cycle "
            f"{cycle} with {net.total_buffered_flits()} flits buffered; "
            f"busy routers (node, busy_vcs): {stuck}"
        )

    def progress_marks(self) -> dict:
        """Watchdog bookkeeping, for tests and forensics dumps."""
        return {
            "last_moved": self._last_moved,
            "last_progress_cycle": self._last_progress_cycle,
            "last_ejected": self._last_ejected,
            "last_eject_cycle": self._last_eject_cycle,
        }

    # -- measurement protocol ----------------------------------------------------------
    def run_measurement(
        self,
        warmup: int,
        measure: int,
        drain_limit: int | None = None,
        cycle_budget: int | None = None,
    ) -> MeasurementResult:
        """Warm up, measure, and drain (paper Section V.A protocol).

        A watchdog trip during warmup or measurement still raises (the run
        produced no usable window); one during the *drain* phase is caught
        and reported as ``abort="watchdog"`` — the measured packets that
        did eject remain valid, only the stragglers are stuck.

        ``cycle_budget`` is a cooperative deadline over the *whole*
        measurement (warmup + measure + drain), set by the fault-tolerant
        experiment engine so a livelocked cell cannot run unbounded: if it
        expires during warmup/measure a :class:`DeadlineError` propagates
        (no usable window), if it expires during the drain the run is
        returned with ``abort="deadline"``.
        """
        if drain_limit is None:
            drain_limit = 10 * (warmup + measure) + 20_000
        if cycle_budget is not None:
            if cycle_budget <= 0:
                raise ConfigError(f"cycle_budget must be > 0, got {cycle_budget}")
            self.deadline_cycle = self.cycle + cycle_budget
        net = self.network
        window = (self.cycle + warmup, self.cycle + warmup + measure)
        net.set_measure_window(window)
        abort = None
        try:
            t0 = time.perf_counter()
            self.run(warmup)
            t1 = time.perf_counter()
            self.run(measure)
            t2 = time.perf_counter()
            drain_start = self.cycle
            drain_deadline = self.cycle + drain_limit
            budget = self.deadline_cycle
            try:
                while (
                    self.cycle < drain_deadline
                    and net.window_ejected < net.window_injected
                ):
                    if budget is not None and self.cycle >= budget:
                        abort = "deadline"
                        break
                    self.step()
            except GuardError as exc:
                # The guard already classified the stall/violation and
                # dumped its blackbox; surface the precise reason.
                abort = exc.reason
            except SimulationError:
                abort = "watchdog"
            t3 = time.perf_counter()
        finally:
            if cycle_budget is not None:
                self.deadline_cycle = None
        undrained = net.window_injected - net.window_ejected
        if abort is None and undrained > 0:
            abort = "drain_limit"
        guard = self.guard
        if guard is not None and abort is None:
            # Closing sweep at the measurement boundary, regardless of the
            # sampling period: a clean run must end conservation-clean. A
            # violation here propagates (the run's results are suspect).
            guard.check(self.cycle, net)
        self.metrics.record_phase("warmup", warmup, t1 - t0)
        self.metrics.record_phase("measure", measure, t2 - t1)
        self.metrics.record_phase("drain", self.cycle - drain_start, t3 - t2)
        obs = self.obs
        obs_summary = None
        if obs is not None:
            obs_summary = obs.finalize(self.cycle)
            self.metrics.obs_samples = obs.samples_taken
            self.metrics.obs_events = obs.events_recorded
        # Pool counters are per-network totals; for the standard
        # one-measurement-per-simulator pattern they are this run's numbers.
        # (getattr: duck-typed fake networks in tests carry no pool.)
        pool = getattr(net, "packet_pool", None)
        if pool is not None:
            self.metrics.pool_hits = pool.hits
            self.metrics.pool_allocs = pool.allocs
        return MeasurementResult(
            warmup=warmup,
            measure=measure,
            window=window,
            end_cycle=self.cycle,
            drained=undrained == 0,
            undrained_packets=max(0, undrained),
            abort=abort,
            # Snapshot, not alias: successive runs on one simulator keep
            # accumulating into self.metrics, and an aliased result would
            # silently mutate with them.
            metrics=self.metrics.snapshot(),
            obs=obs_summary,
        )
