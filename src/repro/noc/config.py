"""Simulator configuration.

:class:`NocConfig` mirrors the paper's Table 1 defaults: a 64-node (8x8)
mesh, four atomic VCs per protocol class with 5-flit buffers, 128-bit
links (so a 16-byte short packet is one flit and a 64-byte cache line plus
head flit is five flits).

The per-VC *class* layout implements RAIR's VC regionalization (Section
IV.A): each VC within a virtual network is tagged ``GLOBAL`` or
``REGIONAL``; additionally the first VC of each virtual network is the
Duato escape VC (restricted to dimension-order routing) so adaptive
routing stays deadlock-free.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro.noc.topology import TOPOLOGY_KINDS, num_escape_classes_for
from repro.util.validate import check_positive, require

__all__ = ["VcClass", "NocConfig", "DEFAULT_VC_CLASSES"]


class VcClass(enum.IntEnum):
    """RAIR tag carried by every virtual channel.

    ``GLOBAL``/``REGIONAL`` is the 1-bit field of Fig. 5. ``ESCAPE`` marks
    the additional Duato escape VCs, which the paper keeps *outside* the
    regional/global classification ("each message class is provided with
    additional one set of escape VCs", Section IV.D) — arbitration on them
    is priority-neutral.
    """

    GLOBAL = 0
    REGIONAL = 1
    ESCAPE = 2


#: Paper default: roughly equal split between global and regional VCs
#: (Section VI, "the number of regional VCs and global VCs are assumed to
#: be configured roughly the same").
DEFAULT_VC_CLASSES: tuple[VcClass, ...] = (
    VcClass.GLOBAL,
    VcClass.GLOBAL,
    VcClass.REGIONAL,
    VcClass.REGIONAL,
)


@dataclass(frozen=True)
class NocConfig:
    """Immutable description of one simulated network.

    Parameters
    ----------
    width, height:
        Fabric dimensions. The paper uses an 8x8 mesh; a ring folds the
        extents into one ``width * height``-node loop.
    topology:
        Fabric kind — one of :data:`~repro.noc.topology.TOPOLOGY_KINDS`
        (``"mesh"``, ``"torus"``, ``"ring"``). Wrap fabrics need two
        dateline escape classes, so build their configs through
        :meth:`for_topology` (which sizes ``escape_vcs`` accordingly)
        unless you set ``escape_vcs`` yourself.
    num_vnets:
        Number of virtual networks (protocol classes). Synthetic traffic
        uses 1; the PARSEC-like request/reply traffic uses 2 to avoid
        protocol deadlock (requests and replies never share VCs).
    vc_classes:
        Regional/global tag of each *data* VC within one virtual network
        (paper: 4, split evenly). Escape VCs are additional.
    escape_vcs:
        Number of Duato escape VCs per virtual network (restricted to
        dimension-order routing, priority-neutral; paper Section IV.D).
    vc_depth:
        Buffer depth per VC in flits (paper: 5). Must be >= the longest
        packet because VCs are atomic.
    link_latency:
        Cycles a flit spends on a link after switch traversal (paper: 1).
    credit_latency:
        Cycles for a credit to travel back upstream.
    max_packet_flits:
        Longest packet the traffic model may inject (paper: 5 — a 64-byte
        payload plus head flit on 128-bit links).
    """

    width: int = 8
    height: int = 8
    topology: str = "mesh"
    num_vnets: int = 1
    vc_classes: tuple[VcClass, ...] = DEFAULT_VC_CLASSES
    escape_vcs: int = 1
    vc_depth: int = 5
    link_latency: int = 1
    credit_latency: int = 1
    max_packet_flits: int = 5
    link_bits: int = 128
    extra: dict = field(default_factory=dict, compare=False)

    def __post_init__(self) -> None:
        require(
            self.topology in TOPOLOGY_KINDS,
            f"unknown topology {self.topology!r}; choose one of {TOPOLOGY_KINDS}",
        )
        if self.topology == "ring":
            require(self.width * self.height >= 4, "ring needs at least 4 nodes")
        else:
            require(
                self.width >= 2 and self.height >= 2,
                f"{self.topology} must be at least 2x2",
            )
        check_positive(self.num_vnets, "num_vnets")
        require(len(self.vc_classes) >= 1, "need at least one data VC per vnet")
        require(
            all(isinstance(c, VcClass) for c in self.vc_classes),
            "vc_classes entries must be VcClass values",
        )
        require(
            all(c is not VcClass.ESCAPE for c in self.vc_classes),
            "vc_classes lists data VCs only; set escape_vcs for escape VCs",
        )
        require(self.escape_vcs >= 1, "need at least one escape VC per vnet")
        ncls = num_escape_classes_for(self.topology)
        require(
            self.escape_vcs >= ncls,
            f"{self.topology} escape routing uses {ncls} dateline VC classes "
            f"per vnet, got escape_vcs={self.escape_vcs} "
            f"(build configs via NocConfig.for_topology)",
        )
        check_positive(self.vc_depth, "vc_depth")
        check_positive(self.link_latency, "link_latency")
        check_positive(self.credit_latency, "credit_latency")
        check_positive(self.max_packet_flits, "max_packet_flits")
        require(
            self.max_packet_flits <= self.vc_depth,
            f"atomic VCs require vc_depth ({self.vc_depth}) >= "
            f"max_packet_flits ({self.max_packet_flits})",
        )

    # -- constructors --------------------------------------------------------
    @classmethod
    def for_topology(cls, topology: str = "mesh", **kwargs) -> "NocConfig":
        """A config for ``topology`` with ``escape_vcs`` sized for its datelines.

        Wrap fabrics (torus, ring) need one escape VC per dateline class;
        this sets ``escape_vcs`` to that minimum unless the caller passes
        an explicit value. All other keyword arguments are forwarded.
        """
        kwargs.setdefault("escape_vcs", num_escape_classes_for(topology))
        return cls(topology=topology, **kwargs)

    # -- derived quantities --------------------------------------------------
    @property
    def num_nodes(self) -> int:
        """Total node count."""
        return self.width * self.height

    @property
    def vcs_per_vnet(self) -> int:
        """Number of VCs in each virtual network (escape + data)."""
        return self.escape_vcs + len(self.vc_classes)

    @property
    def total_vcs(self) -> int:
        """VCs per input port across all virtual networks."""
        return self.num_vnets * self.vcs_per_vnet

    def vc_vnet(self, vc: int) -> int:
        """Virtual network that global VC index ``vc`` belongs to."""
        return vc // self.vcs_per_vnet

    def vc_class(self, vc: int) -> VcClass:
        """Tag of global VC index ``vc`` (ESCAPE / GLOBAL / REGIONAL).

        Within a vnet, indices ``[0, escape_vcs)`` are escape VCs and the
        rest carry the configured data-VC classes.
        """
        idx = vc % self.vcs_per_vnet
        if idx < self.escape_vcs:
            return VcClass.ESCAPE
        return self.vc_classes[idx - self.escape_vcs]

    def is_escape_vc(self, vc: int) -> bool:
        """Whether ``vc`` is a Duato escape VC of its virtual network."""
        return vc % self.vcs_per_vnet < self.escape_vcs

    def vnet_vcs(self, vnet: int) -> range:
        """Global VC indices belonging to virtual network ``vnet``."""
        base = vnet * self.vcs_per_vnet
        return range(base, base + self.vcs_per_vnet)

    def describe(self) -> str:
        """Human-readable one-line summary (used by experiment reports)."""
        n_glob = sum(1 for c in self.vc_classes if c is VcClass.GLOBAL)
        n_reg = len(self.vc_classes) - n_glob
        if self.topology == "ring":
            fabric = f"{self.num_nodes}-node ring"
        else:
            fabric = f"{self.width}x{self.height} {self.topology}"
        return (
            f"{fabric}, {self.num_vnets} vnet(s) x "
            f"{self.vcs_per_vnet} VCs ({self.escape_vcs} escape / {n_glob} "
            f"global / {n_reg} regional), {self.vc_depth}-flit VCs, "
            f"{self.link_bits}-bit links"
        )
