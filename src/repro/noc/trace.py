"""Kernel trace hooks: observe the event-driven scheduler from outside.

The wake-list kernel (`docs/ARCHITECTURE.md`, "Kernel scheduling") emits a
small set of events at its state-transition points. :class:`KernelTrace`
is the hook protocol — every method is a no-op, so the base class doubles
as the null tracer — and :class:`RecordingTrace` captures the stream for
tests and kernel-vs-kernel diffing: two kernels that are cycle-accurate
equivalents must produce identical event streams for the same workload.

The hot path guards every emission with a single ``is not None`` check on
``Network.trace``, so an untraced simulation pays one pointer comparison
per event, not a method call.

Event vocabulary (all carry the cycle and the router node):

``va_grant``
    VA_out granted input VC ``(in_port, in_vc)`` the downstream VC
    ``(out_port, out_vc)`` for packet ``pid``.
``sa_win``
    Input VC ``(in_port, in_vc)`` won both switch-allocation steps and
    will traverse the switch this cycle.
``flit_send``
    One flit of packet ``pid`` left through ``(out_port, out_vc)``;
    ``is_tail`` marks the packet's last flit.
``credit_return``
    A credit for ``(port, vc)`` was delivered back to the router.
``wake`` / ``sleep``
    The router entered / left the network's active set (first packet
    arrived / last packet drained).
``dpa_flip``
    The router's DPA priority state changed: ``native_high`` is the new
    state, ``ovc_n`` / ``ovc_f`` the occupied-VC counters that drove the
    hysteresis update. Emitted only on *transitions* (the common
    no-change cycle emits nothing), so the stream is exactly the
    per-router hysteresis timeline the observability layer records.
"""

from __future__ import annotations

from collections import Counter, deque

__all__ = ["KernelTrace", "RecordingTrace", "RingTrace", "TeeTrace"]


class KernelTrace:
    """No-op base tracer; subclass and override the events you care about."""

    __slots__ = ()

    def va_grant(
        self,
        cycle: int,
        node: int,
        in_port: int,
        in_vc: int,
        out_port: int,
        out_vc: int,
        pid: int,
    ) -> None:
        """An input VC was granted a downstream VC at the VA stage."""

    def sa_win(
        self, cycle: int, node: int, in_port: int, in_vc: int, out_port: int, pid: int
    ) -> None:
        """An input VC won SA_in and SA_out this cycle."""

    def flit_send(
        self, cycle: int, node: int, out_port: int, out_vc: int, pid: int, is_tail: bool
    ) -> None:
        """A flit traversed the switch and left the router."""

    def credit_return(self, cycle: int, node: int, port: int, vc: int) -> None:
        """A credit was delivered back to ``(node, port, vc)``."""

    def wake(self, cycle: int, node: int) -> None:
        """Router ``node`` joined the active set (first resident packet)."""

    def sleep(self, cycle: int, node: int) -> None:
        """Router ``node`` left the active set (last resident packet gone)."""

    def dpa_flip(
        self, cycle: int, node: int, native_high: bool, ovc_n: int, ovc_f: int
    ) -> None:
        """Router ``node``'s DPA priority flipped to ``native_high``."""


class RecordingTrace(KernelTrace):
    """Tracer that appends every event as a tuple to :attr:`events`.

    Each tuple starts with the event kind (``"va_grant"``, ``"sa_win"``,
    ``"flit_send"``, ``"credit_return"``, ``"wake"``, ``"sleep"``,
    ``"dpa_flip"``) followed by that event's arguments in signature order.
    """

    __slots__ = ("events",)

    def __init__(self) -> None:
        self.events: list[tuple] = []

    def va_grant(self, cycle, node, in_port, in_vc, out_port, out_vc, pid) -> None:
        self.events.append(("va_grant", cycle, node, in_port, in_vc, out_port, out_vc, pid))

    def sa_win(self, cycle, node, in_port, in_vc, out_port, pid) -> None:
        self.events.append(("sa_win", cycle, node, in_port, in_vc, out_port, pid))

    def flit_send(self, cycle, node, out_port, out_vc, pid, is_tail) -> None:
        self.events.append(("flit_send", cycle, node, out_port, out_vc, pid, is_tail))

    def credit_return(self, cycle, node, port, vc) -> None:
        self.events.append(("credit_return", cycle, node, port, vc))

    def wake(self, cycle, node) -> None:
        self.events.append(("wake", cycle, node))

    def sleep(self, cycle, node) -> None:
        self.events.append(("sleep", cycle, node))

    def dpa_flip(self, cycle, node, native_high, ovc_n, ovc_f) -> None:
        self.events.append(("dpa_flip", cycle, node, native_high, ovc_n, ovc_f))

    # -- inspection helpers ----------------------------------------------------
    def of_kind(self, kind: str) -> list[tuple]:
        """All recorded events of one kind, in emission order."""
        return [e for e in self.events if e[0] == kind]

    def counts(self) -> Counter:
        """Event-kind histogram of the recorded stream."""
        return Counter(e[0] for e in self.events)

    def clear(self) -> None:
        """Drop all recorded events."""
        self.events.clear()


class RingTrace(KernelTrace):
    """Bounded ring of the last ``depth`` kernel events.

    The runtime guard's blackbox feed: events append as cheap tuples
    (identical in shape to :class:`RecordingTrace`'s) into a
    ``deque(maxlen=depth)``, so a violation at cycle N can dump the last
    ``depth`` scheduling decisions that led up to it while a long clean
    run never accumulates more than ``depth`` entries.
    """

    __slots__ = ("events",)

    def __init__(self, depth: int = 256) -> None:
        self.events: deque[tuple] = deque(maxlen=depth)

    def va_grant(self, cycle, node, in_port, in_vc, out_port, out_vc, pid) -> None:
        self.events.append(("va_grant", cycle, node, in_port, in_vc, out_port, out_vc, pid))

    def sa_win(self, cycle, node, in_port, in_vc, out_port, pid) -> None:
        self.events.append(("sa_win", cycle, node, in_port, in_vc, out_port, pid))

    def flit_send(self, cycle, node, out_port, out_vc, pid, is_tail) -> None:
        self.events.append(("flit_send", cycle, node, out_port, out_vc, pid, is_tail))

    def credit_return(self, cycle, node, port, vc) -> None:
        self.events.append(("credit_return", cycle, node, port, vc))

    def wake(self, cycle, node) -> None:
        self.events.append(("wake", cycle, node))

    def sleep(self, cycle, node) -> None:
        self.events.append(("sleep", cycle, node))

    def dpa_flip(self, cycle, node, native_high, ovc_n, ovc_f) -> None:
        self.events.append(("dpa_flip", cycle, node, native_high, ovc_n, ovc_f))


class TeeTrace(KernelTrace):
    """Fan one kernel event stream out to two tracers, first then second.

    Lets the runtime guard ride a network whose trace slot is already
    claimed (the obs collector refuses to chain; the tee chains *for*
    it): both tracers observe the identical event stream in the identical
    order, so e.g. the collector's JSONL output is byte-for-byte
    unchanged by the guard tapping in behind it.
    """

    __slots__ = ("first", "second")

    def __init__(self, first: KernelTrace, second: KernelTrace) -> None:
        self.first = first
        self.second = second

    def va_grant(self, cycle, node, in_port, in_vc, out_port, out_vc, pid) -> None:
        self.first.va_grant(cycle, node, in_port, in_vc, out_port, out_vc, pid)
        self.second.va_grant(cycle, node, in_port, in_vc, out_port, out_vc, pid)

    def sa_win(self, cycle, node, in_port, in_vc, out_port, pid) -> None:
        self.first.sa_win(cycle, node, in_port, in_vc, out_port, pid)
        self.second.sa_win(cycle, node, in_port, in_vc, out_port, pid)

    def flit_send(self, cycle, node, out_port, out_vc, pid, is_tail) -> None:
        self.first.flit_send(cycle, node, out_port, out_vc, pid, is_tail)
        self.second.flit_send(cycle, node, out_port, out_vc, pid, is_tail)

    def credit_return(self, cycle, node, port, vc) -> None:
        self.first.credit_return(cycle, node, port, vc)
        self.second.credit_return(cycle, node, port, vc)

    def wake(self, cycle, node) -> None:
        self.first.wake(cycle, node)
        self.second.wake(cycle, node)

    def sleep(self, cycle, node) -> None:
        self.first.sleep(cycle, node)
        self.second.sleep(cycle, node)

    def dpa_flip(self, cycle, node, native_high, ovc_n, ovc_f) -> None:
        self.first.dpa_flip(cycle, node, native_high, ovc_n, ovc_f)
        self.second.dpa_flip(cycle, node, native_high, ovc_n, ovc_f)
