"""ASCII visualization of networks, regions and congestion.

Matplotlib-free, terminal-friendly renderers used by the examples and the
experiment CLIs to make runs inspectable:

* :func:`render_regions` — the region map as a grid of application ids
  (the textual version of the paper's Figs. 3/8/11/13/16 layouts),
* :func:`render_occupancy` — a per-router buffer-occupancy heat grid,
* :func:`render_link_utilization` — flits/cycle per mesh link,
* :func:`latency_histogram` — a horizontal ASCII latency histogram.
"""

from __future__ import annotations

import numpy as np

from repro.core.regions import RegionMap
from repro.noc.topology import EAST, RING_CCW, RING_CW, SOUTH, Topology

__all__ = [
    "render_regions",
    "render_occupancy",
    "render_link_utilization",
    "latency_histogram",
]

_SHADES = " .:-=+*#%@"


def _shade(value: float, max_value: float) -> str:
    if max_value <= 0:
        return _SHADES[0]
    idx = int(round((len(_SHADES) - 1) * min(1.0, value / max_value)))
    return _SHADES[idx]


def render_regions(region_map: RegionMap) -> str:
    """Region map as a text grid; unassigned nodes render as '.'."""
    topo = region_map.topology
    width = max(2, max((len(str(a)) for a in region_map.apps), default=1) + 1)
    lines = []
    for y in range(topo.height):
        row = []
        for x in range(topo.width):
            app = region_map.app_of(topo.node_at(x, y))
            row.append(("." if app < 0 else str(app)).rjust(width))
        lines.append("".join(row))
    return "\n".join(lines)


def render_occupancy(network) -> str:
    """Per-router buffered-flit heat grid (darker = fuller buffers)."""
    topo = network.topology
    occ = network.occupancy
    cap = max(1, int(max(occ)))
    lines = [f"buffer occupancy (max {cap} flits/router):"]
    for y in range(topo.height):
        row = []
        for x in range(topo.width):
            row.append(_shade(float(occ[topo.node_at(x, y)]), cap) * 2)
        lines.append("".join(row))
    return "\n".join(lines)


def render_link_utilization(network, cycles: int) -> str:
    """Links annotated with flits/cycle.

    Grid fabrics show the east and south links (wrap links of a torus are
    counted but not drawn); a ring lists each node's cw/ccw rates.
    ``cycles`` is the elapsed simulated time the counters cover.
    """
    if cycles <= 0:
        raise ValueError("cycles must be positive")
    topo: Topology = network.topology
    lf = network.link_flits
    lines = [f"link utilization over {cycles} cycles (flits/cycle):"]
    if topo.kind == "ring":
        for node in range(topo.num_nodes):
            cw = lf[node, RING_CW] / cycles
            ccw = lf[node, RING_CCW] / cycles
            lines.append(f"{node:3d}: cw={cw:.2f} ccw={ccw:.2f}")
        return "\n".join(lines)
    for y in range(topo.height):
        east_row = []
        south_row = []
        for x in range(topo.width):
            node = topo.node_at(x, y)
            east_row.append("o")
            if x < topo.width - 1:
                east_row.append(f"-{lf[node, EAST] / cycles:.2f}-")
            if y < topo.height - 1:
                south_row.append(f"{lf[node, SOUTH] / cycles:.2f}".ljust(7))
        lines.append("".join(east_row))
        if south_row:
            lines.append("".join(s for s in south_row))
    return "\n".join(lines)


def latency_histogram(latencies, bins: int = 12, width: int = 40) -> str:
    """Horizontal ASCII histogram of packet latencies."""
    samples = np.asarray(latencies, dtype=float)
    if samples.size == 0:
        return "(no samples)"
    counts, edges = np.histogram(samples, bins=bins)
    peak = max(1, int(counts.max()))
    lines = []
    for i, count in enumerate(counts):
        bar = "#" * int(round(width * count / peak))
        lines.append(f"{edges[i]:8.1f} - {edges[i + 1]:8.1f} | {bar} {count}")
    lines.append(
        f"n={samples.size} mean={samples.mean():.1f} p95={np.percentile(samples, 95):.1f}"
    )
    return "\n".join(lines)
