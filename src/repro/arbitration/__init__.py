"""Arbitration policies: who wins each router arbitration step.

A policy decides four things each cycle (the paper's Section IV.B
arbitration steps):

* which single ``(output port, output VC)`` an input VC requests (VA_in),
* which requesting input VC each output VC grants (VA_out),
* which input VC each input port forwards to the switch (SA_in),
* which input port each output port grants the crossbar (SA_out).

Baselines live here (round-robin = RO_RR, age-based/oldest-first, and the
idealized STC ranking scheme = RO_Rank); the paper's contribution, RAIR,
is a policy too and lives in :mod:`repro.core.rair`.
"""

from repro.arbitration.age_based import AgeBasedPolicy
from repro.arbitration.base import ArbitrationPolicy, rotating_pick
from repro.arbitration.qos import RairQosPolicy, WeightedQosPolicy
from repro.arbitration.round_robin import RoundRobinPolicy
from repro.arbitration.stc import StcPolicy

__all__ = [
    "ArbitrationPolicy",
    "rotating_pick",
    "RoundRobinPolicy",
    "AgeBasedPolicy",
    "StcPolicy",
    "WeightedQosPolicy",
    "RairQosPolicy",
    "make_policy",
]


def make_policy(name: str, **kwargs) -> ArbitrationPolicy:
    """Construct a policy by name (``rr``/``age``/``stc``/``rair`` and variants)."""
    lname = name.lower()
    if lname in ("rr", "round_robin", "ro_rr"):
        return RoundRobinPolicy(**kwargs)
    if lname in ("age", "oldest_first"):
        return AgeBasedPolicy(**kwargs)
    if lname in ("stc", "rank", "ro_rank"):
        return StcPolicy(**kwargs)
    if lname in ("qos", "qos_weighted"):
        return WeightedQosPolicy(**kwargs)
    if lname == "rair_qos":
        return RairQosPolicy(**kwargs)
    if lname.startswith("rair"):
        from repro.core.rair import RairPolicy

        return RairPolicy(**kwargs)
    raise ValueError(f"unknown arbitration policy {name!r}")
