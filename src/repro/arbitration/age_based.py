"""Oldest-first (age-based) arbitration.

Prioritizes the packet with the earliest injection cycle at every
arbitration step — the classic age-based scheme of Abts & Weisser [1],
cited by the paper as an early region- and application-oblivious
technique. Age ordering is globally consistent, so it is starvation-free
by construction (a packet's age rank only improves with time).
"""

from __future__ import annotations

from repro.arbitration.base import ArbitrationPolicy

__all__ = ["AgeBasedPolicy"]


class AgeBasedPolicy(ArbitrationPolicy):
    """Oldest packet wins VA_out, SA_in and SA_out."""

    name = "age"
    uses_va_priority = True
    uses_sa_priority = True

    def va_out_priority(self, router, out_vc_class, invc):
        return invc.pkt.inject_cycle

    def sa_priority(self, router, invc):
        return invc.pkt.inject_cycle
