"""Weighted-bandwidth QoS arbitration and the RAIR+QoS hybrid.

Section VI of the paper distinguishes interference *reduction* from QoS —
"it is able to enforce the pre-determined bandwidth allocation set by the
OS" — and flags integrating RAIR with prior QoS mechanisms as future
work. This module implements that future-work item in the simplest
credible form:

* :class:`WeightedQosPolicy` — frame-based weighted bandwidth allocation
  in the spirit of Preemptive Virtual Clock (Grot et al., MICRO 2009):
  each application holds a per-frame flit budget proportional to its OS-
  assigned weight; applications still inside their budget outrank the
  ones that have overdrawn, with round-robin inside each band. Budgets
  reset every frame, bounding both starvation and history accumulation
  (PVC's "preemption" of stale credit is modelled by the frame reset).
* :class:`RairQosPolicy` — the hybrid: the QoS band is the primary key
  (protect the OS allocation), RAIR's region-aware priority breaks ties
  *inside* a band (reduce interference among conforming flows). This is
  exactly the layering the paper sketches: "integrate RAIR with prior QoS
  mechanisms to further improve service quality".

Both policies track *delivered* flits per application inside the network
(counted at switch traversal), which is what a bandwidth guarantee is
about; offered load stays with the STC oracle counters.
"""

from __future__ import annotations

from repro.arbitration.base import ArbitrationPolicy
from repro.core.rair import RairPolicy
from repro.util.errors import ConfigError
from repro.util.validate import check_positive

__all__ = ["WeightedQosPolicy", "RairQosPolicy"]


class WeightedQosPolicy(ArbitrationPolicy):
    """Frame-based weighted bandwidth allocation.

    Parameters
    ----------
    weights:
        ``app_id -> weight`` (positive). Applications missing from the map
        get ``default_weight``; weight 0 is allowed there to model
        best-effort traffic.
    frame_cycles:
        Frame length. Each frame, app ``a`` may deliver
        ``weight_a / sum(weights) * capacity_estimate`` flits in-budget;
        beyond that its packets drop to the over-budget band.
    capacity_per_node:
        Estimated deliverable flits/node/cycle used to size budgets
        (defaults to a conservative 0.3, close to the calibrated
        uniform-random knee).
    """

    name = "qos_weighted"
    uses_va_priority = True
    uses_sa_priority = True

    def __init__(
        self,
        weights: dict[int, float] | None = None,
        frame_cycles: int = 1000,
        capacity_per_node: float = 0.3,
        default_weight: float = 1.0,
    ):
        super().__init__()
        check_positive(frame_cycles, "frame_cycles")
        check_positive(capacity_per_node, "capacity_per_node")
        if default_weight < 0:
            raise ConfigError(f"default_weight must be >= 0, got {default_weight}")
        self.weights = dict(weights or {})
        for app, w in self.weights.items():
            if w < 0:
                raise ConfigError(f"weight of app {app} must be >= 0, got {w}")
        self.frame_cycles = frame_cycles
        self.capacity_per_node = capacity_per_node
        self.default_weight = default_weight
        # Snapshot of the network's per-app delivered-flit counters taken
        # at the start of the current frame.
        self._frame_start: dict[int, int] = {}
        self.budgets: dict[int, float] = {}
        self._frame_capacity = 0.0

    def attach(self, network) -> None:
        super().attach(network)
        self._frame_start = {}
        self._frame_capacity = (
            self.capacity_per_node * network.topology.num_nodes * self.frame_cycles
        )
        self._rebuild_budgets()

    def weight_of(self, app: int) -> float:
        """Effective weight of an application."""
        return self.weights.get(app, self.default_weight)

    def _rebuild_budgets(self) -> None:
        apps = set(self.weights)
        if self.network is not None:
            apps |= set(self.network.app_flits_delivered)
        total = sum(self.weight_of(a) for a in apps) or 1.0
        self.budgets = {
            a: self._frame_capacity * self.weight_of(a) / total for a in apps
        }

    # -- accounting -----------------------------------------------------------
    def delivered_in_frame(self, app: int) -> int:
        """Flits app ``app`` has pushed through switches this frame."""
        total = self.network.app_flits_delivered.get(app, 0)
        return total - self._frame_start.get(app, 0)

    def in_budget(self, app: int) -> bool:
        """Whether ``app`` is still inside its frame budget."""
        budget = self.budgets.get(app)
        if budget is None:
            self._rebuild_budgets()
            budget = self.budgets.get(app, 0.0)
        return self.delivered_in_frame(app) < budget

    # -- priority keys -----------------------------------------------------------
    def _band(self, invc) -> int:
        return 0 if self.in_budget(invc.pkt.app_id) else 1

    def va_out_priority(self, router, out_vc_class, invc):
        return self._band(invc)

    def sa_priority(self, router, invc):
        return self._band(invc)

    # -- frame roll-over ------------------------------------------------------------
    def end_network_cycle(self, network, cycle: int) -> None:
        if cycle and cycle % self.frame_cycles == 0:
            self._frame_start = dict(network.app_flits_delivered)
            self._rebuild_budgets()

    def fast_forward_idle(self, network, start: int, stop: int) -> None:
        # No flit is delivered during an idle gap, so every frame boundary
        # inside it takes the same delivered-counter snapshot and rebuilds
        # the same budgets — one application covers the whole gap.
        m = self.frame_cycles
        k = max(start, 1)
        k += (-k) % m
        if k < stop:
            self.end_network_cycle(network, k)


class RairQosPolicy(RairPolicy):
    """RAIR layered under a weighted-bandwidth guarantee.

    Priority key = (QoS band, RAIR key): conforming traffic always beats
    over-budget traffic; inside a band, RAIR's VC-regionalization / DPA
    rules order native vs foreign. DPA's self-throttling is preserved
    because the RAIR component is untouched.
    """

    name = "rair_qos"

    def __init__(self, qos: WeightedQosPolicy | None = None, **rair_kwargs):
        super().__init__(**rair_kwargs)
        self.name = "rair_qos"  # RairPolicy.__init__ derives a name; override it
        self.qos = qos or WeightedQosPolicy()

    def attach(self, network) -> None:
        super().attach(network)
        self.qos.attach(network)

    def va_out_priority(self, router, out_vc_class, invc):
        return (
            self.qos.va_out_priority(router, out_vc_class, invc),
            super().va_out_priority(router, out_vc_class, invc),
        )

    def sa_priority(self, router, invc):
        return (self.qos.sa_priority(router, invc), super().sa_priority(router, invc))

    def end_network_cycle(self, network, cycle: int) -> None:
        super().end_network_cycle(network, cycle)
        self.qos.end_network_cycle(network, cycle)

    def fast_forward_idle(self, network, start: int, stop: int) -> None:
        # RairPolicy keeps no end-of-cycle network state (DPA lives in
        # end_router_cycle, which never runs while idle); only the QoS
        # component's frame roll-over needs replaying.
        self.qos.fast_forward_idle(network, start, stop)
