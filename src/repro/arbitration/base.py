"""Arbitration-policy interface and the rotating-priority primitive.

Every arbitration step uses :func:`rotating_pick`: candidates are compared
by an optional priority key first, and ties are broken round-robin by
rotating a pointer over a stable candidate index. Pure round-robin is the
degenerate case with no priority key. Rotating tie-breaks inside each
priority class make all policies here starvation-free *within* a class;
cross-class starvation freedom is each policy's own responsibility (STC
uses batching, RAIR's DPA is self-throttling — paper Section IV.D).
"""

from __future__ import annotations

__all__ = ["ArbitrationPolicy", "rotating_pick"]


def rotating_pick(candidates, id_of, ptr: int, modulo: int, priority_of=None):
    """Pick a winner from ``candidates`` with rotating-priority tie-break.

    Parameters
    ----------
    candidates:
        Non-empty iterable of arbitrary objects.
    id_of:
        Maps a candidate to a stable integer slot in ``[0, modulo)``.
    ptr:
        Current rotation pointer; the candidate whose slot is closest at or
        after ``ptr`` (mod ``modulo``) wins among equal priorities.
    priority_of:
        Optional key function; *lower is higher priority*. Compared before
        the rotation distance.

    Returns
    -------
    (winner, new_ptr):
        The winning candidate and the advanced pointer (one past the
        winner's slot) to store back for next time.
    """
    best = None
    best_key = None
    best_id = 0
    for cand in candidates:
        cid = id_of(cand)
        rot = (cid - ptr) % modulo
        key = (priority_of(cand), rot) if priority_of is not None else rot
        if best_key is None or key < best_key:
            best, best_key, best_id = cand, key, cid
    return best, (best_id + 1) % modulo


class ArbitrationPolicy:
    """Base policy: pure round-robin everywhere.

    Subclasses override the ``*_priority`` key methods and set the matching
    ``uses_*_priority`` class flag; the mechanics of each arbitration step
    (candidate collection, pointer bookkeeping) stay here and in the
    router. The flags exist so the common round-robin path skips building
    per-candidate key closures in the hot loop.
    """

    name = "base"
    #: set True in subclasses that implement :meth:`va_out_priority`
    uses_va_priority = False
    #: set True in subclasses that implement :meth:`sa_priority`
    uses_sa_priority = False

    def __init__(self) -> None:
        self.network = None

    def attach(self, network) -> None:
        """Bind to a network before simulation starts."""
        self.network = network

    # -- VA_in: which (port, vc) does an input VC request? --------------------
    def choose_request(self, router, invc, options):
        """Pick one ``(out_port, out_vc)`` from ``options``.

        ``options`` is non-empty and ordered: ports appear in the routing
        algorithm's preference order and, within a port, adaptive VCs
        before the escape VC. The default takes the best-ranked port and
        rotates across its free VCs so consecutive packets spread over VCs.
        """
        first_port = options[0][0]
        port_options = [o for o in options if o[0] == first_port]
        if len(port_options) == 1:
            return port_options[0]
        ptr = router.va_req_ptr[first_port]
        winner, router.va_req_ptr[first_port] = rotating_pick(
            port_options, lambda o: o[1], ptr, router.total_vcs
        )
        return winner

    # -- priority keys (lower = higher priority) -------------------------------
    def va_out_priority(self, router, out_vc_class, invc):
        """Priority key for VA output arbitration of one output VC.

        ``out_vc_class`` is the :class:`~repro.noc.config.VcClass` tag of
        the output VC being allocated — RAIR's VC regionalization applies
        different rules per class. Only consulted when
        ``uses_va_priority`` is True.
        """
        return 0

    def sa_priority(self, router, invc):
        """Priority key for both switch-allocation steps.

        Only consulted when ``uses_sa_priority`` is True.
        """
        return 0

    # -- arbitration steps ----------------------------------------------------
    def va_out_pick(self, router, out_port: int, out_vc: int, requesters):
        """Grant one of ``requesters`` (input VCs) the output VC."""
        ptr = router.va_ptr[out_port][out_vc]
        total = router.num_ports * router.total_vcs
        if self.uses_va_priority:
            cls = router.vc_class_of[out_vc]
            prio = lambda v: self.va_out_priority(router, cls, v)  # noqa: E731
        else:
            prio = None
        winner, router.va_ptr[out_port][out_vc] = rotating_pick(
            requesters, lambda v: v.port * router.total_vcs + v.vc, ptr, total, prio
        )
        return winner

    def sa_in_pick(self, router, in_port: int, candidates):
        """Pick the input VC that represents ``in_port`` at the switch."""
        ptr = router.sa_in_ptr[in_port]
        prio = (lambda v: self.sa_priority(router, v)) if self.uses_sa_priority else None
        winner, router.sa_in_ptr[in_port] = rotating_pick(
            candidates, lambda v: v.vc, ptr, router.total_vcs, prio
        )
        return winner

    def sa_out_pick(self, router, out_port: int, candidates):
        """Pick the input VC (at most one per input port) that gets the crossbar."""
        ptr = router.sa_out_ptr[out_port]
        prio = (lambda v: self.sa_priority(router, v)) if self.uses_sa_priority else None
        winner, router.sa_out_ptr[out_port] = rotating_pick(
            candidates, lambda v: v.port, ptr, router.num_ports, prio
        )
        return winner

    # -- per-cycle hooks -------------------------------------------------------
    def end_router_cycle(self, router, cycle: int) -> None:
        """Called once per active router per cycle after SA (DPA lives here)."""

    def end_network_cycle(self, network, cycle: int) -> None:
        """Called once per cycle after all routers (STC ranking lives here)."""

    def fast_forward_idle(self, network, start: int, stop: int) -> None:
        """Replay the net effect of ``end_network_cycle`` over idle cycles.

        The simulator's fast-forward path skips cycles ``[start, stop)``
        during which the network is provably idle (no flits buffered or in
        flight, no pending credits). A policy whose ``end_network_cycle``
        is a no-op inherits this no-op and is skippable for free. A policy
        that *does* keep per-cycle state must override this to apply, in
        O(1) with respect to the gap length, exactly the state changes its
        ``end_network_cycle`` would have made on each skipped cycle — the
        simulator only calls it when no flit moved in the gap, so counters
        derived from traffic see zero deltas. Policies that cannot express
        their idle-gap effect this way must not override it AND must
        override ``end_network_cycle``; the simulator then detects the
        combination and falls back to naive per-cycle ticking.
        """
