"""Region-oblivious round-robin arbitration — the paper's RO_RR baseline.

Every arbitration step is a plain rotating pick with no priority classes.
This is exactly the base policy; the subclass exists so experiment reports
carry the paper's scheme name.
"""

from __future__ import annotations

from repro.arbitration.base import ArbitrationPolicy

__all__ = ["RoundRobinPolicy"]


class RoundRobinPolicy(ArbitrationPolicy):
    """RO_RR: round-robin at VA_out, SA_in and SA_out."""

    name = "ro_rr"
