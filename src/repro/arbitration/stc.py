"""Idealized STC — the paper's RO_Rank comparison point.

STC (Das et al., MICRO 2009) is application-aware but region-oblivious:

* **Ranking** — applications are ranked by network intensity each ranking
  interval; *less* intensive applications get *higher* priority (their
  requests are likely stall-time critical and cheap to accelerate).
  The original uses L1 MPKI; the paper idealizes this to an oracle that
  "always finds the optimal application rankings based on load intensity",
  which we realize by ranking on per-application flits injected during the
  previous interval (measured inside the simulator, i.e. an exact
  intensity oracle — substitution #3 in DESIGN.md).
* **Batching** — packets are grouped into time batches; older batches
  always beat younger batches regardless of rank, which bounds starvation.
  Within a batch, rank decides; within an application, round-robin.

Both behaviours the paper criticizes are therefore present: batching can
keep boosting a misbehaving application's backlog (Fig. 17 discussion),
and ranking cannot distinguish an application's regional from its global
traffic (Section III.A).
"""

from __future__ import annotations

from repro.arbitration.base import ArbitrationPolicy
from repro.util.validate import check_positive

__all__ = ["StcPolicy"]


class StcPolicy(ArbitrationPolicy):
    """RO_Rank: oracle intensity ranking + time batching.

    Parameters
    ----------
    rank_interval:
        Cycles between rank recomputations (paper's STC re-ranks per
        interval).
    batch_period:
        Cycles per batch; a packet's batch is ``inject_cycle // batch_period``.
    """

    name = "ro_rank"
    uses_va_priority = True
    uses_sa_priority = True

    def __init__(self, rank_interval: int = 2000, batch_period: int = 400):
        super().__init__()
        check_positive(rank_interval, "rank_interval")
        check_positive(batch_period, "batch_period")
        self.rank_interval = rank_interval
        self.batch_period = batch_period
        # app_id -> rank (0 = highest priority). Unknown apps get a rank
        # worse than any known one so fresh traffic cannot jump the queue.
        self.ranks: dict[int, int] = {}
        self._default_rank = 1 << 20
        self._last_counts: dict[int, int] = {}

    def attach(self, network) -> None:
        super().attach(network)
        self.ranks = {}
        self._last_counts = {}

    # -- priority keys ----------------------------------------------------------
    def _key(self, invc):
        pkt = invc.pkt
        batch = pkt.inject_cycle // self.batch_period
        return (batch, self.ranks.get(pkt.app_id, self._default_rank))

    def va_out_priority(self, router, out_vc_class, invc):
        return self._key(invc)

    def sa_priority(self, router, invc):
        return self._key(invc)

    # -- ranking ------------------------------------------------------------------
    def end_network_cycle(self, network, cycle: int) -> None:
        if cycle == 0 or cycle % self.rank_interval:
            return
        counts = network.app_flits_injected
        delta = {
            app: counts[app] - self._last_counts.get(app, 0)
            for app in counts
        }
        self._last_counts = dict(counts)
        # Ascending intensity -> ascending rank number -> descending priority
        # for intensive apps. Stable sort on app id keeps ties deterministic.
        ordered = sorted(delta, key=lambda app: (delta[app], app))
        self.ranks = {app: i for i, app in enumerate(ordered)}

    def fast_forward_idle(self, network, start: int, stop: int) -> None:
        # Rank boundaries inside an idle gap are NOT all equivalent: the
        # first one ranks on the real deltas accumulated before the gap;
        # the second sees zero injection since then and re-ranks every app
        # to (delta=0 -> app-id order). Third and later boundaries repeat
        # the second exactly, so applying the first two reproduces the
        # naive loop's end state for a gap of any length.
        m = self.rank_interval
        k = max(start, 1)
        k += (-k) % m
        if k < stop:
            self.end_network_cycle(network, k)
            if k + m < stop:
                self.end_network_cycle(network, k + m)
