"""Small validation helpers used by configuration dataclasses."""

from __future__ import annotations

from repro.util.errors import ConfigError

__all__ = ["require", "check_positive", "check_fraction", "check_in"]


def require(cond: bool, msg: str) -> None:
    """Raise :class:`ConfigError` with ``msg`` unless ``cond`` holds."""
    if not cond:
        raise ConfigError(msg)


def check_positive(value: float, name: str) -> None:
    """Require ``value > 0``."""
    if not value > 0:
        raise ConfigError(f"{name} must be positive, got {value!r}")


def check_fraction(value: float, name: str) -> None:
    """Require ``0 <= value <= 1``."""
    if not 0.0 <= value <= 1.0:
        raise ConfigError(f"{name} must be in [0, 1], got {value!r}")


def check_in(value, options, name: str) -> None:
    """Require ``value in options``."""
    if value not in options:
        raise ConfigError(f"{name} must be one of {sorted(options)!r}, got {value!r}")
