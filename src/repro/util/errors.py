"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the package raises with one handler while still letting
programming errors (``TypeError``, ``AttributeError``...) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError, RuntimeError):
    """The simulator reached an internal inconsistency.

    This is raised on invariant violations (e.g. negative credits, a flit
    sent from an empty buffer). It always indicates a bug in the simulator
    or a corrupted external mutation of its state, never a user mistake.
    """


class GuardError(SimulationError):
    """The runtime invariant guard detected and classified a violation.

    Raised by :class:`repro.noc.guard.RuntimeGuard` in place of the plain
    watchdog :class:`SimulationError`. Subclassing ``SimulationError``
    keeps the failure non-retryable in the fault-tolerant experiment
    engine — a guard trip is deterministic for a given cell.

    Attributes
    ----------
    reason:
        Machine token for :attr:`MeasurementResult.abort` — one of
        ``deadlock`` / ``livelock`` / ``starvation`` /
        ``credit_conservation`` / ``flit_conservation`` /
        ``packet_conservation`` / ``pool_safety`` / ``dateline``.
    failure_label:
        CamelCase form the experiment layer renders as
        ``FAILED(<label>)`` (e.g. ``Deadlock``).
    blackbox_path:
        Where the crash-blackbox JSONL was written, or ``None`` when the
        guard had no output directory (the forensics then live only on
        the guard object / in this message).
    """

    def __init__(
        self,
        message: str,
        reason: str,
        label: str | None = None,
        blackbox_path: str | None = None,
    ):
        super().__init__(message)
        self.reason = reason
        self.failure_label = label or reason.title().replace("_", "")
        self.blackbox_path = blackbox_path


class DeadlineError(ReproError, RuntimeError):
    """A cooperative cycle budget expired before the run could finish.

    Raised by :meth:`repro.noc.sim.Simulator.run` when
    ``Simulator.deadline_cycle`` is reached during the warmup or
    measurement phases (the run then has no usable window). A budget that
    expires during the *drain* phase is reported as ``abort="deadline"``
    instead, since the measured packets that ejected remain valid.
    """


class CellExecutionError(ReproError, RuntimeError):
    """An experiment cell failed in a worker and could not be re-raised.

    Carries the worker-side exception type, message, and traceback as
    text; the original exception object is unavailable because it was
    raised in another process (or the process died entirely).
    """


class TrafficError(ReproError, ValueError):
    """A traffic generator was asked for something it cannot produce."""
