"""Exception hierarchy for the repro package.

All library-raised exceptions derive from :class:`ReproError` so callers can
catch everything the package raises with one handler while still letting
programming errors (``TypeError``, ``AttributeError``...) propagate.
"""


class ReproError(Exception):
    """Base class for all errors raised by the repro package."""


class ConfigError(ReproError, ValueError):
    """An invalid or inconsistent configuration value was supplied."""


class SimulationError(ReproError, RuntimeError):
    """The simulator reached an internal inconsistency.

    This is raised on invariant violations (e.g. negative credits, a flit
    sent from an empty buffer). It always indicates a bug in the simulator
    or a corrupted external mutation of its state, never a user mistake.
    """


class TrafficError(ReproError, ValueError):
    """A traffic generator was asked for something it cannot produce."""
