"""Shared utilities: error types, RNG handling, config validation helpers."""

from repro.util.errors import (
    ConfigError,
    ReproError,
    SimulationError,
    TrafficError,
)
from repro.util.rng import make_rng, spawn_rngs

__all__ = [
    "ReproError",
    "ConfigError",
    "SimulationError",
    "TrafficError",
    "make_rng",
    "spawn_rngs",
]
