"""Deterministic random-number-generator plumbing.

Every stochastic component of the simulator (traffic sources, arbitration
tie-breaking that is specified as random, calibration sweeps) receives a
:class:`numpy.random.Generator`. Nothing in the package touches the global
NumPy RNG, so two runs with equal configs and seeds are bit-identical.
"""

from __future__ import annotations

import numpy as np

__all__ = ["make_rng", "spawn_rngs"]


def make_rng(seed: int | np.random.Generator | None = None) -> np.random.Generator:
    """Return a Generator from ``seed``.

    Accepts an ``int`` seed, an existing Generator (returned unchanged), or
    ``None`` (fresh OS entropy — only appropriate for exploratory use; all
    experiment configs pass explicit integer seeds).
    """
    if isinstance(seed, np.random.Generator):
        return seed
    return np.random.default_rng(seed)


def spawn_rngs(seed: int, n: int) -> list[np.random.Generator]:
    """Derive ``n`` independent child generators from one integer seed.

    Uses :class:`numpy.random.SeedSequence` spawning, so children are
    statistically independent and the mapping (seed, i) -> stream is stable
    across runs and machines.
    """
    if n < 0:
        raise ValueError(f"cannot spawn {n} generators")
    ss = np.random.SeedSequence(seed)
    return [np.random.default_rng(child) for child in ss.spawn(n)]
