"""Single-source package version and build provenance.

``pyproject.toml`` is the one place the version number lives; this module
recovers it at runtime so ``repro.__version__`` works both from an
installed distribution and from a source checkout on ``PYTHONPATH``
(the checkout's ``pyproject.toml`` wins when present, so editing it never
leaves a stale installed-metadata version visible).

:func:`git_revision` is the companion provenance stamp: the short commit
hash of the checkout the code is imported from, or ``None`` outside a git
work tree. Both ride into observability JSONL headers and service job
records so any artifact can be traced back to the code that produced it.
"""

from __future__ import annotations

import functools
import pathlib
import re
import subprocess

__all__ = ["__version__", "git_revision", "version_blurb"]

_FALLBACK_VERSION = "0+unknown"


def _version_from_pyproject() -> str | None:
    """Read ``version = "..."`` from the checkout's own pyproject.toml."""
    pyproject = pathlib.Path(__file__).resolve().parents[2] / "pyproject.toml"
    try:
        text = pyproject.read_text(encoding="utf-8")
    except OSError:
        return None
    match = re.search(r'^version\s*=\s*"([^"]+)"', text, re.MULTILINE)
    return match.group(1) if match else None


def _version_from_metadata() -> str | None:
    """Installed-distribution fallback (pip-installed, no source tree)."""
    try:
        from importlib import metadata

        return metadata.version("repro")
    except Exception:
        return None


__version__ = _version_from_pyproject() or _version_from_metadata() or _FALLBACK_VERSION


@functools.lru_cache(maxsize=1)
def git_revision() -> str | None:
    """Short commit hash of the source checkout, or None when unknowable.

    Anchored at the package directory (not the caller's cwd) so worker
    processes and daemons report the revision of the code they actually
    imported. Cached — at most one subprocess per process lifetime.
    """
    try:
        proc = subprocess.run(
            ["git", "rev-parse", "--short", "HEAD"],
            cwd=pathlib.Path(__file__).resolve().parent,
            capture_output=True,
            text=True,
            timeout=5.0,
        )
    except Exception:
        return None
    if proc.returncode != 0:
        return None
    rev = proc.stdout.strip()
    return rev or None


def version_blurb(prog: str = "repro") -> str:
    """One-line ``prog version (git rev)`` string for ``--version`` flags."""
    rev = git_revision()
    return f"{prog} {__version__} (git {rev})" if rev else f"{prog} {__version__}"
