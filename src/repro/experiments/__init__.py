"""Experiment harness: one module per paper table/figure plus ablations.

Each figure module exposes ``run(effort=...) -> FigureResult`` and a
``main()`` CLI entry point; ``FigureResult.format_table()`` prints the same
rows/series the paper reports. The ``effort`` knob scales the paper's
10K-warmup / 100K-measure windows down so the full suite completes on one
machine (DESIGN.md §5); the window used is always recorded in the result.

Index (DESIGN.md §3):

====== =====================================  ==============================
id     module                                 paper artifact
====== =====================================  ==============================
E-T1   :mod:`repro.experiments.table1`        Table 1 (configuration)
E-F9   :mod:`repro.experiments.fig09_msp`     Fig. 9 (MSP, p sweep)
E-F10  :mod:`repro.experiments.fig10_routing` Fig. 10 (routing algorithms)
E-F12  :mod:`repro.experiments.fig12_dpa`     Fig. 12(a)(b) (DPA)
E-F14  :mod:`repro.experiments.fig14_sixapp`  Fig. 14 (six applications)
E-F15  :mod:`repro.experiments.fig15_patterns` Fig. 15 (global patterns)
E-F17  :mod:`repro.experiments.fig17_parsec`  Fig. 17 (PARSEC + adversary)
E-A1   :mod:`repro.experiments.ablation_hysteresis`  DPA delta sweep
E-A2   :mod:`repro.experiments.ablation_vcsplit`     regional:global VC split
====== =====================================  ==============================
"""

from repro.experiments.cache import ResultCache, SweepJournal, cache_key
from repro.experiments.parallel import (
    Cell,
    CellFailure,
    CellResult,
    ExecutionReport,
    FaultPolicy,
    run_cells,
    run_cells_detailed,
)
from repro.experiments.runner import (
    Effort,
    FigureResult,
    Scheme,
    SCHEMES,
    ScenarioRun,
    run_scenario,
)
from repro.experiments.saturation_table import saturation_load
from repro.experiments.scenarios import ScenarioSpec
from repro.experiments.sweep import SweepResult, compare_schemes, replicate

__all__ = [
    "Effort",
    "FigureResult",
    "Scheme",
    "SCHEMES",
    "ScenarioRun",
    "ScenarioSpec",
    "run_scenario",
    "saturation_load",
    "SweepResult",
    "replicate",
    "compare_schemes",
    "Cell",
    "CellFailure",
    "CellResult",
    "ExecutionReport",
    "FaultPolicy",
    "run_cells",
    "run_cells_detailed",
    "ResultCache",
    "SweepJournal",
    "cache_key",
]
