"""E-T1 — Table 1: simulator configuration.

The paper's Table 1 describes the full-system configuration behind its
PARSEC traces. Our substitute stack (DESIGN.md §4) realizes the
network-visible rows directly and models the system rows through the
PARSEC-like workload's service latencies. This module renders the
side-by-side mapping so the reproduction's configuration is auditable.
"""

from __future__ import annotations

from repro.experiments.runner import FigureResult
from repro.noc.config import NocConfig
from repro.traffic.parsec import L2_SERVICE_LATENCY, MC_SERVICE_LATENCY

__all__ = ["run", "main"]


def run(config: NocConfig | None = None) -> FigureResult:
    """Render the Table 1 mapping for ``config`` (default: paper config)."""
    cfg = config or NocConfig(num_vnets=2)
    rows = [
        {
            "item": "Cores",
            "paper": "64 Sun UltraSPARC III+, 1GHz",
            "repro": f"{cfg.num_nodes} nodes ({cfg.width}x{cfg.height} mesh), "
            "synthetic request/reply cores",
        },
        {
            "item": "Private I/D L1$",
            "paper": "32KB, 2-way, LRU, 1-cycle",
            "repro": "implicit: request stream models L1 misses",
        },
        {
            "item": "Shared L2$/bank",
            "paper": "256KB, 16-way, LRU, 6-cycle",
            "repro": f"one bank/node, {L2_SERVICE_LATENCY}-cycle service",
        },
        {
            "item": "Memory latency",
            "paper": "128 cycles",
            "repro": f"{MC_SERVICE_LATENCY}-cycle service at 4 corner MCs",
        },
        {
            "item": "Block size",
            "paper": "64 Bytes",
            "repro": "5-flit replies (64B + head flit)",
        },
        {
            "item": "Virtual channels",
            "paper": "4 per protocol class, atomic, 5-flit/VC",
            "repro": f"{cfg.vcs_per_vnet} per vnet x {cfg.num_vnets} vnets, "
            f"atomic, {cfg.vc_depth}-flit/VC",
        },
        {
            "item": "Link bandwidth",
            "paper": "128 bits/cycle",
            "repro": f"{cfg.link_bits} bits/cycle (1 flit/cycle/link)",
        },
    ]
    return FigureResult(
        figure="Table 1",
        title="Full-system simulator configuration (paper vs reproduction)",
        columns=["item", "paper", "repro"],
        rows=rows,
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.table1"""
    print(run().format_table())
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
