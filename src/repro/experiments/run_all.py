"""Run every reproduced table/figure and write the results directory.

CLI::

    python -m repro.experiments.run_all [--effort medium] [--out results/]
                                        [--jobs N] [--cache DIR] [--obs DIR]

Runs E-T1, E-F9/F10/F12/F14/F15/F17 and the three ablations in sequence,
printing each table and writing ``<out>/<experiment>.txt``, plus a
``summary.txt`` with the headline shape checks. This is the one-command
regeneration path behind EXPERIMENTS.md.

``--jobs N`` fans each experiment's independent (scheme, scenario, seed)
cells over N worker processes; ``--cache DIR`` reuses cells already
computed by *any* previous figure, ablation, or sweep (several figures
share their RO_RR baselines, so a cached full run skips a sizable
fraction of the work). Results are bit-identical to the serial,
uncached path either way.
"""

from __future__ import annotations

import argparse
import pathlib
import time

from repro.experiments import (
    ablation_hysteresis,
    ablation_routing,
    ablation_vcsplit,
    fig09_msp,
    fig10_routing,
    fig12_dpa,
    fig14_sixapp,
    fig15_patterns,
    fig17_parsec,
    table1,
)
from repro.experiments.report import (
    EXIT_CELL_FAILURE,
    add_common_args,
    common_from_args,
    parse_effort,
    write_text_atomic,
)

__all__ = ["main", "EXPERIMENTS"]

#: name -> module with a run(effort=..., seed=...) entry point
EXPERIMENTS = {
    "table1": table1,
    "fig09_msp": fig09_msp,
    "fig10_routing": fig10_routing,
    "fig12_dpa": fig12_dpa,
    "fig14_sixapp": fig14_sixapp,
    "fig15_patterns": fig15_patterns,
    "fig17_parsec": fig17_parsec,
    "ablation_hysteresis": ablation_hysteresis,
    "ablation_vcsplit": ablation_vcsplit,
    "ablation_routing": ablation_routing,
}


def main(argv=None) -> int:
    parser = add_common_args(argparse.ArgumentParser(description=__doc__))
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--only", nargs="*", default=None,
        help=f"subset of experiments to run; known: {sorted(EXPERIMENTS)}",
    )
    args = parser.parse_args(argv)
    effort = parse_effort(args.effort)
    common = common_from_args(args)
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    names = args.only or list(EXPERIMENTS)
    unknown = set(names) - set(EXPERIMENTS)
    if unknown:
        raise SystemExit(f"unknown experiments: {sorted(unknown)}")

    summary = []
    hits = misses = failures = errors = 0
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        try:
            if name == "table1":
                result = module.run()
            else:
                result = module.run(effort=effort, seed=args.seed, **common)
        except Exception as exc:
            # A cell failure never raises (it renders as a FAILED row);
            # reaching here means the experiment module itself broke.
            # Contain it so the remaining experiments still run.
            elapsed = time.perf_counter() - start
            errors += 1
            text = f"{name}: ERROR {type(exc).__name__}: {exc}"
            print(f"\n{text}\n[{name}: {elapsed:.1f}s]")
            write_text_atomic(out / f"{name}.txt", text + "\n")
            summary.append(f"{name}: ERROR {type(exc).__name__}, {elapsed:.1f}s")
            continue
        elapsed = time.perf_counter() - start
        hits += result.metrics.get("cache_hits", 0)
        misses += result.metrics.get("cache_misses", 0)
        exp_failures = result.metrics.get("failures", 0)
        failures += exp_failures
        text = result.format_table()
        print(f"\n{text}\n[{name}: {elapsed:.1f}s]")
        write_text_atomic(out / f"{name}.txt", text + "\n")
        line = f"{name}: {len(result.rows)} rows, {elapsed:.1f}s"
        if exp_failures:
            line += f", {exp_failures} FAILED cell(s)"
        summary.append(line)

    header = f"effort={effort.name} seed={args.seed} jobs={args.jobs}"
    if args.cache is not None:
        header += f" cache_hits={hits} cache_misses={misses}"
    if failures or errors:
        header += f" failures={failures} errors={errors}"
    write_text_atomic(out / "summary.txt", header + "\n" + "\n".join(summary) + "\n")
    print(f"\nwrote {len(names)} experiment reports to {out}/")
    if failures or errors:
        print(
            f"WARNING: {failures} cell failure(s) and {errors} experiment "
            "error(s); see the FAILED/ERROR entries above."
        )
        return EXIT_CELL_FAILURE
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
