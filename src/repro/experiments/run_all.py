"""Run every reproduced table/figure and write the results directory.

CLI::

    python -m repro.experiments.run_all [--effort medium] [--out results/]
                                        [--jobs N] [--cache DIR] [--obs DIR]

Runs E-T1, E-F9/F10/F12/F14/F15/F17 and the three ablations in sequence,
printing each table and writing ``<out>/<experiment>.txt``, plus a
``summary.txt`` with the headline shape checks. This is the one-command
regeneration path behind EXPERIMENTS.md.

``--jobs N`` fans each experiment's independent (scheme, scenario, seed)
cells over N worker processes; ``--cache DIR`` reuses cells already
computed by *any* previous figure, ablation, or sweep (several figures
share their RO_RR baselines, so a cached full run skips a sizable
fraction of the work). Results are bit-identical to the serial,
uncached path either way.
"""

from __future__ import annotations

import argparse
import pathlib
import time

from repro.experiments import (
    ablation_hysteresis,
    ablation_routing,
    ablation_vcsplit,
    fig09_msp,
    fig10_routing,
    fig12_dpa,
    fig14_sixapp,
    fig15_patterns,
    fig17_parsec,
    table1,
)
from repro.experiments.parallel import FaultPolicy
from repro.experiments.report import (
    EXIT_CELL_FAILURE,
    guard_from_args,
    obs_from_args,
    parse_effort,
    write_text_atomic,
)
from repro.noc.topology import TOPOLOGY_KINDS

__all__ = ["main", "EXPERIMENTS"]

#: name -> module with a run(effort=..., seed=...) entry point
EXPERIMENTS = {
    "table1": table1,
    "fig09_msp": fig09_msp,
    "fig10_routing": fig10_routing,
    "fig12_dpa": fig12_dpa,
    "fig14_sixapp": fig14_sixapp,
    "fig15_patterns": fig15_patterns,
    "fig17_parsec": fig17_parsec,
    "ablation_hysteresis": ablation_hysteresis,
    "ablation_vcsplit": ablation_vcsplit,
    "ablation_routing": ablation_routing,
}


def main(argv=None) -> int:
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--effort", default="medium")
    parser.add_argument("--seed", type=int, default=42)
    parser.add_argument("--out", default="results")
    parser.add_argument(
        "--only", nargs="*", default=None,
        help=f"subset of experiments to run; known: {sorted(EXPERIMENTS)}",
    )
    parser.add_argument(
        "--jobs", type=int, default=1,
        help="worker processes per experiment (default 1 = serial)",
    )
    parser.add_argument(
        "--cache", default=None, metavar="DIR",
        help="result-cache directory shared across experiments and runs; "
        "also enables per-sweep journals so an interrupted run resumes",
    )
    parser.add_argument(
        "--max-attempts", type=int, default=3,
        help="attempts per cell for transient failures (default 3)",
    )
    parser.add_argument(
        "--timeout", type=float, default=None, metavar="SECONDS",
        help="wall-clock budget per cell (jobs>1 only)",
    )
    parser.add_argument(
        "--cycle-budget", type=int, default=None, metavar="CYCLES",
        help="cooperative simulated-cycle budget per cell",
    )
    parser.add_argument(
        "--obs", default=None, metavar="DIR",
        help="record observability streams, one JSONL file per simulated "
        "cell, in DIR (table1 computes no cells and is unaffected)",
    )
    parser.add_argument(
        "--obs-sample-period", type=int, default=64, metavar="CYCLES",
        help="cycles between observability samples (default 64)",
    )
    parser.add_argument(
        "--topology", default="mesh", choices=TOPOLOGY_KINDS,
        help="fabric for every simulated experiment: mesh (default), torus, "
        "or ring (table1 is config-independent and unaffected)",
    )
    parser.add_argument(
        "--guard", default="off", choices=("off", "sample", "strict"),
        help="runtime invariant guard for every simulated cell: classifies "
        "stalls (deadlock/livelock/starvation) and checks conservation "
        "invariants, dumping a crash blackbox next to the obs streams "
        "(default off)",
    )
    args = parser.parse_args(argv)
    effort = parse_effort(args.effort)
    obs = obs_from_args(args)
    guard = guard_from_args(args)
    policy = FaultPolicy(
        max_attempts=args.max_attempts,
        wall_timeout_s=args.timeout,
        cycle_budget=args.cycle_budget,
    )
    out = pathlib.Path(args.out)
    out.mkdir(parents=True, exist_ok=True)

    names = args.only or list(EXPERIMENTS)
    unknown = set(names) - set(EXPERIMENTS)
    if unknown:
        raise SystemExit(f"unknown experiments: {sorted(unknown)}")

    summary = []
    hits = misses = failures = errors = 0
    for name in names:
        module = EXPERIMENTS[name]
        start = time.perf_counter()
        try:
            if name == "table1":
                result = module.run()
            else:
                result = module.run(
                    effort=effort, seed=args.seed, jobs=args.jobs,
                    cache=args.cache, policy=policy, obs=obs,
                    guard=guard, topology=args.topology,
                )
        except Exception as exc:
            # A cell failure never raises (it renders as a FAILED row);
            # reaching here means the experiment module itself broke.
            # Contain it so the remaining experiments still run.
            elapsed = time.perf_counter() - start
            errors += 1
            text = f"{name}: ERROR {type(exc).__name__}: {exc}"
            print(f"\n{text}\n[{name}: {elapsed:.1f}s]")
            write_text_atomic(out / f"{name}.txt", text + "\n")
            summary.append(f"{name}: ERROR {type(exc).__name__}, {elapsed:.1f}s")
            continue
        elapsed = time.perf_counter() - start
        hits += result.metrics.get("cache_hits", 0)
        misses += result.metrics.get("cache_misses", 0)
        exp_failures = result.metrics.get("failures", 0)
        failures += exp_failures
        text = result.format_table()
        print(f"\n{text}\n[{name}: {elapsed:.1f}s]")
        write_text_atomic(out / f"{name}.txt", text + "\n")
        line = f"{name}: {len(result.rows)} rows, {elapsed:.1f}s"
        if exp_failures:
            line += f", {exp_failures} FAILED cell(s)"
        summary.append(line)

    header = f"effort={effort.name} seed={args.seed} jobs={args.jobs}"
    if args.cache is not None:
        header += f" cache_hits={hits} cache_misses={misses}"
    if failures or errors:
        header += f" failures={failures} errors={errors}"
    write_text_atomic(out / "summary.txt", header + "\n" + "\n".join(summary) + "\n")
    print(f"\nwrote {len(names)} experiment reports to {out}/")
    if failures or errors:
        print(
            f"WARNING: {failures} cell failure(s) and {errors} experiment "
            "error(s); see the FAILED/ERROR entries above."
        )
        return EXIT_CELL_FAILURE
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
