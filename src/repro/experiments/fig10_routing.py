"""E-F10 — Figure 10: RAIR with different adaptive routing algorithms.

Same two-application scenario as Fig. 9, comparing:

* ``RO_RR_Local``  — round-robin + local-adaptive (Duato) routing,
* ``RAIR_Local``   — RAIR + local-adaptive routing,
* ``RO_RR_DBAR``   — round-robin + DBAR routing,
* ``RAIR_DBAR``    — RAIR + DBAR routing.

Paper shape: RAIR_DBAR gives the lowest App0 APL (paper: −24.8% vs
RO_RR_Local at p=100%) and recovers App1's slowdown (−3.3%, i.e. App1 under
RAIR_DBAR is no worse than under RO_RR_Local); RAIR contributes more of the
gain than DBAR alone (RAIR_DBAR improves App0 by ~12.8% over RO_RR_DBAR).
"""

from __future__ import annotations

from repro.experiments.parallel import Cell, FaultPolicy, run_cells_detailed
from repro.experiments.report import (
    common_from_args,
    config_for_topology,
    effort_argparser,
    failed_label,
    finish,
    parse_effort,
)
from repro.experiments.runner import SCHEMES, Effort, FigureResult
from repro.experiments.scenarios import two_app_msp

__all__ = ["run", "main", "FIG10_SCHEMES"]

FIG10_SCHEMES = ("RO_RR_Local", "RAIR_Local", "RO_RR_DBAR", "RAIR_DBAR")
P_VALUES = (0.0, 0.5, 1.0)


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    p_values=P_VALUES,
    schemes=FIG10_SCHEMES,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
    topology: str = "mesh",
    service=None,
) -> FigureResult:
    """Run the Fig. 10 comparison; one row per (p, scheme).

    Failed cells render as ``FAILED(...)`` rows instead of aborting.
    ``topology`` selects the fabric (mesh/torus/ring).
    """
    config = config_for_topology(topology)
    cells = [
        Cell.for_scenario(SCHEMES[key], two_app_msp(p, config=config), effort, seed)
        for p in p_values
        for key in schemes
    ]
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs,
        guard=guard, service=service,
    )
    it = iter(results)
    rows = []
    for p in p_values:
        for key in schemes:
            cell_res = next(it)
            if cell_res.ok:
                res = cell_res.run
                rows.append(
                    {
                        "p_inter": f"{p:.0%}",
                        "scheme": key,
                        "apl_app0": res.per_app_apl.get(0, float("nan")),
                        "apl_app1": res.per_app_apl.get(1, float("nan")),
                        "drained": res.drained,
                    }
                )
            else:
                label = failed_label(cell_res)
                rows.append(
                    {
                        "p_inter": f"{p:.0%}",
                        "scheme": key,
                        "apl_app0": label,
                        "apl_app1": label,
                        "drained": "",
                    }
                )
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Figure 10",
        title="APL per routing algorithm (two-app scenario)",
        columns=["p_inter", "scheme", "apl_app0", "apl_app1", "drained"],
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "expected shape: RAIR_DBAR best on apl_app0; RAIR_* << RO_RR_* ; "
            "DBAR routing also helps App1",
        ],
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.fig10_routing [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    result = run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        **common_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
