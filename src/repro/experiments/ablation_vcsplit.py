"""E-A2 — ablation: regional vs global VC split (paper Section VI).

The paper argues a roughly even split between regional and global VCs
supports generic traffic best: skewing towards regional VCs starves
foreign traffic's acceleration, skewing towards global VCs delays native
traffic's priority acquisition. This ablation runs the six-application
scenario with 1:3, 2:2 and 3:1 (global:regional) splits of the four VCs
per virtual network.
"""

from __future__ import annotations

from dataclasses import replace

from repro.experiments.parallel import Cell, FaultPolicy, run_cells_detailed
from repro.experiments.report import (
    common_from_args,
    config_for_topology,
    effort_argparser,
    failed_label,
    finish,
    parse_effort,
)
from repro.experiments.runner import SCHEMES, Effort, FigureResult
from repro.experiments.scenarios import six_app
from repro.noc.config import NocConfig, VcClass

__all__ = ["run", "main", "SPLITS"]

G = VcClass.GLOBAL
R = VcClass.REGIONAL

#: (label, vc_classes) — index 0 is always the escape VC of its vnet.
SPLITS = (
    ("1G:3R", (G, R, R, R)),
    ("2G:2R", (G, G, R, R)),
    ("3G:1R", (G, G, G, R)),
)


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    splits=SPLITS,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
    topology: str = "mesh",
    service=None,
) -> FigureResult:
    """One row per VC split; reductions are vs RO_RR on the same config.

    Failed cells render as ``FAILED(...)`` rows instead of aborting.
    ``topology`` selects the fabric (mesh/torus/ring).
    """
    base_cfg = config_for_topology(topology) or NocConfig()
    cells = []
    for label, classes in splits:
        cfg = replace(base_cfg, vc_classes=classes)
        scenario = six_app(config=cfg)
        cells.append(Cell.for_scenario(SCHEMES["RO_RR"], scenario, effort, seed))
        cells.append(Cell.for_scenario(SCHEMES["RA_RAIR"], scenario, effort, seed))
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs,
        guard=guard, service=service,
    )
    it = iter(results)
    rows = []
    for label, classes in splits:
        base_res = next(it)
        cell_res = next(it)
        failed = next((r for r in (base_res, cell_res) if not r.ok), None)
        if failed is not None:
            label_text = failed_label(failed)
            rows.append(
                {"split": label, "red_avg": label_text, "apl": label_text,
                 "drained": ""}
            )
            continue
        base, res = base_res.run, cell_res.run
        apps = sorted(base.per_app_apl)
        reds = [res.reduction_vs(base, app=app) for app in apps]
        rows.append(
            {
                "split": label,
                "red_avg": sum(reds) / len(reds),
                "apl": res.apl,
                "drained": res.drained,
            }
        )
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Ablation A2",
        title="Global:regional VC split (six-app scenario, reduction vs RO_RR)",
        columns=["split", "red_avg", "apl", "drained"],
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "paper (Section VI): roughly even split recommended for generic traffic",
        ],
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.ablation_vcsplit [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    result = run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        **common_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
