"""E-F15 — Figure 15: APL reduction under different global traffic patterns.

The Fig. 13 six-app scenario with its 20% inter-region component drawn
from each of the paper's synthetic patterns: uniform random (UR),
transpose (TP), bit complement (BC), hotspot (HS). Reported value is the
average APL reduction vs RO_RR per scheme and pattern.

Paper shape: RA_RAIR reduces APL across *all* patterns (average −13.4%),
demonstrating that RAIR places no implicit restriction on the global
traffic pattern; the baseline orderings of Fig. 14 persist per pattern.
"""

from __future__ import annotations

from repro.experiments.parallel import Cell, FaultPolicy, run_cells_detailed
from repro.experiments.report import (
    common_from_args,
    config_for_topology,
    effort_argparser,
    failed_label,
    finish,
    parse_effort,
)
from repro.experiments.runner import SCHEMES, Effort, FigureResult
from repro.experiments.scenarios import six_app

__all__ = ["run", "main", "PATTERNS"]

PATTERNS = ("ur", "tp", "bc", "hs")
FIG15_SCHEMES = ("RA_DBAR", "RO_Rank", "RA_RAIR")


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    patterns=PATTERNS,
    schemes=FIG15_SCHEMES,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
    topology: str = "mesh",
    service=None,
) -> FigureResult:
    """One row per (pattern, scheme) with the average APL reduction vs RO_RR.

    Failed cells render as ``FAILED(...)`` rows instead of aborting.
    ``topology`` selects the fabric (mesh/torus/ring); patterns a fabric
    cannot express (e.g. transpose on a ring) render as FAILED rows.
    """
    config = config_for_topology(topology)
    cells = [
        Cell.for_scenario(
            SCHEMES[key],
            six_app(global_pattern=pattern, config=config),
            effort,
            seed,
        )
        for pattern in patterns
        for key in ("RO_RR",) + tuple(schemes)
    ]
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs,
        guard=guard, service=service,
    )
    it = iter(results)
    rows = []
    for pattern in patterns:
        base_res = next(it)
        for key in schemes:
            cell_res = next(it)
            if not cell_res.ok:
                label = failed_label(cell_res)
            elif not base_res.ok:
                label = f"FAILED(baseline {base_res.failure.error_type})"
            else:
                base, res = base_res.run, cell_res.run
                apps = sorted(base.per_app_apl)
                reds = [res.reduction_vs(base, app=app) for app in apps]
                rows.append(
                    {
                        "pattern": pattern.upper(),
                        "scheme": key,
                        "red_avg": sum(reds) / len(reds),
                        "drained": res.drained,
                    }
                )
                continue
            rows.append(
                {
                    "pattern": pattern.upper(),
                    "scheme": key,
                    "red_avg": label,
                    "drained": "",
                }
            )
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Figure 15",
        title="Average APL reduction vs RO_RR per global traffic pattern",
        columns=["pattern", "scheme", "red_avg", "drained"],
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "expected shape: RA_RAIR positive for every pattern and best "
            "on average",
        ],
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.fig15_patterns [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    result = run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        **common_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
