"""Calibrated saturation loads (flits/node/cycle).

The paper expresses injection rates as percentages of each application's
*saturation load*. Saturation depends on the traffic footprint (chip-wide
vs intra-region uniform random, region size) and on the routing algorithm,
so we calibrate empirically once per footprint with
:mod:`repro.experiments.calibrate` (latency-knee criterion: the highest
load whose APL stays below ``KNEE_FACTOR`` x the zero-load APL and that
still drains) and record the results here.

Values below were measured with ``python -m repro.experiments.calibrate``
on the default :class:`~repro.noc.config.NocConfig` (8x8 mesh, 4 VCs,
5-flit buffers, 1-cycle links) with local-adaptive (Duato) routing and
round-robin arbitration, the common substrate of every scenario. Regions
are the paper's three layouts (2 / 4 / 6 regions). Keys are
``f"{pattern}_{footprint}"``.

Re-run the calibration CLI after changing the simulator's timing model and
paste its output over this table.
"""

from __future__ import annotations

from repro.util.errors import ConfigError

__all__ = ["SATURATION_TABLE", "saturation_load", "KNEE_FACTOR", "main"]

#: APL multiplier over zero-load APL that defines the saturation knee.
KNEE_FACTOR = 3.0

#: flits/node/cycle at the latency knee, measured 2026-07-04 with
#: ``python -m repro.experiments.calibrate`` (bisection tolerance 0.02,
#: probe windows 500/2500, probe ceiling 0.7) on the 4-data-VC +
#: 1-escape-VC configuration.
SATURATION_TABLE: dict[str, float] = {
    # chip-wide uniform random over the 8x8 mesh
    "ur_chip_8x8": 0.355,
    # intra-region uniform random, one 4x8 half (Fig. 8 layout)
    "ur_half_4x8": 0.385,
    # intra-region uniform random, one 4x4 quadrant (Figs. 11/16)
    "ur_quad_4x4": 0.639,
    # intra-region uniform random, six-region grid (Fig. 13): 3x4 and 2x4
    "ur_grid6_3x4": 0.659,
    "ur_grid6_2x4": 0.639,
    # Fig. 13 full per-app mix (75% intra / 20% inter / 5% MC). The knee
    # sits higher than pure-intra because the mix's zero-load APL (and
    # hence the knee threshold) includes the long chip-wide components;
    # both values hit the probe ceiling.
    "mix_grid6_3x4": 0.70,
    "mix_grid6_2x4": 0.70,
}


def saturation_load(key: str) -> float:
    """Look up a calibrated saturation load by footprint key."""
    try:
        return SATURATION_TABLE[key]
    except KeyError:
        raise ConfigError(
            f"no calibrated saturation for {key!r}; known keys: "
            f"{sorted(SATURATION_TABLE)} — run python -m repro.experiments.calibrate"
        ) from None


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.saturation_table

    Render the recorded calibration table (no simulation; see
    :mod:`repro.experiments.calibrate` to re-measure it).
    """
    import argparse

    argparse.ArgumentParser(description=main.__doc__).parse_args(argv)
    width = max(len(k) for k in SATURATION_TABLE)
    print(f"calibrated saturation loads (knee factor {KNEE_FACTOR}x zero-load APL)")
    for key in sorted(SATURATION_TABLE):
        print(f"{key.ljust(width)}  {SATURATION_TABLE[key]:.3f}")
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
