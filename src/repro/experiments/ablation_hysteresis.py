"""E-A1 — ablation: DPA hysteresis width (paper Section IV.C).

The paper observes that hysteresis deltas between 0.1 and 0.3 "typically
render better performance with the best case achieved at around 0.2".
This ablation sweeps delta over the six-application scenario and reports
the average APL reduction vs RO_RR; delta=0 (no hysteresis) is included to
show the cost of reacting to every transient VC-occupancy flip.
"""

from __future__ import annotations

from repro.core.dpa import DpaConfig
from repro.experiments.parallel import Cell, FaultPolicy, run_cells_detailed
from repro.experiments.report import (
    common_from_args,
    config_for_topology,
    effort_argparser,
    failed_label,
    finish,
    parse_effort,
)
from repro.experiments.runner import SCHEMES, Effort, FigureResult
from repro.experiments.scenarios import six_app

__all__ = ["run", "main", "DELTAS"]

DELTAS = (0.0, 0.1, 0.2, 0.3, 0.4)


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    deltas=DELTAS,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
    topology: str = "mesh",
    service=None,
) -> FigureResult:
    """One row per hysteresis delta (failed cells render as FAILED rows)."""
    scenario = six_app(config=config_for_topology(topology))
    cells = [Cell.for_scenario(SCHEMES["RO_RR"], scenario, effort, seed)] + [
        Cell.for_scenario(
            SCHEMES["RA_RAIR"],
            scenario,
            effort,
            seed,
            policy_overrides={"dpa": DpaConfig(delta=delta)},
        )
        for delta in deltas
    ]
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs,
        guard=guard, service=service,
    )
    base_res, delta_results = results[0], results[1:]
    rows = []
    for delta, cell_res in zip(deltas, delta_results):
        if not cell_res.ok:
            label = failed_label(cell_res)
        elif not base_res.ok:
            label = f"FAILED(baseline {base_res.failure.error_type})"
        else:
            base, res = base_res.run, cell_res.run
            apps = sorted(base.per_app_apl)
            reds = [res.reduction_vs(base, app=app) for app in apps]
            rows.append(
                {
                    "delta": delta,
                    "red_avg": sum(reds) / len(reds),
                    "apl": res.apl,
                    "drained": res.drained,
                }
            )
            continue
        rows.append({"delta": delta, "red_avg": label, "apl": label, "drained": ""})
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Ablation A1",
        title="DPA hysteresis delta sweep (six-app scenario, reduction vs RO_RR)",
        columns=["delta", "red_avg", "apl", "drained"],
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "paper: delta in 0.1-0.3 best, ~0.2 optimal",
        ],
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.ablation_hysteresis [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    result = run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        **common_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
