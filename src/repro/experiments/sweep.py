"""Seed-replicated sweeps with confidence intervals.

Single-seed comparisons near an operating knee can flip orderings run to
run; the paper's 100K-cycle windows average that noise away, our scaled
windows do not. This module provides the statistical machinery the
shorter windows need:

* :func:`replicate` — run one (scheme, scenario) across seeds, returning
  per-app APL samples,
* :class:`SweepResult` — mean / standard error / Student-t confidence
  intervals per metric,
* :func:`compare_schemes` — replicate several schemes on one scenario and
  report mean reductions vs a baseline with CIs, ready for
  :class:`~repro.experiments.runner.FigureResult` rendering.

Used by tests to quantify the noise floor quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy import stats as sp_stats

from repro.experiments.parallel import Cell, FaultPolicy, run_cells, run_cells_detailed
from repro.experiments.runner import Effort, FigureResult, Scheme, run_scenario
from repro.util.errors import ConfigError

__all__ = ["SweepResult", "replicate", "compare_schemes", "main"]


@dataclass
class SweepResult:
    """Samples of one scalar metric across replications."""

    name: str
    samples: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)
        if self.samples.size == 0:
            raise ConfigError(f"sweep {self.name!r} has no samples")

    @property
    def n(self) -> int:
        return int(self.samples.size)

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std_error(self) -> float:
        if self.n < 2:
            return float("nan")
        return float(self.samples.std(ddof=1) / np.sqrt(self.n))

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Student-t CI of the mean (degenerate to a point for n == 1)."""
        if not 0 < level < 1:
            raise ConfigError(f"confidence level must be in (0,1), got {level}")
        if self.n < 2:
            return (self.mean, self.mean)
        half = self.std_error * sp_stats.t.ppf(0.5 + level / 2, df=self.n - 1)
        return (self.mean - half, self.mean + half)

    def excludes_zero(self, level: float = 0.95) -> bool:
        """Whether the CI excludes zero (a 'significant' reduction)."""
        lo, hi = self.confidence_interval(level)
        return lo > 0 or hi < 0


def _scenario_runs(
    scheme: Scheme,
    scenario,
    seeds: Sequence[int],
    effort: Effort,
    jobs: int,
    cache,
):
    """One run per seed, in seed order — serial or via the cell engine."""
    if jobs == 1 and cache is None:
        return [run_scenario(scheme, scenario, effort=effort, seed=s) for s in seeds]
    cells = [Cell.for_scenario(scheme, scenario, effort, s) for s in seeds]
    runs, _ = run_cells(cells, jobs=jobs, cache=cache)
    return runs


def replicate(
    scheme: Scheme,
    scenario,
    seeds: Sequence[int],
    effort: Effort = Effort.FAST,
    jobs: int = 1,
    cache=None,
) -> dict[int, SweepResult]:
    """Per-app APL samples across ``seeds``; key -1 holds the overall APL.

    ``jobs`` fans the seeds out over worker processes and ``cache`` reuses
    cells already computed on disk; both leave the samples bit-identical
    to the serial path (same seeds, same ordering).
    """
    if not seeds:
        raise ConfigError("need at least one seed")
    per_app: dict[int, list[float]] = {}
    overall: list[float] = []
    for run in _scenario_runs(scheme, scenario, seeds, effort, jobs, cache):
        overall.append(run.apl)
        for app, apl in run.per_app_apl.items():
            per_app.setdefault(app, []).append(apl)
    out = {
        app: SweepResult(f"{scheme.key}/app{app}", vals) for app, vals in per_app.items()
    }
    out[-1] = SweepResult(f"{scheme.key}/overall", overall)
    return out


def compare_schemes(
    scenario,
    schemes: Sequence[Scheme],
    baseline: Scheme,
    seeds: Sequence[int],
    effort: Effort = Effort.FAST,
    level: float = 0.95,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    service=None,
) -> FigureResult:
    """Mean APL reduction vs ``baseline`` per scheme, with CIs across seeds.

    Reductions are paired per seed (same traffic realization for scheme
    and baseline), which removes most workload noise from the comparison.

    All ``(scheme, seed)`` cells run as **one** fault-tolerant sweep, so
    an interrupted comparison resumes from a single journal and a failed
    cell degrades gracefully: the affected seed pairs are dropped from
    that scheme's samples (``n`` shrinks, ``dropped`` counts them) and a
    scheme left with no surviving pair renders as a ``FAILED(...)`` row.
    """
    seeds = list(seeds)
    all_schemes = [baseline, *schemes]
    cells = [
        Cell.for_scenario(scheme, scenario, effort, seed)
        for scheme in all_schemes
        for seed in seeds
    ]
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, service=service
    )
    by_scheme = {
        scheme.key: results[i * len(seeds) : (i + 1) * len(seeds)]
        for i, scheme in enumerate(all_schemes)
    }
    base_results = dict(zip(seeds, by_scheme[baseline.key]))
    rows = []
    for scheme in schemes:
        reductions = []
        dropped = 0
        first_failure = None
        for seed, cell_res in zip(seeds, by_scheme[scheme.key]):
            base_res = base_results[seed]
            failed = next(
                (r for r in (cell_res, base_res) if not r.ok), None
            )
            if failed is not None:
                dropped += 1
                first_failure = first_failure or failed.failure
                continue
            run, base = cell_res.run, base_res.run
            apps = sorted(base.per_app_apl)
            reductions.append(
                sum(run.reduction_vs(base, app=a) for a in apps) / len(apps)
            )
        if not reductions:
            label = f"FAILED({first_failure.error_type})"
            rows.append(
                {
                    "scheme": scheme.key,
                    "red_mean": label,
                    "ci_lo": label,
                    "ci_hi": label,
                    "n": 0,
                    "dropped": dropped,
                    "significant": "",
                }
            )
            continue
        sweep = SweepResult(f"{scheme.key}/reduction", reductions)
        lo, hi = sweep.confidence_interval(level)
        rows.append(
            {
                "scheme": scheme.key,
                "red_mean": sweep.mean,
                "ci_lo": lo,
                "ci_hi": hi,
                "n": sweep.n,
                "dropped": dropped,
                "significant": sweep.excludes_zero(level),
            }
        )
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Sweep",
        title=(
            f"APL reduction vs {baseline.key} on {scenario.name} "
            f"({len(seeds)} seeds, {int(level * 100)}% CI)"
        ),
        columns=[
            "scheme", "red_mean", "ci_lo", "ci_hi", "n", "dropped", "significant",
        ],
        rows=rows,
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.sweep [--seeds 5] [--scenario six_app]

    Replicated scheme comparison with CIs on one registry scenario.
    """
    from repro.experiments.report import (
        effort_argparser,
        finish,
        parse_effort,
        policy_from_args,
        service_from_args,
    )
    from repro.experiments.runner import SCHEMES
    from repro.experiments.scenarios import SCENARIO_BUILDERS

    parser = effort_argparser(main.__doc__)
    parser.add_argument(
        "--seeds", type=int, default=5, help="number of replication seeds"
    )
    parser.add_argument(
        "--scenario", default="six_app",
        help=f"registry scenario builder; known: {sorted(SCENARIO_BUILDERS)}",
    )
    parser.add_argument(
        "--schemes", nargs="*", default=["RO_Rank", "RA_DBAR", "RA_RAIR"],
        help="schemes to compare against the baseline",
    )
    parser.add_argument("--baseline", default="RO_RR")
    args = parser.parse_args(argv)
    try:
        builder = SCENARIO_BUILDERS[args.scenario]
    except KeyError:
        raise SystemExit(
            f"unknown scenario {args.scenario!r}; known: "
            f"{sorted(SCENARIO_BUILDERS)}"
        ) from None
    try:
        scenario = builder()
    except TypeError as exc:
        raise SystemExit(
            f"scenario {args.scenario!r} needs arguments this CLI does not "
            f"take ({exc}); use six_app or parsec_quadrants"
        ) from None
    result = compare_schemes(
        scenario,
        schemes=[SCHEMES[k] for k in args.schemes],
        baseline=SCHEMES[args.baseline],
        seeds=[args.seed + i for i in range(args.seeds)],
        effort=parse_effort(args.effort),
        jobs=args.jobs,
        cache=args.cache,
        policy=policy_from_args(args),
        service=service_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
