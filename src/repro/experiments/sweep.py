"""Seed-replicated sweeps with confidence intervals.

Single-seed comparisons near an operating knee can flip orderings run to
run; the paper's 100K-cycle windows average that noise away, our scaled
windows do not. This module provides the statistical machinery the
shorter windows need:

* :func:`replicate` — run one (scheme, scenario) across seeds, returning
  per-app APL samples,
* :class:`SweepResult` — mean / standard error / Student-t confidence
  intervals per metric,
* :func:`compare_schemes` — replicate several schemes on one scenario and
  report mean reductions vs a baseline with CIs, ready for
  :class:`~repro.experiments.runner.FigureResult` rendering.

Used by tests to quantify the noise floor quoted in EXPERIMENTS.md.
"""

from __future__ import annotations

from collections.abc import Sequence
from dataclasses import dataclass, field

import numpy as np
from scipy import stats as sp_stats

from repro.experiments.parallel import Cell, run_cells
from repro.experiments.runner import Effort, FigureResult, Scheme, run_scenario
from repro.util.errors import ConfigError

__all__ = ["SweepResult", "replicate", "compare_schemes"]


@dataclass
class SweepResult:
    """Samples of one scalar metric across replications."""

    name: str
    samples: np.ndarray
    meta: dict = field(default_factory=dict)

    def __post_init__(self) -> None:
        self.samples = np.asarray(self.samples, dtype=float)
        if self.samples.size == 0:
            raise ConfigError(f"sweep {self.name!r} has no samples")

    @property
    def n(self) -> int:
        return int(self.samples.size)

    @property
    def mean(self) -> float:
        return float(self.samples.mean())

    @property
    def std_error(self) -> float:
        if self.n < 2:
            return float("nan")
        return float(self.samples.std(ddof=1) / np.sqrt(self.n))

    def confidence_interval(self, level: float = 0.95) -> tuple[float, float]:
        """Student-t CI of the mean (degenerate to a point for n == 1)."""
        if not 0 < level < 1:
            raise ConfigError(f"confidence level must be in (0,1), got {level}")
        if self.n < 2:
            return (self.mean, self.mean)
        half = self.std_error * sp_stats.t.ppf(0.5 + level / 2, df=self.n - 1)
        return (self.mean - half, self.mean + half)

    def excludes_zero(self, level: float = 0.95) -> bool:
        """Whether the CI excludes zero (a 'significant' reduction)."""
        lo, hi = self.confidence_interval(level)
        return lo > 0 or hi < 0


def _scenario_runs(
    scheme: Scheme,
    scenario,
    seeds: Sequence[int],
    effort: Effort,
    jobs: int,
    cache,
):
    """One run per seed, in seed order — serial or via the cell engine."""
    if jobs == 1 and cache is None:
        return [run_scenario(scheme, scenario, effort=effort, seed=s) for s in seeds]
    cells = [Cell.for_scenario(scheme, scenario, effort, s) for s in seeds]
    runs, _ = run_cells(cells, jobs=jobs, cache=cache)
    return runs


def replicate(
    scheme: Scheme,
    scenario,
    seeds: Sequence[int],
    effort: Effort = Effort.FAST,
    jobs: int = 1,
    cache=None,
) -> dict[int, SweepResult]:
    """Per-app APL samples across ``seeds``; key -1 holds the overall APL.

    ``jobs`` fans the seeds out over worker processes and ``cache`` reuses
    cells already computed on disk; both leave the samples bit-identical
    to the serial path (same seeds, same ordering).
    """
    if not seeds:
        raise ConfigError("need at least one seed")
    per_app: dict[int, list[float]] = {}
    overall: list[float] = []
    for run in _scenario_runs(scheme, scenario, seeds, effort, jobs, cache):
        overall.append(run.apl)
        for app, apl in run.per_app_apl.items():
            per_app.setdefault(app, []).append(apl)
    out = {
        app: SweepResult(f"{scheme.key}/app{app}", vals) for app, vals in per_app.items()
    }
    out[-1] = SweepResult(f"{scheme.key}/overall", overall)
    return out


def compare_schemes(
    scenario,
    schemes: Sequence[Scheme],
    baseline: Scheme,
    seeds: Sequence[int],
    effort: Effort = Effort.FAST,
    level: float = 0.95,
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    """Mean APL reduction vs ``baseline`` per scheme, with CIs across seeds.

    Reductions are paired per seed (same traffic realization for scheme
    and baseline), which removes most workload noise from the comparison.
    """
    base_runs = dict(
        zip(seeds, _scenario_runs(baseline, scenario, seeds, effort, jobs, cache))
    )
    rows = []
    for scheme in schemes:
        scheme_runs = dict(
            zip(seeds, _scenario_runs(scheme, scenario, seeds, effort, jobs, cache))
        )
        reductions = []
        for seed in seeds:
            run = scheme_runs[seed]
            base = base_runs[seed]
            apps = sorted(base.per_app_apl)
            reductions.append(
                sum(run.reduction_vs(base, app=a) for a in apps) / len(apps)
            )
        sweep = SweepResult(f"{scheme.key}/reduction", reductions)
        lo, hi = sweep.confidence_interval(level)
        rows.append(
            {
                "scheme": scheme.key,
                "red_mean": sweep.mean,
                "ci_lo": lo,
                "ci_hi": hi,
                "n": sweep.n,
                "significant": sweep.excludes_zero(level),
            }
        )
    return FigureResult(
        figure="Sweep",
        title=(
            f"APL reduction vs {baseline.key} on {scenario.name} "
            f"({len(seeds)} seeds, {int(level * 100)}% CI)"
        ),
        columns=["scheme", "red_mean", "ci_lo", "ci_hi", "n", "significant"],
        rows=rows,
    )
