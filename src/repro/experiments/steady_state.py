"""Steady-state detection for warmup sizing.

The paper warms the network for 10K cycles before measuring. When scaling
windows down (Effort levels) the right warmup depends on the operating
point: near saturation, queues take thousands of cycles to converge, while
light loads settle within a few hundred. This module provides a
measurement-driven answer:

* :func:`window_means` — per-window mean latency series from a stats log,
* :func:`converged_after` — first window after which the running mean
  stays inside a relative tolerance band (Welch-style truncation
  heuristic),
* :func:`suggest_warmup` — run a probe simulation and return a warmup
  length for the scenario.

Used by tests and available to experiment authors; the shipped Effort
presets were sized with it.
"""

from __future__ import annotations

import numpy as np

from repro.util.errors import ConfigError

__all__ = ["window_means", "converged_after", "suggest_warmup"]


def window_means(inject_cycles, latencies, window: int) -> tuple[np.ndarray, np.ndarray]:
    """Mean latency per consecutive injection-time window.

    Returns ``(window_start_cycles, means)``; empty windows are skipped.
    """
    if window <= 0:
        raise ConfigError("window must be positive")
    inject = np.asarray(inject_cycles, dtype=np.int64)
    lat = np.asarray(latencies, dtype=float)
    if inject.shape != lat.shape:
        raise ConfigError("inject_cycles and latencies must align")
    if len(inject) == 0:
        return np.empty(0, dtype=np.int64), np.empty(0)
    idx = inject // window
    order = np.argsort(idx, kind="stable")
    idx = idx[order]
    lat = lat[order]
    boundaries = np.flatnonzero(np.diff(idx)) + 1
    groups = np.split(lat, boundaries)
    starts = np.unique(idx) * window
    means = np.asarray([g.mean() for g in groups])
    return starts, means


def converged_after(means: np.ndarray, tolerance: float = 0.10, lookahead: int = 3) -> int | None:
    """Index of the first window whose successors all stay within tolerance.

    A window ``i`` is converged when every one of the next ``lookahead``
    window means is within ``tolerance`` (relative) of the mean over all
    windows from ``i`` on. Returns ``None`` when the series never settles.
    """
    if tolerance <= 0:
        raise ConfigError("tolerance must be positive")
    n = len(means)
    for i in range(n - lookahead):
        tail_mean = means[i:].mean()
        if tail_mean <= 0:
            continue
        window_slice = means[i : i + lookahead + 1]
        if np.all(np.abs(window_slice - tail_mean) <= tolerance * tail_mean):
            return i
    return None


def suggest_warmup(
    scenario,
    scheme=None,
    probe_cycles: int = 6000,
    window: int = 250,
    tolerance: float = 0.10,
    seed: int = 7,
) -> int:
    """Probe a scenario and suggest a warmup length in cycles.

    Runs the scenario once for ``probe_cycles`` under the given scheme
    (default RO_RR), computes per-window latency means, and returns the
    first converged window's start (rounded up to the window size), or
    ``probe_cycles`` when no convergence is detected (caller should treat
    that as "operating point too hot for this probe").
    """
    from repro import build_simulation
    from repro.experiments.runner import SCHEMES

    scheme = scheme or SCHEMES["RO_RR"]
    sim, net = build_simulation(
        scenario.config,
        region_map=scenario.region_map,
        scheme=scheme.policy,
        routing=scheme.routing,
        policy_kwargs=dict(scheme.policy_kwargs),
    )
    for source in scenario.traffic_factory(seed):
        sim.add_traffic(source)
    sim.run(probe_cycles)
    sim.run_until_drained(10 * probe_cycles)
    arrays = net.stats._as_arrays()
    starts, means = window_means(
        arrays["inject"], (arrays["eject"] - arrays["inject"]).astype(float), window
    )
    idx = converged_after(means, tolerance=tolerance)
    if idx is None:
        return probe_cycles
    return int(starts[idx]) + window
