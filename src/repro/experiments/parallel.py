"""Fault-tolerant parallel execution of experiment cells.

A **cell** is the unit of experiment work: one ``(scheme, scenario,
effort, seed)`` simulation, optionally with a config override or policy
overrides. Cells are mutually independent — every stochastic input is
derived from the cell's own seed via ``SeedSequence`` spawning — so a
figure sweep is an embarrassingly parallel map.

Each cell is also its own **fault domain**: :func:`run_cells_detailed`
returns one :class:`CellResult` per cell, holding either the finished
:class:`~repro.experiments.runner.ScenarioRun` or a structured
:class:`CellFailure` (exception type, message, traceback, attempt count,
wall time). One poisoned cell never aborts the sweep; the other cells
complete and the caller decides how to render the hole.

Resilience mechanisms, all governed by a :class:`FaultPolicy`:

* **Retry with backoff** — transient failures (worker death, broken
  process pool, cache I/O errors) are retried up to ``max_attempts``
  times with exponential backoff; the jitter is derived from the cell
  seed (:func:`backoff_delay`), never from a global RNG, so retry timing
  is deterministic per cell. Deterministic errors (``ConfigError``,
  ``SimulationError``, assertion-like bugs) are classified non-retryable
  and fail immediately (:func:`classify_exception`).
* **Deadlines** — ``cycle_budget`` threads a cooperative cycle budget
  into :meth:`~repro.noc.sim.Simulator.run_measurement` (a livelocked
  simulation aborts with ``abort="deadline"`` or a ``DeadlineError``),
  and ``wall_timeout_s`` is enforced by the *parent* for wedged workers:
  in-flight submissions are capped at the worker count so submission
  time ≈ start time, and an expired cell gets its worker processes
  killed and is recorded as a ``CellTimeout`` failure.
* **Broken-pool recovery** — a worker that dies (OOM kill, SIGKILL)
  breaks the whole ``ProcessPoolExecutor`` and the true victim is
  indistinguishable from innocent collateral. Every in-flight cell gets
  a *strike* and is rescheduled on a rebuilt pool; a cell with two
  strikes is quarantined to run **solo**, so a third strike proves it is
  the killer and it becomes a recorded failure instead of taking the
  sweep down with it.
* **Checkpoint/resume** — with a cache directory, completed cells are
  journaled (:class:`~repro.experiments.cache.SweepJournal`); a
  re-invocation of the same sweep restores journaled cells from the
  result cache instead of re-simulating them (``resumed`` counter).

Determinism guarantee: the per-cell results are a function of the cell
alone, never of scheduling, retries, or resume. Workers rebuild the
scenario from its :class:`~repro.experiments.scenarios.ScenarioSpec`,
seed it identically, and results are collected *in submission order* —
so ``jobs=N`` is bit-identical to ``jobs=1`` for every
simulation-determined field, including under injected faults (asserted
by ``tests/integration/test_parallel.py`` and ``test_chaos.py``).

:func:`run_cells` keeps the historical strict interface: it raises on
the first cell failure (the exact exception object on the serial path, a
:class:`~repro.util.errors.CellExecutionError` carrying the worker's
traceback otherwise).
"""

from __future__ import annotations

import collections
import hashlib
import time
import traceback as _tb
from concurrent.futures import FIRST_COMPLETED, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field

from repro.experiments.cache import ResultCache, SweepJournal, cache_key
from repro.experiments.runner import Effort, ScenarioRun, Scheme, run_scenario
from repro.experiments.scenarios import ScenarioSpec
from repro.noc.config import NocConfig
from repro.util.errors import (
    CellExecutionError,
    ConfigError,
    DeadlineError,
    ReproError,
    SimulationError,
    TrafficError,
)

__all__ = [
    "Cell",
    "CellFailure",
    "CellResult",
    "ExecutionReport",
    "FaultPolicy",
    "backoff_delay",
    "cell_obs_name",
    "classify_exception",
    "compute_cell",
    "run_cells",
    "run_cells_detailed",
]

#: strikes (broken-pool / timeout-collateral events) after which a cell is
#: scheduled alone, so the next pool break unambiguously convicts it
_QUARANTINE_STRIKES = 2


@dataclass(frozen=True)
class Cell:
    """One independent experiment unit, picklable and content-hashable."""

    scheme: Scheme
    spec: ScenarioSpec
    effort: Effort
    seed: int
    config: NocConfig | None = None
    policy_overrides: dict | None = None

    @classmethod
    def for_scenario(
        cls,
        scheme: Scheme,
        scenario,
        effort: Effort,
        seed: int,
        config: NocConfig | None = None,
        policy_overrides: dict | None = None,
    ) -> "Cell":
        """Build a cell from a live :class:`Scenario` (needs its spec)."""
        if scenario.spec is None:
            raise ConfigError(
                f"scenario {scenario.name!r} has no rebuild spec; only "
                "registry-built scenarios can be parallelized or cached"
            )
        return cls(
            scheme=scheme,
            spec=scenario.spec,
            effort=effort,
            seed=seed,
            config=config,
            policy_overrides=policy_overrides,
        )

    def describe(self) -> str:
        """Short human-readable identity for logs and failure rows."""
        return f"{self.scheme.key}/{self.spec.builder}[seed={self.seed}]"


@dataclass(frozen=True)
class FaultPolicy:
    """Knobs for the fault-tolerant execution engine.

    ``cycle_budget`` and ``wall_timeout_s`` are *execution* policy: they
    bound how long a cell may run but are not part of its identity, so
    they never enter cache keys (a deadline-aborted run is likewise never
    cached — see :func:`_execute`). ``retry_timeouts`` defaults to False
    because a wall-clock timeout on a deterministic simulation almost
    always recurs.
    """

    max_attempts: int = 3
    backoff_base_s: float = 0.05
    backoff_max_s: float = 2.0
    wall_timeout_s: float | None = None
    cycle_budget: int | None = None
    retry_timeouts: bool = False

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ConfigError(f"max_attempts must be >= 1, got {self.max_attempts}")
        if self.wall_timeout_s is not None and self.wall_timeout_s <= 0:
            raise ConfigError(
                f"wall_timeout_s must be > 0, got {self.wall_timeout_s}"
            )


@dataclass
class CellFailure:
    """Structured record of a cell that exhausted its attempts.

    ``traceback`` is text (the exception was usually raised in another
    process); ``exception`` carries the original object only when the
    failure happened in-process (serial path), so :func:`run_cells` can
    re-raise it exactly.
    """

    error_type: str
    message: str
    traceback: str
    attempts: int
    wall_time_s: float
    retryable: bool
    exception: BaseException | None = field(default=None, compare=False, repr=False)

    def summary(self) -> str:
        """One-line ``Type: first line of message`` form for table cells."""
        first = self.message.splitlines()[0] if self.message else ""
        return f"{self.error_type}: {first}" if first else self.error_type


@dataclass
class CellResult:
    """Outcome of one cell: exactly one of ``run`` / ``failure`` is set."""

    cell: Cell
    index: int
    run: ScenarioRun | None = None
    failure: CellFailure | None = None
    attempts: int = 1
    cache_hit: bool = False
    #: restored from a sweep journal written by an earlier invocation
    resumed: bool = False

    @property
    def ok(self) -> bool:
        return self.run is not None


#: deterministic outcomes of the cell itself — retrying cannot change them
_NON_RETRYABLE = (
    ConfigError,
    SimulationError,
    TrafficError,
    DeadlineError,
    ReproError,
    ValueError,
    TypeError,
    KeyError,
    AttributeError,
    IndexError,
    ZeroDivisionError,
    AssertionError,
)

#: environmental failures worth another attempt
_RETRYABLE = (OSError, MemoryError, BrokenProcessPool)


def classify_exception(exc: BaseException) -> bool:
    """True if ``exc`` is plausibly transient (worth retrying).

    Deterministic errors — config mistakes, simulator invariants,
    programming bugs — are checked first: retrying a pure function on the
    same inputs cannot help. Environmental errors (I/O, memory pressure,
    a broken worker pool) are retryable. Unknown exception types default
    to **non-retryable**, so a novel bug surfaces once instead of three
    times slower.
    """
    if isinstance(exc, _NON_RETRYABLE):
        return False
    return isinstance(exc, _RETRYABLE)


def backoff_delay(policy: FaultPolicy, seed: int, attempt: int) -> float:
    """Exponential backoff with deterministic, cell-derived jitter.

    ``attempt`` is 1-based (the attempt that just failed). The jitter
    factor in [0.5, 1.5) comes from a SHA-256 over ``seed:attempt`` — not
    from a global RNG — so two runs of the same sweep retry on the same
    schedule and simulation RNG streams are untouched.
    """
    base = min(policy.backoff_max_s, policy.backoff_base_s * (2 ** (attempt - 1)))
    h = hashlib.sha256(f"{seed}:{attempt}".encode("utf-8")).digest()
    frac = int.from_bytes(h[:8], "big") / 2**64
    return base * (0.5 + frac)


def cell_obs_name(cell: Cell) -> str:
    """Deterministic per-cell JSONL stem: identity slug + key prefix.

    The cache-key prefix disambiguates cells that share scheme, builder,
    and seed but differ in config or policy overrides (e.g. a hysteresis
    sweep), so a sweep's obs directory gets one file per cell.
    """
    return (
        f"{cell.scheme.key}_{cell.spec.builder}_s{cell.seed}"
        f"_{cache_key(cell)[:10]}"
    )


def compute_cell(
    cell: Cell, cycle_budget: int | None = None, obs=None, guard=None
) -> ScenarioRun:
    """Simulate one cell from scratch (no cache involvement).

    ``obs`` is an optional :class:`repro.obs.ObsConfig`; an unset name is
    filled with :func:`cell_obs_name` so concurrent cells never collide
    on an output file. ``guard`` is an optional
    :class:`repro.noc.guard.GuardConfig`, named the same way (its
    blackbox file rides next to the cell's obs stream).
    """
    if obs is not None and obs.name is None:
        obs = obs.named(cell_obs_name(cell))
    if guard is not None and guard.name is None:
        guard = guard.named(cell_obs_name(cell))
    return run_scenario(
        cell.scheme,
        cell.spec.build(),
        effort=cell.effort,
        seed=cell.seed,
        config=cell.config,
        policy_overrides=cell.policy_overrides,
        cycle_budget=cycle_budget,
        obs=obs,
        guard=guard,
    )


def _execute(
    cell: Cell,
    cache_dir: str | None,
    cycle_budget: int | None = None,
    obs=None,
    guard=None,
) -> tuple[ScenarioRun, bool, int]:
    """Cache-aware cell execution; runs in-process or inside a worker.

    Returns ``(run, cache_hit, cache_errors)``. Cache I/O is defensive:
    a corrupt or unreadable entry is a counted miss and a failed write is
    a counted error — neither ever aborts the cell, let alone the sweep.
    A run aborted by the cooperative cycle budget (``abort="deadline"``)
    is **not** cached: the budget is execution policy, not part of the
    cell key, and a truncated run must not be served to callers running
    under a larger (or no) budget. ``obs`` is likewise execution policy
    (never part of the key): a hit restores whatever summary the original
    run stored — possibly none — and regenerates no JSONL. ``guard``
    follows the same rule: execution policy, never part of the key.
    """
    if cache_dir is None:
        return compute_cell(cell, cycle_budget, obs, guard), False, 0
    cache_errors = 0
    cache = ResultCache(cache_dir)
    key = cache_key(cell)
    try:
        run = cache.get(key)
    except Exception:
        run = None
        cache_errors += 1
    if run is not None:
        if run.metrics is not None:
            run.metrics.cache_hit = True
        return run, True, cache_errors
    run = compute_cell(cell, cycle_budget, obs, guard)
    if run.abort != "deadline":
        try:
            cache.put(key, run)
        except Exception:
            cache_errors += 1
    return run, False, cache_errors


def _worker(
    cell: Cell, cache_dir: str | None, cycle_budget: int | None, obs=None, guard=None
):
    """Pool entry point: tagged-tuple transport instead of raising.

    Exceptions are flattened to ``("err", type, message, traceback,
    retryable)`` — exception objects themselves may not pickle, and the
    parent needs the traceback text for the failure record either way.
    Workers write their obs JSONL directly (the per-cell file names from
    :func:`cell_obs_name` cannot collide); only the summary rides back on
    the pickled run.
    """
    try:
        run, hit, cache_errors = _execute(cell, cache_dir, cycle_budget, obs, guard)
        return ("ok", run, hit, cache_errors)
    except Exception as exc:
        return (
            "err",
            # A guard-classified failure renders as FAILED(Deadlock) etc.
            getattr(exc, "failure_label", type(exc).__name__),
            str(exc),
            _tb.format_exc(),
            classify_exception(exc),
        )


@dataclass
class ExecutionReport:
    """What one :func:`run_cells` / :func:`run_cells_detailed` cost.

    ``cache_hits`` / ``cache_misses`` count *successful* cells only (a
    failed cell produced no result to hit or miss); ``resumed`` counts
    the subset of hits restored via the sweep journal of an earlier,
    interrupted invocation. ``retries`` counts re-executions beyond each
    cell's first attempt; ``timeouts`` counts wall-clock expiries (also
    recorded as failures unless ``retry_timeouts`` salvaged them).
    """

    cells: int
    jobs: int
    cache_hits: int = 0
    cache_misses: int = 0
    wall_time_s: float = 0.0
    #: simulator cycles actually executed (cache hits contribute zero)
    sim_cycles: int = 0
    cached: bool = False
    retries: int = 0
    failures: int = 0
    timeouts: int = 0
    resumed: int = 0
    #: cache read/write errors survived (corrupt entries, failed writes)
    cache_errors: int = 0

    @property
    def cycles_per_sec(self) -> float:
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.sim_cycles / self.wall_time_s

    def to_metrics(self) -> dict:
        """Counters in :attr:`FigureResult.metrics` form."""
        out = {
            "cells": self.cells,
            "jobs": self.jobs,
            "wall_time_s": round(self.wall_time_s, 3),
            "sim_cycles": self.sim_cycles,
            "cycles_per_sec": round(self.cycles_per_sec, 1),
            "failures": self.failures,
        }
        if self.cached:
            out["cache_hits"] = self.cache_hits
            out["cache_misses"] = self.cache_misses
        for key in ("retries", "timeouts", "resumed", "cache_errors"):
            value = getattr(self, key)
            if value:
                out[key] = value
        return out


@dataclass
class _Pending:
    """Scheduler bookkeeping for one not-yet-finished cell."""

    index: int
    cell: Cell
    key: str | None
    #: completed execution attempts that returned an error
    attempts: int = 0
    #: broken-pool / timeout-collateral events (cell may be innocent)
    strikes: int = 0
    #: monotonic time before which the cell must not be resubmitted
    ready_at: float = 0.0
    #: monotonic time of the first submission (for failure wall time)
    started_at: float = 0.0

    @property
    def tries(self) -> int:
        """Total scheduling attempts charged against ``max_attempts``."""
        return self.attempts + self.strikes


class _Sweep:
    """Shared state + recording helpers for one run_cells_detailed call."""

    def __init__(
        self,
        policy: FaultPolicy,
        report: ExecutionReport,
        journal,
        obs=None,
        guard=None,
        on_result=None,
    ):
        self.policy = policy
        self.report = report
        self.journal = journal
        self.obs = obs
        self.guard = guard
        self.on_result = on_result
        self.results: dict[int, CellResult] = {}

    def _store(self, result: CellResult) -> None:
        self.results[result.index] = result
        if self.on_result is not None:
            self.on_result(result)

    def record_ok(self, entry: _Pending, run: ScenarioRun, hit: bool, cerr: int):
        attempts = entry.tries + 1
        if run.metrics is not None:
            run.metrics.attempts = attempts
        self._store(
            CellResult(
                cell=entry.cell,
                index=entry.index,
                run=run,
                attempts=attempts,
                cache_hit=hit,
            )
        )
        self.report.cache_errors += cerr
        if hit:
            self.report.cache_hits += 1
        else:
            self.report.cache_misses += 1
            self.report.sim_cycles += run.end_cycle
        self.journal_record(entry.key)

    def record_failure(
        self,
        entry: _Pending,
        error_type: str,
        message: str,
        traceback_text: str,
        retryable: bool,
        wall_time_s: float,
        exception: BaseException | None = None,
    ):
        self._store(
            CellResult(
                cell=entry.cell,
                index=entry.index,
                failure=CellFailure(
                    error_type=error_type,
                    message=message,
                    traceback=traceback_text,
                    attempts=max(1, entry.tries),
                    wall_time_s=wall_time_s,
                    retryable=retryable,
                    exception=exception,
                ),
                attempts=max(1, entry.tries),
            )
        )
        self.report.failures += 1

    def journal_record(self, key: str | None):
        if self.journal is None or key is None:
            return
        try:
            self.journal.record(key, "ok")
        except OSError:
            self.report.cache_errors += 1


def _run_serial(work: list[_Pending], cache_dir, sweep: _Sweep) -> None:
    policy = sweep.policy
    for entry in work:
        entry.started_at = time.monotonic()
        while True:
            try:
                run, hit, cerr = _execute(
                    entry.cell, cache_dir, policy.cycle_budget, sweep.obs, sweep.guard
                )
            except Exception as exc:
                entry.attempts += 1
                retryable = classify_exception(exc)
                if retryable and entry.tries < policy.max_attempts:
                    sweep.report.retries += 1
                    time.sleep(backoff_delay(policy, entry.cell.seed, entry.tries))
                    continue
                sweep.record_failure(
                    entry,
                    getattr(exc, "failure_label", type(exc).__name__),
                    str(exc),
                    _tb.format_exc(),
                    retryable,
                    time.monotonic() - entry.started_at,
                    exception=exc,
                )
                break
            sweep.record_ok(entry, run, hit, cerr)
            break


def _kill_pool_processes(pool: ProcessPoolExecutor) -> None:
    """SIGKILL every worker of ``pool`` (wedged workers ignore terminate)."""
    for proc in list((pool._processes or {}).values()):
        try:
            proc.kill()
        except Exception:
            pass


def _run_parallel(work: list[_Pending], jobs: int, cache_dir, sweep: _Sweep) -> None:
    """Submit/wait scheduler with timeout kills and broken-pool recovery.

    In-flight submissions are capped at the worker count so a submitted
    future is (approximately) a *started* future — that is what makes the
    parent-side wall-clock deadline meaningful. On any pool break the
    remaining in-flight cells are struck and rescheduled without waiting
    on their doomed futures, and the pool is rebuilt.
    """
    policy = sweep.policy
    report = sweep.report
    max_workers = min(jobs, len(work))
    queue: collections.deque[_Pending] = collections.deque(work)
    inflight: dict = {}  # future -> (_Pending, deadline | None)
    pool = ProcessPoolExecutor(max_workers=max_workers)

    def strike(entry: _Pending, now: float) -> None:
        entry.strikes += 1
        if entry.tries >= policy.max_attempts:
            sweep.record_failure(
                entry,
                "BrokenProcessPool",
                f"worker process died {entry.strikes} time(s) while running "
                f"{entry.cell.describe()}",
                "",
                retryable=True,
                wall_time_s=now - entry.started_at,
            )
            return
        report.retries += 1
        entry.ready_at = now + backoff_delay(policy, entry.cell.seed, entry.tries)
        if entry.strikes >= _QUARANTINE_STRIKES:
            queue.appendleft(entry)  # head position => scheduled solo next
        else:
            queue.append(entry)

    def abandon_inflight(now: float) -> None:
        for entry, _deadline in inflight.values():
            strike(entry, now)
        inflight.clear()

    def rebuild_pool() -> ProcessPoolExecutor:
        pool.shutdown(wait=False, cancel_futures=True)
        return ProcessPoolExecutor(max_workers=max_workers)

    try:
        while queue or inflight:
            now = time.monotonic()
            # -- fill free slots -------------------------------------------------
            while queue and len(inflight) < max_workers:
                head = queue[0]
                solo = head.strikes >= _QUARANTINE_STRIKES
                if solo and inflight:
                    break  # quarantined suspect waits for the pool to drain
                if head.ready_at > now:
                    if inflight:
                        break  # backoff not elapsed; wait on running cells
                    time.sleep(head.ready_at - now)
                    now = time.monotonic()
                entry = queue.popleft()
                if entry.started_at == 0.0:
                    entry.started_at = now
                fut = pool.submit(
                    _worker, entry.cell, cache_dir, policy.cycle_budget,
                    sweep.obs, sweep.guard,
                )
                deadline = (
                    now + policy.wall_timeout_s if policy.wall_timeout_s else None
                )
                inflight[fut] = (entry, deadline)
                if solo:
                    break  # run the suspect alone
            if not inflight:
                continue  # queue head was backoff-delayed; loop sleeps above

            # -- wait for a completion, a deadline, or a backoff expiry ---------
            timeout = None
            for _entry, deadline in inflight.values():
                if deadline is not None:
                    remaining = deadline - now
                    timeout = remaining if timeout is None else min(timeout, remaining)
            if queue and len(inflight) < max_workers and queue[0].ready_at > now:
                remaining = queue[0].ready_at - now
                timeout = remaining if timeout is None else min(timeout, remaining)
            if timeout is not None:
                timeout = max(timeout, 0.01)
            done, _ = wait(list(inflight), timeout=timeout, return_when=FIRST_COMPLETED)
            now = time.monotonic()

            if not done:
                expired = [
                    fut
                    for fut, (_e, deadline) in inflight.items()
                    if deadline is not None and now >= deadline
                ]
                if not expired:
                    continue  # woke up to submit a backoff-delayed cell
                for fut in expired:
                    entry, _deadline = inflight.pop(fut)
                    entry.attempts += 1
                    report.timeouts += 1
                    if policy.retry_timeouts and entry.tries < policy.max_attempts:
                        report.retries += 1
                        entry.ready_at = now + backoff_delay(
                            policy, entry.cell.seed, entry.tries
                        )
                        queue.append(entry)
                    else:
                        sweep.record_failure(
                            entry,
                            "CellTimeout",
                            f"wall-clock timeout after {policy.wall_timeout_s}s "
                            f"running {entry.cell.describe()}",
                            "",
                            retryable=bool(policy.retry_timeouts),
                            wall_time_s=now - entry.started_at,
                        )
                # The wedged worker cannot be told apart from its siblings
                # portably, so kill them all; innocent in-flight cells are
                # struck (bounded) and retried on a fresh pool.
                _kill_pool_processes(pool)
                abandon_inflight(now)
                pool = rebuild_pool()
                continue

            broken = False
            for fut in done:
                entry, _deadline = inflight.pop(fut)
                try:
                    tag = fut.result()
                except BrokenProcessPool:
                    broken = True
                    strike(entry, now)
                    continue
                except Exception as exc:  # submit-side failure (unpicklable?)
                    sweep.record_failure(
                        entry,
                        type(exc).__name__,
                        str(exc),
                        _tb.format_exc(),
                        retryable=False,
                        wall_time_s=now - entry.started_at,
                        exception=exc,
                    )
                    continue
                if tag[0] == "ok":
                    _, run, hit, cerr = tag
                    sweep.record_ok(entry, run, hit, cerr)
                else:
                    _, etype, msg, tb_text, retryable = tag
                    entry.attempts += 1
                    if retryable and entry.tries < policy.max_attempts:
                        report.retries += 1
                        entry.ready_at = now + backoff_delay(
                            policy, entry.cell.seed, entry.tries
                        )
                        queue.append(entry)
                    else:
                        sweep.record_failure(
                            entry,
                            etype,
                            msg,
                            tb_text,
                            retryable,
                            now - entry.started_at,
                        )
            if broken:
                # Every surviving in-flight future is doomed with the pool;
                # strike/reschedule them now rather than wait on it.
                abandon_inflight(now)
                pool = rebuild_pool()
    finally:
        pool.shutdown(wait=False, cancel_futures=True)


def run_cells_detailed(
    cells,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    use_journal: bool = True,
    obs=None,
    guard=None,
    service=None,
    on_result=None,
) -> tuple[list[CellResult], ExecutionReport]:
    """Execute ``cells`` fault-tolerantly; one :class:`CellResult` each.

    Results come back in input order. ``jobs=1`` runs serially in this
    process (wall-clock timeouts are not enforceable there — use
    ``policy.cycle_budget`` to bound runaway cells); ``jobs>1`` fans out
    over a process pool with the full recovery machinery. ``cache`` is a
    directory path or :class:`ResultCache`; when given, finished cells
    are persisted, completed cell keys are journaled per sweep, and a
    repeated invocation resumes: journaled cells are restored from the
    cache up front (``report.resumed``) instead of re-simulated.
    ``use_journal=False`` disables the journal (single-cell convenience
    calls skip it automatically). ``obs`` is an optional
    :class:`repro.obs.ObsConfig` applied to every simulated cell (cells
    restored from cache or journal keep whatever summary was stored with
    them); it is execution policy and never affects cache keys. ``guard``
    is an optional :class:`repro.noc.guard.GuardConfig` applied the same
    way — a guard-tripped cell surfaces as a failure whose ``error_type``
    is the guard's classified label (``Deadlock``, ``Livelock``, ...), so
    figure tables print ``FAILED(Deadlock)`` instead of a generic
    simulator error.

    ``service`` routes the whole sweep through a running sweep-service
    daemon (:mod:`repro.service`) instead of executing locally: a URL
    string or :class:`repro.service.client.ServiceSpec` (which adds a
    priority class). The daemon executes this very function with the
    same cells, policy, cache, obs, and guard, so results — including
    cache keys and obs JSONL bytes — are identical to direct execution.
    ``on_result`` is an optional callable invoked with each
    :class:`CellResult` as it is recorded (completion order, resumed
    cells first); it must not raise.
    """
    cells = list(cells)
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if service is not None:
        from repro.service.client import run_cells_via_service

        return run_cells_via_service(
            service,
            cells,
            jobs=jobs,
            cache=cache,
            policy=policy,
            use_journal=use_journal,
            obs=obs,
            guard=guard,
            on_result=on_result,
        )
    policy = policy or FaultPolicy()
    if isinstance(cache, ResultCache):
        cache_dir = str(cache.root)
    elif cache is not None:
        cache_dir = str(cache)
    else:
        cache_dir = None

    report = ExecutionReport(
        cells=len(cells), jobs=jobs, cached=cache_dir is not None
    )
    journal = None
    work: list[_Pending] = []
    resumed: list[CellResult] = []
    start = time.perf_counter()

    if cache_dir is None:
        work = [_Pending(index=i, cell=c, key=None) for i, c in enumerate(cells)]
    else:
        keys = [cache_key(c) for c in cells]
        completed: set[str] = set()
        if use_journal and len(cells) > 1:
            journal = SweepJournal(cache_dir, SweepJournal.key_for(keys))
            try:
                completed = journal.load()
            except OSError:
                completed = set()
        store = ResultCache(cache_dir)
        for i, (cell, key) in enumerate(zip(cells, keys)):
            if key in completed:
                try:
                    run = store.get(key)
                except Exception:
                    run = None
                    report.cache_errors += 1
                if run is not None:
                    if run.metrics is not None:
                        run.metrics.cache_hit = True
                    report.cache_hits += 1
                    report.resumed += 1
                    resumed.append(
                        CellResult(
                            cell=cell, index=i, run=run, cache_hit=True, resumed=True
                        )
                    )
                    continue
                # journaled but not restorable (evicted / deadline-aborted
                # runs are never cached) — fall through and re-run
            work.append(_Pending(index=i, cell=cell, key=key))

    sweep = _Sweep(policy, report, journal, obs=obs, guard=guard, on_result=on_result)
    for res in resumed:
        sweep._store(res)

    if work:
        if jobs == 1 or len(work) == 1:
            _run_serial(work, cache_dir, sweep)
        else:
            _run_parallel(work, jobs, cache_dir, sweep)

    report.wall_time_s = time.perf_counter() - start
    ordered = [sweep.results[i] for i in range(len(cells))]
    return ordered, report


def run_cells(
    cells,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
) -> tuple[list[ScenarioRun], ExecutionReport]:
    """Strict variant: execute ``cells`` and raise on any cell failure.

    This is the historical interface — callers that cannot render a
    partial result (unit tests, the single-cell path of
    :func:`~repro.experiments.runner.run_scenario`) get the original
    exception back: the exact object when the cell ran in-process, a
    :class:`~repro.util.errors.CellExecutionError` carrying the worker's
    traceback text otherwise. Figure CLIs should prefer
    :func:`run_cells_detailed` and degrade gracefully.
    """
    cells = list(cells)
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs, guard=guard
    )
    for res in results:
        if res.failure is not None:
            f = res.failure
            if f.exception is not None:
                raise f.exception
            raise CellExecutionError(
                f"cell {res.index} ({res.cell.describe()}) failed after "
                f"{f.attempts} attempt(s): {f.summary()}\n{f.traceback}"
            )
    return [res.run for res in results], report
