"""Parallel execution of experiment cells with optional result caching.

A **cell** is the unit of experiment work: one ``(scheme, scenario,
effort, seed)`` simulation, optionally with a config override or policy
overrides. Cells are mutually independent — every stochastic input is
derived from the cell's own seed via ``SeedSequence`` spawning — so a
figure sweep is an embarrassingly parallel map. :func:`run_cells` runs
that map either serially in-process (``jobs=1``, the default: the exact
code path of a plain :func:`~repro.experiments.runner.run_scenario` loop)
or over a :class:`~concurrent.futures.ProcessPoolExecutor`.

Determinism guarantee: the per-cell results are a function of the cell
alone, never of scheduling. Workers rebuild the scenario from its
:class:`~repro.experiments.scenarios.ScenarioSpec`, seed it identically,
and results are collected *in submission order* — so ``jobs=N`` is
bit-identical to ``jobs=1`` for every simulation-determined field
(asserted by ``tests/integration/test_parallel.py``).

With ``cache=<dir>`` each cell is first looked up in the content-addressed
on-disk cache (:mod:`repro.experiments.cache`); hits skip the simulation
entirely. The returned :class:`ExecutionReport` aggregates wall time,
hit/miss counts, and the simulator cycles actually executed (0 on a fully
warm cache).
"""

from __future__ import annotations

import itertools
import time
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field

from repro.experiments.cache import ResultCache, cache_key
from repro.experiments.runner import Effort, ScenarioRun, Scheme, run_scenario
from repro.experiments.scenarios import ScenarioSpec
from repro.noc.config import NocConfig
from repro.util.errors import ConfigError

__all__ = ["Cell", "ExecutionReport", "run_cells", "compute_cell"]


@dataclass(frozen=True)
class Cell:
    """One independent experiment unit, picklable and content-hashable."""

    scheme: Scheme
    spec: ScenarioSpec
    effort: Effort
    seed: int
    config: NocConfig | None = None
    policy_overrides: dict | None = None

    @classmethod
    def for_scenario(
        cls,
        scheme: Scheme,
        scenario,
        effort: Effort,
        seed: int,
        config: NocConfig | None = None,
        policy_overrides: dict | None = None,
    ) -> "Cell":
        """Build a cell from a live :class:`Scenario` (needs its spec)."""
        if scenario.spec is None:
            raise ConfigError(
                f"scenario {scenario.name!r} has no rebuild spec; only "
                "registry-built scenarios can be parallelized or cached"
            )
        return cls(
            scheme=scheme,
            spec=scenario.spec,
            effort=effort,
            seed=seed,
            config=config,
            policy_overrides=policy_overrides,
        )


def compute_cell(cell: Cell) -> ScenarioRun:
    """Simulate one cell from scratch (no cache involvement)."""
    return run_scenario(
        cell.scheme,
        cell.spec.build(),
        effort=cell.effort,
        seed=cell.seed,
        config=cell.config,
        policy_overrides=cell.policy_overrides,
    )


def _execute(cell: Cell, cache_dir: str | None) -> tuple[ScenarioRun, bool]:
    """Cache-aware cell execution; runs in-process or inside a worker."""
    if cache_dir is None:
        return compute_cell(cell), False
    cache = ResultCache(cache_dir)
    key = cache_key(cell)
    run = cache.get(key)
    if run is not None:
        if run.metrics is not None:
            run.metrics.cache_hit = True
        return run, True
    run = compute_cell(cell)
    cache.put(key, run)
    return run, False


@dataclass
class ExecutionReport:
    """What one :func:`run_cells` invocation cost."""

    cells: int
    jobs: int
    cache_hits: int
    cache_misses: int
    wall_time_s: float
    #: simulator cycles actually executed (cache hits contribute zero)
    sim_cycles: int
    cached: bool = field(default=False)

    @property
    def cycles_per_sec(self) -> float:
        if self.wall_time_s <= 0.0:
            return 0.0
        return self.sim_cycles / self.wall_time_s

    def to_metrics(self) -> dict:
        """Counters in :attr:`FigureResult.metrics` form."""
        out = {
            "cells": self.cells,
            "jobs": self.jobs,
            "wall_time_s": round(self.wall_time_s, 3),
            "sim_cycles": self.sim_cycles,
            "cycles_per_sec": round(self.cycles_per_sec, 1),
        }
        if self.cached:
            out["cache_hits"] = self.cache_hits
            out["cache_misses"] = self.cache_misses
        return out


def run_cells(
    cells,
    jobs: int = 1,
    cache=None,
) -> tuple[list[ScenarioRun], ExecutionReport]:
    """Execute ``cells``, returning results in input order plus a report.

    ``jobs=1`` runs serially in this process; ``jobs>1`` fans out over a
    process pool (each worker is single-threaded and deterministic).
    ``cache`` is a directory path or :class:`ResultCache`; when given,
    cells already present on disk are restored instead of simulated and
    freshly computed cells are persisted for future runs.
    """
    cells = list(cells)
    if jobs < 1:
        raise ConfigError(f"jobs must be >= 1, got {jobs}")
    if isinstance(cache, ResultCache):
        cache_dir = str(cache.root)
    elif cache is not None:
        cache_dir = str(cache)
    else:
        cache_dir = None

    start = time.perf_counter()
    if jobs == 1 or len(cells) <= 1:
        pairs = [_execute(cell, cache_dir) for cell in cells]
    else:
        with ProcessPoolExecutor(max_workers=min(jobs, len(cells))) as pool:
            pairs = list(pool.map(_execute, cells, itertools.repeat(cache_dir)))
    wall = time.perf_counter() - start

    runs = [run for run, _ in pairs]
    hits = sum(1 for _, hit in pairs if hit)
    report = ExecutionReport(
        cells=len(cells),
        jobs=jobs,
        cache_hits=hits,
        cache_misses=len(cells) - hits,
        wall_time_s=wall,
        sim_cycles=sum(run.end_cycle for run, hit in pairs if not hit),
        cached=cache_dir is not None,
    )
    return runs, report
