"""E-F12 — Figure 12: impact of dynamic priority adaptation.

Two contrasting four-application scenarios (Fig. 11):

* (a) three low-load apps send 30% of their traffic into the high-load
  app's region — static *foreign-high* priority should win;
* (b) the high-load app sends 30% of its traffic into the low-load apps'
  regions — static *native-high* priority should win.

Compared schemes: RO_RR, RAIR_NativeH, RAIR_ForeignH, RAIR_DPA. The paper
reports APL *reduction vs RO_RR* per application; DPA should match (or
slightly beat) the better static variant in each scenario (paper:
−12.8% / −12.2% average).
"""

from __future__ import annotations

from repro.experiments.parallel import Cell, FaultPolicy, run_cells_detailed
from repro.experiments.report import (
    common_from_args,
    config_for_topology,
    effort_argparser,
    failed_label,
    finish,
    parse_effort,
)
from repro.experiments.runner import SCHEMES, Effort, FigureResult
from repro.experiments.scenarios import four_app_dpa

__all__ = ["run", "main", "FIG12_SCHEMES"]

FIG12_SCHEMES = ("RAIR_NativeH", "RAIR_ForeignH", "RAIR_DPA")


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    variants=("a", "b"),
    schemes=FIG12_SCHEMES,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
    topology: str = "mesh",
    service=None,
) -> FigureResult:
    """Run both Fig. 12 scenarios; rows carry per-app reduction vs RO_RR.

    A failed cell renders as ``FAILED(...)``; a failed *baseline* marks
    every dependent reduction row ``FAILED(baseline ...)``.
    ``topology`` selects the fabric (mesh/torus/ring).
    """
    config = config_for_topology(topology)
    cells = [
        Cell.for_scenario(
            SCHEMES[key], four_app_dpa(variant, config=config), effort, seed
        )
        for variant in variants
        for key in ("RO_RR",) + tuple(schemes)
    ]
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs,
        guard=guard, service=service,
    )
    it = iter(results)
    rows = []
    red_cols = [f"red_app{i}" for i in range(4)]
    for variant in variants:
        base_res = next(it)
        for key in schemes:
            cell_res = next(it)
            if not cell_res.ok:
                label = failed_label(cell_res)
            elif not base_res.ok:
                label = f"FAILED(baseline {base_res.failure.error_type})"
            else:
                base, res = base_res.run, cell_res.run
                apps = sorted(base.per_app_apl)
                reductions = {
                    f"red_app{app}": res.reduction_vs(base, app=app) for app in apps
                }
                avg = sum(reductions.values()) / len(reductions)
                rows.append(
                    {
                        "scenario": variant,
                        "scheme": key,
                        **reductions,
                        "red_avg": avg,
                        "drained": res.drained,
                    }
                )
                continue
            rows.append(
                {
                    "scenario": variant,
                    "scheme": key,
                    **{c: label for c in red_cols},
                    "red_avg": label,
                    "drained": "",
                }
            )
    columns = ["scenario", "scheme"] + [f"red_app{i}" for i in range(4)] + [
        "red_avg",
        "drained",
    ]
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Figure 12",
        title="APL reduction vs RO_RR (positive = better) per app",
        columns=columns,
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "expected shape: ForeignH wins (a), NativeH wins (b), DPA ~ best "
            "of both in each scenario",
        ],
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.fig12_dpa [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    result = run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        **common_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
