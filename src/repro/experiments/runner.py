"""Common experiment machinery: schemes, efforts, scenario runs, results.

A **scheme** pairs an arbitration policy with a routing algorithm under the
paper's name for the combination (RO_RR, RO_Rank, RA_DBAR, RA_RAIR, and
the ablation variants of Figs. 9/10/12). A **scenario** (from
:mod:`repro.experiments.scenarios`) supplies the region map and a traffic
factory. :func:`run_scenario` wires one of each together, runs the
warmup/measure/drain protocol, and returns per-application APLs.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field

from repro import build_simulation
from repro.core.dpa import DpaConfig
from repro.core.msp import Stage
from repro.noc.config import NocConfig
from repro.noc.stats import RunMetrics

__all__ = [
    "Effort",
    "Scheme",
    "SCHEMES",
    "ScenarioRun",
    "run_scenario",
    "FigureResult",
]


class Effort(enum.Enum):
    """Warmup/measure window sizes.

    ``FULL`` is the paper's protocol (10K warmup + 100K measure); ``FAST``
    and ``MEDIUM`` scale it down for CI/benchmark runs. The shape of every
    reproduced comparison is stable across efforts (EXPERIMENTS.md records
    which effort produced the reported numbers).
    """

    SMOKE = (200, 800)
    FAST = (500, 2000)
    MEDIUM = (1000, 5000)
    FULL = (10_000, 100_000)

    @property
    def warmup(self) -> int:
        return self.value[0]

    @property
    def measure(self) -> int:
        return self.value[1]


@dataclass(frozen=True)
class Scheme:
    """A named (arbitration policy, routing algorithm) combination."""

    key: str
    policy: str
    routing: str
    policy_kwargs: dict = field(default_factory=dict, compare=False)

    def describe(self) -> str:
        return f"{self.key} (policy={self.policy}, routing={self.routing})"


def _rair_kwargs(**kw) -> dict:
    return kw


#: The paper's evaluated schemes, by its own names.
SCHEMES: dict[str, Scheme] = {
    # baselines
    "RO_RR": Scheme("RO_RR", "rr", "local"),
    "RO_Rank": Scheme("RO_Rank", "stc", "local"),
    "RA_DBAR": Scheme("RA_DBAR", "rr", "dbar"),
    "Age": Scheme("Age", "age", "local"),
    # full RAIR
    "RA_RAIR": Scheme("RA_RAIR", "rair", "local"),
    # Fig. 9 MSP ablation
    "RAIR_VA": Scheme(
        "RAIR_VA", "rair", "local", _rair_kwargs(stages=Stage.VA)
    ),
    "RAIR_VA+SA": Scheme("RAIR_VA+SA", "rair", "local"),
    # Fig. 10 routing study
    "RO_RR_Local": Scheme("RO_RR_Local", "rr", "local"),
    "RAIR_Local": Scheme("RAIR_Local", "rair", "local"),
    "RO_RR_DBAR": Scheme("RO_RR_DBAR", "rr", "dbar"),
    "RAIR_DBAR": Scheme("RAIR_DBAR", "rair", "dbar"),
    # Fig. 12 DPA ablation
    "RAIR_NativeH": Scheme(
        "RAIR_NativeH", "rair", "local", _rair_kwargs(dpa=DpaConfig(mode="native"))
    ),
    "RAIR_ForeignH": Scheme(
        "RAIR_ForeignH", "rair", "local", _rair_kwargs(dpa=DpaConfig(mode="foreign"))
    ),
    "RAIR_DPA": Scheme("RAIR_DPA", "rair", "local"),
}


@dataclass
class ScenarioRun:
    """Result of one (scheme, scenario) simulation."""

    scheme: str
    scenario: str
    window: tuple[int, int]
    drained: bool
    undrained_packets: int
    apl: float
    per_app_apl: dict[int, float]
    end_cycle: int
    packets_measured: int
    #: None (clean) | "watchdog" | "drain_limit" | a guard reason token
    #: such as "deadlock" (see MeasurementResult)
    abort: str | None = None
    #: wall-clock counters; excluded from comparisons — two runs of the
    #: same cell are *simulation*-identical, never timing-identical
    metrics: RunMetrics | None = field(default=None, compare=False)
    #: observability digest (:class:`repro.obs.ObsSummary`) when a
    #: collector was requested; excluded from comparisons because its
    #: ``jsonl_path`` reflects this invocation, and from
    #: :meth:`determinism_signature` because cache hits may legitimately
    #: restore a run recorded without observability
    obs: object | None = field(default=None, compare=False)

    def reduction_vs(self, baseline: "ScenarioRun", app: int | None = None) -> float:
        """Fractional APL reduction relative to ``baseline`` (positive = better)."""
        mine = self.apl if app is None else self.per_app_apl[app]
        theirs = baseline.apl if app is None else baseline.per_app_apl[app]
        return 1.0 - mine / theirs

    def determinism_signature(self) -> tuple:
        """Every simulation-determined field, for bit-identity assertions.

        Excludes wall-clock metrics; equal signatures mean the simulator
        produced exactly the same run, whether serially, in a worker
        process, or restored from the result cache.
        """
        return (
            self.scheme,
            self.scenario,
            self.window,
            self.drained,
            self.undrained_packets,
            self.apl,
            tuple(sorted(self.per_app_apl.items())),
            self.end_cycle,
            self.packets_measured,
            self.abort,
        )


def run_scenario(
    scheme: Scheme,
    scenario,
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    config: NocConfig | None = None,
    policy_overrides: dict | None = None,
    cache=None,
    cycle_budget: int | None = None,
    obs=None,
    guard=None,
) -> ScenarioRun:
    """Simulate ``scenario`` under ``scheme`` and summarize.

    ``scenario`` is a :class:`~repro.experiments.scenarios.Scenario`;
    ``config`` overrides its network config (used by the VC-split
    ablation); ``policy_overrides`` merge into the scheme's policy kwargs
    (used by the hysteresis ablation). ``cache`` is a result-cache
    directory (or :class:`~repro.experiments.cache.ResultCache`): when
    given and the scenario carries a rebuild spec, an already-computed
    identical cell is restored from disk instead of simulated.
    ``cycle_budget`` caps the total simulated cycles (see
    :meth:`~repro.noc.sim.Simulator.run_measurement`); it is an execution
    policy, not part of the cell identity, so it never enters cache keys.
    ``obs`` is an optional :class:`repro.obs.ObsConfig` — also execution
    policy — that installs a metrics collector on the run; the resulting
    :class:`repro.obs.ObsSummary` lands on :attr:`ScenarioRun.obs`. Note
    a cache hit restores the summary stored with the original run (and
    does not regenerate its JSONL stream). ``guard`` is an optional
    :class:`repro.noc.guard.GuardConfig` — execution policy as well,
    since a guarded run is bit-identical to an unguarded one — that
    installs a :class:`~repro.noc.guard.RuntimeGuard` on the run; when
    ``None``, the ``REPRO_GUARD`` environment (see
    :meth:`~repro.noc.guard.GuardConfig.from_env`) decides, so workers
    and CI lanes can arm whole sweeps externally.
    """
    if guard is None:
        from repro.noc.guard import GuardConfig

        guard = GuardConfig.from_env()
    if cache is not None and getattr(scenario, "spec", None) is not None:
        # Late import: parallel imports this module.
        from repro.experiments.parallel import Cell, FaultPolicy, run_cells

        cell = Cell(
            scheme=scheme,
            spec=scenario.spec,
            effort=effort,
            seed=seed,
            config=config,
            policy_overrides=policy_overrides,
        )
        runs, _ = run_cells(
            [cell], jobs=1, cache=cache,
            policy=FaultPolicy(cycle_budget=cycle_budget),
            obs=obs, guard=guard,
        )
        return runs[0]
    cfg = config or scenario.config
    kwargs = dict(scheme.policy_kwargs)
    if policy_overrides:
        kwargs.update(policy_overrides)
    sim, net = build_simulation(
        cfg,
        region_map=scenario.region_map,
        scheme=scheme.policy,
        routing=scheme.routing,
        policy_kwargs=kwargs,
    )
    if obs is not None:
        from repro.obs.collector import MetricsCollector

        MetricsCollector(
            obs.named(f"{scheme.key}_{scenario.name}_s{seed}")
        ).install(sim)
    if guard is not None and guard.mode != "off":
        from repro.noc.guard import RuntimeGuard

        # After the collector: the guard tees its ring *behind* an
        # existing tracer, so the obs stream stays byte-identical.
        RuntimeGuard(
            guard.named(f"{scheme.key}_{scenario.name}_s{seed}")
        ).install(sim)
    for source in scenario.traffic_factory(seed):
        sim.add_traffic(source)
    res = sim.run_measurement(
        warmup=effort.warmup, measure=effort.measure, cycle_budget=cycle_budget
    )
    stats = net.stats
    return ScenarioRun(
        scheme=scheme.key,
        scenario=scenario.name,
        window=res.window,
        drained=res.drained,
        undrained_packets=res.undrained_packets,
        apl=stats.apl(window=res.window),
        per_app_apl=stats.per_app_apl(window=res.window),
        end_cycle=res.end_cycle,
        packets_measured=stats.packet_count(window=res.window),
        abort=res.abort,
        metrics=res.metrics,
        obs=res.obs,
    )


@dataclass
class FigureResult:
    """A reproduced table/figure: labelled rows ready for printing."""

    figure: str
    title: str
    columns: list[str]
    rows: list[dict]
    notes: list[str] = field(default_factory=list)
    #: execution counters (wall time, cells, cache hits/misses, sim
    #: cycles/sec) attached by the parallel/cache layer
    metrics: dict = field(default_factory=dict)

    def format_table(self) -> str:
        """Fixed-width text table (what the benchmark harness prints)."""
        widths = {c: len(c) for c in self.columns}
        rendered: list[list[str]] = []
        for row in self.rows:
            cells = []
            for c in self.columns:
                v = row.get(c, "")
                text = f"{v:.3f}" if isinstance(v, float) else str(v)
                widths[c] = max(widths[c], len(text))
                cells.append(text)
            rendered.append(cells)
        header = "  ".join(c.ljust(widths[c]) for c in self.columns)
        sep = "-" * len(header)
        lines = [f"{self.figure}: {self.title}", sep, header, sep]
        for cells in rendered:
            lines.append(
                "  ".join(cell.ljust(widths[c]) for cell, c in zip(cells, self.columns))
            )
        lines.append(sep)
        for note in self.notes:
            lines.append(f"note: {note}")
        if self.metrics:
            pairs = ", ".join(
                f"{k}={v:.3f}" if isinstance(v, float) else f"{k}={v}"
                for k, v in sorted(self.metrics.items())
            )
            lines.append(f"metrics: {pairs}")
        return "\n".join(lines)

    def to_json_dict(self) -> dict:
        """JSON-serializable form (rows, notes, and execution metrics)."""
        return {
            "figure": self.figure,
            "title": self.title,
            "columns": list(self.columns),
            "rows": [dict(row) for row in self.rows],
            "notes": list(self.notes),
            "metrics": dict(self.metrics),
        }

    def row_by(self, **match) -> dict:
        """First row whose fields equal ``match`` (KeyError if none)."""
        for row in self.rows:
            if all(row.get(k) == v for k, v in match.items()):
                return row
        raise KeyError(f"no row matching {match!r}")
