"""Content-addressed on-disk cache for experiment cells.

Every experiment cell — one ``(scheme, scenario, effort, seed)``
simulation — is deterministic, so its :class:`~repro.experiments.runner.
ScenarioRun` can be cached on disk and reused across figures, ablations,
sweep replications, and repeated ``run_all`` invocations. The cache is
*content-addressed*: the key is a SHA-256 over a canonical JSON encoding
of everything that determines the result (``NocConfig``, ``DpaConfig``
and any other policy kwargs, the scheme, the scenario's rebuild spec, the
effort window, and the seed). Canonicalization makes the key

* stable across process restarts (no reliance on ``hash()``/``id()``),
* stable across dict insertion order (entries are sorted), and
* distinct for any changed config field (every dataclass field is keyed
  by name and included).

Entries are JSON files named by their key, written atomically
(temp file + ``os.replace``) so concurrent workers computing the same
cell race benignly. Each entry embeds a checksum of its payload; a
corrupted or truncated entry fails verification and reads as a miss, so
the cell is recomputed rather than a bad result returned.
"""

from __future__ import annotations

import dataclasses
import enum
import hashlib
import json
import os
import pathlib
import tempfile

from repro.experiments.runner import ScenarioRun
from repro.noc.stats import RunMetrics

__all__ = [
    "CACHE_VERSION",
    "canonicalize",
    "cache_key",
    "run_to_payload",
    "run_from_payload",
    "ResultCache",
    "SweepJournal",
]

#: Bump to invalidate every existing cache entry (key derivation or
#: payload schema change).
CACHE_VERSION = 1


def canonicalize(obj):
    """Reduce ``obj`` to a deterministic JSON-serializable structure.

    Handles the types that appear in cell descriptions: scalars, lists and
    tuples, dicts (sorted by canonicalized key, so insertion order never
    matters), enums (by class, member name, and value) and dataclasses
    (by class and per-field values, sorted by field name — *every* field
    participates, including ones excluded from ``__eq__``).
    """
    if obj is None or isinstance(obj, (bool, int, float, str)):
        return obj
    if isinstance(obj, enum.Enum):
        return ["enum", type(obj).__name__, obj.name, canonicalize(obj.value)]
    if dataclasses.is_dataclass(obj) and not isinstance(obj, type):
        fields = sorted(f.name for f in dataclasses.fields(obj))
        return [
            "dataclass",
            type(obj).__name__,
            [[name, canonicalize(getattr(obj, name))] for name in fields],
        ]
    if isinstance(obj, dict):
        items = [[canonicalize(k), canonicalize(v)] for k, v in obj.items()]
        items.sort(key=lambda kv: json.dumps(kv[0], sort_keys=True))
        return ["dict", items]
    if isinstance(obj, (list, tuple)):
        return ["seq", [canonicalize(x) for x in obj]]
    raise TypeError(
        f"cannot canonicalize {type(obj).__name__!r} for cache keying: {obj!r}"
    )


def _digest(struct) -> str:
    blob = json.dumps(struct, sort_keys=True, separators=(",", ":"))
    return hashlib.sha256(blob.encode("utf-8")).hexdigest()


def cache_key(cell) -> str:
    """Stable content hash of one :class:`~repro.experiments.parallel.Cell`."""
    return _digest(["cell", CACHE_VERSION, canonicalize(cell)])


# -- ScenarioRun <-> JSON payload ------------------------------------------------


def _run_to_payload(run: ScenarioRun) -> dict:
    return {
        "scheme": run.scheme,
        "scenario": run.scenario,
        "window": list(run.window),
        "drained": run.drained,
        "undrained_packets": run.undrained_packets,
        "apl": run.apl,
        "per_app_apl": {str(k): v for k, v in run.per_app_apl.items()},
        "end_cycle": run.end_cycle,
        "packets_measured": run.packets_measured,
        "abort": run.abort,
        "metrics": run.metrics.to_dict() if run.metrics is not None else None,
        # Optional key (absent when the run had no collector); read back
        # with .get so payloads written before the obs subsystem — and
        # obs-free payloads — restore unchanged without a version bump.
        "obs": run.obs.to_dict() if run.obs is not None else None,
    }


def _run_from_payload(payload: dict) -> ScenarioRun:
    metrics = payload["metrics"]
    obs = payload.get("obs")
    if obs is not None:
        from repro.obs.collector import ObsSummary

        obs = ObsSummary.from_dict(obs)
    return ScenarioRun(
        scheme=payload["scheme"],
        scenario=payload["scenario"],
        window=tuple(payload["window"]),
        drained=payload["drained"],
        undrained_packets=payload["undrained_packets"],
        apl=payload["apl"],
        per_app_apl={int(k): v for k, v in payload["per_app_apl"].items()},
        end_cycle=payload["end_cycle"],
        packets_measured=payload["packets_measured"],
        abort=payload["abort"],
        metrics=RunMetrics.from_dict(metrics) if metrics is not None else None,
        obs=obs,
    )


#: public names for the ScenarioRun <-> JSON codec; the sweep service's
#: wire protocol and job store reuse the cache payload format verbatim,
#: so a streamed result and a cached result are the same bytes modulo
#: the HTTP envelope
run_to_payload = _run_to_payload
run_from_payload = _run_from_payload


class ResultCache:
    """On-disk store of finished cells, one JSON file per key.

    Instances are cheap to construct (workers open their own); ``hits`` /
    ``misses`` count this instance's lookups only — cross-process totals
    are aggregated by :func:`repro.experiments.parallel.run_cells`.
    """

    def __init__(self, root: str | os.PathLike):
        self.root = pathlib.Path(root)
        self.hits = 0
        self.misses = 0

    def path_for(self, key: str) -> pathlib.Path:
        """Entry path; two-level fan-out keeps directories small."""
        return self.root / key[:2] / f"{key}.json"

    def get(self, key: str) -> ScenarioRun | None:
        """Verified lookup: any parse/schema/checksum failure is a miss.

        A detected-corrupt entry is deleted (best effort) so the caller's
        recomputation can overwrite it cleanly.
        """
        path = self.path_for(key)
        try:
            entry = json.loads(path.read_text())
            if entry["version"] != CACHE_VERSION or entry["key"] != key:
                raise ValueError("stale or mismatched cache entry")
            payload = entry["payload"]
            if _digest(canonicalize(payload)) != entry["sha256"]:
                raise ValueError("cache entry failed checksum")
            run = _run_from_payload(payload)
        except FileNotFoundError:
            self.misses += 1
            return None
        except Exception:
            try:
                path.unlink()
            except OSError:
                pass
            self.misses += 1
            return None
        self.hits += 1
        return run

    def put(self, key: str, run: ScenarioRun) -> None:
        """Atomically persist ``run`` under ``key``."""
        payload = _run_to_payload(run)
        entry = {
            "version": CACHE_VERSION,
            "key": key,
            "sha256": _digest(canonicalize(payload)),
            "payload": payload,
        }
        path = self.path_for(key)
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp = tempfile.mkstemp(dir=path.parent, suffix=".tmp")
        try:
            with os.fdopen(fd, "w") as fh:
                json.dump(entry, fh)
            os.replace(tmp, path)
        except BaseException:
            try:
                os.unlink(tmp)
            except OSError:
                pass
            raise

    def __len__(self) -> int:
        return sum(1 for _ in self.root.glob("*/*.json"))


class SweepJournal:
    """Append-only completion journal for one cell sweep (checkpoint/resume).

    A *sweep* is one ordered list of cells (one ``run_cells_detailed``
    call); its identity is a digest over the ordered cell keys
    (:meth:`key_for`), so re-invoking the same figure with the same
    arguments maps to the same journal file. As each cell completes, its
    cache key is appended as one JSON line; an interrupted sweep leaves a
    valid prefix behind, and the re-invocation restores those cells from
    the result cache instead of re-simulating them.

    The format is deliberately torn-write tolerant: a half-written final
    line fails to parse and is skipped, losing at most one cell's
    checkpoint. Journal files live under ``<cache>/journal/`` with a
    ``.jsonl`` suffix so they never collide with the ``*/*.json`` result
    entries.
    """

    def __init__(self, root: str | os.PathLike, sweep_key: str):
        self.sweep_key = sweep_key
        self.path = pathlib.Path(root) / "journal" / f"{sweep_key}.jsonl"

    @staticmethod
    def key_for(cell_keys) -> str:
        """Stable identity of an ordered cell-key list."""
        return _digest(["sweep", CACHE_VERSION, list(cell_keys)])

    def load(self) -> set[str]:
        """Cell keys recorded as completed (malformed lines are skipped)."""
        done: set[str] = set()
        try:
            text = self.path.read_text()
        except OSError:
            return done
        for line in text.splitlines():
            try:
                entry = json.loads(line)
            except ValueError:
                continue  # torn tail from an interrupted append
            if isinstance(entry, dict) and entry.get("status") == "ok":
                key = entry.get("key")
                if isinstance(key, str):
                    done.add(key)
        return done

    def record(self, key: str, status: str = "ok") -> None:
        """Append one completion record and flush it to disk.

        The record is *newline-framed* (leading and trailing): if a
        previous append was torn mid-line, the leading newline terminates
        the damaged line so this record still lands parseable on its own
        line. The blank lines this produces parse as malformed and are
        skipped by :meth:`load`.
        """
        self.path.parent.mkdir(parents=True, exist_ok=True)
        with open(self.path, "a") as fh:
            fh.write("\n" + json.dumps({"key": key, "status": status}) + "\n")
            fh.flush()
            os.fsync(fh.fileno())


# -- maintenance CLI (python -m repro.experiments.cache) -------------------------


def _iter_entries(root: pathlib.Path):
    """Yield ``(path, version | None)`` for every result entry on disk.

    ``version`` is None for entries too corrupt to parse — those are
    candidates for pruning too.
    """
    for path in sorted(root.glob("*/*.json")):
        try:
            version = json.loads(path.read_text()).get("version")
        except Exception:
            version = None
        yield path, version


def _cmd_stats(root: pathlib.Path) -> int:
    entries = 0
    total_bytes = 0
    versions: dict[str, int] = {}
    for path, version in _iter_entries(root):
        entries += 1
        total_bytes += path.stat().st_size
        versions[str(version)] = versions.get(str(version), 0) + 1
    journals = sorted((root / "journal").glob("*.jsonl"))
    journal_bytes = sum(p.stat().st_size for p in journals)
    print(f"cache root: {root}")
    print(f"entries: {entries}")
    print(f"bytes: {total_bytes}")
    for version in sorted(versions):
        marker = " (current)" if version == str(CACHE_VERSION) else ""
        print(f"version {version}: {versions[version]}{marker}")
    print(f"journals: {len(journals)} ({journal_bytes} bytes)")
    return 0


def _cmd_prune(root: pathlib.Path, max_age_days: float | None, dry_run: bool) -> int:
    import time

    cutoff = None
    if max_age_days is not None:
        cutoff = time.time() - max_age_days * 86400.0
    dropped = 0
    kept = 0
    for path, version in _iter_entries(root):
        stale = version != CACHE_VERSION
        expired = cutoff is not None and path.stat().st_mtime < cutoff
        if stale or expired:
            dropped += 1
            why = "stale-version" if stale else "expired"
            if dry_run:
                print(f"would drop {path.name} ({why})")
            else:
                try:
                    path.unlink()
                except OSError:
                    pass
        else:
            kept += 1
    verb = "would drop" if dry_run else "dropped"
    print(f"{verb} {dropped} entries, kept {kept}")
    return 0


def main(argv=None) -> int:
    """Cache maintenance: ``stats`` and ``prune`` subcommands."""
    import argparse

    parser = argparse.ArgumentParser(
        prog="python -m repro.experiments.cache",
        description="Inspect and prune the on-disk experiment result cache.",
    )
    parser.add_argument("--cache", default=".repro-cache", help="cache directory")
    sub = parser.add_subparsers(dest="command", required=True)
    sub.add_parser("stats", help="entry count, bytes, version histogram")
    prune = sub.add_parser(
        "prune", help="drop stale-version entries (and optionally old ones)"
    )
    prune.add_argument(
        "--max-age",
        type=float,
        default=None,
        metavar="DAYS",
        help="also drop current-version entries older than DAYS days",
    )
    prune.add_argument(
        "--dry-run", action="store_true", help="report only, delete nothing"
    )
    args = parser.parse_args(argv)
    root = pathlib.Path(args.cache)
    if not root.exists():
        print(f"cache root {root} does not exist")
        return 1
    if args.command == "stats":
        return _cmd_stats(root)
    return _cmd_prune(root, args.max_age, args.dry_run)


if __name__ == "__main__":
    raise SystemExit(main())
