"""E-F17 — Figure 17: protecting applications from adversarial traffic.

Four PARSEC-like applications run in quadrants (Fig. 16). For each scheme
the scenario runs twice — without and with a uniform chip-wide adversarial
flood at 0.4 flits/cycle/node — and the reported value is each
application's APL *slowdown* (APL_with / APL_without).

Paper shape (average slowdowns): RO_RR 1.92 > RA_DBAR 1.75 > RO_Rank 1.47
> RA_RAIR 1.18. RAIR wins because the flood is foreign traffic to every
region, so DPA demotes it everywhere; STC ranks it last but batching still
lets its older packets through; round-robin treats it as a peer.
"""

from __future__ import annotations

from repro.experiments.parallel import Cell, FaultPolicy, run_cells_detailed
from repro.experiments.report import (
    common_from_args,
    config_for_topology,
    effort_argparser,
    failed_label,
    finish,
    parse_effort,
)
from repro.experiments.runner import SCHEMES, Effort, FigureResult
from repro.experiments.scenarios import PARSEC_APP_ORDER, parsec_quadrants

__all__ = ["run", "main", "FIG17_SCHEMES"]

FIG17_SCHEMES = ("RO_RR", "RA_DBAR", "RO_Rank", "RA_RAIR")


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    schemes=FIG17_SCHEMES,
    adversarial_rate: float | None = None,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
    topology: str = "mesh",
    service=None,
) -> FigureResult:
    """One row per scheme with per-app and average slowdowns.

    ``adversarial_rate=None`` uses the calibrated equivalent of the
    paper's 0.4 flits/cycle/node (same fraction of saturation; see
    ``scenarios.ADVERSARIAL_PRESSURE``). A slowdown needs both the clean
    and the attacked run; if either cell failed, the scheme's row renders
    as ``FAILED(...)`` and the other rows still print. ``topology``
    selects the fabric (mesh/torus/ring).
    """
    config = config_for_topology(topology, num_vnets=2)
    clean = parsec_quadrants(adversarial=False, config=config)
    attacked = parsec_quadrants(
        adversarial=True, adversarial_rate=adversarial_rate, config=config
    )
    adversarial_rate = attacked.meta["adversarial_rate"]
    cells = [
        Cell.for_scenario(SCHEMES[key], scenario, effort, seed)
        for key in schemes
        for scenario in (clean, attacked)
    ]
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs,
        guard=guard, service=service,
    )
    it = iter(results)
    slow_cols = [f"slow_{name[:6]}" for name in PARSEC_APP_ORDER]
    rows = []
    for key in schemes:
        base_res = next(it)
        adv_res = next(it)
        failed = next((r for r in (base_res, adv_res) if not r.ok), None)
        if failed is not None:
            label = failed_label(failed)
            rows.append(
                {
                    "scheme": key,
                    **{c: label for c in slow_cols},
                    "slow_avg": label,
                    "drained": "",
                }
            )
            continue
        base, adv = base_res.run, adv_res.run
        slowdowns = {}
        for app, name in enumerate(PARSEC_APP_ORDER):
            b = base.per_app_apl.get(app)
            a = adv.per_app_apl.get(app)
            slowdowns[f"slow_{name[:6]}"] = (
                a / b if (a and b) else float("nan")
            )
        avg = sum(slowdowns.values()) / len(slowdowns)
        rows.append(
            {
                "scheme": key,
                **slowdowns,
                "slow_avg": avg,
                "drained": base.drained and adv.drained,
            }
        )
    columns = ["scheme"] + slow_cols + ["slow_avg", "drained"]
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Figure 17",
        title=(
            f"APL slowdown under {adversarial_rate} flits/cycle/node "
            "adversarial flood (PARSEC-like apps)"
        ),
        columns=columns,
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "expected shape: slow_avg RO_RR > RA_DBAR > RO_Rank > RA_RAIR",
            "PARSEC traces are synthesized (DESIGN.md substitution #2)",
        ],
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.fig17_parsec [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    result = run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        **common_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
