"""E-A3 — ablation: RAIR across deadlock-free routing algorithms.

Section IV.D claims RAIR composes with "virtually any deadlock avoidance
or recovery routing algorithm"; the paper demonstrates two (local-adaptive
and DBAR, Fig. 10). This ablation extends the demonstration to the full
routing zoo in :mod:`repro.routing` — deterministic XY, the two turn
models (West-First, Odd-Even), Duato local-adaptive, and DBAR — on the
two-application scenario at p=100% inter-region, reporting RAIR's App0
gain and App1 cost over RO_RR *under the same routing*.
"""

from __future__ import annotations

from repro.experiments.parallel import Cell, run_cells
from repro.experiments.report import effort_argparser, parse_effort
from repro.experiments.runner import Effort, FigureResult, Scheme
from repro.experiments.scenarios import two_app_msp

__all__ = ["run", "main", "ROUTINGS"]

ROUTINGS = ("xy", "west_first", "odd_even", "local", "dbar")


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    routings=ROUTINGS,
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    """One row per routing algorithm; reductions are RAIR vs RO_RR."""
    scenario = two_app_msp(1.0)
    cells = [
        Cell.for_scenario(Scheme(f"{prefix}_{routing}", policy, routing),
                          scenario, effort, seed)
        for routing in routings
        for prefix, policy in (("RO_RR", "rr"), ("RAIR", "rair"))
    ]
    runs, report = run_cells(cells, jobs=jobs, cache=cache)
    results = iter(runs)
    rows = []
    for routing in routings:
        base = next(results)
        rair = next(results)
        rows.append(
            {
                "routing": routing,
                "apl_app0_rr": base.per_app_apl[0],
                "apl_app0_rair": rair.per_app_apl[0],
                "red_app0": rair.reduction_vs(base, app=0),
                "red_app1": rair.reduction_vs(base, app=1),
                "drained": base.drained and rair.drained,
            }
        )
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Ablation A3",
        title="RAIR gain under different deadlock-free routing algorithms "
        "(two-app scenario, p=100%)",
        columns=[
            "routing",
            "apl_app0_rr",
            "apl_app0_rair",
            "red_app0",
            "red_app1",
            "drained",
        ],
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "expected shape: red_app0 positive for every routing (Section "
            "IV.D routing-independence claim)",
        ],
    )


def main(argv=None) -> None:
    """CLI: python -m repro.experiments.ablation_routing [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    print(
        run(
            effort=parse_effort(args.effort),
            seed=args.seed,
            jobs=args.jobs,
            cache=args.cache,
        ).format_table()
    )


if __name__ == "__main__":
    main()
