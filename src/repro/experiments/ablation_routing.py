"""E-A3 — ablation: RAIR across deadlock-free routing algorithms.

Section IV.D claims RAIR composes with "virtually any deadlock avoidance
or recovery routing algorithm"; the paper demonstrates two (local-adaptive
and DBAR, Fig. 10). This ablation extends the demonstration to the full
routing zoo in :mod:`repro.routing` — deterministic XY, the two turn
models (West-First, Odd-Even), Duato local-adaptive, and DBAR — on the
two-application scenario at p=100% inter-region, reporting RAIR's App0
gain and App1 cost over RO_RR *under the same routing*.
"""

from __future__ import annotations

from repro.experiments.parallel import Cell, FaultPolicy, run_cells_detailed
from repro.experiments.report import (
    common_from_args,
    config_for_topology,
    effort_argparser,
    failed_label,
    finish,
    parse_effort,
)
from repro.experiments.runner import Effort, FigureResult, Scheme
from repro.experiments.scenarios import two_app_msp

__all__ = ["run", "main", "ROUTINGS"]

ROUTINGS = ("xy", "west_first", "odd_even", "local", "dbar")


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    routings=ROUTINGS,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
    topology: str = "mesh",
    service=None,
) -> FigureResult:
    """One row per routing algorithm; reductions are RAIR vs RO_RR.

    Failed cells render as ``FAILED(...)`` rows instead of aborting;
    in particular the turn models (west_first, odd_even) are mesh-only
    and render as ``FAILED(ConfigError)`` on torus/ring fabrics.
    """
    scenario = two_app_msp(1.0, config=config_for_topology(topology))
    cells = [
        Cell.for_scenario(Scheme(f"{prefix}_{routing}", policy_name, routing),
                          scenario, effort, seed)
        for routing in routings
        for prefix, policy_name in (("RO_RR", "rr"), ("RAIR", "rair"))
    ]
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs,
        guard=guard, service=service,
    )
    it = iter(results)
    value_cols = ("apl_app0_rr", "apl_app0_rair", "red_app0", "red_app1")
    rows = []
    for routing in routings:
        base_res = next(it)
        rair_res = next(it)
        failed = next((r for r in (base_res, rair_res) if not r.ok), None)
        if failed is not None:
            label = failed_label(failed)
            rows.append(
                {"routing": routing, **{c: label for c in value_cols},
                 "drained": ""}
            )
            continue
        base, rair = base_res.run, rair_res.run
        rows.append(
            {
                "routing": routing,
                "apl_app0_rr": base.per_app_apl[0],
                "apl_app0_rair": rair.per_app_apl[0],
                "red_app0": rair.reduction_vs(base, app=0),
                "red_app1": rair.reduction_vs(base, app=1),
                "drained": base.drained and rair.drained,
            }
        )
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Ablation A3",
        title="RAIR gain under different deadlock-free routing algorithms "
        "(two-app scenario, p=100%)",
        columns=[
            "routing",
            "apl_app0_rr",
            "apl_app0_rair",
            "red_app0",
            "red_app1",
            "drained",
        ],
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "expected shape: red_app0 positive for every routing (Section "
            "IV.D routing-independence claim)",
        ],
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.ablation_routing [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    result = run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        **common_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
