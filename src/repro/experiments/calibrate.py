"""Empirical saturation calibration.

Finds the latency knee of a traffic footprint by bisection: the largest
injection rate whose average packet latency stays below
``KNEE_FACTOR`` x the zero-load APL *and* whose measurement window drains.
This replaces the paper's (unstated) saturation measurement on GARNET —
substitution #5 in DESIGN.md.

CLI::

    python -m repro.experiments.calibrate [--fast]

prints a ``SATURATION_TABLE`` literal to paste into
:mod:`repro.experiments.saturation_table`.
"""

from __future__ import annotations

import argparse
from collections.abc import Callable, Sequence

from repro import build_simulation
from repro.core.regions import RegionMap
from repro.experiments.saturation_table import KNEE_FACTOR
from repro.noc.config import NocConfig
from repro.noc.topology import MeshTopology
from repro.traffic.patterns import UniformPattern
from repro.traffic.regional import RegionalAppTraffic
from repro.traffic.synthetic import SyntheticTrafficSource

__all__ = ["probe_apl", "find_saturation", "calibrate_all"]

_LOW_RATE = 0.02


def probe_apl(
    make_sources: Callable[[float, int], Sequence],
    rate: float,
    *,
    region_map: RegionMap | None = None,
    warmup: int = 500,
    measure: int = 2000,
    seed: int = 1234,
) -> tuple[float, bool]:
    """Run one probe; returns (APL, drained)."""
    sim, net = build_simulation(
        NocConfig(), region_map=region_map, scheme="ro_rr", routing="local"
    )
    for src in make_sources(rate, seed):
        sim.add_traffic(src)
    # No explicit drain_limit: run_measurement derives it from the probe
    # window (10x(warmup+measure) + 20000), so enlarging a probe window
    # can no longer silently outgrow a hardcoded drain budget.
    res = sim.run_measurement(warmup=warmup, measure=measure)
    return net.stats.apl(window=res.window), res.drained


def find_saturation(
    make_sources: Callable[[float, int], Sequence],
    *,
    region_map: RegionMap | None = None,
    lo: float = 0.05,
    hi: float = 0.7,
    tol: float = 0.02,
    warmup: int = 500,
    measure: int = 2000,
    knee_factor: float = KNEE_FACTOR,
) -> float:
    """Bisect for the latency knee of a traffic footprint.

    ``make_sources(rate, seed)`` builds the traffic sources at a given
    per-node flit rate. The returned value is the largest probed rate that
    stayed under the knee.
    """
    base_apl, drained = probe_apl(
        make_sources, _LOW_RATE, region_map=region_map, warmup=warmup, measure=measure
    )
    if not drained:
        raise RuntimeError("baseline probe did not drain; footprint is broken")
    threshold = knee_factor * base_apl

    def under_knee(rate: float) -> bool:
        apl, ok = probe_apl(
            make_sources, rate, region_map=region_map, warmup=warmup, measure=measure
        )
        return ok and apl < threshold

    if under_knee(hi):
        return hi
    good, bad = lo, hi
    while bad - good > tol:
        mid = 0.5 * (good + bad)
        if under_knee(mid):
            good = mid
        else:
            bad = mid
    return round(good, 3)


# -- footprints matching saturation_table keys -------------------------------------


def _chip_ur(topology: MeshTopology):
    def make(rate: float, seed: int):
        return [
            SyntheticTrafficSource(
                nodes=range(topology.num_nodes),
                rate=rate,
                pattern=UniformPattern(topology),
                app_id=0,
                seed=seed,
            )
        ]

    return make, None


def _region_ur(region_map: RegionMap, app: int):
    def make(rate: float, seed: int):
        return [
            RegionalAppTraffic(
                region_map, app, rate=rate, seed=seed,
                intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0,
            )
        ]

    return make, region_map


def _region_mix(region_map: RegionMap, app: int):
    def make(rate: float, seed: int):
        return [
            RegionalAppTraffic(
                region_map, app, rate=rate, seed=seed,
                intra_fraction=0.75, inter_fraction=0.20, mc_fraction=0.05,
            )
        ]

    return make, region_map


def calibrate_all(fast: bool = False) -> dict[str, float]:
    """Measure every footprint in the saturation table; returns the table."""
    topo = MeshTopology(8, 8)
    halves = RegionMap.halves(topo)
    quads = RegionMap.quadrants(topo)
    grid6 = RegionMap.grid(topo, 3, 2)
    footprints = {
        "ur_chip_8x8": _chip_ur(topo),
        "ur_half_4x8": _region_ur(halves, 0),
        "ur_quad_4x4": _region_ur(quads, 0),
        "ur_grid6_3x4": _region_ur(grid6, 0),
        "ur_grid6_2x4": _region_ur(grid6, 2),
        "mix_grid6_3x4": _region_mix(grid6, 0),
        "mix_grid6_2x4": _region_mix(grid6, 2),
    }
    warmup, measure = (300, 1000) if fast else (500, 2500)
    table = {}
    for key, (make, rm) in footprints.items():
        table[key] = find_saturation(
            make, region_map=rm, warmup=warmup, measure=measure,
            tol=0.04 if fast else 0.02,
        )
        print(f"  {key!r}: {table[key]},", flush=True)
    return table


def main(argv=None) -> None:
    """CLI entry point; prints a SATURATION_TABLE literal."""
    parser = argparse.ArgumentParser(description=__doc__)
    parser.add_argument("--fast", action="store_true", help="coarser, quicker probes")
    args = parser.parse_args(argv)
    print("SATURATION_TABLE = {")
    calibrate_all(fast=args.fast)
    print("}")


if __name__ == "__main__":
    main()
