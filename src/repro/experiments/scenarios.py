"""Scenario definitions — the workload side of each paper experiment.

A :class:`Scenario` bundles the network config, the region map, and a
seeded traffic factory. The builders below encode the paper's setup
figures:

* :func:`two_app_msp` — Fig. 8: App0 on the left half at 10% of its
  saturation load with a swept inter-region fraction ``p``; App1 on the
  right half at 90% saturation, all intra-region.
* :func:`four_app_dpa` — Fig. 11(a)/(b): quadrants, three low-load
  applications and one high-load application, with the 30% inter-region
  component on either side.
* :func:`six_app` — Fig. 13: six regions (3x2 grid), mixed loads
  (10-30% vs 90% of saturation), per-app traffic 75% intra UR / 20% inter
  (configurable pattern) / 5% corner-MC.
* :func:`parsec_quadrants` — Fig. 16: four PARSEC-like applications in
  quadrants, optionally with the Fig. 17 adversarial flood.

All rates are percentages of the calibrated saturation loads
(:mod:`repro.experiments.saturation_table`).
"""

from __future__ import annotations

from collections.abc import Callable
from dataclasses import dataclass, field

from repro.core.regions import RegionMap
from repro.experiments.saturation_table import saturation_load
from repro.noc.config import NocConfig
from repro.noc.topology import make_topology
from repro.traffic.adversarial import AdversarialTrafficSource
from repro.traffic.parsec import PARSEC_PROFILES, ParsecWorkload
from repro.traffic.patterns import UniformPattern, make_pattern
from repro.traffic.regional import RegionalAppTraffic
from repro.util.rng import spawn_rngs

__all__ = [
    "Scenario",
    "ScenarioSpec",
    "SCENARIO_BUILDERS",
    "two_app_msp",
    "four_app_dpa",
    "six_app",
    "parsec_quadrants",
    "SIX_APP_LOADS",
    "PARSEC_APP_ORDER",
]


@dataclass(frozen=True)
class ScenarioSpec:
    """Picklable recipe for rebuilding a :class:`Scenario` in a worker.

    A :class:`Scenario` carries closures (its ``traffic_factory``) and so
    cannot cross a process boundary; the spec records the *builder name*
    plus its resolved keyword arguments instead. Builders are
    deterministic, so ``spec.build()`` in any process yields a scenario
    whose simulations are bit-identical to the original's. The spec is
    also the scenario half of the result-cache key
    (:mod:`repro.experiments.cache`).
    """

    builder: str
    kwargs: dict = field(default_factory=dict)

    def build(self) -> "Scenario":
        """Reconstruct the scenario via the builder registry.

        ``builder`` is either a key of :data:`SCENARIO_BUILDERS` or a
        dotted reference ``"package.module:function"``. Dotted references
        are imported on demand, so builders living outside this module
        (e.g. the fault-injection scenarios of
        :mod:`repro.experiments.chaos`) resolve in worker processes under
        any multiprocessing start method, without a registration step.
        """
        if ":" in self.builder:
            import importlib

            mod_name, _, fn_name = self.builder.partition(":")
            fn = getattr(importlib.import_module(mod_name), fn_name)
            return fn(**self.kwargs)
        try:
            fn = SCENARIO_BUILDERS[self.builder]
        except KeyError:
            raise KeyError(
                f"unknown scenario builder {self.builder!r}; known: "
                f"{sorted(SCENARIO_BUILDERS)} or a dotted 'module:function'"
            ) from None
        return fn(**self.kwargs)


@dataclass
class Scenario:
    """Workload + placement for one experiment."""

    name: str
    config: NocConfig
    region_map: RegionMap | None
    traffic_factory: Callable[[int], list]
    description: str = ""
    meta: dict = field(default_factory=dict)
    #: recipe to rebuild this scenario in another process (None for
    #: hand-assembled scenarios, which then cannot be parallelized/cached)
    spec: ScenarioSpec | None = None


# -- Fig. 8 / 9 / 10: two applications, swept inter-region fraction ------------------


def two_app_msp(p_inter: float, config: NocConfig | None = None) -> Scenario:
    """Fig. 8 layout: App0 low-load with fraction ``p_inter`` inter-region,
    App1 high-load fully intra-region on the other half."""
    config = config or NocConfig()
    topo = make_topology(config)
    rm = RegionMap.halves(topo)
    # saturation_scale derates the mesh-calibrated knee on lower-bisection
    # fabrics (1.0 on the mesh, so mesh rates are bit-identical).
    sat = saturation_load("ur_half_4x8") * topo.saturation_scale
    low = 0.10 * sat
    # 0.80 of the *solo-calibrated* knee: once App0's inter-region stream
    # crosses the region the in-context saturation is lower than the solo
    # measurement, and 0.80x solo corresponds to the paper's "90% of its
    # saturation load" operating point (at 0.90x solo the region sits past
    # its effective knee and every priority decision shows up as a latency
    # blow-up rather than the paper's <3% App1 cost).
    high = 0.80 * sat

    def factory(seed: int) -> list:
        rngs = spawn_rngs(seed, 2)
        app0 = RegionalAppTraffic(
            rm, 0, rate=low, seed=rngs[0],
            intra_fraction=1.0 - p_inter, inter_fraction=p_inter, mc_fraction=0.0,
        )
        app1 = RegionalAppTraffic(
            rm, 1, rate=high, seed=rngs[1],
            intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0,
        )
        return [app0, app1]

    return Scenario(
        name=f"two_app_p{int(round(p_inter * 100))}",
        config=config,
        region_map=rm,
        traffic_factory=factory,
        description=(
            f"Fig.8: App0 {low:.3f} flits/node/cycle with {p_inter:.0%} "
            f"inter-region, App1 {high:.3f} intra-region"
        ),
        meta={"p_inter": p_inter, "low_rate": low, "high_rate": high},
        spec=ScenarioSpec("two_app_msp", {"p_inter": p_inter, "config": config}),
    )


# -- Fig. 11 / 12: four applications, DPA validation ---------------------------------


def four_app_dpa(variant: str, config: NocConfig | None = None) -> Scenario:
    """Fig. 11 scenarios: ``variant`` is ``"a"`` or ``"b"``.

    (a): Apps 0-2 low load with 30% inter-region traffic *towards App 3's
    region*; App 3 high load, all intra-region.
    (b): Apps 0-2 low load, all intra-region; App 3 high load with 30%
    inter-region traffic towards random other regions.
    """
    if variant not in ("a", "b"):
        raise ValueError(f"variant must be 'a' or 'b', got {variant!r}")
    config = config or NocConfig()
    topo = make_topology(config)
    rm = RegionMap.quadrants(topo)
    sat = saturation_load("ur_quad_4x4") * topo.saturation_scale
    low = 0.15 * sat
    high = 0.90 * sat

    def factory(seed: int) -> list:
        rngs = spawn_rngs(seed, 4)
        sources = []
        if variant == "a":
            to_app3 = UniformPattern(topo, rm.nodes_of(3))
            for app in (0, 1, 2):
                sources.append(
                    RegionalAppTraffic(
                        rm, app, rate=low, seed=rngs[app],
                        intra_fraction=0.70, inter_fraction=0.30, mc_fraction=0.0,
                        inter_pattern=to_app3,
                    )
                )
            sources.append(
                RegionalAppTraffic(
                    rm, 3, rate=high, seed=rngs[3],
                    intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0,
                )
            )
        else:
            for app in (0, 1, 2):
                sources.append(
                    RegionalAppTraffic(
                        rm, app, rate=low, seed=rngs[app],
                        intra_fraction=1.0, inter_fraction=0.0, mc_fraction=0.0,
                    )
                )
            sources.append(
                RegionalAppTraffic(
                    rm, 3, rate=high, seed=rngs[3],
                    intra_fraction=0.70, inter_fraction=0.30, mc_fraction=0.0,
                )
            )
        return sources

    return Scenario(
        name=f"four_app_{variant}",
        config=config,
        region_map=rm,
        traffic_factory=factory,
        description=f"Fig.11({variant}): 4 quadrant apps, DPA validation",
        meta={"variant": variant, "low_rate": low, "high_rate": high},
        spec=ScenarioSpec("four_app_dpa", {"variant": variant, "config": config}),
    )


# -- Fig. 13 / 14 / 15: six applications ----------------------------------------------

#: Per-app load as a fraction of that app's *solo-calibrated* saturation
#: (paper: Apps 0,2,3,4 low-to-medium 10-30%; Apps 1,5 high 90%). The high
#: apps use 0.85 of the solo knee: with the other five applications'
#: transit and MC traffic crossing their regions, the effective in-context
#: saturation is lower than the solo measurement, and 0.85x solo lands at
#: about the paper's "90% of saturation" operating point (past it, the
#: 2x4-column region destabilizes and load-balanced routing rather than
#: arbitration dominates the comparison).
SIX_APP_LOADS: dict[int, float] = {0: 0.10, 1: 0.85, 2: 0.20, 3: 0.25, 4: 0.30, 5: 0.85}


def six_app(
    global_pattern: str = "ur",
    config: NocConfig | None = None,
    loads: dict[int, float] | None = None,
) -> Scenario:
    """Fig. 13: six regions, mixed loads, 75/20/5 intra/inter/MC traffic.

    The paper does not give the exact region geometry; we use a 2x3 grid
    (two columns of three regions), which keeps the high-load applications
    (1 and 5) out of the chip's central transit band — with a 3x2 grid the
    top-middle high region absorbs all deterministic-pattern transit
    (transpose/bit-complement cross the centre) and one saturated region
    dominates every average. Hotspot traffic targets the four chip-centre
    nodes (the classic choice) rather than the corners, which already
    serve as memory controllers.
    """
    config = config or NocConfig()
    topo = make_topology(config)
    rm = RegionMap.grid(topo, 2, 3)
    loads = dict(SIX_APP_LOADS if loads is None else loads)
    # Region sizes on the 8x8 mesh: rows of heights 3/3/2 x columns of
    # width 4 -> regions of 12, 12, 12, 12, 8, 8 nodes.
    sat_by_app = {
        app: saturation_load(
            "mix_grid6_2x4" if len(rm.nodes_of(app)) <= 8 else "mix_grid6_3x4"
        )
        * topo.saturation_scale
        for app in range(6)
    }
    center_hotspots = list(topo.center_nodes())

    def factory(seed: int) -> list:
        rngs = spawn_rngs(seed, 6)
        sources = []
        for app in range(6):
            if global_pattern == "ur":
                base = None
            elif global_pattern == "hs":
                base = make_pattern("hs", topo, hotspots=center_hotspots)
            else:
                base = make_pattern(global_pattern, topo)
            sources.append(
                RegionalAppTraffic(
                    rm, app, rate=loads[app] * sat_by_app[app], seed=rngs[app],
                    intra_fraction=0.75, inter_fraction=0.20, mc_fraction=0.05,
                    inter_pattern=base,
                )
            )
        return sources

    return Scenario(
        name=f"six_app_{global_pattern}",
        config=config,
        region_map=rm,
        traffic_factory=factory,
        description=(
            f"Fig.13: 6 apps (3x2 grid), loads {loads}, global pattern "
            f"{global_pattern.upper()}"
        ),
        meta={"global_pattern": global_pattern, "loads": loads},
        spec=ScenarioSpec(
            "six_app",
            {"global_pattern": global_pattern, "config": config, "loads": loads},
        ),
    )


# -- Fig. 16 / 17: PARSEC applications + adversarial flood ----------------------------

#: quadrant placement of the paper's representative subset
PARSEC_APP_ORDER = ("blackscholes", "swaptions", "fluidanimate", "raytrace")


#: Relative pressure of the Fig.-17 flood. The paper injects 0.4
#: flits/cycle/node on a network whose uniform-random saturation is around
#: 0.45-0.5 — heavy, but leaving room for the (light) PARSEC traffic so a
#: steady state exists. Our simulator's UR knee is lower (3-cycle router
#: pipeline), so we scale the flood to the same *relative* pressure:
#: flood + tenant load stays just under the calibrated knee. An absolute
#: 0.4 here would be ~120% of saturation, where every scheme gridlocks and
#: slowdowns diverge with window length (DESIGN.md substitution #5).
ADVERSARIAL_PRESSURE = 0.70


def parsec_quadrants(
    adversarial: bool = False,
    adversarial_rate: float | None = None,
    config: NocConfig | None = None,
) -> Scenario:
    """Fig. 16: four PARSEC-like apps in quadrants; Fig. 17 adds the flood.

    Uses two virtual networks (request/reply protocol classes).
    ``adversarial_rate`` defaults to ``ADVERSARIAL_PRESSURE`` times the
    calibrated chip-wide uniform-random saturation load.
    """
    config = config or NocConfig(num_vnets=2)
    if config.num_vnets < 2:
        raise ValueError("PARSEC scenario needs >= 2 virtual networks")
    topo = make_topology(config)
    if adversarial_rate is None:
        adversarial_rate = (
            ADVERSARIAL_PRESSURE
            * saturation_load("ur_chip_8x8")
            * topo.saturation_scale
        )
    rm = RegionMap.quadrants(topo)
    profiles = [PARSEC_PROFILES[name] for name in PARSEC_APP_ORDER]

    def factory(seed: int) -> list:
        rngs = spawn_rngs(seed, 2)
        sources: list = [ParsecWorkload(rm, profiles, seed=rngs[0])]
        if adversarial:
            sources.append(
                AdversarialTrafficSource(
                    topo, seed=rngs[1], rate=adversarial_rate, region_map=rm
                )
            )
        return sources

    suffix = "_adv" if adversarial else ""
    return Scenario(
        name=f"parsec_quadrants{suffix}",
        config=config,
        region_map=rm,
        traffic_factory=factory,
        description=(
            "Fig.16: blackscholes/swaptions/fluidanimate/raytrace in "
            f"quadrants{' + adversarial flood' if adversarial else ''}"
        ),
        meta={
            "adversarial": adversarial,
            "adversarial_rate": adversarial_rate,
            "apps": PARSEC_APP_ORDER,
        },
        spec=ScenarioSpec(
            "parsec_quadrants",
            {
                "adversarial": adversarial,
                "adversarial_rate": adversarial_rate,
                "config": config,
            },
        ),
    )


#: Builder registry backing :meth:`ScenarioSpec.build` — every entry must
#: be a deterministic function of its keyword arguments.
SCENARIO_BUILDERS: dict[str, Callable[..., Scenario]] = {
    "two_app_msp": two_app_msp,
    "four_app_dpa": four_app_dpa,
    "six_app": six_app,
    "parsec_quadrants": parsec_quadrants,
}
