"""Report helpers: effort parsing, fault-policy flags, and the small
formatting/exit utilities shared by the figure CLIs.

Graceful degradation contract (every figure CLI follows it): a cell that
fails after retries renders as a ``FAILED(<ErrorType>)`` table entry, the
partial table still prints, and the process exits with
:data:`EXIT_CELL_FAILURE` (3) — distinct from argparse's 2 and from a
crash's traceback — so calling scripts can tell "the figure is partially
missing" apart from "the tool is broken".
"""

from __future__ import annotations

import argparse
import os

from repro.experiments.parallel import CellResult, FaultPolicy
from repro.experiments.runner import Effort
from repro.noc.topology import TOPOLOGY_KINDS

__all__ = [
    "EXIT_CELL_FAILURE",
    "pct",
    "add_common_args",
    "common_from_args",
    "effort_argparser",
    "parse_effort",
    "policy_from_args",
    "obs_from_args",
    "guard_from_args",
    "service_from_args",
    "config_for_topology",
    "failed_label",
    "finish",
    "write_text_atomic",
]

#: process exit code when one or more cells failed but the (partial)
#: figure was still rendered
EXIT_CELL_FAILURE = 3


def pct(x: float) -> str:
    """Format a fraction as a signed percentage ('-12.8%' = 12.8% reduction)."""
    return f"{x * 100:+.1f}%"


def parse_effort(name: str) -> Effort:
    """Map a CLI string to an :class:`Effort`."""
    try:
        return Effort[name.upper()]
    except KeyError:
        raise SystemExit(
            f"unknown effort {name!r}; choose from "
            f"{[e.name.lower() for e in Effort]}"
        ) from None


def add_common_args(parser: argparse.ArgumentParser) -> argparse.ArgumentParser:
    """Install the flag block shared by every figure CLI and ``run_all``.

    One definition for ``--effort/--seed/--jobs/--cache/--max-attempts/
    --timeout/--cycle-budget/--obs/--obs-sample-period/--topology/--guard/
    --service/--priority/--version`` — the nine figure CLIs, ``run_all``,
    and the sweep/steady-state tools all hang off this helper, so a new
    execution-policy flag lands everywhere by being added here once.
    Consume the parsed namespace with :func:`common_from_args`.
    """
    from repro._version import version_blurb

    parser.add_argument(
        "--effort",
        default="medium",
        help="window scale: smoke, fast, medium (default), full (paper-size)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent cells (default 1 = serial; "
        "results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="result-cache directory; already-computed cells are reused and "
        "interrupted sweeps resume from their journal",
    )
    parser.add_argument(
        "--max-attempts",
        type=int,
        default=3,
        help="attempts per cell for transient failures (default 3)",
    )
    parser.add_argument(
        "--timeout",
        type=float,
        default=None,
        metavar="SECONDS",
        help="wall-clock budget per cell, enforced by killing wedged "
        "workers (jobs>1 only)",
    )
    parser.add_argument(
        "--cycle-budget",
        type=int,
        default=None,
        metavar="CYCLES",
        help="cooperative simulated-cycle budget per cell (works at any "
        "job count; a budget-hit drain reports abort=deadline)",
    )
    parser.add_argument(
        "--obs",
        default=None,
        metavar="DIR",
        help="record observability streams (per-class latency percentiles, "
        "DPA timelines, link utilization) as one JSONL file per cell in "
        "DIR; inspect with 'python -m repro.obs.report'",
    )
    parser.add_argument(
        "--topology",
        default="mesh",
        choices=TOPOLOGY_KINDS,
        help="fabric to run on: mesh (default, the paper's 8x8), torus, or "
        "ring; wrap fabrics get dateline escape VCs sized automatically",
    )
    parser.add_argument(
        "--obs-sample-period",
        type=int,
        default=64,
        metavar="CYCLES",
        help="cycles between observability samples (default 64; "
        "requires --obs)",
    )
    parser.add_argument(
        "--guard",
        default="off",
        choices=("off", "sample", "strict"),
        help="runtime invariant guard: 'sample' checks conservation "
        "invariants periodically, 'strict' checks often with a deeper "
        "crash blackbox; either classifies stalls as "
        "deadlock/livelock/starvation with forensics (default off — "
        "zero overhead, bit-identical results either way)",
    )
    parser.add_argument(
        "--service",
        default=None,
        metavar="URL",
        help="route the sweep through a running sweep-service daemon "
        "(python -m repro.service.daemon) at URL instead of executing "
        "locally; results, cache keys, and obs output are identical "
        "either way",
    )
    parser.add_argument(
        "--priority",
        default="normal",
        choices=("high", "normal", "low"),
        help="priority class for the submitted job (requires --service; "
        "FIFO within a class, higher classes scheduled first)",
    )
    parser.add_argument(
        "--version",
        action="version",
        version=version_blurb(),
        help="print repro version and git revision, then exit",
    )
    return parser


def effort_argparser(description: str) -> argparse.ArgumentParser:
    """Argument parser shared by every figure CLI."""
    return add_common_args(argparse.ArgumentParser(description=description))


def policy_from_args(args: argparse.Namespace) -> FaultPolicy:
    """Build the :class:`FaultPolicy` the shared CLI flags describe."""
    return FaultPolicy(
        max_attempts=getattr(args, "max_attempts", 3),
        wall_timeout_s=getattr(args, "timeout", None),
        cycle_budget=getattr(args, "cycle_budget", None),
    )


def obs_from_args(args: argparse.Namespace):
    """Build the :class:`repro.obs.ObsConfig` the shared CLI flags describe.

    Returns ``None`` when ``--obs`` was not given (the overhead-free
    default). Imported lazily so CLIs without the flag never load the
    obs package.
    """
    obs_dir = getattr(args, "obs", None)
    if obs_dir is None:
        return None
    from repro.obs.collector import ObsConfig

    return ObsConfig(dir=obs_dir, sample_period=getattr(args, "obs_sample_period", 64))


def guard_from_args(args: argparse.Namespace):
    """Build the :class:`repro.noc.guard.GuardConfig` ``--guard`` describes.

    Returns ``None`` when the guard is off (the overhead-free default).
    Blackboxes land next to the obs streams when ``--obs`` was given,
    otherwise they stay in memory on the raised error. Imported lazily,
    mirroring :func:`obs_from_args`.
    """
    mode = getattr(args, "guard", "off")
    if mode in (None, "off"):
        return None
    from repro.noc.guard import GuardConfig

    return GuardConfig(mode=mode, dir=getattr(args, "obs", None))


def service_from_args(args: argparse.Namespace):
    """Build the :class:`repro.service.client.ServiceSpec` ``--service`` names.

    Returns ``None`` when ``--service`` was not given (local execution,
    the default). Imported lazily so CLIs never load the service package
    unless a daemon is actually in play.
    """
    url = getattr(args, "service", None)
    if url is None:
        return None
    from repro.service.client import ServiceSpec

    return ServiceSpec(url=url, priority=getattr(args, "priority", "normal"))


def common_from_args(args: argparse.Namespace) -> dict:
    """The shared run() keyword arguments described by the common flags.

    Every figure CLI's ``main`` is now the one-liner
    ``run(effort=parse_effort(args.effort), seed=args.seed,
    **common_from_args(args))`` — the execution-policy plumbing (jobs,
    cache, fault policy, obs, guard, topology, service routing) is
    assembled here so the nine CLIs cannot drift apart.
    """
    return {
        "jobs": getattr(args, "jobs", 1),
        "cache": getattr(args, "cache", None),
        "policy": policy_from_args(args),
        "obs": obs_from_args(args),
        "guard": guard_from_args(args),
        "topology": getattr(args, "topology", "mesh"),
        "service": service_from_args(args),
    }


def write_text_atomic(path, text: str) -> None:
    """Write ``text`` to ``path`` atomically (temp file + ``os.replace``).

    A crash or kill mid-write leaves either the previous file or the new
    one, never a truncated hybrid — the same contract the obs exporters
    give their JSONL streams. ``path`` is a ``str`` or ``Path``.
    """
    tmp = f"{path}.tmp"
    with open(tmp, "w", encoding="utf-8") as fh:
        fh.write(text)
    os.replace(tmp, path)


def config_for_topology(topology: str | None, **kwargs):
    """The :class:`~repro.noc.config.NocConfig` a ``--topology`` choice needs.

    Returns ``None`` for the default mesh so scenario builders keep using
    their stock configs — mesh runs stay bit-identical to the pre-topology
    CLIs (same cache keys, same goldens). Non-mesh fabrics get a config
    from :meth:`NocConfig.for_topology` with ``kwargs`` forwarded (e.g.
    ``num_vnets=2`` for the PARSEC scenario).
    """
    if topology in (None, "mesh"):
        return None
    from repro.noc.config import NocConfig

    return NocConfig.for_topology(topology, **kwargs)


def failed_label(result: CellResult) -> str:
    """Table-cell rendering of a failed cell: ``FAILED(ErrorType)``."""
    assert result.failure is not None
    return f"FAILED({result.failure.error_type})"


def finish(result, report=None) -> int:
    """Print a figure result and return the CLI exit code.

    ``result`` is a :class:`~repro.experiments.runner.FigureResult`;
    ``report`` the :class:`~repro.experiments.parallel.ExecutionReport`
    that produced it (optional — ``result.metrics['failures']`` is used
    when absent). Failed cells have already been rendered into the rows
    by the caller; this decides the exit code and prints the failure
    summary lines so they cannot be missed below a long table.
    """
    print(result.format_table())
    failures = (
        report.failures if report is not None else result.metrics.get("failures", 0)
    )
    if failures:
        print(
            f"WARNING: {failures} cell(s) failed after retries; "
            "table above is partial (FAILED entries)."
        )
        return EXIT_CELL_FAILURE
    return 0
