"""Report helpers: effort parsing and small formatting utilities shared by
the figure CLIs."""

from __future__ import annotations

import argparse

from repro.experiments.runner import Effort

__all__ = ["pct", "effort_argparser", "parse_effort"]


def pct(x: float) -> str:
    """Format a fraction as a signed percentage ('-12.8%' = 12.8% reduction)."""
    return f"{x * 100:+.1f}%"


def parse_effort(name: str) -> Effort:
    """Map a CLI string to an :class:`Effort`."""
    try:
        return Effort[name.upper()]
    except KeyError:
        raise SystemExit(
            f"unknown effort {name!r}; choose from "
            f"{[e.name.lower() for e in Effort]}"
        ) from None


def effort_argparser(description: str) -> argparse.ArgumentParser:
    """Argument parser shared by every figure CLI."""
    parser = argparse.ArgumentParser(description=description)
    parser.add_argument(
        "--effort",
        default="medium",
        help="window scale: smoke, fast, medium (default), full (paper-size)",
    )
    parser.add_argument("--seed", type=int, default=42, help="master RNG seed")
    parser.add_argument(
        "--jobs",
        type=int,
        default=1,
        help="worker processes for independent cells (default 1 = serial; "
        "results are bit-identical either way)",
    )
    parser.add_argument(
        "--cache",
        default=None,
        metavar="DIR",
        help="result-cache directory; already-computed cells are reused",
    )
    return parser
