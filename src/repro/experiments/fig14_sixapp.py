"""E-F14 — Figure 14: six concurrent applications, uniform-random global
traffic.

Fig. 13 scenario: six regions, loads 10-30% of saturation for Apps 0/2/3/4
and 90% for Apps 1/5; per-app traffic 75% intra-region UR, 20% inter-region
UR, 5% corner-MC. Compared schemes: RO_RR (baseline), RO_Rank, RA_DBAR,
RA_RAIR.

Paper shape: RA_RAIR best on average (−10.1% vs RO_RR), then RO_Rank
(−5.8%), then RA_DBAR (−3.4%); RAIR's gain concentrates on the low/medium
load applications while costing the high-load apps little.
"""

from __future__ import annotations

from repro.experiments.parallel import Cell, FaultPolicy, run_cells_detailed
from repro.experiments.report import (
    common_from_args,
    config_for_topology,
    effort_argparser,
    failed_label,
    finish,
    parse_effort,
)
from repro.experiments.runner import SCHEMES, Effort, FigureResult
from repro.experiments.scenarios import six_app

__all__ = ["run", "main", "FIG14_SCHEMES"]

FIG14_SCHEMES = ("RA_DBAR", "RO_Rank", "RA_RAIR")


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    schemes=FIG14_SCHEMES,
    global_pattern: str = "ur",
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
    topology: str = "mesh",
    service=None,
) -> FigureResult:
    """Run the six-app comparison; rows carry per-app APL reduction vs RO_RR.

    Failed cells render as ``FAILED(...)`` rows instead of aborting.
    ``topology`` selects the fabric (mesh/torus/ring).
    """
    scenario = six_app(
        global_pattern=global_pattern, config=config_for_topology(topology)
    )
    cells = [
        Cell.for_scenario(SCHEMES[key], scenario, effort, seed)
        for key in ("RO_RR",) + tuple(schemes)
    ]
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs,
        guard=guard, service=service,
    )
    base_res, scheme_results = results[0], results[1:]
    apps = sorted(base_res.run.per_app_apl) if base_res.ok else list(range(6))
    red_cols = [f"red_app{a}" for a in apps]
    rows = []
    for key, cell_res in zip(schemes, scheme_results):
        if not cell_res.ok:
            label = failed_label(cell_res)
        elif not base_res.ok:
            label = f"FAILED(baseline {base_res.failure.error_type})"
        else:
            base, res = base_res.run, cell_res.run
            reductions = {
                f"red_app{app}": res.reduction_vs(base, app=app) for app in apps
            }
            avg = sum(reductions.values()) / len(reductions)
            rows.append(
                {"scheme": key, **reductions, "red_avg": avg, "drained": res.drained}
            )
            continue
        rows.append(
            {
                "scheme": key,
                **{c: label for c in red_cols},
                "red_avg": label,
                "drained": "",
            }
        )
    columns = ["scheme"] + red_cols + ["red_avg", "drained"]
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Figure 14",
        title=(
            f"APL reduction vs RO_RR, six-app scenario, global pattern "
            f"{global_pattern.upper()}"
        ),
        columns=columns,
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "expected shape: RA_RAIR > RO_Rank > RA_DBAR on red_avg",
        ],
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.fig14_sixapp [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    result = run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        **common_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
