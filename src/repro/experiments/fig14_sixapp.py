"""E-F14 — Figure 14: six concurrent applications, uniform-random global
traffic.

Fig. 13 scenario: six regions, loads 10-30% of saturation for Apps 0/2/3/4
and 90% for Apps 1/5; per-app traffic 75% intra-region UR, 20% inter-region
UR, 5% corner-MC. Compared schemes: RO_RR (baseline), RO_Rank, RA_DBAR,
RA_RAIR.

Paper shape: RA_RAIR best on average (−10.1% vs RO_RR), then RO_Rank
(−5.8%), then RA_DBAR (−3.4%); RAIR's gain concentrates on the low/medium
load applications while costing the high-load apps little.
"""

from __future__ import annotations

from repro.experiments.parallel import Cell, run_cells
from repro.experiments.report import effort_argparser, parse_effort
from repro.experiments.runner import SCHEMES, Effort, FigureResult
from repro.experiments.scenarios import six_app

__all__ = ["run", "main", "FIG14_SCHEMES"]

FIG14_SCHEMES = ("RA_DBAR", "RO_Rank", "RA_RAIR")


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    schemes=FIG14_SCHEMES,
    global_pattern: str = "ur",
    jobs: int = 1,
    cache=None,
) -> FigureResult:
    """Run the six-app comparison; rows carry per-app APL reduction vs RO_RR."""
    scenario = six_app(global_pattern=global_pattern)
    cells = [
        Cell.for_scenario(SCHEMES[key], scenario, effort, seed)
        for key in ("RO_RR",) + tuple(schemes)
    ]
    runs, report = run_cells(cells, jobs=jobs, cache=cache)
    base, scheme_runs = runs[0], runs[1:]
    apps = sorted(base.per_app_apl)
    rows = []
    for key, res in zip(schemes, scheme_runs):
        reductions = {f"red_app{app}": res.reduction_vs(base, app=app) for app in apps}
        avg = sum(reductions.values()) / len(reductions)
        rows.append(
            {"scheme": key, **reductions, "red_avg": avg, "drained": res.drained}
        )
    columns = ["scheme"] + [f"red_app{a}" for a in apps] + ["red_avg", "drained"]
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Figure 14",
        title=(
            f"APL reduction vs RO_RR, six-app scenario, global pattern "
            f"{global_pattern.upper()}"
        ),
        columns=columns,
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure}",
            "expected shape: RA_RAIR > RO_Rank > RA_DBAR on red_avg",
        ],
    )


def main(argv=None) -> None:
    """CLI: python -m repro.experiments.fig14_sixapp [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    print(
        run(
            effort=parse_effort(args.effort),
            seed=args.seed,
            jobs=args.jobs,
            cache=args.cache,
        ).format_table()
    )


if __name__ == "__main__":
    main()
