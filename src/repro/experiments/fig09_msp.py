"""E-F9 — Figure 9: impact of multi-stage prioritization.

Two applications (Fig. 8 layout); the inter-region share ``p`` of the
low-load application is swept from 0% to 100%. Compared schemes:

* ``RO_RR`` — region-oblivious round-robin,
* ``RAIR_VA`` — MSP rules at the VA stage only,
* ``RAIR_VA+SA`` — full MSP (VA and SA stages).

Paper shape to reproduce: all APLs grow with ``p``; RAIR variants cut
App0's APL sharply (paper: −18.9% at p=100% for VA+SA) at almost no cost
to App1 (<+3%); VA+SA beats VA across the sweep.
"""

from __future__ import annotations

from repro.experiments.parallel import Cell, FaultPolicy, run_cells_detailed
from repro.experiments.report import (
    common_from_args,
    config_for_topology,
    effort_argparser,
    failed_label,
    finish,
    parse_effort,
)
from repro.experiments.runner import SCHEMES, Effort, FigureResult
from repro.experiments.scenarios import two_app_msp

__all__ = ["run", "main", "P_VALUES", "FIG9_SCHEMES"]

P_VALUES = (0.0, 0.2, 0.4, 0.6, 0.8, 1.0)
FIG9_SCHEMES = ("RO_RR", "RAIR_VA", "RAIR_VA+SA")


def run(
    effort: Effort = Effort.MEDIUM,
    seed: int = 42,
    p_values=P_VALUES,
    schemes=FIG9_SCHEMES,
    jobs: int = 1,
    cache=None,
    policy: FaultPolicy | None = None,
    obs=None,
    guard=None,
    topology: str = "mesh",
    service=None,
) -> FigureResult:
    """Run the Fig. 9 sweep; one row per (p, scheme).

    A cell that fails after retries renders as a ``FAILED(...)`` row
    instead of aborting the sweep (``metrics["failures"]`` counts them).
    ``topology`` selects the fabric (mesh/torus/ring).
    """
    config = config_for_topology(topology)
    cells = [
        Cell.for_scenario(SCHEMES[key], two_app_msp(p, config=config), effort, seed)
        for p in p_values
        for key in schemes
    ]
    results, report = run_cells_detailed(
        cells, jobs=jobs, cache=cache, policy=policy, obs=obs,
        guard=guard, service=service,
    )
    it = iter(results)
    rows = []
    for p in p_values:
        for key in schemes:
            cell_res = next(it)
            if cell_res.ok:
                res = cell_res.run
                rows.append(
                    {
                        "p_inter": f"{p:.0%}",
                        "scheme": key,
                        "apl_app0": res.per_app_apl.get(0, float("nan")),
                        "apl_app1": res.per_app_apl.get(1, float("nan")),
                        "drained": res.drained,
                    }
                )
            else:
                label = failed_label(cell_res)
                rows.append(
                    {
                        "p_inter": f"{p:.0%}",
                        "scheme": key,
                        "apl_app0": label,
                        "apl_app1": label,
                        "drained": "",
                    }
                )
    return FigureResult(
        metrics=report.to_metrics(),
        figure="Figure 9",
        title="APL of App0 (low, p% inter-region) and App1 (high, intra) per scheme",
        columns=["p_inter", "scheme", "apl_app0", "apl_app1", "drained"],
        rows=rows,
        notes=[
            f"windows: warmup={effort.warmup}, measure={effort.measure} "
            f"(paper: 10000/100000)",
            "expected shape: RAIR_VA+SA < RAIR_VA < RO_RR on apl_app0; "
            "apl_app1 penalty small",
        ],
    )


def main(argv=None) -> int:
    """CLI: python -m repro.experiments.fig09_msp [--effort fast]"""
    args = effort_argparser(__doc__).parse_args(argv)
    result = run(
        effort=parse_effort(args.effort),
        seed=args.seed,
        **common_from_args(args),
    )
    return finish(result)


if __name__ == "__main__":
    raise SystemExit(main())
