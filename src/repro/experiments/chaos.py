"""Fault-injection scenario builders for exercising the execution engine.

These builders exist to *test the harness, not the paper*: each one
returns a tiny uniform-traffic scenario on a 4x4 mesh whose construction
first performs a configurable act of sabotage. Because they are referred
to by dotted name (``"repro.experiments.chaos:chaos_scenario"``) through
:class:`~repro.experiments.scenarios.ScenarioSpec`, the fault fires
inside whatever process builds the cell — the worker, under
``jobs>1`` — which is exactly where the fault-tolerant engine of
:mod:`repro.experiments.parallel` must contain it.

Fault modes:

``ok``
    no fault; a cheap clean simulation (the control group).
``raise``
    raise :class:`~repro.util.errors.SimulationError` — deterministic,
    classified non-retryable, must fail fast without retries.
``raise_transient``
    raise :class:`OSError` every time — retryable, must burn
    ``max_attempts`` attempts and then fail with ``attempts == 3``.
``flaky``
    raise :class:`OSError` only until ``marker`` exists (the first
    attempt creates it) — a transient failure that retry must heal.
``hang``
    sleep far past any reasonable wall timeout — must be killed by the
    parent's deadline enforcement and recorded as ``CellTimeout``.
``kill``
    ``SIGKILL`` the current process — breaks the worker pool every
    attempt; quarantine must convict it.
``kill_once``
    ``SIGKILL`` only if ``marker`` does not exist yet (created first,
    with ``open(marker, "x")``, so exactly one process dies even when
    attempts race) — a worker crash that pool rebuild + retry must heal.

``marker`` is a caller-owned path; distinct tests must use distinct
paths. ``cell_id`` only widens the cell key so one chaos sweep can hold
many otherwise-identical cells.
"""

from __future__ import annotations

import os
import signal
import time

from repro.experiments.scenarios import Scenario, ScenarioSpec
from repro.noc.config import NocConfig
from repro.noc.topology import make_topology
from repro.traffic.patterns import UniformPattern
from repro.traffic.synthetic import FixedLength, SyntheticTrafficSource
from repro.util.errors import ConfigError, SimulationError

__all__ = ["CHAOS_MODES", "chaos_scenario", "chaos_cell"]

CHAOS_MODES = (
    "ok",
    "raise",
    "raise_transient",
    "flaky",
    "hang",
    "kill",
    "kill_once",
)

#: long enough that only deadline enforcement ends a "hang" cell
_HANG_SECONDS = 3600.0


def _inject_fault(mode: str, marker: str | None) -> None:
    if mode == "ok":
        return
    if mode == "raise":
        raise SimulationError("chaos: injected deterministic failure")
    if mode == "raise_transient":
        raise OSError("chaos: injected transient failure")
    if mode == "flaky":
        if marker is None:
            raise ConfigError("chaos mode 'flaky' needs a marker path")
        try:
            with open(marker, "x"):
                pass
        except FileExistsError:
            return  # already failed once; heal
        raise OSError("chaos: flaky failure (healed on retry)")
    if mode == "hang":
        time.sleep(_HANG_SECONDS)
        return
    if mode == "kill":
        os.kill(os.getpid(), signal.SIGKILL)
    if mode == "kill_once":
        if marker is None:
            raise ConfigError("chaos mode 'kill_once' needs a marker path")
        try:
            with open(marker, "x"):
                pass
        except FileExistsError:
            return  # someone already died for this cell; heal
        os.kill(os.getpid(), signal.SIGKILL)


def chaos_scenario(
    mode: str = "ok",
    marker: str | None = None,
    cell_id: int = 0,
    rate: float = 0.05,
) -> Scenario:
    """A tiny uniform-traffic scenario that misbehaves on construction."""
    if mode not in CHAOS_MODES:
        raise ConfigError(f"unknown chaos mode {mode!r}; known: {CHAOS_MODES}")
    _inject_fault(mode, marker)
    config = NocConfig(width=4, height=4)
    topo = make_topology(config)

    def factory(seed: int) -> list:
        return [
            SyntheticTrafficSource(
                nodes=range(config.num_nodes),
                rate=rate,
                pattern=UniformPattern(topo),
                app_id=0,
                seed=seed,
                lengths=FixedLength(1),
            )
        ]

    return Scenario(
        name=f"chaos_{mode}_{cell_id}",
        config=config,
        region_map=None,
        traffic_factory=factory,
        description=f"fault-injection scenario (mode={mode})",
        meta={"mode": mode, "cell_id": cell_id},
        spec=ScenarioSpec(
            "repro.experiments.chaos:chaos_scenario",
            {"mode": mode, "marker": marker, "cell_id": cell_id, "rate": rate},
        ),
    )


def chaos_cell(
    scheme,
    effort,
    seed: int,
    mode: str = "ok",
    marker: str | None = None,
    cell_id: int = 0,
    rate: float = 0.05,
):
    """Build a chaos :class:`~repro.experiments.parallel.Cell` directly.

    ``Cell.for_scenario`` would *build* the scenario in the calling
    process — detonating the fault there instead of in the worker under
    test — so chaos cells are assembled from the raw spec.
    """
    from repro.experiments.parallel import Cell

    if mode not in CHAOS_MODES:
        raise ConfigError(f"unknown chaos mode {mode!r}; known: {CHAOS_MODES}")
    return Cell(
        scheme=scheme,
        spec=ScenarioSpec(
            "repro.experiments.chaos:chaos_scenario",
            {"mode": mode, "marker": marker, "cell_id": cell_id, "rate": rate},
        ),
        effort=effort,
        seed=seed,
    )
